"""Dynamic updates: keeping the index fresh as mobility patterns change.

Real deployments (the paper's mobile ATM vans, traffic monitoring) need
answers based on *current* trajectories.  This example shows the NetClus
index absorbing streaming updates without a rebuild:

1. build the index on the morning's trajectories;
2. stream in the afternoon's trajectories and a batch of newly available
   candidate sites through the batched update engine
   (``add_trajectories``/``add_sites``), timing each batch (Table 10 of the
   paper; ``benchmarks/bench_update_throughput.py`` measures the per-item
   speedup of batching over one-at-a-time calls);
3. remove a site that became unavailable and re-query;
4. verify against an index rebuilt from scratch on the final data.

Run with::

    python examples/dynamic_city_updates.py
"""

from __future__ import annotations

import time

from repro import TOPSQuery
from repro.core.netclus import NetClusIndex
from repro.datasets import beijing_like
from repro.experiments.reporting import print_table
from repro.trajectory.generators import CommuterModel
from repro.trajectory.model import Trajectory, TrajectoryDataset


def main() -> None:
    bundle = beijing_like(scale="small", seed=29)
    network = bundle.network
    morning = bundle.trajectories
    sites = bundle.sites[::2]  # half the intersections are available today
    query = TOPSQuery(k=5, tau_km=0.8)

    print("Building NetClus on the morning trajectories...")
    start = time.perf_counter()
    index = NetClusIndex.build(
        network, morning, sites, gamma=0.75, tau_min_km=0.4, tau_max_km=6.0
    )
    print(f"  build time: {time.perf_counter() - start:.2f}s, "
          f"{index.num_instances} instances, {index.storage_bytes() / 1e6:.2f} MB")
    baseline = index.query(query)
    print(f"  morning answer: sites {baseline.sites}, utility {baseline.utility:.0f}\n")

    # ------------------------------------------------------------------ #
    # stream afternoon trajectories in batches through the update engine:
    # one UpdateBatch per arriving chunk instead of one call per item
    model = CommuterModel(network, num_hotspots=4, seed=101)
    next_id = max(morning.ids()) + 1
    rows = []
    for batch_size in (100, 200, 400):
        new_trajectories = []
        for trajectory in model.generate(batch_size):
            new_trajectories.append(
                Trajectory(
                    traj_id=next_id,
                    nodes=trajectory.nodes,
                    cumulative_km=trajectory.cumulative_km,
                )
            )
            next_id += 1
        start = time.perf_counter()
        index.add_trajectories(new_trajectories)
        traj_time = time.perf_counter() - start

        new_sites = [s for s in bundle.sites if s not in index.sites][:batch_size]
        start = time.perf_counter()
        index.add_sites(new_sites)
        site_time = time.perf_counter() - start
        rows.append(
            {
                "batch_size": batch_size,
                "trajectory_add_s": traj_time,
                "site_add_s": site_time,
            }
        )
    print_table(rows, title="Update cost per batch (compare Table 10 of the paper)")
    print()

    refreshed = index.query(query)
    print(f"After updates: sites {refreshed.sites}, utility {refreshed.utility:.0f} "
          f"(m = {index.num_trajectories})")

    # ------------------------------------------------------------------ #
    # a chosen site becomes unavailable
    lost_site = refreshed.sites[0]
    index.remove_site(lost_site)
    replanned = index.query(query)
    print(f"Site {lost_site} withdrawn -> new answer {replanned.sites}, "
          f"utility {replanned.utility:.0f}\n")

    # ------------------------------------------------------------------ #
    # sanity check against a from-scratch rebuild
    print("Verifying against a from-scratch rebuild on the updated data...")
    # regenerate the streamed batches deterministically for the rebuild
    model_check = CommuterModel(network, num_hotspots=4, seed=101)
    streamed = model_check.generate(700)
    rebuild_list = list(morning) + [
        Trajectory(
            traj_id=max(morning.ids()) + 1 + i,
            nodes=t.nodes,
            cumulative_km=t.cumulative_km,
        )
        for i, t in enumerate(streamed)
    ]
    rebuilt = NetClusIndex.build(
        network,
        TrajectoryDataset(rebuild_list),
        sorted(index.sites),
        gamma=0.75,
        tau_min_km=0.4,
        tau_max_km=6.0,
    )
    check = rebuilt.query(query)
    drift = abs(check.utility - replanned.utility) / max(check.utility, 1.0)
    print(f"  incremental utility {replanned.utility:.0f} vs rebuilt {check.utility:.0f} "
          f"({100 * drift:.1f}% drift)")


if __name__ == "__main__":
    main()
