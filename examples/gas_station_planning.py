"""Gas-station planning across city geometries (the paper's motivating scenario).

A fuel retailer wants to open k stations that intercept as many commuter
trips as possible.  This example:

1. builds three synthetic cities with different topologies (star, mesh,
   polycentric — the paper's New York / Atlanta / Bangalore comparison);
2. compares trajectory-aware placement (Inc-Greedy / NetClus) against the
   naive "put stations at the busiest intersections" heuristic from the
   paper's introduction (Fig. 1);
3. studies how the tolerated detour τ changes the answer.

Run with::

    python examples/gas_station_planning.py
"""

from __future__ import annotations

from repro import TOPSQuery
from repro.core.baselines import random_sites, top_k_by_traffic
from repro.core.greedy import IncGreedy
from repro.datasets import atlanta_like, bangalore_like, new_york_like
from repro.experiments.reporting import print_table


def main() -> None:
    cities = {
        "New York (star)": new_york_like(num_trajectories=250, seed=11),
        "Atlanta (mesh)": atlanta_like(num_trajectories=250, seed=11),
        "Bangalore (polycentric)": bangalore_like(num_trajectories=250, seed=11),
    }
    query = TOPSQuery(k=5, tau_km=0.8)

    rows = []
    for name, bundle in cities.items():
        problem = bundle.problem()
        coverage = problem.coverage(query)

        greedy = IncGreedy(coverage).solve(query)
        busiest = top_k_by_traffic(coverage, query)
        random_pick = random_sites(coverage, query, seed=1)
        index = problem.build_netclus_index(tau_min_km=0.4, tau_max_km=6.0)
        netclus = index.query(query)

        rows.append(
            {
                "city": name,
                "nodes": bundle.num_nodes,
                "inc_greedy_pct": problem.utility_percent(greedy.sites, query),
                "netclus_pct": problem.utility_percent(netclus.sites, query),
                "busiest_nodes_pct": problem.utility_percent(busiest.sites, query),
                "random_pct": problem.utility_percent(random_pick.sites, query),
            }
        )
    print_table(
        rows,
        title=f"Gas-station placement, k={query.k}, tolerated detour τ={query.tau_km} km",
        precision=1,
    )
    print()
    print("Trajectory-aware placement (Inc-Greedy / NetClus) beats the busiest-")
    print("intersection heuristic because the busiest intersections tend to serve")
    print("the same trips; covering *distinct* trajectories is what matters.")

    # effect of the tolerated detour in one city
    bundle = cities["Bangalore (polycentric)"]
    problem = bundle.problem()
    index = problem.build_netclus_index(tau_min_km=0.4, tau_max_km=6.0)
    tau_rows = []
    for tau in (0.4, 0.8, 1.6, 3.2):
        tau_query = TOPSQuery(k=5, tau_km=tau)
        result = index.query(tau_query)
        tau_rows.append(
            {
                "tau_km": tau,
                "netclus_pct": problem.utility_percent(result.sites, tau_query),
                "index_instance": result.metadata["instance_id"],
                "clusters_used": result.metadata["num_clusters"],
            }
        )
    print()
    print_table(tau_rows, title="Bangalore: utility vs tolerated detour (NetClus)", precision=1)


if __name__ == "__main__":
    main()
