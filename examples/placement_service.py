"""Persist & serve: build a NetClus index once, save it, answer batches.

The paper's pitch is that NetClus is an *index* — built once per city and
queried many times at varying (τ, k, cost, capacity).  This example walks the
full service lifecycle:

1. build a city + trajectories and a NetClus index (offline phase),
2. save the index to disk (versioned .npz payload + JSON manifest),
3. reload it in a fresh :class:`~repro.service.PlacementService`,
4. answer a mixed batch of query specs with shared-work amortisation,
5. show the cache and the work counters doing their job.

Run with::

    python examples/placement_service.py [--keep DIR]

With ``--keep DIR`` the index directory is written there (and left on disk
for inspection with ``python -m repro.service inspect --index DIR``);
otherwise a temporary directory is used.
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro import PlacementService, QuerySpec, TOPSProblem
from repro.network import grid_network
from repro.service import load_manifest
from repro.trajectory import commuter_trajectories


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--keep", default=None, metavar="DIR",
                        help="write the index here instead of a temp dir")
    args = parser.parse_args()

    # 1. A city and its mobility: a 10x10 grid, 200 commuter trajectories.
    network = grid_network(10, 10, spacing_km=0.5)
    trajectories = commuter_trajectories(network, 200, num_hotspots=4, seed=11)
    problem = TOPSProblem(network, trajectories)

    # 2. Offline phase: build the index through a (lazy) service and save it.
    service = PlacementService.from_problem(problem, tau_min_km=0.4, tau_max_km=4.0)
    with tempfile.TemporaryDirectory() as tmp:
        index_dir = Path(args.keep) if args.keep else Path(tmp) / "city.ncx"
        service.save(index_dir)
        manifest = load_manifest(index_dir)
        print(f"saved index   : {index_dir}")
        print(f"  format      : {manifest['format']} v{manifest['format_version']}")
        print(f"  instances   : {manifest['num_instances']}, "
              f"~{manifest['storage_bytes'] / 1e3:.0f} kB payload estimate")
        print(f"  graph sha   : {manifest['fingerprints']['graph'][:16]}…")

        # 3. Reload in a fresh service — fingerprints are verified on load.
        served = PlacementService.from_path(index_dir)

        # 4. A mixed batch: varying k and τ, a capacitated spec, a budgeted
        #    spec, and a non-binary preference.
        specs = [
            QuerySpec(k=3, tau_km=1.0),
            QuerySpec(k=6, tau_km=1.0),            # same (τ, ψ): shares one greedy run
            QuerySpec(k=9, tau_km=1.0),            # ... so does this one
            QuerySpec(k=5, tau_km=2.0),
            QuerySpec(k=5, tau_km=2.0, capacity=30),
            QuerySpec(k=4, tau_km=1.0, budget=3.0),
            QuerySpec(k=5, tau_km=1.0, preference="linear"),
        ]
        results = served.batch_query(specs)

        print("\nbatch results")
        for spec, result in zip(specs, results):
            extras = []
            if spec.capacity is not None:
                extras.append(f"cap={spec.capacity}")
            if spec.budget is not None:
                extras.append(f"budget={spec.budget}")
            if spec.preference != "binary":
                extras.append(spec.preference)
            label = f" ({', '.join(extras)})" if extras else ""
            print(f"  k={spec.k} τ={spec.tau_km:.1f}{label:<16} "
                  f"utility={result.utility:7.2f}  sites={list(result.sites)}")

        stats = served.stats
        print(f"\nshared work   : {stats.queries_served} specs answered with "
              f"{stats.instance_resolutions} instance resolutions, "
              f"{stats.coverage_builds} coverage builds, "
              f"{stats.greedy_runs} greedy runs")

        # 5. Repeat a spec: the LRU cache answers without any new work.
        runs_before = stats.greedy_runs
        again = served.query(QuerySpec(k=6, tau_km=1.0))
        assert again.sites == results[1].sites
        print(f"cache         : repeat query hit the cache "
              f"(hits={stats.cache_hits}, greedy runs still {runs_before})")


if __name__ == "__main__":
    main()
