"""Mobile ATM-van deployment: budgets, capacities, and existing branches.

The paper motivates interactive TOPS querying with mobile ATM van deployments:
placements must respect a budget (vans + parking fees differ by site), each
van can serve only a limited number of customers per day, and the bank already
operates fixed branches that new vans should complement, not duplicate.

This example exercises the TOPS extensions of Section 7 on a Beijing-like
city:

* TOPS-COST   — maximise served trips within a total budget;
* TOPS-CAPACITY — each van serves at most C trips;
* TOPS with existing services — place vans given the fixed branches;
* TOPS4 (market share) — the smallest fleet that serves a target fraction.

Run with::

    python examples/mobile_atm_fleet.py
"""

from __future__ import annotations

import numpy as np

from repro import TOPSQuery
from repro.core.greedy import IncGreedy
from repro.core.variants import (
    solve_tops_capacity,
    solve_tops_cost,
    solve_tops_market_share,
    solve_tops_with_existing,
)
from repro.datasets import beijing_like, site_capacities_normal, site_costs_normal
from repro.experiments.reporting import print_table


def main() -> None:
    bundle = beijing_like(scale="small", seed=23)
    problem = bundle.problem()
    query = TOPSQuery(k=6, tau_km=0.8)
    coverage = problem.coverage(query)
    m = problem.num_trajectories
    print(f"Dataset: {bundle.name} — {bundle.num_nodes} intersections, {m} trips\n")

    # ------------------------------------------------------------------ #
    # unconstrained reference
    reference = IncGreedy(coverage).solve(query)
    print(f"Unconstrained TOPS (k={query.k}): "
          f"{100 * reference.utility / m:.1f}% of trips served\n")

    # ------------------------------------------------------------------ #
    # TOPS-COST: parking/operating cost differs per site, budget of 5 units
    rows = []
    for std in (0.0, 0.5, 1.0):
        costs = site_costs_normal(coverage.num_sites, mean=1.0, std=std, seed=5)
        result = solve_tops_cost(coverage, budget=5.0, site_costs=costs)
        rows.append(
            {
                "site_cost_stddev": std,
                "vans_deployed": len(result.sites),
                "budget_spent": result.metadata["spent"],
                "trips_served_pct": 100 * result.utility / m,
            }
        )
    print_table(rows, title="TOPS-COST: budget B = 5.0, site costs ~ N(1, σ)", precision=2)
    print()

    # ------------------------------------------------------------------ #
    # TOPS-CAPACITY: each van serves at most a fraction of the daily trips
    rows = []
    for fraction in (0.02, 0.1, 0.5):
        capacities = site_capacities_normal(
            coverage.num_sites, m, mean_fraction=fraction, seed=5
        )
        result = solve_tops_capacity(coverage, query, capacities)
        rows.append(
            {
                "mean_capacity_trips": float(np.mean(capacities)),
                "trips_served_pct": 100 * result.utility / m,
            }
        )
    print_table(rows, title=f"TOPS-CAPACITY: k = {query.k} vans with limited capacity", precision=2)
    print()

    # ------------------------------------------------------------------ #
    # existing branches: the two best unconstrained sites are already built
    existing = list(reference.sites[:2])
    result = solve_tops_with_existing(coverage, query, existing)
    print("TOPS with existing services")
    print(f"  existing branches        : {existing}")
    print(f"  new van locations        : {result.sites}")
    print(f"  combined trips served    : {100 * result.utility / m:.1f}%")
    print()

    # ------------------------------------------------------------------ #
    # TOPS4: how many vans to reach a 60% market share?
    result = solve_tops_market_share(coverage, beta=0.6)
    print("TOPS4 (fixed market share)")
    print(f"  target share             : 60%")
    print(f"  vans needed              : {len(result.sites)}")
    print(f"  achieved share           : {100 * result.utility / m:.1f}%")


if __name__ == "__main__":
    main()
