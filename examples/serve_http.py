"""Serve over HTTP: the asyncio front end end-to-end, client included.

The in-process :class:`~repro.service.PlacementService` becomes a network
service through :class:`~repro.service.PlacementServer` — a stdlib-only
asyncio HTTP/1.1 layer with request coalescing, bounded admission and a
worker pool.  This example walks the serving lifecycle without leaving
one process:

1. build a small city index,
2. start the server on an ephemeral port (dedicated event-loop thread),
3. answer a batch of specs over real sockets — and show the placements
   are byte-identical to a direct in-process ``batch_query``,
4. apply a site-closure delta through ``POST /update`` and watch the
   index version bump and subsequent queries change,
5. read the Prometheus-style ``GET /metrics`` counters,
6. drain and shut down cleanly.

Run with::

    python examples/serve_http.py

In production the same server runs standalone::

    python -m repro.service serve --index city.ncx --port 8321 --max-inflight 64
"""

from __future__ import annotations

import http.client
import json

import numpy as np

from repro import PlacementService, QuerySpec, TOPSProblem
from repro.network import grid_network
from repro.service import serve_in_background
from repro.trajectory import commuter_trajectories


def post(conn: http.client.HTTPConnection, path: str, payload) -> dict:
    conn.request("POST", path, body=json.dumps(payload))
    response = conn.getresponse()
    body = json.loads(response.read())
    assert response.status == 200, (response.status, body)
    return body


def main() -> None:
    # 1. A city and its index (offline phase).
    network = grid_network(10, 10, spacing_km=0.5)
    trajectories = commuter_trajectories(network, 200, num_hotspots=4, seed=11)
    problem = TOPSProblem(network, trajectories)
    index = problem.build_netclus_index(gamma=0.75, tau_min_km=0.4, tau_max_km=4.0)
    service = PlacementService(index)

    # 2. Serve it: ephemeral port, dedicated event-loop thread.
    with serve_in_background(service, max_inflight=32) as handle:
        host, port = handle.address
        print(f"serving       : http://{host}:{port}")
        conn = http.client.HTTPConnection(host, port, timeout=30)

        # 3. A batch over HTTP — byte-identical to the in-process answer.
        specs = [
            QuerySpec(k=3, tau_km=1.0),
            QuerySpec(k=6, tau_km=1.0),
            QuerySpec(k=5, tau_km=2.0, preference="linear"),
        ]
        body = post(conn, "/query", [spec.to_dict() for spec in specs])
        direct = PlacementService(index).batch_query(specs, use_cache=False)
        for spec, served, want in zip(specs, body["results"], direct):
            assert tuple(served["sites"]) == want.sites
            assert (
                np.asarray(served["per_trajectory_utility"]).tobytes()
                == np.asarray(want.per_trajectory_utility).tobytes()
            )
            print(f"  k={spec.k} τ={spec.tau_km:.1f}  "
                  f"utility={served['utility']:7.2f}  sites={served['sites']}")
        print("parity        : HTTP answers byte-identical to in-process calls")

        # 4. Close a selected site through /update; later queries see it.
        victim = body["results"][0]["sites"][0]
        update = post(conn, "/update", {"remove_sites": [victim]})
        print(f"update        : closed site {victim}, index version "
              f"{update['index_version_before']} -> {update['index_version']}")
        after = post(conn, "/query", [specs[0].to_dict()])
        assert victim not in after["results"][0]["sites"]
        print(f"re-query      : k={specs[0].k} now selects "
              f"{after['results'][0]['sites']}")

        # 5. The observability surface.
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        metrics = response.read().decode()
        assert response.status == 200
        shown = [
            line
            for line in metrics.splitlines()
            if line.startswith(
                ("netclus_server_requests_total", "netclus_index_version")
            )
        ]
        print("metrics       :")
        for line in shown:
            print(f"  {line}")
        conn.close()

    # 6. The context manager drained and shut the server down.
    print("shutdown      : drained cleanly")


if __name__ == "__main__":
    main()
