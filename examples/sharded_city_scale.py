"""City-scale serving with the trajectory-sharded query path.

The Fig. 11 study compares three city geometries (star-topology New York,
mesh Atlanta, polycentric Bangalore).  This example runs that multi-city
batch the way a city-scale deployment would: one
:class:`~repro.service.PlacementService` per city, each configured with a
trajectory-sharded coverage (``shards=4``) and a persistent worker pool
(``query_workers="auto"``), answering a mixed (k, τ, ψ, capacity) batch.

Two things to watch:

1. **Exactness** — for every city the sharded service's answers are
   compared against an unsharded service: selections and utilities are
   identical, because TOPS utilities are additive over disjoint
   trajectory shards (the example asserts it).
2. **The work split** — the per-stage query timings (coverage build /
   greedy / replay seconds) show where a sharded deployment spends its
   time, per city.

Run with::

    python examples/sharded_city_scale.py [--shards 4] [--query-workers auto]
"""

from __future__ import annotations

import argparse

from repro import PlacementService, QuerySpec
from repro.datasets import atlanta_like, bangalore_like, new_york_like


def city_batch() -> list[QuerySpec]:
    """The mixed batch every city answers: k-sweep, two τ, ψ and capacity."""
    return [
        QuerySpec(k=5, tau_km=0.8),
        QuerySpec(k=10, tau_km=0.8),             # shares the k=10 greedy run
        QuerySpec(k=5, tau_km=1.6),
        QuerySpec(k=5, tau_km=0.8, preference="linear"),
        QuerySpec(k=5, tau_km=0.8, capacity=25),
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--query-workers", default="auto")
    parser.add_argument("--trajectories", type=int, default=300)
    args = parser.parse_args()

    cities = [
        ("New-York-like (star)", new_york_like(num_trajectories=args.trajectories, seed=7)),
        ("Atlanta-like (mesh)", atlanta_like(num_trajectories=args.trajectories, seed=7)),
        ("Bangalore-like (poly)", bangalore_like(num_trajectories=args.trajectories, seed=7)),
    ]
    specs = city_batch()
    print(
        f"Answering a {len(specs)}-spec batch per city "
        f"with shards={args.shards}, query_workers={args.query_workers!r}\n"
    )

    for name, bundle in cities:
        problem = bundle.problem()
        index = problem.build_netclus_index(tau_min_km=0.4, tau_max_km=4.0)

        sharded = PlacementService(
            index, shards=args.shards, query_workers=args.query_workers
        )
        plain = PlacementService(index)
        sharded_results = sharded.batch_query(specs, use_cache=False)
        plain_results = plain.batch_query(specs, use_cache=False)

        # additivity over disjoint shards makes sharding exact — verify it
        for got, want in zip(sharded_results, plain_results):
            assert got.sites == want.sites, (name, got.sites, want.sites)
            assert got.per_trajectory_utility == want.per_trajectory_utility

        stages = sharded.stats.stage_seconds()
        print(f"{name}  ({bundle.num_nodes} nodes, {bundle.num_trajectories} trips)")
        for spec, result in zip(specs, sharded_results):
            extras = []
            if spec.capacity is not None:
                extras.append(f"cap={spec.capacity}")
            if spec.preference != "binary":
                extras.append(spec.preference)
            label = f" ({', '.join(extras)})" if extras else ""
            print(
                f"  k={spec.k:>2} tau={spec.tau_km:.1f}{label:<12} "
                f"utility {result.utility:7.1f}  sites {list(result.sites)[:5]}"
                f"{'...' if len(result.sites) > 5 else ''}"
            )
        print(
            f"  identical to the unsharded service; stage seconds: "
            f"coverage {stages['coverage_build_seconds']:.3f} | "
            f"greedy {stages['greedy_seconds']:.3f} | "
            f"replay {stages['replay_seconds']:.3f}\n"
        )
        sharded.close()

    print("All three cities answered; sharded == unsharded everywhere.")


if __name__ == "__main__":
    main()
