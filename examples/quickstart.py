"""Quickstart: answer a TOPS query on a synthetic city in a few lines.

Builds a small grid city, generates commuter trajectories, and compares
Inc-Greedy against the NetClus index for a single query (k sites, coverage
threshold τ).  Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import TOPSProblem, TOPSQuery
from repro.network import grid_network
from repro.trajectory import commuter_trajectories


def main() -> None:
    # 1. A road network: a 12x12 grid city with 0.5 km blocks.
    network = grid_network(12, 12, spacing_km=0.5)

    # 2. User mobility: 300 commuter trajectories between home/work hotspots.
    trajectories = commuter_trajectories(network, 300, num_hotspots=5, seed=7)

    # 3. The TOPS problem: every road intersection is a candidate site.
    problem = TOPSProblem(network, trajectories)

    # 4. A query: place k = 5 facilities, users tolerate a 1 km round-trip detour.
    query = TOPSQuery(k=5, tau_km=1.0)

    # --- flat solution: Inc-Greedy over all candidate sites -------------
    greedy = problem.solve(query, method="inc-greedy")
    print("Inc-Greedy")
    print(f"  selected sites : {greedy.sites}")
    print(f"  utility        : {greedy.utility:.0f} of {problem.num_trajectories} "
          f"trajectories ({greedy.utility_percent(problem.num_trajectories):.1f}%)")
    print(f"  time           : {greedy.elapsed_seconds * 1000:.1f} ms")

    # --- indexed solution: build NetClus once, query many times ---------
    index = problem.build_netclus_index(gamma=0.75, tau_min_km=0.4, tau_max_km=6.0)
    netclus = index.query(query)
    exact_pct = problem.utility_percent(netclus.sites, query)
    print("NetClus")
    print(f"  index          : {index.num_instances} instances, "
          f"{index.storage_bytes() / 1e6:.2f} MB")
    print(f"  selected sites : {netclus.sites}")
    print(f"  utility        : {exact_pct:.1f}% (exact), "
          f"instance radius {netclus.metadata['instance_radius_km']:.2f} km")
    print(f"  time           : {netclus.elapsed_seconds * 1000:.1f} ms")

    # The index answers any (k, τ, ψ) without rebuilding:
    for tau in (0.5, 2.0, 4.0):
        result = index.query(TOPSQuery(k=5, tau_km=tau))
        print(f"  τ = {tau:>3.1f} km -> utility "
              f"{problem.utility_percent(result.sites, TOPSQuery(k=5, tau_km=tau)):5.1f}% "
              f"(instance {result.metadata['instance_id']})")


if __name__ == "__main__":
    main()
