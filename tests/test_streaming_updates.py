"""The streaming update engine: batches == sequential == rebuilt from scratch.

Covers the PR-3 update subsystem:

* :meth:`NetClusIndex.apply_updates` / the plural update APIs leave the index
  in exactly the state the one-at-a-time calls produce (selection-identical,
  per-trajectory-utility-identical, cluster-state-identical);
* randomized update sequences match an index rebuilt from scratch on the
  final data, under both representative strategies and both coverage
  engines;
* dynamic re-election honours ``representative_strategy="most_frequent"``
  (the pre-PR-3 code always re-elected by proximity);
* the monotonic :attr:`NetClusIndex.version` counter;
* the τ-boundary snap in :meth:`NetClusIndex.instance_for`.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core.netclus import NetClusIndex, UpdateBatch
from repro.core.query import TOPSQuery
from repro.network.generators import grid_network
from repro.trajectory.generators import commuter_trajectories
from repro.trajectory.model import TrajectoryDataset


@pytest.fixture(scope="module")
def world():
    """Network, base/held-out trajectories and candidate sites."""
    network = grid_network(8, 8, spacing_km=0.5)
    everything = commuter_trajectories(network, 80, seed=17)
    base = everything.sample(50, seed=1)
    held_out = [t for t in everything if t.traj_id not in set(base.ids())]
    sites = network.node_ids()[::2]
    return network, base, held_out, sites


def build(world, strategy="closest"):
    network, base, _, sites = world
    return NetClusIndex.build(
        network,
        base,
        sites,
        gamma=0.75,
        tau_min_km=0.4,
        tau_max_km=3.0,
        representative_strategy=strategy,
    )


def assert_same_state(left: NetClusIndex, right: NetClusIndex) -> None:
    """Full structural equality of two indexes (incl. insertion orders)."""
    assert left.sites == right.sites
    assert left.trajectory_ids == right.trajectory_ids
    for instance_l, instance_r in zip(left.instances, right.instances):
        for cluster_l, cluster_r in zip(instance_l.clusters, instance_r.clusters):
            assert cluster_l.representative == cluster_r.representative
            assert (
                cluster_l.representative_round_trip_km
                == cluster_r.representative_round_trip_km
            )
            assert cluster_l.trajectory_list == cluster_r.trajectory_list
            assert list(cluster_l.trajectory_list) == list(cluster_r.trajectory_list)


def assert_same_answers(left: NetClusIndex, right: NetClusIndex, taus=(0.4, 0.8, 1.6)):
    """Byte-identical query answers across τ and both engines."""
    for tau in taus:
        for engine in ("dense", "sparse"):
            query = TOPSQuery(k=5, tau_km=tau)
            a = left.query(query, engine=engine)
            b = right.query(query, engine=engine)
            assert a.sites == b.sites
            assert (
                np.asarray(a.per_trajectory_utility).tobytes()
                == np.asarray(b.per_trajectory_utility).tobytes()
            )


# ---------------------------------------------------------------------- #
# batched == sequential
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("strategy", ["closest", "most_frequent"])
def test_apply_updates_matches_sequential_calls(world, strategy):
    network, base, held_out, sites = world
    index = build(world, strategy)
    sequential = copy.deepcopy(index)
    batched = copy.deepcopy(index)
    remove_traj = list(base.ids())[:10]
    remove_sites = sorted(index.sites)[:8]
    add_sites = [n for n in network.node_ids() if n not in index.sites][:12]
    batch = UpdateBatch(
        add_trajectories=held_out,
        remove_trajectories=remove_traj,
        add_sites=add_sites,
        remove_sites=remove_sites,
    )

    # the documented application order: removals first, then additions
    for traj_id in remove_traj:
        sequential.remove_trajectory(traj_id)
    for site in remove_sites:
        sequential.remove_site(site)
    for trajectory in held_out:
        sequential.add_trajectory(trajectory)
    for site in add_sites:
        sequential.add_site(site)

    assert batched.apply_updates(batch) == len(batch)
    assert_same_state(sequential, batched)
    assert_same_answers(sequential, batched)


def test_plural_apis_match_singular(world):
    index = build(world)
    singular = copy.deepcopy(index)
    plural = copy.deepcopy(index)
    victims = list(index.trajectory_ids)[:5]
    for traj_id in victims:
        singular.remove_trajectory(traj_id)
    plural.remove_trajectories(victims)
    assert_same_state(singular, plural)


def test_empty_batch_is_noop(world):
    index = build(world)
    version = index.version
    assert index.apply_updates(UpdateBatch()) == 0
    assert index.version == version


def test_update_batch_len():
    batch = UpdateBatch(remove_trajectories=[1, 2], add_sites=[3])
    assert len(batch) == 3


# ---------------------------------------------------------------------- #
# randomized update sequences == rebuild from scratch
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("strategy", ["closest", "most_frequent"])
@pytest.mark.parametrize("engine", ["dense", "sparse"])
def test_randomized_updates_match_rebuild(world, strategy, engine):
    network, base, held_out, sites = world
    index = build(world, strategy)
    rng = np.random.default_rng(5)
    pool = list(held_out)
    live = list(base)

    for _ in range(30):
        op = rng.integers(0, 4)
        if op == 0 and pool:
            trajectory = pool.pop()
            index.add_trajectory(trajectory)
            live.append(trajectory)
        elif op == 1 and len(live) > 10:
            position = int(rng.integers(0, len(live)))
            index.remove_trajectory(live.pop(position).traj_id)
        elif op == 2:
            candidates = [n for n in network.node_ids() if n not in index.sites]
            if candidates:
                index.add_site(int(rng.choice(candidates)))
        elif op == 3 and len(index.sites) > 5:
            index.remove_site(int(rng.choice(sorted(index.sites))))

    rebuilt = NetClusIndex.build(
        network,
        TrajectoryDataset(live),
        sorted(index.sites),
        gamma=0.75,
        tau_min_km=0.4,
        tau_max_km=3.0,
        representative_strategy=strategy,
    )
    for tau in (0.4, 0.8, 1.6, 3.0):
        query = TOPSQuery(k=5, tau_km=tau)
        updated = index.query(query, engine=engine)
        fresh = rebuilt.query(query, engine=engine)
        assert updated.sites == fresh.sites
        assert np.allclose(
            updated.per_trajectory_utility, fresh.per_trajectory_utility
        )


# ---------------------------------------------------------------------- #
# most_frequent dynamic re-election (satellite fix)
# ---------------------------------------------------------------------- #
def test_add_site_respects_most_frequent_strategy(world):
    """Dynamic site additions must elect by visit count, not proximity."""
    network, base, _, sites = world
    index = build(world, strategy="most_frequent")
    for node in network.node_ids():
        index.add_site(node)
    rebuilt = NetClusIndex.build(
        network,
        base,
        network.node_ids(),
        gamma=0.75,
        tau_min_km=0.4,
        tau_max_km=3.0,
        representative_strategy="most_frequent",
    )
    for instance_u, instance_r in zip(index.instances, rebuilt.instances):
        for cluster_u, cluster_r in zip(instance_u.clusters, instance_r.clusters):
            assert cluster_u.representative == cluster_r.representative


def test_remove_site_respects_most_frequent_strategy(world):
    network, base, _, _ = world
    index = build(world, strategy="most_frequent")
    reference = build(world, strategy="most_frequent")
    # remove every current representative of the coarsest instance so the
    # re-elections have to pick a *different* site by visit count
    victims = sorted(
        {
            c.representative
            for c in index.instances[-1].clusters
            if c.has_representative
        }
    )
    keep = [s for s in sorted(reference.sites) if s not in set(victims)]
    index.remove_sites(victims)
    rebuilt = NetClusIndex.build(
        network,
        base,
        keep,
        gamma=0.75,
        tau_min_km=0.4,
        tau_max_km=3.0,
        representative_strategy="most_frequent",
    )
    for instance_u, instance_r in zip(index.instances, rebuilt.instances):
        for cluster_u, cluster_r in zip(instance_u.clusters, instance_r.clusters):
            assert cluster_u.representative == cluster_r.representative


def test_trajectory_updates_can_flip_most_frequent_election(world):
    """Removing trajectories changes visit counts and hence elections."""
    network, base, held_out, _ = world
    index = build(world, strategy="most_frequent")
    removed = list(base.ids())[: len(base.ids()) // 2]
    index.remove_trajectories(removed)
    index.add_trajectories(held_out)
    live = [t for t in base if t.traj_id not in set(removed)] + list(held_out)
    rebuilt = NetClusIndex.build(
        network,
        TrajectoryDataset(live),
        sorted(index.sites),
        gamma=0.75,
        tau_min_km=0.4,
        tau_max_km=3.0,
        representative_strategy="most_frequent",
    )
    for instance_u, instance_r in zip(index.instances, rebuilt.instances):
        for cluster_u, cluster_r in zip(instance_u.clusters, instance_r.clusters):
            assert cluster_u.representative == cluster_r.representative


# ---------------------------------------------------------------------- #
# version counter
# ---------------------------------------------------------------------- #
def test_version_bumps_on_every_mutation(world):
    network, _, held_out, _ = world
    index = build(world)
    assert index.version == 0
    index.add_trajectory(held_out[0])
    assert index.version == 1
    index.remove_trajectory(held_out[0].traj_id)
    assert index.version == 2
    new_site = next(n for n in network.node_ids() if n not in index.sites)
    index.add_site(new_site)
    assert index.version == 3
    index.remove_site(new_site)
    assert index.version == 4


def test_version_unchanged_by_noops_and_queries(world):
    index = build(world)
    index.add_site(sorted(index.sites)[0])  # already registered -> no-op
    index.query(TOPSQuery(k=3, tau_km=0.8))
    assert index.version == 0
    with pytest.raises(KeyError):
        index.remove_site(10_001)
    assert index.version == 0


def test_failed_batch_leaves_state_untouched(world):
    """A batch with an invalid member must not partially apply."""
    index = build(world)
    before = copy.deepcopy(index)
    good = sorted(index.sites)[:3]
    with pytest.raises(KeyError):
        index.remove_sites(good + [10_001])
    assert index.version == 0
    assert_same_state(before, index)
    with pytest.raises(KeyError):
        index.remove_trajectories([index.trajectory_ids[0], 99_999])
    assert_same_state(before, index)


def test_duplicate_ids_in_batch_rejected(world):
    _, _, held_out, _ = world
    index = build(world)
    with pytest.raises(ValueError):
        index.add_trajectories([held_out[0], held_out[0]])
    with pytest.raises(KeyError):
        index.remove_sites([sorted(index.sites)[0]] * 2)


# ---------------------------------------------------------------------- #
# instance_for boundary snap (satellite fix)
# ---------------------------------------------------------------------- #
def test_instance_for_exact_boundaries(world):
    """τ == τ_min·(1+γ)^p must select instance p across the whole ladder."""
    index = build(world)
    for p in range(index.num_instances):
        tau = index.tau_min_km * (1.0 + index.gamma) ** p
        assert index.instance_for(tau).instance_id == p, f"boundary p={p}"


def test_instance_for_interior_and_clamps(world):
    index = build(world)
    gamma = index.gamma
    # strictly inside each band the instance is unchanged by the snap
    for p in range(index.num_instances):
        tau = index.tau_min_km * (1.0 + gamma) ** (p + 0.5)
        assert index.instance_for(tau).instance_id == p
    # just below a boundary (beyond the tolerance) stays on the lower band
    tau = index.tau_min_km * (1.0 + gamma) ** 2 * (1.0 - 1e-6)
    assert index.instance_for(tau).instance_id == 1
    assert index.instance_for(1e-6).instance_id == 0
    assert index.instance_for(1e9).instance_id == index.num_instances - 1


# ---------------------------------------------------------------------- #
# review hardening: foreign node ids, cross-sub-batch atomicity
# ---------------------------------------------------------------------- #
def test_batched_add_handles_foreign_node_ids_like_sequential(world):
    """Node ids unknown to the network are skipped, never wrapped/overflowed."""
    from repro.trajectory.model import Trajectory

    index = build(world)
    base_id = max(index.trajectory_ids) + 1
    weird = [
        Trajectory(traj_id=base_id, nodes=(-1, 0, 1), cumulative_km=(0.0, 0.5, 1.0)),
        Trajectory(
            traj_id=base_id + 1, nodes=(500, 2, 3), cumulative_km=(0.0, 0.5, 1.0)
        ),
        Trajectory(traj_id=base_id + 2, nodes=(4, 5), cumulative_km=(0.0, 0.5)),
    ]
    sequential = copy.deepcopy(index)
    for trajectory in weird:
        sequential.add_trajectory(trajectory)
    index.add_trajectories(weird)
    # full state equality guards against node -1 wrapping to the last node:
    # a wrapped registration would give the batched index an extra (or
    # different) trajectory-list entry somewhere
    assert_same_state(sequential, index)


def test_foreign_node_ids_under_most_frequent(world):
    from repro.trajectory.model import Trajectory

    index = build(world, strategy="most_frequent")
    traj = Trajectory(
        traj_id=max(index.trajectory_ids) + 1,
        nodes=(-1, 500, 7),
        cumulative_km=(0.0, 0.5, 1.0),
    )
    index.add_trajectories([traj, traj_copy(traj, 1)])
    index.remove_trajectories([traj.traj_id])
    assert index.num_trajectories == 51


def traj_copy(trajectory, offset):
    from repro.trajectory.model import Trajectory

    return Trajectory(
        traj_id=trajectory.traj_id + offset,
        nodes=trajectory.nodes,
        cumulative_km=trajectory.cumulative_km,
    )


def test_apply_updates_is_atomic_across_sub_batches(world):
    """A bad member in a *later* sub-batch must not apply earlier ones."""
    index = build(world)
    before = copy.deepcopy(index)
    victim = index.trajectory_ids[0]
    with pytest.raises(KeyError):
        index.apply_updates(
            UpdateBatch(remove_trajectories=[victim], remove_sites=[10_001])
        )
    assert index.version == 0
    assert_same_state(before, index)
    already_indexed = world[1][0]  # id collides with an indexed trajectory
    with pytest.raises(ValueError):
        index.apply_updates(
            UpdateBatch(
                remove_sites=[sorted(index.sites)[0]],
                add_trajectories=[already_indexed],
            )
        )
    assert_same_state(before, index)


def test_remove_then_readd_same_trajectory_in_one_batch(world):
    """apply_updates allows remove+re-add of one id, like the sequential order."""
    index = build(world)
    sequential = copy.deepcopy(index)
    victim_traj = next(
        t for t in world[1] if t.traj_id == index.trajectory_ids[0]
    )
    sequential.remove_trajectory(victim_traj.traj_id)
    sequential.add_trajectory(victim_traj)
    index.apply_updates(
        UpdateBatch(
            remove_trajectories=[victim_traj.traj_id],
            add_trajectories=[victim_traj],
        )
    )
    assert_same_state(sequential, index)


def test_stale_prepared_coverage_refused(world):
    """A ClusteredCoverage prepared before a mutation must not answer queries."""
    from repro.core.preference import BinaryPreference

    index = build(world)
    prepared = index.prepare_coverage(0.8, BinaryPreference(), engine="dense")
    query = TOPSQuery(k=3, tau_km=0.8)
    index.query(query, prepared=prepared)  # fresh: fine
    index.remove_site(sorted(index.sites)[0])
    with pytest.raises(ValueError, match="stale"):
        index.query(query, prepared=prepared)
    # a re-prepared coverage works again
    fresh = index.prepare_coverage(0.8, BinaryPreference(), engine="dense")
    index.query(query, prepared=fresh)
