"""Unit tests for the synthetic trajectory generators."""

from __future__ import annotations

import pytest

from repro.network.generators import grid_network, ring_radial_network
from repro.trajectory.generators import (
    CommuterModel,
    commuter_trajectories,
    length_class_trajectories,
    mntg_like_trajectories,
    perturbed_shortest_path,
    random_route_trajectories,
)
from repro.utils.rng import ensure_rng


@pytest.fixture(scope="module")
def network():
    return grid_network(8, 8, spacing_km=0.5)


def assert_valid_dataset(dataset, network):
    for trajectory in dataset:
        for prev, nxt in zip(trajectory.nodes, trajectory.nodes[1:]):
            assert network.has_edge(prev, nxt)


class TestPerturbedShortestPath:
    def test_endpoints(self, network):
        rng = ensure_rng(0)
        path = perturbed_shortest_path(network, 0, 63, rng)
        assert path[0] == 0 and path[-1] == 63

    def test_path_is_connected(self, network):
        rng = ensure_rng(0)
        path = perturbed_shortest_path(network, 0, 63, rng)
        for prev, nxt in zip(path, path[1:]):
            assert network.has_edge(prev, nxt)

    def test_zero_perturbation_is_shortest(self, network):
        from repro.network.shortest_path import dijkstra_single_source

        rng = ensure_rng(0)
        path = perturbed_shortest_path(network, 0, 63, rng, perturbation=0.0)
        assert network.path_length(path) == pytest.approx(
            dijkstra_single_source(network, 0)[63]
        )

    def test_perturbation_bounded_stretch(self, network):
        from repro.network.shortest_path import dijkstra_single_source

        rng = ensure_rng(3)
        shortest = dijkstra_single_source(network, 0)[63]
        path = perturbed_shortest_path(network, 0, 63, rng, perturbation=0.3)
        assert network.path_length(path) <= 1.3 * shortest + 1e-9

    def test_unreachable_returns_none(self):
        from repro.network.graph import RoadNetwork

        net = RoadNetwork()
        net.add_node()
        net.add_node()
        net.add_edge(0, 1, 1.0)
        assert perturbed_shortest_path(net, 1, 0, ensure_rng(0)) is None


class TestRandomRouteTrajectories:
    def test_count_and_validity(self, network):
        dataset = random_route_trajectories(network, 25, seed=1)
        assert len(dataset) == 25
        assert_valid_dataset(dataset, network)

    def test_min_length_respected(self, network):
        dataset = random_route_trajectories(network, 20, min_length_km=1.5, seed=1)
        assert all(t.length_km >= 1.5 for t in dataset)

    def test_deterministic(self, network):
        a = random_route_trajectories(network, 10, seed=7)
        b = random_route_trajectories(network, 10, seed=7)
        assert [t.nodes for t in a] == [t.nodes for t in b]

    def test_invalid_count(self, network):
        with pytest.raises(ValueError):
            random_route_trajectories(network, 0)


class TestCommuterModel:
    def test_generates_requested_count(self, network):
        dataset = commuter_trajectories(network, 30, seed=2)
        assert len(dataset) == 30
        assert_valid_dataset(dataset, network)

    def test_hotspot_concentration(self, network):
        """Commuter traffic should be more concentrated than uniform traffic."""
        commuter = commuter_trajectories(network, 60, num_hotspots=2, seed=3)
        uniform = mntg_like_trajectories(network, 60, seed=3)
        commuter_counts = commuter.node_visit_counts(network.num_nodes)
        uniform_counts = uniform.node_visit_counts(network.num_nodes)
        # coefficient of variation is higher for hotspot traffic
        cv_commuter = commuter_counts.std() / max(commuter_counts.mean(), 1e-9)
        cv_uniform = uniform_counts.std() / max(uniform_counts.mean(), 1e-9)
        assert cv_commuter > cv_uniform * 0.9

    def test_od_pair_sampling(self, network):
        model = CommuterModel(network, seed=5)
        origin, dest = model.sample_od_pair()
        assert origin != dest
        assert network.has_node(origin) and network.has_node(dest)

    def test_deterministic(self, network):
        a = commuter_trajectories(network, 15, seed=11)
        b = commuter_trajectories(network, 15, seed=11)
        assert [t.nodes for t in a] == [t.nodes for t in b]


class TestMntgLikeTrajectories:
    def test_count_and_validity(self, network):
        dataset = mntg_like_trajectories(network, 20, seed=4)
        assert len(dataset) == 20
        assert_valid_dataset(dataset, network)


class TestLengthClassTrajectories:
    def test_lengths_within_band(self):
        network = ring_radial_network(num_rings=4, nodes_per_ring=24, core_grid=5)
        dataset = length_class_trajectories(network, 10, boundaries_km=(2.0, 4.0), seed=1)
        assert len(dataset) > 0
        assert all(2.0 <= t.length_km < 4.0 for t in dataset)

    def test_invalid_band(self, network):
        with pytest.raises(ValueError):
            length_class_trajectories(network, 5, boundaries_km=(3.0, 1.0))

    def test_unreachable_band_returns_partial(self, network):
        # the 8x8 grid with 0.5 km spacing has a diameter of 7 km; asking for
        # 100 km long trajectories must not loop forever
        dataset = length_class_trajectories(
            network, 3, boundaries_km=(100.0, 120.0), seed=1, max_attempts_factor=10
        )
        assert len(dataset) == 0
