"""PlacementService: batch == sequential, shared-work counters, LRU cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import TOPSQuery
from repro.core.variants import solve_tops_capacity, solve_tops_cost
from repro.service import PlacementService, QuerySpec, save_index


@pytest.fixture()
def service(tiny_netclus):
    return PlacementService(tiny_netclus, engine="sparse")


MIXED_SPECS = [
    QuerySpec(k=3, tau_km=0.8),
    QuerySpec(k=6, tau_km=0.8),
    QuerySpec(k=9, tau_km=0.8),
    QuerySpec(k=4, tau_km=1.6),
    QuerySpec(k=4, tau_km=1.6, capacity=25),
    QuerySpec(k=4, tau_km=0.8, budget=3.0),
    QuerySpec(k=5, tau_km=1.6, preference="linear"),
    QuerySpec(k=5, tau_km=0.8, preference="exponential",
              preference_params=(("decay", 3.0),)),
]


def _assert_same_result(a, b):
    assert a.sites == b.sites
    assert a.utility == pytest.approx(b.utility)
    assert a.per_trajectory_utility == pytest.approx(b.per_trajectory_utility)


# ---------------------------------------------------------------------- #
# batch == sequential == fresh index
# ---------------------------------------------------------------------- #
def test_batch_matches_sequential(tiny_netclus, service):
    batch = service.batch_query(MIXED_SPECS, use_cache=False)
    for spec, batched in zip(MIXED_SPECS, batch):
        alone = PlacementService(tiny_netclus, engine="sparse").query(
            spec, use_cache=False
        )
        _assert_same_result(batched, alone)


def test_plain_specs_match_index_query(tiny_netclus, service):
    """Uncapacitated, unbudgeted specs reproduce NetClusIndex.query exactly."""
    for spec in MIXED_SPECS:
        if spec.capacity is not None or spec.budget is not None:
            continue
        direct = tiny_netclus.query(spec.to_query(), engine="sparse")
        served = service.query(spec, use_cache=False)
        _assert_same_result(served, direct)


def test_capacity_spec_matches_variant_driver(tiny_netclus, service):
    spec = QuerySpec(k=4, tau_km=1.6, capacity=25)
    prepared = tiny_netclus.prepare_coverage(
        spec.tau_km, spec.preference_fn(), engine="sparse"
    )
    caps = np.full(prepared.coverage.num_sites, spec.capacity)
    direct = solve_tops_capacity(prepared.coverage, spec.to_query(), caps)
    served = service.query(spec, use_cache=False)
    _assert_same_result(served, direct)


def test_budget_spec_matches_variant_driver(tiny_netclus, service):
    spec = QuerySpec(k=4, tau_km=0.8, budget=3.0)
    prepared = tiny_netclus.prepare_coverage(
        spec.tau_km, spec.preference_fn(), engine="sparse"
    )
    costs = np.full(prepared.coverage.num_sites, 1.0)
    direct = solve_tops_cost(prepared.coverage, spec.budget, costs)
    served = service.query(spec, use_cache=False)
    _assert_same_result(served, direct)
    assert served.algorithm == "tops-cost"


def test_tops_query_input_accepted(tiny_netclus, service):
    query = TOPSQuery(k=5, tau_km=0.8)
    direct = tiny_netclus.query(query, engine="sparse")
    served = service.query(query, use_cache=False)
    _assert_same_result(served, direct)


def test_dense_engine_parity(tiny_netclus):
    sparse = PlacementService(tiny_netclus, engine="sparse")
    dense = PlacementService(tiny_netclus, engine="dense")
    specs = [s for s in MIXED_SPECS if s.budget is None]
    for a, b in zip(
        sparse.batch_query(specs, use_cache=False),
        dense.batch_query(specs, use_cache=False),
    ):
        _assert_same_result(a, b)


# ---------------------------------------------------------------------- #
# shared-work amortisation (the acceptance-criterion counters)
# ---------------------------------------------------------------------- #
def test_same_tau_batch_resolves_and_builds_once(service):
    specs = [QuerySpec(k=k, tau_km=0.8) for k in (2, 5, 8)]
    results = service.batch_query(specs, use_cache=False)
    assert service.stats.instance_resolutions == 1
    assert service.stats.coverage_builds == 1
    assert service.stats.greedy_runs == 1
    # prefix property: smaller-k selections are prefixes of the largest
    assert results[0].sites == results[2].sites[:2]
    assert results[1].sites == results[2].sites[:5]


def test_mixed_tau_batch_counts_groups(service):
    specs = [
        QuerySpec(k=3, tau_km=0.8),
        QuerySpec(k=5, tau_km=0.8),
        QuerySpec(k=3, tau_km=1.6),
        QuerySpec(k=3, tau_km=0.8, preference="linear"),
    ]
    service.batch_query(specs, use_cache=False)
    assert service.stats.instance_resolutions == 2  # τ ∈ {0.8, 1.6}
    assert service.stats.coverage_builds == 3  # (0.8, binary), (1.6, binary), (0.8, linear)
    assert service.stats.greedy_runs == 3


def test_same_tau_different_capacity_needs_two_runs(service):
    specs = [QuerySpec(k=3, tau_km=0.8), QuerySpec(k=3, tau_km=0.8, capacity=10)]
    service.batch_query(specs, use_cache=False)
    assert service.stats.coverage_builds == 1
    assert service.stats.greedy_runs == 2


def test_roundtrip_batch_acceptance_property(tiny_problem, tiny_netclus, tmp_path):
    """save → load → batch_query equals a freshly built index on a mixed batch."""
    path = save_index(tiny_netclus, tmp_path / "city.ncx")
    loaded_service = PlacementService.from_path(path)
    fresh_service = PlacementService(
        tiny_problem.build_netclus_index(gamma=0.75, tau_min_km=0.4, tau_max_km=4.0)
    )
    for loaded, fresh in zip(
        loaded_service.batch_query(MIXED_SPECS),
        fresh_service.batch_query(MIXED_SPECS),
    ):
        _assert_same_result(loaded, fresh)
    same_tau = [QuerySpec(k=k, tau_km=1.2) for k in (2, 4, 6)]
    loaded_service.stats.reset()
    loaded_service.batch_query(same_tau)
    assert loaded_service.stats.instance_resolutions == 1
    assert loaded_service.stats.coverage_builds == 1


# ---------------------------------------------------------------------- #
# LRU cache behaviour
# ---------------------------------------------------------------------- #
def test_cache_hits_skip_all_work(service):
    spec = QuerySpec(k=4, tau_km=0.8)
    first = service.query(spec)
    runs = service.stats.greedy_runs
    builds = service.stats.coverage_builds
    second = service.query(spec)
    assert second is first  # the cached object itself
    assert service.stats.cache_hits == 1
    assert service.stats.greedy_runs == runs
    assert service.stats.coverage_builds == builds


def test_cache_respects_spec_identity(service):
    a = service.query(QuerySpec(k=4, tau_km=0.8))
    b = service.query(QuerySpec(k=4, tau_km=0.8, capacity=10))
    assert service.stats.cache_hits == 0
    assert a.sites is not None and b.sites is not None


def test_cache_bypass_does_not_populate(service):
    spec = QuerySpec(k=4, tau_km=0.8)
    service.query(spec, use_cache=False)
    assert service.cache_len == 0
    service.query(spec)
    assert service.stats.cache_hits == 0
    assert service.cache_len == 1


def test_cache_eviction_is_lru(tiny_netclus):
    service = PlacementService(tiny_netclus, cache_size=2)
    s1, s2, s3 = (QuerySpec(k=k, tau_km=0.8) for k in (2, 3, 4))
    service.query(s1)
    service.query(s2)
    service.query(s1)  # refresh s1 → s2 becomes LRU
    service.query(s3)  # evicts s2
    assert service.cache_len == 2
    hits = service.stats.cache_hits
    service.query(s1)
    assert service.stats.cache_hits == hits + 1
    service.query(s2)  # evicted → recomputed
    assert service.stats.cache_hits == hits + 1


def test_invalidate_cache(service):
    spec = QuerySpec(k=4, tau_km=0.8)
    service.query(spec)
    assert service.cache_len == 1
    service.invalidate_cache()
    assert service.cache_len == 0
    service.query(spec)
    assert service.stats.cache_hits == 0


# ---------------------------------------------------------------------- #
# construction paths / spec validation
# ---------------------------------------------------------------------- #
def test_lazy_builder_runs_once(tiny_problem):
    service = tiny_problem.placement_service(tau_min_km=0.4, tau_max_km=2.0,
                                             max_instances=2)
    assert service.stats.index_builds == 0
    service.query(QuerySpec(k=3, tau_km=0.8), use_cache=False)
    service.query(QuerySpec(k=3, tau_km=1.2), use_cache=False)
    assert service.stats.index_builds == 1


def test_spec_validation():
    with pytest.raises(ValueError):
        QuerySpec(k=0, tau_km=1.0)
    with pytest.raises(ValueError):
        QuerySpec(k=3, tau_km=1.0, preference="no-such-preference")
    with pytest.raises(ValueError):
        QuerySpec(k=3, tau_km=1.0, budget=2.0, capacity=5)
    with pytest.raises(ValueError):
        QuerySpec(k=3, tau_km=1.0, budget=2.0, existing_sites=(1,))


def test_spec_dict_roundtrip():
    spec = QuerySpec(k=5, tau_km=1.5, preference="exponential",
                     preference_params=(("decay", 3.0),), capacity=12,
                     existing_sites=(4, 9))
    assert QuerySpec.from_dict(spec.to_dict()) == spec
    with pytest.raises(ValueError, match="unknown QuerySpec fields"):
        QuerySpec.from_dict({"k": 3, "tau_km": 1.0, "typo_field": 1})


def test_spec_from_query_roundtrip():
    query = TOPSQuery(k=4, tau_km=2.0)
    spec = QuerySpec.from_query(query)
    rebuilt = spec.to_query()
    assert rebuilt.k == query.k
    assert rebuilt.tau_km == query.tau_km
    assert type(rebuilt.preference) is type(query.preference)


def test_custom_preference_query_falls_back_to_index(tiny_netclus, service):
    """A TOPSQuery with an unregistered ψ subclass still gets answered."""
    from repro.core.preference import PreferenceFunction

    class StepPreference(PreferenceFunction):
        def raw_score(self, detour_km, tau_km):
            return np.where(detour_km <= tau_km / 2.0, 1.0, 0.5)

    query = TOPSQuery(k=4, tau_km=1.2, preference=StepPreference())
    direct = tiny_netclus.query(query, engine="sparse")
    served = service.query(query, use_cache=False)
    _assert_same_result(served, direct)
    assert service.cache_len == 0  # unserialisable specs stay uncached


def test_subclass_of_registered_preference_not_coerced(tiny_netclus, service):
    """A subclass of a registered ψ must not be replaced by its base class."""
    from repro.core.preference import LinearPreference

    class SteeperLinear(LinearPreference):
        def raw_score(self, detour_km, tau_km):
            return super().raw_score(detour_km, tau_km) ** 3

    query = TOPSQuery(k=4, tau_km=1.6, preference=SteeperLinear())
    direct = tiny_netclus.query(query, engine="sparse")
    served = service.query(query)
    _assert_same_result(served, direct)
    plain = tiny_netclus.query(
        TOPSQuery(k=4, tau_km=1.6, preference=LinearPreference()), engine="sparse"
    )
    assert served.utility != pytest.approx(plain.utility)  # really used the subclass
    with pytest.raises(ValueError, match="not a registered preference"):
        QuerySpec.from_query(query)


def test_identical_budget_specs_share_one_run(service):
    specs = [QuerySpec(k=1, tau_km=0.8, budget=3.0),
             QuerySpec(k=9, tau_km=0.8, budget=3.0)]
    a, b = service.batch_query(specs, use_cache=False)
    assert service.stats.greedy_runs == 1  # k is ignored for budgeted specs
    _assert_same_result(a, b)


def test_existing_sites_spec(tiny_netclus, service):
    existing = (min(tiny_netclus.sites),)
    spec = QuerySpec(k=3, tau_km=0.8, existing_sites=existing)
    direct = tiny_netclus.query(
        spec.to_query(), existing_sites=existing, engine="sparse"
    )
    served = service.query(spec, use_cache=False)
    _assert_same_result(served, direct)


def test_cache_auto_invalidates_on_index_mutation(tiny_netclus):
    """Mutating the index through its own API (no invalidate_cache() call)
    must drop stale cached selections before the next query is served."""
    import copy

    index = copy.deepcopy(tiny_netclus)
    service = PlacementService(index, engine="sparse")
    spec = QuerySpec(k=4, tau_km=0.8)
    before = service.query(spec)
    assert service.cache_len == 1

    victim = before.sites[0]
    service.index.remove_site(victim)  # rely on version, not invalidate_cache
    after = service.query(spec)
    assert service.stats.cache_hits == 0  # the stale entry was not served
    assert victim not in after.sites
    assert after.sites == index.query(TOPSQuery(k=4, tau_km=0.8), engine="sparse").sites

    # the repopulated cache serves hits again until the next mutation
    assert service.query(spec) is after
    assert service.stats.cache_hits == 1
    service.index.add_site(victim)
    refreshed = service.query(spec)
    assert service.stats.cache_hits == 1
    assert refreshed.sites == before.sites


def test_batch_update_invalidates_cache_once(tiny_netclus):
    """apply_updates between queries drops the cache exactly like singular
    updates do (the version counter moves once per non-empty sub-batch)."""
    import copy

    from repro.core.netclus import UpdateBatch

    index = copy.deepcopy(tiny_netclus)
    service = PlacementService(index, engine="sparse")
    spec = QuerySpec(k=3, tau_km=1.0)
    first = service.query(spec)
    sites = sorted(index.sites)[:2]
    version = index.version
    service.index.apply_updates(
        UpdateBatch(remove_sites=sites)
    )
    assert index.version == version + 1
    second = service.query(spec)
    assert service.stats.cache_hits == 0
    assert all(site not in second.sites for site in sites)
    assert first.sites != second.sites or first is not second
