"""Property-based tests (hypothesis) for the core invariants.

These cover the mathematical properties the paper's guarantees rest on:
monotonicity and submodularity of the utility, the greedy approximation bound
against the exact optimum, the FM-sketch union/monotonicity laws, the detour
prefix-minimum equivalence, and the NetClus estimate/cover containment.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.coverage import CoverageIndex
from repro.core.greedy import IncGreedy
from repro.core.optimal import OptimalSolver
from repro.core.preference import BinaryPreference, ExponentialPreference, LinearPreference
from repro.core.query import TOPSQuery
from repro.sketch.fm import FMSketchFamily

# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #

SMALL_DETOURS = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 10), st.integers(2, 8)),
    elements=st.one_of(
        st.floats(min_value=0.0, max_value=3.0),
        st.just(np.inf),
    ),
)

PREFERENCES = st.sampled_from(
    [BinaryPreference(), LinearPreference(), ExponentialPreference()]
)


def make_coverage(detours, preference, tau=1.0):
    return CoverageIndex(np.asarray(detours), tau_km=tau, preference=preference)


# ---------------------------------------------------------------------- #
# utility function properties
# ---------------------------------------------------------------------- #


class TestUtilityProperties:
    @given(detours=SMALL_DETOURS, preference=PREFERENCES, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_monotonicity(self, detours, preference, data):
        """U(Q) ≤ U(R) whenever Q ⊆ R (Theorem 2, non-decreasing)."""
        coverage = make_coverage(detours, preference)
        n = coverage.num_sites
        subset_size = data.draw(st.integers(0, n - 1))
        subset = list(range(subset_size))
        superset = subset + [data.draw(st.integers(subset_size, n - 1))]
        assert coverage.utility_of(superset) >= coverage.utility_of(subset) - 1e-12

    @given(detours=SMALL_DETOURS, preference=PREFERENCES, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_submodularity(self, detours, preference, data):
        """U(Q∪{s}) − U(Q) ≥ U(R∪{s}) − U(R) for Q ⊆ R, s ∉ R (Theorem 2)."""
        coverage = make_coverage(detours, preference)
        n = coverage.num_sites
        if n < 3:
            return
        columns = list(range(n))
        data_rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
        data_rng.shuffle(columns)
        split_q = data.draw(st.integers(0, n - 2))
        split_r = data.draw(st.integers(split_q, n - 2))
        q_set = columns[:split_q]
        r_set = columns[:split_r]
        extra = columns[-1]
        gain_q = coverage.utility_of(q_set + [extra]) - coverage.utility_of(q_set)
        gain_r = coverage.utility_of(r_set + [extra]) - coverage.utility_of(r_set)
        assert gain_q >= gain_r - 1e-9

    @given(detours=SMALL_DETOURS, preference=PREFERENCES)
    @settings(max_examples=40, deadline=None)
    def test_utility_bounded_by_trajectory_count(self, detours, preference):
        coverage = make_coverage(detours, preference)
        full = coverage.utility_of(list(range(coverage.num_sites)))
        assert 0.0 <= full <= coverage.num_trajectories + 1e-9


class TestGreedyProperties:
    @given(detours=SMALL_DETOURS, k=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_greedy_bound_vs_optimal(self, detours, k):
        """Greedy achieves at least (1 − 1/e)·OPT (Lemma 1)."""
        coverage = make_coverage(detours, BinaryPreference())
        k = min(k, coverage.num_sites)
        greedy = IncGreedy(coverage).solve(TOPSQuery(k=k, tau_km=1.0))
        optimal = OptimalSolver(coverage).solve(TOPSQuery(k=k, tau_km=1.0))
        assert greedy.utility >= (1 - 1 / np.e) * optimal.utility - 1e-9

    @given(detours=SMALL_DETOURS, k=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_greedy_k_over_n_bound(self, detours, k):
        """Greedy achieves at least (k/n)·U(S) (Lemma 2/3)."""
        coverage = make_coverage(detours, LinearPreference())
        n = coverage.num_sites
        k = min(k, n)
        greedy = IncGreedy(coverage).solve(TOPSQuery(k=k, tau_km=1.0))
        full = coverage.utility_of(list(range(n)))
        assert greedy.utility >= (k / n) * full - 1e-9

    @given(detours=SMALL_DETOURS, preference=PREFERENCES, k=st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_incremental_matches_recompute(self, detours, preference, k):
        coverage = make_coverage(detours, preference)
        util_a = IncGreedy(coverage, "incremental").select(k)[1].sum()
        util_b = IncGreedy(coverage, "recompute").select(k)[1].sum()
        assert util_a == pytest.approx(util_b, abs=1e-9)

    @given(detours=SMALL_DETOURS, k=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_greedy_marginal_gains_non_increasing(self, detours, k):
        coverage = make_coverage(detours, LinearPreference())
        _, _, gains = IncGreedy(coverage).select(min(k, coverage.num_sites))
        assert all(b <= a + 1e-9 for a, b in zip(gains, gains[1:]))


class TestFMSketchProperties:
    @given(
        items=st.lists(st.integers(0, 10_000), min_size=0, max_size=200, unique=True),
        copies=st.integers(4, 32),
    )
    @settings(max_examples=50, deadline=None)
    def test_union_with_self_is_identity(self, items, copies):
        family = FMSketchFamily.from_items(items, num_copies=copies)
        assert family.union(family) == family

    @given(
        items_a=st.lists(st.integers(0, 10_000), max_size=100, unique=True),
        items_b=st.lists(st.integers(0, 10_000), max_size=100, unique=True),
        copies=st.integers(4, 32),
    )
    @settings(max_examples=50, deadline=None)
    def test_union_commutative(self, items_a, items_b, copies):
        a = FMSketchFamily.from_items(items_a, num_copies=copies)
        b = FMSketchFamily.from_items(items_b, num_copies=copies)
        assert a.union(b) == b.union(a)

    @given(
        items_a=st.lists(st.integers(0, 10_000), max_size=100, unique=True),
        items_b=st.lists(st.integers(0, 10_000), max_size=100, unique=True),
        copies=st.integers(4, 32),
    )
    @settings(max_examples=50, deadline=None)
    def test_union_estimate_monotone(self, items_a, items_b, copies):
        """The union's estimate is at least each part's estimate (bits only grow)."""
        a = FMSketchFamily.from_items(items_a, num_copies=copies)
        b = FMSketchFamily.from_items(items_b, num_copies=copies)
        union = a.union(b)
        assert union.estimate() >= a.estimate() - 1e-9
        assert union.estimate() >= b.estimate() - 1e-9

    @given(
        items=st.lists(st.integers(0, 10_000), max_size=150, unique=True),
        copies=st.integers(4, 32),
    )
    @settings(max_examples=50, deadline=None)
    def test_insertion_order_invariance(self, items, copies):
        forward = FMSketchFamily.from_items(items, num_copies=copies)
        backward = FMSketchFamily.from_items(list(reversed(items)), num_copies=copies)
        assert forward == backward


class TestDetourProperties:
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 1_000))
    def test_prefix_min_equals_bruteforce(self, seed):
        """The O(l) detour evaluation equals the O(l²) reference definition."""
        from repro.core.distances import DistanceOracle
        from repro.network.generators import random_planar_network
        from repro.trajectory.generators import random_route_trajectories

        network = random_planar_network(25, area_km=4.0, seed=seed % 17)
        oracle = DistanceOracle(network, network.node_ids()[:10])
        dataset = random_route_trajectories(network, 3, seed=seed)
        for trajectory in dataset:
            fast = oracle.detour_vector(trajectory)
            for site in oracle.sites[:5]:
                assert fast[oracle.site_index[int(site)]] == pytest.approx(
                    oracle.detour_bruteforce(trajectory, int(site)), abs=1e-9
                )

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 1_000))
    def test_netclus_estimate_never_undershoots(self, seed):
        """d̂r ≥ dr and therefore T̂C ⊆ TC, on random small instances."""
        from repro.core.netclus import NetClusIndex
        from repro.core.distances import DistanceOracle
        from repro.network.generators import random_planar_network
        from repro.trajectory.generators import random_route_trajectories

        network = random_planar_network(30, area_km=4.0, seed=seed % 13)
        dataset = random_route_trajectories(network, 5, seed=seed)
        sites = network.node_ids()
        index = NetClusIndex.build(
            network, dataset, sites, gamma=0.75, tau_min_km=0.4, tau_max_km=2.0
        )
        oracle = DistanceOracle(network, sites)
        tau = 0.9
        instance = index.instance_for(tau)
        rows = {tid: i for i, tid in enumerate(dataset.ids())}
        estimates, rep_sites, _ = instance.estimated_detours(rows, tau)
        exact = np.stack(
            [
                oracle.detour_vector(t)[[oracle.site_index[s] for s in rep_sites]]
                for t in dataset
            ]
        )
        finite = np.isfinite(estimates)
        assert np.all(estimates[finite] >= exact[finite] - 1e-6)
