"""Unit tests for the TOPSProblem facade and the query/result types."""

from __future__ import annotations

import pytest

from repro.core.preference import BinaryPreference
from repro.core.problem import TOPSProblem
from repro.core.query import TOPSQuery, TOPSResult
from repro.trajectory.model import TrajectoryDataset


class TestTOPSQuery:
    def test_defaults_to_binary_preference(self):
        query = TOPSQuery(k=3, tau_km=1.0)
        assert isinstance(query.preference, BinaryPreference)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TOPSQuery(k=0, tau_km=1.0)

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            TOPSQuery(k=1, tau_km=-1.0)


class TestTOPSResult:
    def test_utility_percent(self):
        result = TOPSResult(sites=(1, 2), utility=30.0)
        assert result.utility_percent(60) == pytest.approx(50.0)

    def test_covered_count(self):
        result = TOPSResult(sites=(1,), utility=2.0, per_trajectory_utility=(1.0, 0.0, 1.0))
        assert result.covered_count() == 2

    def test_num_sites(self):
        assert TOPSResult(sites=(1, 2, 3), utility=0.0).num_sites == 3


class TestTOPSProblem:
    def test_defaults_sites_to_all_nodes(self, medium_grid, grid_trajectories):
        problem = TOPSProblem(medium_grid, grid_trajectories)
        assert problem.num_sites == medium_grid.num_nodes

    def test_empty_dataset_rejected(self, medium_grid):
        with pytest.raises(ValueError):
            TOPSProblem(medium_grid, TrajectoryDataset())

    def test_oracle_cached(self, grid_problem):
        assert grid_problem.oracle is grid_problem.oracle

    def test_detour_matrix_cached_and_shaped(self, grid_problem):
        matrix = grid_problem.detour_matrix()
        assert matrix.shape == (grid_problem.num_trajectories, grid_problem.num_sites)
        assert grid_problem.detour_matrix() is matrix

    def test_solve_methods_agree_on_shape(self, grid_problem, binary_query):
        for method in ("inc-greedy", "fm-greedy"):
            result = grid_problem.solve(binary_query, method=method)
            assert len(result.sites) == binary_query.k

    def test_unknown_method_rejected(self, grid_problem, binary_query):
        with pytest.raises(ValueError):
            grid_problem.solve(binary_query, method="magic")

    def test_solve_includes_preprocess_time(self, grid_problem, binary_query):
        result = grid_problem.solve(binary_query)
        assert "preprocess_seconds" in result.metadata
        assert result.elapsed_seconds >= result.metadata["preprocess_seconds"]

    def test_evaluate_matches_solve_utility(self, grid_problem, binary_query):
        result = grid_problem.solve(binary_query)
        exact, per_traj = grid_problem.evaluate(result.sites, binary_query)
        assert exact == pytest.approx(result.utility)
        assert len(per_traj) == grid_problem.num_trajectories

    def test_utility_percent_bounds(self, grid_problem, binary_query):
        result = grid_problem.solve(binary_query)
        pct = grid_problem.utility_percent(result.sites, binary_query)
        assert 0.0 <= pct <= 100.0

    def test_restricting_sites_reduces_or_keeps_utility(
        self, medium_grid, grid_trajectories, binary_query
    ):
        full = TOPSProblem(medium_grid, grid_trajectories)
        restricted = TOPSProblem(
            medium_grid, grid_trajectories, sites=medium_grid.node_ids()[:20]
        )
        assert (
            restricted.solve(binary_query).utility
            <= full.solve(binary_query).utility + 1e-9
        )

    def test_build_netclus_index(self, grid_problem):
        index = grid_problem.build_netclus_index(
            tau_min_km=0.4, tau_max_km=2.0, max_instances=3
        )
        assert index.num_instances <= 3
        result = index.query(TOPSQuery(k=3, tau_km=0.8))
        assert len(result.sites) == 3
