"""Unit tests for the Jaccard-similarity clustering baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coverage import CoverageIndex
from repro.core.jaccard import jaccard_clustering, jaccard_similarity
from repro.core.preference import BinaryPreference


class TestJaccardSimilarity:
    def test_identical_sets(self):
        cover = np.asarray([True, False, True])
        assert jaccard_similarity(cover, cover) == 1.0

    def test_disjoint_sets(self):
        a = np.asarray([True, False, False])
        b = np.asarray([False, True, False])
        assert jaccard_similarity(a, b) == 0.0

    def test_partial_overlap(self):
        a = np.asarray([True, True, False])
        b = np.asarray([True, False, True])
        assert jaccard_similarity(a, b) == pytest.approx(1 / 3)

    def test_empty_sets_similar(self):
        empty = np.asarray([False, False])
        assert jaccard_similarity(empty, empty) == 1.0


class TestJaccardClustering:
    @pytest.fixture
    def coverage(self):
        detours = np.asarray(
            [
                [0.1, 0.2, np.inf, np.inf],
                [0.3, 0.1, np.inf, np.inf],
                [np.inf, np.inf, 0.2, 0.3],
                [np.inf, np.inf, 0.1, 0.2],
            ]
        )
        return CoverageIndex(detours, tau_km=1.0, preference=BinaryPreference())

    def test_alpha_zero_groups_identical_covers(self, coverage):
        result = jaccard_clustering(coverage, alpha=0.0)
        assert result.num_clusters == 2
        groups = [sorted(c.member_columns) for c in result.clusters]
        assert sorted(groups) == [[0, 1], [2, 3]]

    def test_alpha_one_single_cluster(self, coverage):
        result = jaccard_clustering(coverage, alpha=1.0)
        assert result.num_clusters == 1

    def test_every_site_clustered_exactly_once(self, coverage):
        result = jaccard_clustering(coverage, alpha=0.5)
        members = [col for cluster in result.clusters for col in cluster.member_columns]
        assert sorted(members) == [0, 1, 2, 3]

    def test_center_is_member(self, coverage):
        result = jaccard_clustering(coverage, alpha=0.5)
        for cluster in result.clusters:
            assert cluster.center_column in cluster.member_columns

    def test_invalid_alpha(self, coverage):
        with pytest.raises(ValueError):
            jaccard_clustering(coverage, alpha=1.5)

    def test_time_and_storage_recorded(self, coverage):
        result = jaccard_clustering(coverage, alpha=0.8)
        assert result.build_seconds >= 0.0
        assert result.storage_bytes > 0

    def test_on_real_coverage(self, grid_coverage):
        result = jaccard_clustering(grid_coverage, alpha=0.8)
        assert 1 <= result.num_clusters <= grid_coverage.num_sites
