"""Save/load round-trip: a loaded index is indistinguishable from a fresh one."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.query import TOPSQuery
from repro.core.preference import ConvexProbabilityPreference, LinearPreference
from repro.network.generators import grid_network
from repro.service import (
    IndexFormatError,
    graph_fingerprint,
    load_index,
    load_manifest,
    save_index,
)
from repro.service.serialization import trajectory_fingerprint
from repro.trajectory.generators import commuter_trajectories
from repro.trajectory.model import Trajectory


@pytest.fixture(scope="module")
def saved_index(tiny_problem, tmp_path_factory):
    """A NetClus index over the tiny bundle, persisted to disk."""
    index = tiny_problem.build_netclus_index(
        gamma=0.75, tau_min_km=0.4, tau_max_km=4.0
    )
    path = tmp_path_factory.mktemp("index") / "city.ncx"
    save_index(index, path)
    return index, path


MIXED_QUERIES = [
    TOPSQuery(k=3, tau_km=0.5),
    TOPSQuery(k=5, tau_km=1.0),
    TOPSQuery(k=8, tau_km=2.0, preference=LinearPreference()),
    TOPSQuery(k=4, tau_km=3.0, preference=ConvexProbabilityPreference()),
]


# ---------------------------------------------------------------------- #
# round-trip equivalence
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("engine", ["dense", "sparse"])
def test_roundtrip_query_parity(saved_index, engine):
    index, path = saved_index
    loaded = load_index(path)
    for query in MIXED_QUERIES:
        fresh = index.query(query, engine=engine)
        reloaded = loaded.query(query, engine=engine)
        assert reloaded.sites == fresh.sites
        assert reloaded.utility == pytest.approx(fresh.utility)
        assert reloaded.per_trajectory_utility == pytest.approx(
            fresh.per_trajectory_utility
        )
        assert reloaded.metadata["instance_id"] == fresh.metadata["instance_id"]


def test_roundtrip_preserves_structure(saved_index):
    index, path = saved_index
    loaded = load_index(path)
    assert loaded.num_instances == index.num_instances
    assert loaded.num_trajectories == index.num_trajectories
    assert loaded.sites == index.sites
    assert loaded.trajectory_ids == index.trajectory_ids
    assert loaded.storage_bytes() == index.storage_bytes()
    for fresh, reloaded in zip(index.instances, loaded.instances):
        assert reloaded.num_clusters == fresh.num_clusters
        assert reloaded.radius_km == pytest.approx(fresh.radius_km)
        assert reloaded.node_to_cluster == fresh.node_to_cluster
        for a, b in zip(fresh.clusters, reloaded.clusters):
            assert b.center == a.center
            assert b.representative == a.representative
            assert b.nodes == pytest.approx(a.nodes)
            assert b.trajectory_list == pytest.approx(a.trajectory_list)
            assert b.neighbors == a.neighbors


def test_roundtrip_network_reconstruction(saved_index):
    index, path = saved_index
    loaded = load_index(path)
    assert graph_fingerprint(loaded.network) == graph_fingerprint(index.network)
    assert loaded.network.num_nodes == index.network.num_nodes
    assert loaded.network.num_edges == index.network.num_edges


def test_roundtrip_dynamic_update_parity(tiny_problem, tmp_path):
    """add/remove site + add/remove trajectory behave identically after reload."""
    index = tiny_problem.build_netclus_index(
        gamma=0.75, tau_min_km=0.4, tau_max_km=2.0, max_instances=3
    )
    path = save_index(index, tmp_path / "upd.ncx")
    loaded = load_index(path)
    query = TOPSQuery(k=4, tau_km=1.0)

    site = min(index.sites)
    for target in (index, loaded):
        target.remove_site(site)
        target.add_site(site)
    assert loaded.query(query).sites == index.query(query).sites

    new_traj = Trajectory.from_nodes(
        max(index.trajectory_ids) + 1,
        list(tiny_problem.trajectories[0].nodes),
        tiny_problem.network,
    )
    for target in (index, loaded):
        target.add_trajectory(new_traj)
    assert loaded.query(query).sites == index.query(query).sites
    assert loaded.trajectory_ids == index.trajectory_ids

    for target in (index, loaded):
        target.remove_trajectory(new_traj.traj_id)
    assert loaded.query(query).sites == index.query(query).sites


# ---------------------------------------------------------------------- #
# manifest + refusal paths
# ---------------------------------------------------------------------- #
def test_manifest_contents(saved_index):
    index, path = saved_index
    manifest = load_manifest(path)
    assert manifest["format"] == "netclus-index"
    assert manifest["format_version"] == 4
    assert manifest["payload_arrays"]  # v4 offset table
    assert manifest["payload_total_bytes"] == (path / "payload.bin").stat().st_size
    assert manifest["index_version"] == index.version
    assert manifest["build_params"]["gamma"] == pytest.approx(0.75)
    assert manifest["num_instances"] == index.num_instances
    assert len(manifest["instances"]) == index.num_instances
    prints = manifest["fingerprints"]
    assert prints["graph"] == graph_fingerprint(index.network)
    assert prints["trajectories"] == trajectory_fingerprint(index.trajectory_ids)


def test_load_accepts_matching_network_and_dataset(saved_index, tiny_problem):
    _, path = saved_index
    loaded = load_index(
        path, network=tiny_problem.network, dataset=tiny_problem.trajectories
    )
    assert loaded.network is tiny_problem.network


def test_load_refuses_wrong_network(saved_index):
    _, path = saved_index
    other = grid_network(4, 4, spacing_km=0.5)
    with pytest.raises(IndexFormatError, match="graph fingerprint"):
        load_index(path, network=other)


def test_load_refuses_wrong_dataset(saved_index, tiny_problem):
    _, path = saved_index
    other = commuter_trajectories(tiny_problem.network, 10, seed=99)
    with pytest.raises(IndexFormatError, match="trajectory fingerprint"):
        load_index(path, dataset=other)


def test_load_refuses_same_ids_different_content(tiny_problem, tmp_path):
    """Two datasets sharing an id numbering are told apart by content."""
    index = tiny_problem.build_netclus_index(
        gamma=0.75, tau_min_km=0.4, tau_max_km=2.0, max_instances=2
    )
    path = save_index(index, tmp_path / "content.ncx", dataset=tiny_problem.trajectories)
    manifest = load_manifest(path)
    assert "trajectory_content" in manifest["fingerprints"]
    # same network, same id numbering 0..m-1, different seed → different routes
    impostor = commuter_trajectories(
        tiny_problem.network, len(tiny_problem.trajectories), seed=12345
    )
    assert impostor.ids() == tiny_problem.trajectories.ids()
    with pytest.raises(IndexFormatError, match="trajectory content"):
        load_index(path, dataset=impostor)
    # the genuine dataset still loads
    load_index(path, dataset=tiny_problem.trajectories)


def test_save_refuses_foreign_dataset(saved_index, tiny_problem, tmp_path):
    index, _ = saved_index
    other = commuter_trajectories(tiny_problem.network, 10, seed=99)
    with pytest.raises(IndexFormatError, match="dataset/index mismatch"):
        save_index(index, tmp_path / "bad.ncx", dataset=other)


def test_load_refuses_corrupted_payload(saved_index, tmp_path):
    """v3's whole-file hash catches an appended byte; v4's size check does."""
    index, _ = saved_index
    path = save_index(index, tmp_path / "corrupt3.ncx", format_version=3)
    payload = path / "payload.npz"
    payload.write_bytes(payload.read_bytes() + b"tampered")
    with pytest.raises(IndexFormatError, match="payload fingerprint"):
        load_index(path)
    path = save_index(index, tmp_path / "corrupt4.ncx")
    blob = path / "payload.bin"
    blob.write_bytes(blob.read_bytes() + b"tampered")
    with pytest.raises(IndexFormatError, match="size mismatch"):
        load_index(path)


def test_load_refuses_unknown_version(saved_index, tmp_path):
    index, _ = saved_index
    path = save_index(index, tmp_path / "ver.ncx")
    manifest_path = path / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["format_version"] = 999
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(IndexFormatError, match="version"):
        load_index(path)


def test_load_refuses_foreign_format(tmp_path):
    (tmp_path / "manifest.json").write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(IndexFormatError, match="not a netclus-index"):
        load_manifest(tmp_path)


def test_load_refuses_missing_manifest(tmp_path):
    with pytest.raises(IndexFormatError, match="manifest"):
        load_index(tmp_path)


def test_fingerprints_are_deterministic(tiny_problem):
    net = tiny_problem.network
    assert graph_fingerprint(net) == graph_fingerprint(net.copy())
    ids = tiny_problem.trajectories.ids()
    assert trajectory_fingerprint(ids) == trajectory_fingerprint(np.asarray(ids))
    assert trajectory_fingerprint(ids) != trajectory_fingerprint(ids[::-1])


# ---------------------------------------------------------------------- #
# format v2: index version + visit-count bookkeeping (PR 3)
# ---------------------------------------------------------------------- #
def test_index_version_round_trips(tiny_problem, tmp_path):
    index = tiny_problem.build_netclus_index(
        gamma=0.75, tau_min_km=0.4, tau_max_km=2.0, max_instances=2
    )
    site = min(index.sites)
    index.remove_site(site)
    index.add_site(site)
    assert index.version == 2
    path = save_index(index, tmp_path / "ver2.ncx")
    loaded = load_index(path)
    assert loaded.version == 2
    assert load_manifest(path)["index_version"] == 2


def test_v1_directory_still_loads(saved_index, tmp_path):
    """A format-v1 manifest (no index_version) loads with version 0."""
    index, _ = saved_index
    path = save_index(index, tmp_path / "v1.ncx", format_version=3)
    manifest_path = path / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["format_version"] = 1
    del manifest["index_version"]
    manifest_path.write_text(json.dumps(manifest))
    loaded = load_index(path)
    assert loaded.version == 0
    query = TOPSQuery(k=4, tau_km=1.0)
    assert loaded.query(query).sites == index.query(query).sites


# ---------------------------------------------------------------------- #
# formats v3/v4: persisted coverage parts (PR 7/PR 10) — cross-format
# load matrix: every part test below runs against both the compressed
# .npz layout and the packed mmap blob
# ---------------------------------------------------------------------- #
WARM_QUERIES = [
    TOPSQuery(k=4, tau_km=1.0),
    TOPSQuery(k=3, tau_km=2.0, preference=LinearPreference()),
]


@pytest.fixture(params=[3, 4], ids=["v3", "v4"])
def warm_saved_index(request, tiny_problem, tmp_path):
    """An index with a warm coverage cache, persisted with its parts."""
    index = tiny_problem.build_netclus_index(
        gamma=0.75, tau_min_km=0.4, tau_max_km=4.0
    )
    index.enable_coverage_cache()
    for query in WARM_QUERIES:
        index.query(query, engine="sparse")
    path = save_index(index, tmp_path / "warm.ncx", format_version=request.param)
    return index, path


def _set_manifest(path, mutate):
    manifest_path = path / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    mutate(manifest)
    manifest_path.write_text(json.dumps(manifest))


def test_v2_directory_still_loads(saved_index, tmp_path):
    """A format-v2 manifest (no coverage_parts vocabulary) loads unchanged."""
    index, _ = saved_index
    path = save_index(index, tmp_path / "v2.ncx", format_version=3)
    _set_manifest(path, lambda m: m.update(format_version=2))
    loaded = load_index(path)
    assert loaded.version == index.version
    assert loaded.coverage_cache is None
    query = TOPSQuery(k=4, tau_km=1.0)
    assert loaded.query(query).sites == index.query(query).sites


def test_without_parts_loads_cold(saved_index, tmp_path):
    """v3/v4 are supersets: an index saved without a cache has no parts and
    loads exactly as before."""
    index, path = saved_index
    assert "coverage_parts" not in load_manifest(path)
    assert load_index(path).coverage_cache is None
    v3_path = save_index(index, tmp_path / "cold3.ncx", format_version=3)
    assert "coverage_parts" not in load_manifest(v3_path)
    assert load_index(v3_path).coverage_cache is None


def test_v3_parts_round_trip(warm_saved_index):
    index, path = warm_saved_index
    manifest = load_manifest(path)
    assert len(manifest["coverage_parts"]) == len(WARM_QUERIES)
    loaded = load_index(path)
    assert loaded.coverage_cache is not None
    assert len(loaded.coverage_cache.describe_parts()) == len(WARM_QUERIES)
    # warm answers match the original, and no store/patch was needed
    for query in WARM_QUERIES:
        a = index.query(query, engine="sparse")
        b = loaded.query(query, engine="sparse")
        assert list(a.sites) == list(b.sites)
        assert (
            np.asarray(a.per_trajectory_utility).tobytes()
            == np.asarray(b.per_trajectory_utility).tobytes()
        )
    stats = loaded.coverage_cache.stats()
    assert stats["hits"] == len(WARM_QUERIES)
    assert stats["stores"] == 0


def test_v3_with_coverage_false_skips_parts(warm_saved_index):
    _, path = warm_saved_index
    loaded = load_index(path, with_coverage=False)
    assert loaded.coverage_cache is None


def test_v3_stale_part_refused_not_crash(warm_saved_index):
    """A part recorded at a different index_version is skipped — the load
    succeeds and the key falls back to a cold rebuild with correct answers."""
    index, path = warm_saved_index

    def bump(manifest):
        manifest["coverage_parts"][0]["index_version"] = 999

    _set_manifest(path, bump)
    loaded = load_index(path)
    assert len(loaded.coverage_cache.describe_parts()) == len(WARM_QUERIES) - 1
    for query in WARM_QUERIES:  # including the refused key
        a = index.query(query, engine="sparse")
        b = loaded.query(query, engine="sparse")
        assert list(a.sites) == list(b.sites)
        assert (
            np.asarray(a.per_trajectory_utility).tobytes()
            == np.asarray(b.per_trajectory_utility).tobytes()
        )


def test_v3_all_parts_stale_loads_without_cacheless_crash(warm_saved_index):
    index, path = warm_saved_index

    def bump_all(manifest):
        for entry in manifest["coverage_parts"]:
            entry["index_version"] = 999

    _set_manifest(path, bump_all)
    loaded = load_index(path)
    cache = loaded.coverage_cache
    assert cache is None or not cache.describe_parts()
    query = WARM_QUERIES[0]
    assert loaded.query(query, engine="sparse").sites == index.query(
        query, engine="sparse"
    ).sites


def test_v3_truncated_part_raises(warm_saved_index):
    """A manifest declaring more entries than the payload holds is corrupt."""
    _, path = warm_saved_index

    def truncate(manifest):
        entry = manifest["coverage_parts"][0]
        entry["num_entries"] = int(entry["num_entries"]) + 5

    _set_manifest(path, truncate)
    with pytest.raises(IndexFormatError, match="entry arrays are inconsistent"):
        load_index(path)


def test_v3_missing_part_arrays_raise(warm_saved_index):
    """A part slot with no payload arrays behind it is corrupt."""
    _, path = warm_saved_index

    def reslot(manifest):
        manifest["coverage_parts"][0]["slot"] = 7

    _set_manifest(path, reslot)
    with pytest.raises(IndexFormatError, match="payload arrays missing"):
        load_index(path)


def test_v3_unknown_preference_part_raises(warm_saved_index):
    _, path = warm_saved_index

    def rename(manifest):
        manifest["coverage_parts"][0]["preference"] = "no-such-psi"

    _set_manifest(path, rename)
    with pytest.raises(IndexFormatError, match="unknown preference"):
        load_index(path)


def test_v3_registry_size_mismatch_raises(warm_saved_index):
    _, path = warm_saved_index

    def shrink(manifest):
        entry = manifest["coverage_parts"][0]
        entry["num_trajectories"] = int(entry["num_trajectories"]) - 1

    _set_manifest(path, shrink)
    with pytest.raises(IndexFormatError, match="registry size mismatch"):
        load_index(path)


def test_tampered_payload_still_refused(warm_saved_index):
    """Appending bytes to the payload is refused in either format."""
    _, path = warm_saved_index
    payload = path / "payload.npz"
    if payload.is_file():
        payload.write_bytes(payload.read_bytes() + b"x")
        expected = "payload fingerprint"
    else:
        payload = path / "payload.bin"
        payload.write_bytes(payload.read_bytes() + b"x")
        expected = "size mismatch"
    with pytest.raises(IndexFormatError, match=expected):
        load_index(path)


# ---------------------------------------------------------------------- #
# format v4: packed mmap blob + offset table + copy-on-write (PR 10)
# ---------------------------------------------------------------------- #
def _tamper_offset_table(path, mutate):
    def inner(manifest):
        mutate(manifest["payload_arrays"])

    _set_manifest(path, inner)


def test_v4_truncated_blob_raises(saved_index, tmp_path):
    index, _ = saved_index
    path = save_index(index, tmp_path / "trunc.ncx")
    blob = path / "payload.bin"
    blob.write_bytes(blob.read_bytes()[:-16])
    with pytest.raises(IndexFormatError, match="size mismatch"):
        load_index(path)


def test_v4_offset_table_mismatch_raises(saved_index, tmp_path):
    index, _ = saved_index
    path = save_index(index, tmp_path / "table.ncx")

    def stretch(table):
        entry = next(iter(table.values()))
        entry["nbytes"] = int(entry["nbytes"]) + 8

    _tamper_offset_table(path, stretch)
    with pytest.raises(IndexFormatError, match="offset-table mismatch"):
        load_index(path)


def test_v4_offset_out_of_bounds_raises(saved_index, tmp_path):
    index, _ = saved_index
    path = save_index(index, tmp_path / "bounds.ncx")
    total = load_manifest(path)["payload_total_bytes"]

    def shift(table):
        entry = max(table.values(), key=lambda e: int(e["offset"]))
        entry["offset"] = int(total)  # pushes offset+nbytes past the blob

    _tamper_offset_table(path, shift)
    with pytest.raises(IndexFormatError, match="out of bounds"):
        load_index(path)


def test_v4_missing_offset_table_raises(saved_index, tmp_path):
    index, _ = saved_index
    path = save_index(index, tmp_path / "notable.ncx")
    _set_manifest(path, lambda m: m.pop("payload_arrays"))
    with pytest.raises(IndexFormatError, match="offset table"):
        load_index(path)


def test_v4_missing_blob_raises(saved_index, tmp_path):
    index, _ = saved_index
    path = save_index(index, tmp_path / "noblob.ncx")
    (path / "payload.bin").unlink()
    with pytest.raises(IndexFormatError, match="payload.bin"):
        load_index(path)


def test_save_refuses_unwritable_format_version(saved_index, tmp_path):
    index, _ = saved_index
    with pytest.raises(IndexFormatError, match="cannot write format version"):
        save_index(index, tmp_path / "v2w.ncx", format_version=2)


def test_v4_loaded_views_are_read_only(warm_saved_index):
    _, path = warm_saved_index
    if not (path / "payload.bin").is_file():
        pytest.skip("v3 layout")
    loaded = load_index(path)
    for instance in loaded.instances:
        assert instance is not None  # materialises through the lazy ladder
    for part in loaded.coverage_cache.parts.values():
        assert not part.rows.flags.writeable
        assert not part.cols.flags.writeable
        assert not part.estimates.flags.writeable
        with pytest.raises(ValueError):
            part.rows[0] = 0


def test_v4_instances_rebuild_lazily(saved_index):
    _, path = saved_index
    loaded = load_index(path)
    ladder = loaded.instances
    assert ladder.materialised_count() == 0
    loaded.query(TOPSQuery(k=3, tau_km=0.5))
    assert 0 < ladder.materialised_count() < len(ladder)
    # full iteration still materialises everything, with identity stability
    first = ladder[0]
    assert ladder[0] is first
    assert len(list(ladder)) == len(ladder)
    assert ladder.materialised_count() == len(ladder)


def test_v4_apply_updates_never_writes_through(tmp_path):
    """The read-only contract: a mutate-and-query session on a v4-loaded
    index succeeds (copy-on-write) and leaves the file bytes untouched."""
    from repro.core.netclus import NetClusIndex, UpdateBatch

    network = grid_network(6, 6, spacing_km=0.5)
    dataset = commuter_trajectories(network, 40, seed=7)
    index = NetClusIndex.build(
        network,
        dataset,
        network.node_ids()[::3],
        gamma=0.75,
        tau_min_km=0.4,
        tau_max_km=2.0,
        representative_strategy="most_frequent",
    )
    index.enable_coverage_cache()
    query = TOPSQuery(k=4, tau_km=1.0)
    index.query(query, engine="sparse")
    path = save_index(index, tmp_path / "cow.ncx")
    blob_before = (path / "payload.bin").read_bytes()
    manifest_before = (path / "manifest.json").read_bytes()

    loaded = load_index(path)
    batch = UpdateBatch(
        remove_sites=sorted(loaded.sites)[:2],
        remove_trajectories=list(loaded.trajectory_ids)[:5],
    )
    loaded.apply_updates(batch)
    index.apply_updates(batch)
    a = index.query(query, engine="sparse")
    b = loaded.query(query, engine="sparse")
    assert list(a.sites) == list(b.sites)
    assert (
        np.asarray(a.per_trajectory_utility).tobytes()
        == np.asarray(b.per_trajectory_utility).tobytes()
    )
    assert (path / "payload.bin").read_bytes() == blob_before
    assert (path / "manifest.json").read_bytes() == manifest_before


def test_v4_loaded_index_resaves_identically(warm_saved_index, tmp_path):
    """save(load(dir)) reproduces the payload — the farm's write-through
    eviction path depends on a loaded index serialising like the original."""
    from repro.service.serialization import payload_digest

    index, path = warm_saved_index
    loaded = load_index(path)
    resaved = save_index(loaded, tmp_path / "resave.ncx")
    assert payload_digest(loaded) == payload_digest(index)
    reloaded = load_index(resaved)
    for query in WARM_QUERIES:
        assert reloaded.query(query, engine="sparse").sites == index.query(
            query, engine="sparse"
        ).sites


def test_most_frequent_visit_data_round_trips(tmp_path):
    """Dynamic re-election on a loaded most_frequent index matches the
    original's — the visit-count bookkeeping survives the round-trip."""
    network = grid_network(6, 6, spacing_km=0.5)
    dataset = commuter_trajectories(network, 40, seed=7)
    from repro.core.netclus import NetClusIndex

    index = NetClusIndex.build(
        network,
        dataset,
        network.node_ids()[::3],
        gamma=0.75,
        tau_min_km=0.4,
        tau_max_km=2.0,
        representative_strategy="most_frequent",
    )
    loaded = load_index(save_index(index, tmp_path / "mf.ncx"))
    for mutant in (index, loaded):
        mutant.add_sites(network.node_ids())
        mutant.remove_trajectories(list(dataset.ids())[:10])
    for instance_a, instance_b in zip(index.instances, loaded.instances):
        for cluster_a, cluster_b in zip(instance_a.clusters, instance_b.clusters):
            assert cluster_a.representative == cluster_b.representative
