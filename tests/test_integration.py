"""End-to-end integration tests: the full pipeline of Fig. 2.

Raw GPS traces → map-matching → trajectory dataset → offline NetClus index →
online TOPS queries → dynamic updates, plus cross-algorithm consistency on a
shared dataset.
"""

from __future__ import annotations

import pytest

from repro.core.netclus import NetClusIndex
from repro.core.problem import TOPSProblem
from repro.core.query import TOPSQuery
from repro.core.preference import LinearPreference
from repro.network.generators import grid_network
from repro.network.shortest_path import shortest_path_nodes
from repro.trajectory.gps import simulate_gps_trace
from repro.trajectory.mapmatch import map_match_dataset
from repro.utils.rng import ensure_rng


class TestGpsToQueryPipeline:
    """The paper's offline flow starting from raw (simulated) GPS traces."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        network = grid_network(8, 8, spacing_km=0.5)
        rng = ensure_rng(99)
        node_ids = network.node_ids()
        traces = []
        for trace_id in range(25):
            source, target = rng.choice(node_ids, size=2, replace=False)
            try:
                path = shortest_path_nodes(network, int(source), int(target))
            except ValueError:
                continue
            if len(path) < 3:
                continue
            traces.append(
                simulate_gps_trace(
                    network, path, trace_id=trace_id, noise_std_km=0.04, seed=trace_id
                )
            )
        dataset = map_match_dataset(network, traces)
        problem = TOPSProblem(network, dataset)
        return network, dataset, problem

    def test_map_matching_produced_trajectories(self, pipeline):
        _, dataset, _ = pipeline
        assert len(dataset) >= 20

    def test_inc_greedy_answers_query(self, pipeline):
        _, dataset, problem = pipeline
        result = problem.solve(TOPSQuery(k=4, tau_km=0.8))
        assert len(result.sites) == 4
        assert 0 < result.utility <= len(dataset)

    def test_netclus_matches_greedy_closely(self, pipeline):
        _, _, problem = pipeline
        query = TOPSQuery(k=4, tau_km=0.8)
        incg = problem.solve(query)
        index = problem.build_netclus_index(tau_min_km=0.4, tau_max_km=3.0)
        netclus = index.query(query)
        incg_exact = problem.utility_percent(incg.sites, query)
        netclus_exact = problem.utility_percent(netclus.sites, query)
        assert netclus_exact >= 0.7 * incg_exact


class TestCrossAlgorithmConsistency:
    def test_all_solvers_respect_problem_structure(self, tiny_problem, tiny_netclus):
        query = TOPSQuery(k=5, tau_km=0.8)
        results = {
            "incg": tiny_problem.solve(query),
            "fmg": tiny_problem.solve(query, method="fm-greedy"),
            "netclus": tiny_netclus.query(query),
            "fmnetclus": tiny_netclus.query(query, use_fm_sketches=True),
        }
        sites = set(tiny_problem.sites)
        for name, result in results.items():
            assert len(result.sites) == 5, name
            assert set(result.sites) <= sites, name

    def test_exact_scores_ordering(self, tiny_problem, tiny_netclus):
        """Inc-Greedy (exact marginals) should not be materially beaten by the
        approximations; all must be within the trajectory count."""
        query = TOPSQuery(k=5, tau_km=0.8)
        incg = tiny_problem.utility_percent(tiny_problem.solve(query).sites, query)
        netclus = tiny_problem.utility_percent(tiny_netclus.query(query).sites, query)
        assert incg <= 100.0
        assert netclus <= incg + 5.0

    def test_linear_preference_end_to_end(self, tiny_problem, tiny_netclus):
        query = TOPSQuery(k=5, tau_km=1.0, preference=LinearPreference())
        incg = tiny_problem.solve(query)
        netclus = tiny_netclus.query(query)
        incg_exact, _ = tiny_problem.evaluate(incg.sites, query)
        netclus_exact, _ = tiny_problem.evaluate(netclus.sites, query)
        assert 0 < netclus_exact <= incg_exact + 1e-9 or netclus_exact > 0


class TestDynamicConsistency:
    def test_updates_keep_queries_consistent_with_rebuild(self):
        """After a mixed batch of updates, query results match a from-scratch
        index built on the updated data."""
        network = grid_network(7, 7, spacing_km=0.5)
        from repro.trajectory.generators import commuter_trajectories
        from repro.trajectory.model import TrajectoryDataset

        all_trajs = commuter_trajectories(network, 50, seed=31)
        base = TrajectoryDataset([t for t in all_trajs if t.traj_id < 35])
        extra = [t for t in all_trajs if t.traj_id >= 35]
        sites = network.node_ids()[::2]
        index = NetClusIndex.build(
            network, base, sites, gamma=0.75, tau_min_km=0.4, tau_max_km=3.0
        )
        # apply updates: add trajectories, add sites, remove one of each
        for trajectory in extra:
            index.add_trajectory(trajectory)
        new_sites = network.node_ids()[1::4]
        for site in new_sites:
            index.add_site(site)
        index.remove_trajectory(extra[0].traj_id)
        removed_site = sites[0]
        index.remove_site(removed_site)

        final_trajs = TrajectoryDataset(
            [t for t in all_trajs if t.traj_id != extra[0].traj_id]
        )
        final_sites = sorted((set(sites) | set(new_sites)) - {removed_site})
        rebuilt = NetClusIndex.build(
            network, final_trajs, final_sites, gamma=0.75, tau_min_km=0.4, tau_max_km=3.0
        )
        query = TOPSQuery(k=4, tau_km=0.8)
        updated_result = index.query(query)
        rebuilt_result = rebuilt.query(query)
        assert updated_result.utility == pytest.approx(rebuilt_result.utility, rel=0.05)
