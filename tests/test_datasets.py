"""Unit tests for the dataset builders (Table 6 analogues)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    atlanta_like,
    bangalore_like,
    beijing_like,
    new_york_like,
    site_capacities_normal,
    site_costs_normal,
)
from repro.datasets.base import DatasetBundle


def assert_valid_bundle(bundle: DatasetBundle):
    assert bundle.num_nodes > 0
    assert bundle.num_trajectories > 0
    assert bundle.num_sites > 0
    node_set = set(bundle.network.node_ids())
    assert set(bundle.sites) <= node_set
    for trajectory in bundle.trajectories:
        for prev, nxt in zip(trajectory.nodes, trajectory.nodes[1:]):
            assert bundle.network.has_edge(prev, nxt)


class TestBeijingLike:
    def test_tiny_valid(self, tiny_bundle):
        assert_valid_bundle(tiny_bundle)

    def test_scales_ordered(self):
        tiny = beijing_like("tiny", seed=1)
        small = beijing_like("small", seed=1)
        assert small.num_nodes > tiny.num_nodes
        assert small.num_trajectories > tiny.num_trajectories

    def test_all_nodes_are_sites_by_default(self, tiny_bundle):
        assert tiny_bundle.num_sites == tiny_bundle.num_nodes

    def test_half_sites_option(self):
        bundle = beijing_like("tiny", seed=1, sites="half")
        assert bundle.num_sites == bundle.num_nodes // 2

    def test_deterministic(self):
        a = beijing_like("tiny", seed=5)
        b = beijing_like("tiny", seed=5)
        assert [t.nodes for t in a.trajectories] == [t.nodes for t in b.trajectories]

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            beijing_like("gigantic")

    def test_invalid_sites_option(self):
        with pytest.raises(ValueError):
            beijing_like("tiny", sites="most")

    def test_summary_and_problem(self, tiny_bundle):
        summary = tiny_bundle.summary()
        assert summary["nodes"] == tiny_bundle.num_nodes
        problem = tiny_bundle.problem()
        assert problem.num_trajectories == tiny_bundle.num_trajectories


class TestBeijingSmallLike:
    def test_valid(self, small_instance):
        assert_valid_bundle(small_instance)

    def test_site_count_respected(self, small_instance):
        assert small_instance.num_sites == 15

    def test_trajectory_count_respected(self, small_instance):
        assert small_instance.num_trajectories == 60

    def test_sites_are_mostly_visited(self, small_instance):
        """The small instance samples candidate sites from visited nodes."""
        counts = small_instance.trajectories.node_visit_counts(
            small_instance.network.num_nodes
        )
        visited_sites = sum(1 for s in small_instance.sites if counts[s] > 0)
        assert visited_sites >= 0.8 * small_instance.num_sites


class TestCityBundles:
    @pytest.mark.parametrize(
        "builder", [new_york_like, atlanta_like, bangalore_like], ids=["nyk", "atl", "bng"]
    )
    def test_valid(self, builder):
        bundle = builder(num_trajectories=40, seed=2)
        assert_valid_bundle(bundle)
        assert bundle.num_trajectories == 40

    def test_topologies_differ(self):
        nyk = new_york_like(num_trajectories=20, seed=2)
        atl = atlanta_like(num_trajectories=20, seed=2)
        bng = bangalore_like(num_trajectories=20, seed=2)
        sizes = {nyk.num_nodes, atl.num_nodes, bng.num_nodes}
        assert len(sizes) == 3


class TestWorkloads:
    def test_costs_floored(self):
        costs = site_costs_normal(500, mean=1.0, std=1.0, min_cost=0.1, seed=1)
        assert np.all(costs >= 0.1)
        assert len(costs) == 500

    def test_zero_std_constant(self):
        costs = site_costs_normal(10, mean=1.0, std=0.0)
        assert np.allclose(costs, 1.0)

    def test_costs_deterministic(self):
        assert np.allclose(
            site_costs_normal(50, std=0.5, seed=3), site_costs_normal(50, std=0.5, seed=3)
        )

    def test_capacities_at_least_one(self):
        caps = site_capacities_normal(100, 1000, mean_fraction=0.001, seed=2)
        assert np.all(caps >= 1.0)

    def test_capacities_mean_scales(self):
        small = site_capacities_normal(200, 1000, mean_fraction=0.01, seed=2).mean()
        large = site_capacities_normal(200, 1000, mean_fraction=0.5, seed=2).mean()
        assert large > small

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            site_costs_normal(0)
        with pytest.raises(ValueError):
            site_capacities_normal(10, 0)
