"""Unit tests for repro.utils."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import ensure_rng
from repro.utils.sizeof import deep_getsizeof
from repro.utils.timer import Timer
from repro.utils.validation import (
    require,
    require_non_negative,
    require_positive,
    require_probability,
    require_type,
)


class TestEnsureRng:
    def test_returns_generator_from_int(self):
        rng = ensure_rng(42)
        assert isinstance(rng, np.random.Generator)

    def test_same_seed_same_stream(self):
        assert ensure_rng(7).integers(1 << 30) == ensure_rng(7).integers(1 << 30)

    def test_different_seeds_differ(self):
        draws_a = ensure_rng(1).integers(1 << 30, size=4)
        draws_b = ensure_rng(2).integers(1 << 30, size=4)
        assert not np.array_equal(draws_a, draws_b)

    def test_passthrough_generator(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestTimer:
    def test_context_manager_records_elapsed(self):
        with Timer() as timer:
            sum(range(10_000))
        assert timer.elapsed > 0.0

    def test_start_stop(self):
        timer = Timer()
        timer.start()
        elapsed = timer.stop()
        assert elapsed >= 0.0
        assert timer.elapsed == elapsed

    def test_restart_overwrites(self):
        timer = Timer()
        with timer:
            sum(range(100_000))
        first = timer.elapsed
        with timer:
            pass
        assert timer.elapsed <= first


class TestValidation:
    def test_require_passes(self):
        require(True, "never raised")

    def test_require_raises(self):
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_require_positive(self):
        require_positive(0.1, "x")
        with pytest.raises(ValueError):
            require_positive(0.0, "x")
        with pytest.raises(ValueError):
            require_positive(-3, "x")

    def test_require_non_negative(self):
        require_non_negative(0.0, "x")
        with pytest.raises(ValueError):
            require_non_negative(-1e-9, "x")

    def test_require_probability(self):
        require_probability(0.0, "p")
        require_probability(1.0, "p")
        with pytest.raises(ValueError):
            require_probability(1.5, "p")
        with pytest.raises(ValueError):
            require_probability(-0.1, "p")

    def test_require_type(self):
        require_type(3, int, "x")
        with pytest.raises(TypeError):
            require_type("3", int, "x")


class TestDeepGetsizeof:
    def test_numpy_array_counts_nbytes(self):
        array = np.zeros(1000, dtype=np.float64)
        assert deep_getsizeof(array) >= array.nbytes

    def test_nested_containers(self):
        small = deep_getsizeof({"a": [1, 2, 3]})
        large = deep_getsizeof({"a": [1, 2, 3], "b": list(range(1000))})
        assert large > small

    def test_shared_objects_counted_once(self):
        shared = list(range(1000))
        single = deep_getsizeof([shared])
        double = deep_getsizeof([shared, shared])
        assert double < 2 * single

    def test_object_with_dict(self):
        class Holder:
            def __init__(self):
                self.payload = np.zeros(100)

        assert deep_getsizeof(Holder()) >= 800
