"""Unit tests for NetClus dynamic updates (Section 6)."""

from __future__ import annotations

import pytest

from repro.core.netclus import NetClusIndex
from repro.core.query import TOPSQuery
from repro.network.generators import grid_network
from repro.trajectory.generators import commuter_trajectories


@pytest.fixture
def setup():
    """A fresh, mutable index over half the trajectories and half the sites."""
    network = grid_network(8, 8, spacing_km=0.5)
    all_trajectories = commuter_trajectories(network, 60, seed=17)
    base = all_trajectories.sample(40, seed=1)
    held_out = [t for t in all_trajectories if t.traj_id not in set(base.ids())]
    sites = network.node_ids()[::2]
    index = NetClusIndex.build(
        network, base, sites, gamma=0.75, tau_min_km=0.4, tau_max_km=3.0
    )
    return network, base, held_out, sites, index


class TestAddTrajectory:
    def test_add_registers_in_every_instance(self, setup):
        network, base, held_out, sites, index = setup
        new = held_out[0]
        index.add_trajectory(new)
        for instance in index.instances:
            registered = set()
            for cluster in instance.clusters:
                registered.update(cluster.trajectory_list)
            assert new.traj_id in registered

    def test_add_increases_count(self, setup):
        _, _, held_out, _, index = setup
        before = index.num_trajectories
        index.add_trajectory(held_out[0])
        assert index.num_trajectories == before + 1

    def test_duplicate_id_rejected(self, setup):
        _, base, _, _, index = setup
        with pytest.raises(ValueError):
            index.add_trajectory(base[0])

    def test_added_trajectory_affects_queries(self, setup):
        network, base, held_out, sites, index = setup
        query = TOPSQuery(k=3, tau_km=0.8)
        before = index.query(query).utility
        for trajectory in held_out:
            index.add_trajectory(trajectory)
        after = index.query(query).utility
        assert after >= before

    def test_matches_rebuilt_index(self, setup):
        """Adding trajectories incrementally == building the index from scratch."""
        network, base, held_out, sites, index = setup
        for trajectory in held_out:
            index.add_trajectory(trajectory)
        from repro.trajectory.model import TrajectoryDataset

        full = TrajectoryDataset(list(base) + list(held_out))
        rebuilt = NetClusIndex.build(
            network, full, sites, gamma=0.75, tau_min_km=0.4, tau_max_km=3.0
        )
        query = TOPSQuery(k=5, tau_km=0.8)
        assert index.query(query).utility == pytest.approx(
            rebuilt.query(query).utility, rel=1e-9
        )


class TestRemoveTrajectory:
    def test_remove_clears_all_instances(self, setup):
        _, base, _, _, index = setup
        victim = base[0].traj_id
        index.remove_trajectory(victim)
        for instance in index.instances:
            for cluster in instance.clusters:
                assert victim not in cluster.trajectory_list

    def test_remove_unknown_raises(self, setup):
        _, _, _, _, index = setup
        with pytest.raises(KeyError):
            index.remove_trajectory(10_000)

    def test_add_then_remove_is_noop(self, setup):
        _, _, held_out, _, index = setup
        query = TOPSQuery(k=3, tau_km=0.8)
        before = index.query(query).utility
        index.add_trajectory(held_out[0])
        index.remove_trajectory(held_out[0].traj_id)
        assert index.query(query).utility == pytest.approx(before)


class TestAddSite:
    def test_add_site_registers(self, setup):
        network, _, _, sites, index = setup
        new_site = next(n for n in network.node_ids() if n not in index.sites)
        index.add_site(new_site)
        assert new_site in index.sites

    def test_add_existing_site_is_noop(self, setup):
        _, _, _, sites, index = setup
        before = set(index.sites)
        index.add_site(sites[0])
        assert index.sites == before

    def test_add_site_can_become_representative(self, setup):
        network, _, _, _, index = setup
        # adding every node as a site guarantees each cluster has a
        # representative at round-trip 0 (its own center)
        for node in network.node_ids():
            index.add_site(node)
        for instance in index.instances:
            for cluster in instance.clusters:
                assert cluster.has_representative
                assert cluster.representative_round_trip_km == pytest.approx(0.0)

    def test_unknown_node_rejected(self, setup):
        _, _, _, _, index = setup
        with pytest.raises(ValueError):
            index.add_site(99_999)

    def test_added_sites_usable_in_queries(self, setup):
        network, _, _, _, index = setup
        query = TOPSQuery(k=5, tau_km=0.8)
        before = index.query(query).utility
        for node in network.node_ids():
            index.add_site(node)
        after = index.query(query).utility
        assert after >= before - 1e-9


class TestRemoveSite:
    def test_remove_unregisters(self, setup):
        _, _, _, sites, index = setup
        index.remove_site(sites[0])
        assert sites[0] not in index.sites

    def test_remove_unknown_raises(self, setup):
        _, _, _, _, index = setup
        with pytest.raises(KeyError):
            index.remove_site(99_999)

    def test_representative_reelected(self, setup):
        """After deleting a representative, another site in the cluster (if
        any) must take over, and it must be the closest remaining site."""
        _, _, _, _, index = setup
        instance = index.instances[-1]
        cluster = next(c for c in instance.clusters if c.has_representative)
        victim = cluster.representative
        remaining_sites = [
            n for n in cluster.nodes if n in index.sites and n != victim
        ]
        index.remove_site(victim)
        if remaining_sites:
            assert cluster.representative in remaining_sites
            expected = min(cluster.nodes[n] for n in remaining_sites)
            assert cluster.representative_round_trip_km == pytest.approx(expected)
        else:
            assert not cluster.has_representative

    def test_removed_site_never_returned(self, setup):
        _, _, _, _, index = setup
        query = TOPSQuery(k=5, tau_km=0.8)
        victim = index.query(query).sites[0]
        index.remove_site(victim)
        assert victim not in index.query(query).sites
