"""Unit tests for the coverage structures (TC, SC, site weights)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coverage import CoverageIndex
from repro.core.preference import BinaryPreference, LinearPreference


@pytest.fixture
def detours():
    """3 trajectories x 4 sites with a mix of covered/uncovered pairs."""
    return np.asarray(
        [
            [0.0, 0.5, 2.0, np.inf],
            [1.5, 0.2, 0.9, 3.0],
            [np.inf, np.inf, 0.1, 0.4],
        ]
    )


@pytest.fixture
def binary_cov(detours):
    return CoverageIndex(detours, tau_km=1.0, preference=BinaryPreference())


@pytest.fixture
def linear_cov(detours):
    return CoverageIndex(detours, tau_km=1.0, preference=LinearPreference())


class TestConstruction:
    def test_shape_attributes(self, binary_cov):
        assert binary_cov.num_trajectories == 3
        assert binary_cov.num_sites == 4

    def test_default_labels(self, binary_cov):
        assert list(binary_cov.site_labels) == [0, 1, 2, 3]
        assert list(binary_cov.trajectory_ids) == [0, 1, 2]

    def test_rejects_bad_label_lengths(self, detours):
        with pytest.raises(ValueError):
            CoverageIndex(detours, 1.0, BinaryPreference(), site_labels=[1, 2])

    def test_rejects_1d_matrix(self):
        with pytest.raises(ValueError):
            CoverageIndex(np.zeros(4), 1.0, BinaryPreference())


class TestScoresAndWeights:
    def test_binary_scores(self, binary_cov):
        expected = np.asarray(
            [[1, 1, 0, 0], [0, 1, 1, 0], [0, 0, 1, 1]], dtype=float
        )
        assert np.array_equal(binary_cov.scores, expected)

    def test_linear_scores_decrease_with_detour(self, linear_cov):
        assert linear_cov.scores[0, 0] > linear_cov.scores[0, 1]

    def test_site_weights_binary(self, binary_cov):
        assert np.array_equal(binary_cov.site_weights, [1, 2, 2, 1])

    def test_trajectory_weights_scale_scores(self, detours):
        weighted = CoverageIndex(
            detours,
            1.0,
            BinaryPreference(),
            trajectory_weights=np.asarray([2.0, 1.0, 1.0]),
        )
        assert weighted.scores[0, 0] == 2.0


class TestCoveringSets:
    def test_trajectories_covered(self, binary_cov):
        assert list(binary_cov.trajectories_covered(1)) == [0, 1]
        assert list(binary_cov.trajectories_covered(3)) == [2]

    def test_sites_covering(self, binary_cov):
        assert list(binary_cov.sites_covering(0)) == [0, 1]
        assert list(binary_cov.sites_covering(2)) == [2, 3]

    def test_covered_pairs(self, binary_cov):
        assert binary_cov.covered_pairs() == 6

    def test_mask_matches_tau(self, detours, binary_cov):
        mask = binary_cov.coverage_mask()
        assert np.array_equal(mask, detours <= 1.0)

    def test_exact_tau_boundary_included(self):
        detours = np.asarray([[1.0]])
        cov = CoverageIndex(detours, tau_km=1.0, preference=BinaryPreference())
        assert cov.covered_pairs() == 1


class TestUtility:
    def test_utility_of_empty(self, binary_cov):
        assert binary_cov.utility_of([]) == 0.0

    def test_utility_of_single_site(self, binary_cov):
        assert binary_cov.utility_of([1]) == 2.0

    def test_utility_max_semantics(self, binary_cov):
        # sites 1 and 2 overlap on trajectory 1: utility is 3, not 4
        assert binary_cov.utility_of([1, 2]) == 3.0

    def test_per_trajectory_utility(self, binary_cov):
        per_traj = binary_cov.per_trajectory_utility([0, 3])
        assert list(per_traj) == [1.0, 0.0, 1.0]

    def test_columns_for_labels(self, detours):
        cov = CoverageIndex(
            detours, 1.0, BinaryPreference(), site_labels=[10, 20, 30, 40]
        )
        assert cov.columns_for_labels([30, 10]) == [2, 0]

    def test_storage_bytes_positive(self, binary_cov):
        assert binary_cov.storage_bytes() > 0


# ---------------------------------------------------------------------- #
# coverage is geometric: dense and sparse agree on zero-score-at-τ pairs
# ---------------------------------------------------------------------- #
def test_covered_pairs_includes_zero_score_entries():
    """A linear ψ scores a detour of exactly τ as 0, yet the pair is covered
    (the mask is the geometric detour ≤ τ predicate, not a score test)."""
    from repro.core.coverage import SparseCoverageIndex

    detours = np.asarray(
        [
            [1.0, 0.3, np.inf],  # detour == τ scores 0 under linear ψ
            [0.0, 1.0, 2.0],
            [np.inf, 0.7, 1.0],
        ]
    )
    tau = 1.0
    dense = CoverageIndex(detours, tau, LinearPreference())
    sparse = SparseCoverageIndex(detours, tau, LinearPreference())
    expected = np.isfinite(detours) & (detours <= tau)
    assert dense.covered_pairs() == int(expected.sum())
    assert sparse.covered_pairs() == dense.covered_pairs()
    assert np.array_equal(dense.coverage_mask(), expected)
    assert np.array_equal(sparse.coverage_mask(), dense.coverage_mask())
    for col in range(detours.shape[1]):
        assert np.array_equal(
            dense.trajectories_covered(col), sparse.trajectories_covered(col)
        )


def test_covered_pairs_parity_binary_and_linear(detours):
    from repro.core.coverage import SparseCoverageIndex

    for preference in (BinaryPreference(), LinearPreference()):
        for tau in (0.4, 0.5, 1.0, 2.0):
            dense = CoverageIndex(detours, tau, preference)
            sparse = SparseCoverageIndex(detours, tau, preference)
            assert dense.covered_pairs() == sparse.covered_pairs(), (preference, tau)
