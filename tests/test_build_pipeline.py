"""Tests for the staged build pipeline (`repro.core.build`).

Covers the pipeline's stage records, the workers=1 vs workers=N parity
guarantee (state, selections, serialized payload), manifest round-tripping
of the per-stage stats, worker-failure propagation, and the shared
trajectory-registration kernel.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.core.build import STAGES, BuildStats, build_index
from repro.core.netclus import NetClusIndex, register_trajectory_batch
from repro.core.query import TOPSQuery
from repro.datasets import beijing_like
from repro.network.shortest_path import ShortestPathEngine
from repro.service.serialization import load_index, payload_digest, save_index


@pytest.fixture(scope="module")
def bundle():
    return beijing_like(scale="tiny", seed=42)


@pytest.fixture(scope="module")
def sequential_index(bundle):
    return NetClusIndex.build(
        bundle.network, bundle.trajectories, bundle.sites, tau_max_km=4.0
    )


@pytest.fixture(scope="module")
def parallel_index(bundle):
    return NetClusIndex.build(
        bundle.network, bundle.trajectories, bundle.sites, tau_max_km=4.0, workers=2
    )


def _assert_state_identical(left: NetClusIndex, right: NetClusIndex) -> None:
    """Full structural equality, including dict insertion orders."""
    assert left.num_instances == right.num_instances
    assert left.trajectory_ids == right.trajectory_ids
    assert left.sites == right.sites
    for a, b in zip(left.instances, right.instances):
        assert a.radius_km == b.radius_km
        assert a.node_to_cluster == b.node_to_cluster
        assert a.mean_dominating_set_size == b.mean_dominating_set_size
        assert len(a.clusters) == len(b.clusters)
        for ca, cb in zip(a.clusters, b.clusters):
            assert ca.center == cb.center
            assert ca.representative == cb.representative
            assert ca.representative_round_trip_km == cb.representative_round_trip_km
            assert list(ca.nodes.items()) == list(cb.nodes.items())
            assert list(ca.trajectory_list.items()) == list(cb.trajectory_list.items())
            assert ca.neighbors == cb.neighbors


class TestStagedPipeline:
    def test_stage_records(self, sequential_index):
        stages = [stat.stage for stat in sequential_index.build_stats]
        assert stages == list(STAGES)
        for stat in sequential_index.build_stats:
            assert stat.seconds >= 0.0
            assert stat.workers == 1
            assert len(stat.per_instance_seconds) == sequential_index.num_instances

    def test_parallel_stage_records(self, parallel_index):
        by_stage = {stat.stage: stat for stat in parallel_index.build_stats}
        assert by_stage["clustering"].workers == 2
        assert by_stage["representatives"].workers == 1
        assert by_stage["registration"].workers == 1

    def test_instance_build_seconds_sum_to_stage_totals(self, sequential_index):
        stage_total = sum(stat.seconds for stat in sequential_index.build_stats)
        instance_total = sequential_index.build_seconds()
        assert instance_total == pytest.approx(stage_total, rel=1e-9)

    def test_build_stats_dict_round_trip(self, sequential_index):
        for stat in sequential_index.build_stats:
            assert BuildStats.from_dict(stat.as_dict()) == stat

    def test_workers_one_is_default(self, bundle):
        index = build_index(
            bundle.network, bundle.trajectories, bundle.sites, tau_max_km=4.0
        )
        assert all(stat.workers == 1 for stat in index.build_stats)

    def test_invalid_workers_rejected(self, bundle):
        with pytest.raises(ValueError):
            NetClusIndex.build(
                bundle.network, bundle.trajectories, bundle.sites, workers=0
            )


class TestParallelParity:
    def test_state_identical(self, sequential_index, parallel_index):
        _assert_state_identical(sequential_index, parallel_index)

    def test_serialization_identical(self, sequential_index, parallel_index):
        assert payload_digest(
            sequential_index, include_timings=False
        ) == payload_digest(parallel_index, include_timings=False)

    def test_selections_identical(self, sequential_index, parallel_index):
        for tau in (0.6, 1.2, 2.4):
            for engine in ("dense", "sparse"):
                query = TOPSQuery(k=4, tau_km=tau)
                a = sequential_index.query(query, engine=engine)
                b = parallel_index.query(query, engine=engine)
                assert a.sites == b.sites
                assert (
                    np.asarray(a.per_trajectory_utility).tobytes()
                    == np.asarray(b.per_trajectory_utility).tobytes()
                )

    def test_most_frequent_strategy_parity(self, bundle):
        kwargs = dict(
            tau_max_km=2.0, max_instances=3, representative_strategy="most_frequent"
        )
        sequential = NetClusIndex.build(
            bundle.network, bundle.trajectories, bundle.sites, **kwargs
        )
        parallel = NetClusIndex.build(
            bundle.network, bundle.trajectories, bundle.sites, workers=2, **kwargs
        )
        _assert_state_identical(sequential, parallel)
        assert payload_digest(sequential, include_timings=False) == payload_digest(
            parallel, include_timings=False
        )

    def test_fm_sketch_gdsp_parity(self, bundle):
        kwargs = dict(tau_max_km=2.0, max_instances=2, use_fm_sketches=True)
        sequential = NetClusIndex.build(
            bundle.network, bundle.trajectories, bundle.sites, **kwargs
        )
        parallel = NetClusIndex.build(
            bundle.network, bundle.trajectories, bundle.sites, workers=2, **kwargs
        )
        _assert_state_identical(sequential, parallel)

    def test_parallel_index_supports_dynamic_updates(self, bundle, parallel_index):
        import copy

        index = copy.deepcopy(parallel_index)
        site = sorted(index.sites)[0]
        index.remove_site(site)
        assert site not in index.sites
        index.add_site(site)
        assert site in index.sites


class TestManifestStats:
    def test_build_stats_round_trip_through_manifest(
        self, tmp_path, bundle, sequential_index
    ):
        directory = save_index(sequential_index, tmp_path / "idx")
        loaded = load_index(directory)
        assert loaded.build_stats == sequential_index.build_stats
        assert loaded.max_instances == sequential_index.max_instances

    def test_max_instances_round_trips(self, tmp_path, bundle):
        index = NetClusIndex.build(
            bundle.network,
            bundle.trajectories,
            bundle.sites,
            tau_max_km=4.0,
            max_instances=2,
        )
        loaded = load_index(save_index(index, tmp_path / "capped"))
        assert loaded.max_instances == 2
        assert loaded.num_instances == 2

    def test_manifest_without_stats_loads_empty(self, tmp_path, sequential_index):
        import json

        directory = save_index(sequential_index, tmp_path / "idx")
        manifest_path = directory / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest.pop("build_stats")
        manifest["build_params"].pop("max_instances")
        manifest_path.write_text(json.dumps(manifest))
        loaded = load_index(directory)
        assert loaded.build_stats == []
        assert loaded.max_instances is None


def _exploding_task(task):
    """Module-level (hence picklable) stand-in for the worker task."""
    raise RuntimeError(f"injected worker fault on instance {task[0]}")


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker fault injection relies on the fork start method",
)
class TestWorkerFailure:
    def test_crashing_worker_propagates_cleanly(self, bundle, monkeypatch):
        """A worker exception surfaces as-is; no half-built index escapes."""
        import repro.core.build as build_module

        monkeypatch.setattr(build_module, "_instance_task", _exploding_task)
        with pytest.raises(RuntimeError, match="injected worker fault"):
            build_index(
                bundle.network,
                bundle.trajectories,
                bundle.sites,
                tau_max_km=4.0,
                workers=2,
                mp_start_method="fork",
            )

    def test_build_recovers_after_worker_failure(self, bundle, monkeypatch):
        """The failure leaves no global state behind: the next build works."""
        import repro.core.build as build_module

        original = build_module._instance_task
        monkeypatch.setattr(build_module, "_instance_task", _exploding_task)
        with pytest.raises(RuntimeError):
            build_index(
                bundle.network,
                bundle.trajectories,
                bundle.sites,
                tau_max_km=4.0,
                workers=2,
                mp_start_method="fork",
            )
        monkeypatch.setattr(build_module, "_instance_task", original)
        index = build_index(
            bundle.network,
            bundle.trajectories,
            bundle.sites,
            tau_max_km=4.0,
            workers=2,
            mp_start_method="fork",
        )
        assert index.num_instances > 0


class TestRegistrationKernel:
    """The shared kernel is the only trajectory-registration implementation."""

    def test_build_and_update_registration_agree(self, bundle):
        """Indexing trajectories at build time == streaming them in later."""
        full = NetClusIndex.build(
            bundle.network, bundle.trajectories, bundle.sites, tau_max_km=4.0
        )
        half = bundle.trajectories.sample(
            bundle.num_trajectories // 2, seed=7
        )
        incremental = NetClusIndex.build(
            bundle.network, half, bundle.sites, tau_max_km=4.0
        )
        held_out = [
            t for t in bundle.trajectories if t.traj_id not in set(half.ids())
        ]
        incremental.add_trajectories(held_out)
        for a, b in zip(full.instances, incremental.instances):
            for ca, cb in zip(a.clusters, b.clusters):
                # same (trajectory, leg) content; insertion order differs
                # because the incremental index saw the held-out half later
                assert dict(ca.trajectory_list) == dict(cb.trajectory_list)

    def test_single_trajectory_addition_uses_kernel(self, bundle):
        index = NetClusIndex.build(
            bundle.network, bundle.trajectories, bundle.sites, tau_max_km=4.0
        )
        trajectory = bundle.trajectories[0]
        from repro.trajectory.model import Trajectory

        clone = Trajectory(
            traj_id=max(index.trajectory_ids) + 1,
            nodes=trajectory.nodes,
            cumulative_km=trajectory.cumulative_km,
        )
        index.add_trajectory(clone)
        for instance in index.instances:
            for cluster in instance.clusters:
                original = cluster.trajectory_list.get(trajectory.traj_id)
                added = cluster.trajectory_list.get(clone.traj_id)
                assert original == added  # same nodes -> same legs everywhere

    def test_kernel_ignores_out_of_range_nodes(self, bundle):
        index = NetClusIndex.build(
            bundle.network, bundle.trajectories, bundle.sites, tau_max_km=4.0
        )
        instance = index.instances[0]
        before = [dict(c.trajectory_list) for c in instance.clusters]
        register_trajectory_batch(
            instance,
            bundle.network.num_nodes,
            [10_000],
            [np.asarray([-5, bundle.network.num_nodes + 3], dtype=np.int64)],
        )
        after = [dict(c.trajectory_list) for c in instance.clusters]
        assert before == after

    def test_kernel_empty_batch_is_noop(self, bundle):
        index = NetClusIndex.build(
            bundle.network, bundle.trajectories, bundle.sites, tau_max_km=4.0
        )
        instance = index.instances[0]
        before = [dict(c.trajectory_list) for c in instance.clusters]
        register_trajectory_batch(instance, bundle.network.num_nodes, [], [])
        assert [dict(c.trajectory_list) for c in instance.clusters] == before


class TestEnginePayload:
    def test_payload_round_trip_preserves_distances(self, bundle):
        engine = ShortestPathEngine(bundle.network)
        restored = ShortestPathEngine.from_payload(engine.to_payload())
        assert restored.network is None
        assert restored.num_nodes == bundle.network.num_nodes
        sources = [0, 3, 7]
        np.testing.assert_array_equal(
            engine.distances_from(sources), restored.distances_from(sources)
        )
        np.testing.assert_array_equal(
            engine.distances_to(sources), restored.distances_to(sources)
        )
        left = engine.bounded_round_trip_neighbors(0.5)
        right = restored.bounded_round_trip_neighbors(0.5)
        assert left.keys() == right.keys()
        for node in left:
            np.testing.assert_array_equal(left[node], right[node])

    def test_module_wrapper_reuses_engine(self, bundle):
        from repro.network.shortest_path import bounded_round_trip_neighbors

        engine = ShortestPathEngine(bundle.network)
        via_engine = bounded_round_trip_neighbors(
            bundle.network, radius=0.4, engine=engine
        )
        fresh = bounded_round_trip_neighbors(bundle.network, radius=0.4)
        assert via_engine.keys() == fresh.keys()
        for node in fresh:
            np.testing.assert_array_equal(via_engine[node], fresh[node])
