"""Concurrency tests for :class:`PlacementService`.

The service contract under parallel callers:

* ``batch_query`` may run from many threads at once;
* dynamic updates through :meth:`PlacementService.apply_updates` are
  exclusive — a reader observes either the pre- or the post-update index,
  never a mix, and the result cache can never serve a pre-update answer
  to a post-update query (no stale-cache reads);
* the lazy index build happens exactly once however many threads race it.

The hammer test drives both sides at once and checks every observed
result against the two legitimate index states, which it computes up
front from deep copies.
"""

from __future__ import annotations

import copy
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.netclus import NetClusIndex, UpdateBatch
from repro.datasets import beijing_like
from repro.service.placement import PlacementService
from repro.service.specs import QuerySpec


@pytest.fixture(scope="module")
def bundle():
    return beijing_like(scale="tiny", seed=42)


@pytest.fixture(scope="module")
def base_index(bundle):
    return NetClusIndex.build(
        bundle.network, bundle.trajectories, bundle.sites, tau_max_km=4.0
    )


SPECS = [
    QuerySpec(k=3, tau_km=0.8),
    QuerySpec(k=5, tau_km=0.8),
    QuerySpec(k=4, tau_km=1.6),
]


def _expected_answers(index: NetClusIndex, batch: UpdateBatch | None):
    """Reference results for every spec against a private index copy."""
    private = copy.deepcopy(index)
    if batch is not None:
        private.apply_updates(batch)
    service = PlacementService(private, engine="sparse", cache_size=0)
    return [tuple(result.sites) for result in service.batch_query(SPECS)]


def _update_batch_changing_selections(index: NetClusIndex) -> UpdateBatch:
    """Removing the top pick of the k=3 query must change its selection."""
    service = PlacementService(copy.deepcopy(index), engine="sparse")
    top_site = service.batch_query([SPECS[0]])[0].sites[0]
    return UpdateBatch(remove_sites=(int(top_site),))


class TestQueryUpdateHammer:
    @pytest.mark.parametrize("coverage_cache", [False, True])
    def test_no_stale_or_torn_reads(self, base_index, coverage_cache):
        """No torn/stale reads — with the coverage cache on, readers racing
        the writer must see either the pre-update parts or the fully patched
        parts, never a half-patched coverage structure."""
        index = copy.deepcopy(base_index)
        batch = _update_batch_changing_selections(index)
        expected_before = _expected_answers(index, None)
        expected_after = _expected_answers(index, batch)
        assert expected_before != expected_after, "update must change selections"

        service = PlacementService(
            index, engine="sparse", cache_size=64, coverage_cache=coverage_cache
        )
        update_done_at: list[float] = []
        failures: list[str] = []
        start_barrier = threading.Barrier(9)

        def reader(worker_id: int) -> None:
            start_barrier.wait()
            for iteration in range(12):
                started = time.monotonic()
                sites = [
                    tuple(result.sites) for result in service.batch_query(SPECS)
                ]
                if sites not in (expected_before, expected_after):
                    failures.append(
                        f"reader {worker_id} iter {iteration}: torn result {sites}"
                    )
                if (
                    update_done_at
                    and started > update_done_at[0]
                    and sites != expected_after
                ):
                    failures.append(
                        f"reader {worker_id} iter {iteration}: stale post-update read"
                    )

        def writer() -> None:
            start_barrier.wait()
            time.sleep(0.01)  # let readers populate and hit the cache first
            service.apply_updates(batch)
            update_done_at.append(time.monotonic())

        with ThreadPoolExecutor(max_workers=9) as pool:
            futures = [pool.submit(reader, worker_id) for worker_id in range(8)]
            futures.append(pool.submit(writer))
            for future in futures:
                future.result()

        assert not failures, failures
        assert update_done_at, "the writer must have run"
        # the post-update queries repopulated the cache with fresh answers
        if coverage_cache:
            builds_before_final = service.stats.coverage_builds
        final = [tuple(result.sites) for result in service.batch_query(SPECS)]
        assert final == expected_after
        if coverage_cache:
            # the patched parts served the post-update answer — the final
            # batch needed zero coverage builds
            assert service.stats.coverage_builds == builds_before_final
            assert service.coverage_cache.stats()["patches"] > 0

    def test_apply_updates_returns_item_count_and_bumps_version(self, base_index):
        index = copy.deepcopy(base_index)
        service = PlacementService(index, engine="sparse")
        before = index.version
        site = sorted(index.sites)[-1]
        applied = service.apply_updates(UpdateBatch(remove_sites=(site,)))
        assert applied == 1
        assert index.version == before + 1

    def test_cache_dropped_inside_update_critical_section(self, base_index):
        service = PlacementService(copy.deepcopy(base_index), engine="sparse")
        service.batch_query(SPECS)
        assert service.cache_len == len(SPECS)
        batch = UpdateBatch(remove_sites=(sorted(service.index.sites)[0],))
        service.apply_updates(batch)
        assert service.cache_len == 0


class TestConcurrentCacheAndBuild:
    def test_lazy_build_runs_exactly_once(self, bundle):
        built = []

        def builder() -> NetClusIndex:
            built.append(threading.get_ident())
            return NetClusIndex.build(
                bundle.network, bundle.trajectories, bundle.sites, tau_max_km=2.0,
                max_instances=2,
            )

        service = PlacementService(builder=builder, engine="sparse")
        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(
                pool.map(
                    lambda _: service.query(SPECS[0]).sites, range(6)
                )
            )
        assert len(built) == 1
        assert service.stats.index_builds == 1
        assert len(set(results)) == 1

    def test_parallel_readers_share_consistent_cache(self, base_index):
        service = PlacementService(copy.deepcopy(base_index), engine="sparse")
        reference = tuple(service.query(SPECS[1]).sites)

        def read(_: int):
            return tuple(service.query(SPECS[1]).sites)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(read, range(64)))
        assert set(results) == {reference}
        stats = service.stats
        # every query either hit the cache or recomputed the same answer
        assert stats.cache_hits + stats.cache_misses == stats.queries_served

    def test_counter_bumps_are_atomic(self, base_index):
        service = PlacementService(copy.deepcopy(base_index), engine="sparse")

        def hammer(_: int) -> None:
            service.stats.bump(queries_served=1)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(hammer, range(500)))
        assert service.stats.queries_served == 500


class _RecordingLock:
    """A lock wrapper counting acquisitions (regression probes below)."""

    def __init__(self) -> None:
        self._inner = threading.RLock()
        self.acquisitions = 0

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def acquire(self, *args, **kwargs) -> bool:
        self.acquisitions += 1
        return self._inner.acquire(*args, **kwargs)

    def release(self) -> None:
        self._inner.release()


class TestLockDisciplineRegressions:
    """Each fixed RA005 site now provably takes its lock.

    These correspond one-to-one to the findings the static lock checker
    surfaced when the ``@guarded_by`` declarations landed; the probes
    replace the relevant lock with a recording wrapper so a regression
    (dropping the critical section again) fails deterministically instead
    of needing a lucky race.
    """

    def test_stage_seconds_snapshot_is_taken_under_the_stats_lock(self, base_index):
        service = PlacementService(copy.deepcopy(base_index), engine="sparse")
        probe = _RecordingLock()
        service.stats._lock = probe
        before = probe.acquisitions
        snapshot = service.stats.stage_seconds()
        assert probe.acquisitions == before + 1
        assert set(snapshot) == {
            "coverage_build_seconds",
            "coverage_materialise_seconds",
            "greedy_seconds",
            "replay_seconds",
        }

    def test_reset_zeroes_under_the_stats_lock(self, base_index):
        service = PlacementService(copy.deepcopy(base_index), engine="sparse")
        service.batch_query(SPECS)
        probe = _RecordingLock()
        service.stats._lock = probe
        before = probe.acquisitions
        service.stats.reset()
        assert probe.acquisitions == before + 1
        assert all(value == 0 for value in service.stats.as_dict().values())

    def test_reset_is_atomic_against_concurrent_bumps(self, base_index):
        stats = PlacementService(copy.deepcopy(base_index), engine="sparse").stats

        def bump(_: int) -> None:
            stats.bump(queries_served=1, greedy_seconds=0.5)

        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [pool.submit(bump, i) for i in range(200)]
            stats.reset()
            for future in futures:
                future.result()
        # whatever interleaving happened, the float and int counters moved
        # in lockstep: a torn reset would break the 0.5-per-bump ratio
        assert stats.greedy_seconds == pytest.approx(0.5 * stats.queries_served)

    def test_shard_executor_reads_are_locked_on_every_call(self, base_index):
        service = PlacementService(
            copy.deepcopy(base_index), engine="sparse", shards=2, query_workers=2
        )
        probe = _RecordingLock()
        service._executor_lock = probe
        first = service._shard_executor()
        assert first is not None
        # the old double-checked fast path skipped the lock once the pool
        # existed — every resolution must acquire now
        assert service._shard_executor() is first
        assert probe.acquisitions == 2
        service.close()

    def test_coverage_cache_deepcopy_and_pickle_hold_the_cache_lock(self):
        import pickle

        from repro.core.covcache import CoverageCache

        cache = CoverageCache(limit=4)
        probe = _RecordingLock()
        cache._lock = probe
        before = probe.acquisitions
        clone = copy.deepcopy(cache)
        assert clone.limit == 4
        assert probe.acquisitions == before + 1
        before = probe.acquisitions
        restored = pickle.loads(pickle.dumps(cache))
        assert restored.limit == 4
        assert probe.acquisitions == before + 1
