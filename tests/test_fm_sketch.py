"""Unit tests for the Flajolet-Martin sketch substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch.fm import FMSketch, FMSketchFamily


class TestFMSketch:
    def test_empty_estimate_small(self):
        assert FMSketch().estimate() < 2.0

    def test_add_sets_bits(self):
        sketch = FMSketch()
        sketch.add(12345)
        assert sketch.bits != 0

    def test_idempotent_insertion(self):
        sketch = FMSketch()
        sketch.add(1)
        bits = sketch.bits
        sketch.add(1)
        assert sketch.bits == bits

    def test_union_is_or(self):
        a, b = FMSketch(), FMSketch()
        a.add(1)
        b.add(2)
        union = a.union(b)
        assert union.bits == a.bits | b.bits

    def test_union_requires_same_seed(self):
        with pytest.raises(ValueError):
            FMSketch(seed=0).union(FMSketch(seed=1))

    def test_union_in_place(self):
        a, b = FMSketch(), FMSketch()
        a.add(1)
        b.add(2)
        expected = a.bits | b.bits
        a.union_in_place(b)
        assert a.bits == expected

    def test_copy_and_eq(self):
        a = FMSketch()
        a.add(7)
        b = a.copy()
        assert a == b
        b.add(9)
        assert a != b or a.bits == b.bits  # adding may or may not change bits

    def test_lowest_unset_bit(self):
        sketch = FMSketch(bits=0b0111)
        assert sketch.lowest_unset_bit() == 3


class TestFMSketchFamily:
    def test_empty_family(self):
        family = FMSketchFamily(10)
        assert family.is_empty()
        assert family.estimate() < 2.0

    def test_estimate_scales_with_cardinality(self):
        small = FMSketchFamily.from_items(range(20), num_copies=30)
        large = FMSketchFamily.from_items(range(2000), num_copies=30)
        assert large.estimate() > small.estimate()

    def test_estimate_accuracy_moderate(self):
        """With 30 copies the estimate should be within a factor ~2 of truth."""
        true_count = 500
        family = FMSketchFamily.from_items(range(true_count), num_copies=30)
        estimate = family.estimate()
        assert true_count / 2.5 <= estimate <= true_count * 2.5

    def test_union_estimate_at_least_parts(self):
        a = FMSketchFamily.from_items(range(0, 300), num_copies=20)
        b = FMSketchFamily.from_items(range(300, 600), num_copies=20)
        union = a.union(b)
        assert union.estimate() >= max(a.estimate(), b.estimate()) * 0.99

    def test_union_of_identical_sets_unchanged(self):
        a = FMSketchFamily.from_items(range(100), num_copies=16)
        b = FMSketchFamily.from_items(range(100), num_copies=16)
        assert a.union(b) == a

    def test_union_in_place(self):
        a = FMSketchFamily.from_items(range(50), num_copies=8)
        b = FMSketchFamily.from_items(range(50, 100), num_copies=8)
        expected = a.union(b)
        a.union_in_place(b)
        assert a == expected

    def test_union_requires_same_copies(self):
        with pytest.raises(ValueError):
            FMSketchFamily(8).union(FMSketchFamily(16))

    def test_copy_independent(self):
        a = FMSketchFamily.from_items(range(10), num_copies=8)
        b = a.copy()
        b.add(123456)
        assert a.bits is not b.bits

    def test_insertion_order_invariance(self):
        a = FMSketchFamily.from_items([1, 2, 3, 4, 5], num_copies=12)
        b = FMSketchFamily.from_items([5, 4, 3, 2, 1], num_copies=12)
        assert a == b

    def test_estimate_from_bits_matches_instance(self):
        family = FMSketchFamily.from_items(range(64), num_copies=12)
        assert FMSketchFamily.estimate_from_bits(family.bits) == pytest.approx(
            family.estimate()
        )

    def test_more_copies_reduce_error_on_average(self):
        """Across several disjoint sets, f=40 should estimate no worse than f=2."""
        true_count = 400
        errors = {2: [], 40: []}
        for offset in range(5):
            items = range(offset * 1000, offset * 1000 + true_count)
            for copies in errors:
                estimate = FMSketchFamily.from_items(items, num_copies=copies).estimate()
                errors[copies].append(abs(estimate - true_count) / true_count)
        assert np.mean(errors[40]) <= np.mean(errors[2]) + 0.05

    def test_invalid_copies(self):
        with pytest.raises(ValueError):
            FMSketchFamily(0)
