"""Unit tests for road-network serialisation."""

from __future__ import annotations

import pytest

from repro.network.generators import grid_network
from repro.network.io import (
    load_edge_list,
    load_network_json,
    save_edge_list,
    save_network_json,
)


@pytest.fixture
def network():
    return grid_network(4, 5, spacing_km=0.7)


class TestJsonRoundTrip:
    def test_round_trip_preserves_structure(self, network, tmp_path):
        path = tmp_path / "net.json"
        save_network_json(network, path)
        loaded = load_network_json(path)
        assert loaded.num_nodes == network.num_nodes
        assert loaded.num_edges == network.num_edges

    def test_round_trip_preserves_lengths(self, network, tmp_path):
        path = tmp_path / "net.json"
        save_network_json(network, path)
        loaded = load_network_json(path)
        for edge in network.edges():
            assert loaded.edge_length(edge.source, edge.target) == pytest.approx(edge.length)

    def test_round_trip_preserves_coordinates(self, network, tmp_path):
        path = tmp_path / "net.json"
        save_network_json(network, path)
        loaded = load_network_json(path)
        for node in network.nodes():
            assert loaded.node(node.node_id).x == pytest.approx(node.x)
            assert loaded.node(node.node_id).y == pytest.approx(node.y)


class TestEdgeListRoundTrip:
    def test_round_trip_preserves_structure(self, network, tmp_path):
        path = tmp_path / "net.txt"
        save_edge_list(network, path)
        loaded = load_edge_list(path)
        assert loaded.num_nodes == network.num_nodes
        assert loaded.num_edges == network.num_edges

    def test_round_trip_preserves_lengths(self, network, tmp_path):
        path = tmp_path / "net.txt"
        save_edge_list(network, path)
        loaded = load_edge_list(path)
        for edge in network.edges():
            assert loaded.edge_length(edge.source, edge.target) == pytest.approx(edge.length)

    def test_edge_list_without_header_creates_nodes(self, tmp_path):
        path = tmp_path / "bare.txt"
        path.write_text("0 1 2.5\n1 0 2.5\n")
        loaded = load_edge_list(path)
        assert loaded.num_nodes == 2
        assert loaded.edge_length(0, 1) == pytest.approx(2.5)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "blank.txt"
        path.write_text("# node 0 0 0\n\n# node 1 1 0\n0 1 1.0\n\n")
        loaded = load_edge_list(path)
        assert loaded.num_edges == 1
