"""Unit tests for GPS trace simulation and the HMM map-matcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.generators import grid_network
from repro.network.shortest_path import shortest_path_nodes
from repro.trajectory.gps import simulate_gps_trace
from repro.trajectory.mapmatch import HMMMapMatcher, map_match_dataset


@pytest.fixture(scope="module")
def network():
    return grid_network(6, 6, spacing_km=0.5)


@pytest.fixture(scope="module")
def ground_truth_path(network):
    return shortest_path_nodes(network, 0, 35)


class TestSimulateGpsTrace:
    def test_trace_has_points(self, network, ground_truth_path):
        trace = simulate_gps_trace(network, ground_truth_path, seed=1)
        assert len(trace) >= 2

    def test_timestamps_monotone(self, network, ground_truth_path):
        trace = simulate_gps_trace(network, ground_truth_path, seed=1)
        times = [p.timestamp for p in trace.points]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_zero_noise_points_on_path(self, network, ground_truth_path):
        trace = simulate_gps_trace(network, ground_truth_path, noise_std_km=0.0, seed=1)
        coords = network.coordinates()
        path_coords = coords[ground_truth_path]
        for point in trace.points:
            distances = np.hypot(path_coords[:, 0] - point.x, path_coords[:, 1] - point.y)
            # every fix lies within half an edge length of some path node
            assert distances.min() <= 0.3

    def test_denser_sampling_more_points(self, network, ground_truth_path):
        sparse = simulate_gps_trace(network, ground_truth_path, sample_every_km=0.5, seed=1)
        dense = simulate_gps_trace(network, ground_truth_path, sample_every_km=0.1, seed=1)
        assert len(dense) > len(sparse)

    def test_short_path_rejected(self, network):
        with pytest.raises(ValueError):
            simulate_gps_trace(network, [0], seed=1)

    def test_coordinates_shape(self, network, ground_truth_path):
        trace = simulate_gps_trace(network, ground_truth_path, seed=1)
        assert trace.coordinates().shape == (len(trace), 2)


class TestHMMMapMatcher:
    def test_candidates_nearest_first(self, network):
        matcher = HMMMapMatcher(network)
        node = network.node(14)
        candidates = matcher.candidates(node.x + 0.01, node.y - 0.01)
        assert candidates[0][0] == 14

    def test_exact_trace_recovers_path(self, network, ground_truth_path):
        trace = simulate_gps_trace(
            network, ground_truth_path, noise_std_km=0.0, sample_every_km=0.2, seed=1
        )
        matcher = HMMMapMatcher(network, gps_std_km=0.05)
        matched = matcher.match(trace)
        # the matched trajectory must start and end at the true endpoints
        assert matched.nodes[0] == ground_truth_path[0]
        assert matched.nodes[-1] == ground_truth_path[-1]

    def test_noisy_trace_stays_close(self, network, ground_truth_path):
        trace = simulate_gps_trace(
            network, ground_truth_path, noise_std_km=0.05, sample_every_km=0.2, seed=2
        )
        matcher = HMMMapMatcher(network)
        matched = matcher.match(trace)
        truth = set(ground_truth_path)
        overlap = sum(1 for node in matched.nodes if node in truth) / len(matched.nodes)
        assert overlap >= 0.6

    def test_matched_trajectory_is_connected(self, network, ground_truth_path):
        trace = simulate_gps_trace(network, ground_truth_path, noise_std_km=0.08, seed=3)
        matched = HMMMapMatcher(network).match(trace)
        for prev, nxt in zip(matched.nodes, matched.nodes[1:]):
            assert network.has_edge(prev, nxt)

    def test_map_match_dataset(self, network):
        paths = [shortest_path_nodes(network, 0, 35), shortest_path_nodes(network, 5, 30)]
        traces = [
            simulate_gps_trace(network, path, trace_id=i, seed=i) for i, path in enumerate(paths)
        ]
        dataset = map_match_dataset(network, traces)
        assert len(dataset) == 2
        assert dataset.ids() == [0, 1]

    def test_invalid_parameters(self, network):
        with pytest.raises(ValueError):
            HMMMapMatcher(network, candidate_radius_km=0.0)
        with pytest.raises(ValueError):
            HMMMapMatcher(network, gps_std_km=-1.0)
