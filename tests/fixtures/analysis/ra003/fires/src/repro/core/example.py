"""RA003 positive: draw from the global numpy RNG state."""

import numpy as np


def jitter(n):
    return np.random.rand(n)  # expect: RA003
