"""RA003 negative: an explicitly seeded generator."""

import numpy as np


def jitter(n, seed):
    rng = np.random.default_rng(seed)
    return rng.random(n)
