"""RA003 suppressed: justified global draw."""

import numpy as np


def probe(n):
    # diagnostic-only helper; never feeds a selection
    return np.random.rand(n)  # noqa: RA003
