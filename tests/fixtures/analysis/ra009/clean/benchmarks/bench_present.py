"""A registered script-style benchmark."""

import argparse


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--smoke", action="store_true")
    return parser


if __name__ == "__main__":
    build_parser().parse_args()
