SCRIPT_SMOKE_BENCHMARKS = (
    "bench_present",
)
