SCRIPT_SMOKE_BENCHMARKS = (  # expect: RA009
    "bench_missing",
)
