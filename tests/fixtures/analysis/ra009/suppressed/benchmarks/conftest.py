# registry intentionally frozen while bench_present is being rewritten
SCRIPT_SMOKE_BENCHMARKS = (  # noqa: RA009
    "bench_missing",
)
