"""RA008 positive: a registered flag absent from docs/api.md."""

import argparse


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--index", required=True)
    parser.add_argument(
        "--undocumented",  # expect: RA008
        default=None,
    )
    return parser
