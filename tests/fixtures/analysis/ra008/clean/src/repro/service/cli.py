"""RA008 negative: every registered flag is documented."""

import argparse


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--index", required=True)
    parser.add_argument("--output", default=None)
    return parser
