"""RA008 suppressed: a deliberately undocumented flag."""

import argparse


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--index", required=True)
    parser.add_argument(
        # internal debugging switch; deliberately undocumented
        "--debug-probe",  # noqa: RA008
        default=None,
    )
    return parser
