"""RA001 negative: the set is consumed in sorted (deterministic) order."""


def total_gain(values):
    seen = set(values)
    total = 0.0
    for value in sorted(seen):
        total += value
    return total
