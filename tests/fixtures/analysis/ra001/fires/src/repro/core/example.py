"""RA001 positive: float accumulation driven by set iteration order."""


def total_gain(values):
    seen = set(values)
    total = 0.0
    for value in seen:  # expect: RA001
        total += value
    return total
