"""RA001 suppressed: justified set iteration."""


def count_items(values):
    seen = set(values)
    total = 0
    # integer addition commutes exactly; order cannot change the count
    for _ in seen:  # noqa: RA001
        total += 1
    return total
