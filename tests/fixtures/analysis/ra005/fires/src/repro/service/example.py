"""RA005 positive: guarded attribute written outside the lock."""

import threading

from repro.utils.concurrency import guarded_by


@guarded_by("_lock", "counter")
class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counter = 0

    def bump(self) -> None:
        self.counter += 1  # expect: RA005
