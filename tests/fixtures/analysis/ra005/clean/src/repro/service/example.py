"""RA005 negative: every guarded access is inside the critical section."""

import threading

from repro.utils.concurrency import guarded_by, holds_lock


@guarded_by("_lock", "counter")
class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counter = 0

    def bump(self) -> None:
        with self._lock:
            self.counter += 1

    @holds_lock("_lock")
    def _bump_locked(self) -> None:
        self.counter += 1
