"""RA005 suppressed: justified lock-free read."""

import threading

from repro.utils.concurrency import guarded_by


@guarded_by("_lock", "counter")
class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counter = 0

    def peek(self) -> int:
        # monitoring-only read; a stale value is acceptable here
        return self.counter  # noqa: RA005
