"""RA004 negative: the kernel computes without reading a clock."""


def kernel(values):
    return [v * 2 for v in values]
