"""RA004 suppressed: justified clock read."""

import time


def kernel(values):
    # timing wrapper inlined here on purpose; result does not depend on it
    started = time.perf_counter()  # noqa: RA004
    return [v * 2 for v in values], started
