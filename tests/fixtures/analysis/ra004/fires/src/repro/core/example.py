"""RA004 positive: wall-clock read inside a kernel function."""

import time


def kernel(values):
    started = time.perf_counter()  # expect: RA004
    return [v * 2 for v in values], started
