"""RA002 suppressed: justified raw comparison."""


def improves(gain, best_gain):
    # operands are exact integers stored in floats; ties are impossible
    return gain > best_gain  # noqa: RA002
