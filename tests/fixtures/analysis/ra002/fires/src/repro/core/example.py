"""RA002 positive: raw float comparison between gain expressions."""


def improves(gain, best_gain):
    return gain > best_gain  # expect: RA002
