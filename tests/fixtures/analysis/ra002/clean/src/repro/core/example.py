"""RA002 negative: literal sign test + tolerance-based comparison."""

GAIN_RTOL = 1e-9


def improves(gain, best_gain):
    if gain <= 0.0:
        return False
    return gain > best_gain + GAIN_RTOL
