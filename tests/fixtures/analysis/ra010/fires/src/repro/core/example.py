"""RA010 positive: per-call allocations inside an @kernel function."""

import numpy as np

from repro.utils.concurrency import kernel


@kernel
def marginal_gains(self, utilities):
    residual = np.zeros(self.scores.shape)  # expect: RA010
    scratch = np.empty(len(utilities))  # expect: RA010
    widened = utilities.astype(np.float64)  # expect: RA010
    np.subtract(self.scores, widened[:, None], out=residual)
    np.maximum(residual, 0.0, out=scratch)
    return residual.sum(axis=0)
