"""RA010 suppressed: the allocated array escapes as the kernel's result."""

import numpy as np

from repro.utils.concurrency import kernel


@kernel
def gain_updates(self, rows, old_values, new_values):
    if not len(rows):
        # the zero vector escapes as the result, not a per-call temporary
        return np.zeros(self.num_sites, dtype=np.float64)  # noqa: RA010
    return self._accumulate(rows, old_values, new_values)
