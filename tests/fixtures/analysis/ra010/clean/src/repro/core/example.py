"""RA010 negative: the kernel reuses scratch buffers via out= arguments."""

import numpy as np

from repro.utils.concurrency import kernel


@kernel
def marginal_gains(self, utilities):
    residual = self._scratch.get("mg_matrix", self.scores.shape)
    np.subtract(self.scores, utilities[:, None], out=residual)
    np.maximum(residual, 0.0, out=residual)
    return residual.sum(axis=0)


def helper(shape):
    # not an @kernel function: allocation discipline does not apply here
    return np.zeros(shape)
