"""RA007 suppressed: a deliberately unexported field."""


class ServiceStats:
    queries_served: int = 0
    # internal scratch value; intentionally absent from /metrics
    scratch: int = 0  # noqa: RA007

    def as_dict(self):
        return {"queries_served": self.queries_served}
