"""RA007 positive: a stats field missing from the as_dict export."""


class ServiceStats:
    queries_served: int = 0
    cache_hits: int = 0  # expect: RA007

    def as_dict(self):
        return {"queries_served": self.queries_served}
