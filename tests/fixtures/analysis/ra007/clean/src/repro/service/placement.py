"""RA007 negative: fields and as_dict keys match one-to-one."""


class ServiceStats:
    queries_served: int = 0
    cache_hits: int = 0

    def as_dict(self):
        return {
            "queries_served": self.queries_served,
            "cache_hits": self.cache_hits,
        }
