"""RA006 positive: guarded attribute written under the read lock."""

from repro.utils.concurrency import guarded_by


@guarded_by("_rw", "value", rw=True)
class Holder:
    def __init__(self, rw_lock) -> None:
        self._rw = rw_lock
        self.value = 0

    def publish(self, value) -> None:
        with self._rw.read_locked():
            self.value = value  # expect: RA006
