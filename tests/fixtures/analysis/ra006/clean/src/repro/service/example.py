"""RA006 negative: reads under the read lock, writes under the write lock."""

from repro.utils.concurrency import guarded_by


@guarded_by("_rw", "value", rw=True)
class Holder:
    def __init__(self, rw_lock) -> None:
        self._rw = rw_lock
        self.value = 0

    def read(self):
        with self._rw.read_locked():
            return self.value

    def publish(self, value) -> None:
        with self._rw.write_locked():
            self.value = value
