"""Unit tests for Greedy-GDSP distance-based clustering."""

from __future__ import annotations

import pytest

from repro.core.gdsp import GreedyGDSP
from repro.network.generators import grid_network, random_planar_network
from repro.network.shortest_path import ShortestPathEngine


@pytest.fixture(scope="module")
def network():
    return grid_network(8, 8, spacing_km=0.5)


@pytest.fixture(scope="module")
def engine(network):
    return ShortestPathEngine(network)


@pytest.fixture(scope="module")
def gdsp(network, engine):
    return GreedyGDSP(network, engine=engine)


class TestClusteringInvariants:
    @pytest.mark.parametrize("radius", [0.3, 0.6, 1.2])
    def test_partition_covers_all_nodes(self, network, gdsp, radius):
        result = gdsp.cluster(radius)
        clustered = set()
        for cluster in result.clusters:
            clustered.update(cluster.nodes)
        assert clustered == set(network.node_ids())

    @pytest.mark.parametrize("radius", [0.3, 0.6, 1.2])
    def test_clusters_are_disjoint(self, gdsp, radius):
        result = gdsp.cluster(radius)
        seen = set()
        for cluster in result.clusters:
            for node in cluster.nodes:
                assert node not in seen
                seen.add(node)

    @pytest.mark.parametrize("radius", [0.3, 0.6, 1.2])
    def test_radius_invariant(self, gdsp, radius):
        """Every member's round-trip distance to its center is at most 2R."""
        result = gdsp.cluster(radius)
        for cluster in result.clusters:
            for round_trip in cluster.node_round_trip_km:
                assert round_trip <= 2.0 * radius + 1e-9

    @pytest.mark.parametrize("radius", [0.3, 0.6, 1.2])
    def test_node_to_cluster_consistent(self, gdsp, radius):
        result = gdsp.cluster(radius)
        for cluster in result.clusters:
            for node in cluster.nodes:
                assert result.node_to_cluster[node] == cluster.cluster_id

    def test_center_belongs_to_its_cluster(self, gdsp):
        result = gdsp.cluster(0.6)
        for cluster in result.clusters:
            assert cluster.center in cluster.nodes
            assert cluster.round_trip_to_center(cluster.center) == pytest.approx(0.0)

    def test_larger_radius_fewer_clusters(self, gdsp):
        fine = gdsp.cluster(0.3)
        coarse = gdsp.cluster(1.2)
        assert coarse.num_clusters < fine.num_clusters

    def test_tiny_radius_singleton_clusters(self, network, gdsp):
        result = gdsp.cluster(0.05)
        assert result.num_clusters == network.num_nodes

    def test_build_time_recorded(self, gdsp):
        result = gdsp.cluster(0.6)
        assert result.build_seconds > 0.0
        assert result.mean_dominating_set_size >= 1.0

    def test_invalid_radius(self, gdsp):
        with pytest.raises(ValueError):
            gdsp.cluster(0.0)


class TestGreedyQuality:
    def test_greedy_is_reasonably_small(self, network, gdsp, engine):
        """Greedy-GDSP should not produce more clusters than a naive sweep."""
        radius = 0.6
        result = gdsp.cluster(radius)
        # naive baseline: scan nodes in id order, open a cluster whenever the
        # node is not yet dominated by an existing center
        dominating = engine.bounded_round_trip_neighbors(radius)
        covered: set[int] = set()
        naive_centers = 0
        for node in network.node_ids():
            if node not in covered:
                naive_centers += 1
                covered.update(int(v) for v in dominating[node])
        assert result.num_clusters <= naive_centers * 1.5


class TestFMVariant:
    def test_fm_clustering_valid_partition(self, network, engine):
        gdsp_fm = GreedyGDSP(network, engine=engine, use_fm_sketches=True, num_sketches=20)
        result = gdsp_fm.cluster(0.6)
        clustered = set()
        for cluster in result.clusters:
            clustered.update(cluster.nodes)
        assert clustered == set(network.node_ids())

    def test_fm_radius_invariant(self, network, engine):
        gdsp_fm = GreedyGDSP(network, engine=engine, use_fm_sketches=True, num_sketches=20)
        result = gdsp_fm.cluster(0.6)
        for cluster in result.clusters:
            for round_trip in cluster.node_round_trip_km:
                assert round_trip <= 1.2 + 1e-9

    def test_fm_cluster_count_close_to_exact(self, network, engine, gdsp):
        exact = gdsp.cluster(0.6).num_clusters
        fm = GreedyGDSP(network, engine=engine, use_fm_sketches=True, num_sketches=30)
        approx = fm.cluster(0.6).num_clusters
        assert approx <= exact * 2


class TestDirectedNetwork:
    def test_asymmetric_round_trips_respected(self):
        network = random_planar_network(50, area_km=4.0, seed=21)
        gdsp = GreedyGDSP(network)
        result = gdsp.cluster(0.5)
        engine = ShortestPathEngine(network)
        for cluster in result.clusters[:5]:
            forward = engine.distances_from([cluster.center])[0]
            backward = engine.distances_to([cluster.center])[0]
            for node, stored in zip(cluster.nodes, cluster.node_round_trip_km):
                assert stored == pytest.approx(forward[node] + backward[node], abs=1e-9)
