"""Unit tests for Inc-Greedy (Algorithm 1) and the CELF lazy greedy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coverage import CoverageIndex, SparseCoverageIndex
from repro.core.greedy import IncGreedy, LazyGreedy, greedy_max_coverage_columns
from repro.core.preference import (
    BinaryPreference,
    ExponentialPreference,
    LinearPreference,
)


def coverage_from_scores(scores, tau=1.0):
    """Build a CoverageIndex whose ψ-scores equal the given matrix.

    Uses the linear preference with τ=1 and detours ``1 − score`` so that
    ψ(d) = 1 − d = score.
    """
    scores = np.asarray(scores, dtype=float)
    detours = 1.0 - scores
    detours[scores == 0.0] = np.inf
    return CoverageIndex(detours, tau, LinearPreference())


@pytest.fixture
def paper_example():
    """Example 1 / Table 2 of the paper: 2 trajectories, 3 sites."""
    scores = np.asarray([[0.4, 0.11, 0.0], [0.0, 0.5, 0.6]])
    return coverage_from_scores(scores)


class TestPaperExample:
    def test_greedy_matches_table3(self, paper_example):
        """Inc-Greedy picks {s2, s1} for a utility of 0.9 (Table 3)."""
        greedy = IncGreedy(paper_example)
        columns, utilities, _ = greedy.select(k=2)
        assert set(columns) == {0, 1}
        assert float(np.sum(utilities)) == pytest.approx(0.9, abs=1e-9)

    def test_first_pick_is_s2(self, paper_example):
        greedy = IncGreedy(paper_example)
        columns, _, _ = greedy.select(k=1)
        assert columns == [1]

    def test_optimal_differs(self, paper_example):
        """The optimal {s1, s3} achieves 1.0 — greedy is sub-optimal here."""
        assert paper_example.utility_of([0, 2]) == pytest.approx(1.0, abs=1e-9)


class TestStrategiesAgree:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_incremental_equals_recompute(self, grid_coverage, k):
        incremental = IncGreedy(grid_coverage, update_strategy="incremental")
        recompute = IncGreedy(grid_coverage, update_strategy="recompute")
        cols_a, util_a, _ = incremental.select(k)
        cols_b, util_b, _ = recompute.select(k)
        assert float(np.sum(util_a)) == pytest.approx(float(np.sum(util_b)), rel=1e-9)

    def test_invalid_strategy(self, grid_coverage):
        with pytest.raises(ValueError):
            IncGreedy(grid_coverage, update_strategy="bogus")


class TestSelection:
    def test_selects_k_sites(self, grid_coverage):
        columns, _, _ = IncGreedy(grid_coverage).select(5)
        assert len(columns) == 5
        assert len(set(columns)) == 5

    def test_marginal_gains_non_increasing(self, grid_coverage):
        _, _, gains = IncGreedy(grid_coverage).select(8)
        assert all(b <= a + 1e-9 for a, b in zip(gains, gains[1:]))

    def test_utility_monotone_in_k(self, grid_coverage):
        utilities = []
        for k in (1, 3, 5, 8):
            _, per_traj, _ = IncGreedy(grid_coverage).select(k)
            utilities.append(float(np.sum(per_traj)))
        assert all(b >= a - 1e-9 for a, b in zip(utilities, utilities[1:]))

    def test_k_larger_than_sites(self):
        cov = coverage_from_scores([[1.0, 0.5], [0.5, 1.0]])
        columns, _, _ = IncGreedy(cov).select(10)
        assert len(columns) <= 2

    def test_invalid_k(self, grid_coverage):
        with pytest.raises(ValueError):
            IncGreedy(grid_coverage).select(0)

    def test_tie_break_prefers_higher_index(self):
        scores = np.asarray([[1.0, 1.0]])
        cov = coverage_from_scores(scores)
        columns, _, _ = IncGreedy(cov).select(1)
        assert columns == [1]


class TestExistingServices:
    def test_existing_services_seed_utility(self, grid_coverage):
        greedy = IncGreedy(grid_coverage)
        plain_cols, plain_util, _ = greedy.select(3)
        seeded_cols, seeded_util, _ = greedy.select(3, existing_columns=plain_cols[:1])
        assert plain_cols[0] not in seeded_cols
        assert float(np.sum(seeded_util)) >= float(np.sum(plain_util)) - 1e-9

    def test_solve_with_existing_sites(self, grid_coverage, binary_query):
        first = IncGreedy(grid_coverage).solve(binary_query)
        seeded = IncGreedy(grid_coverage).solve(
            binary_query, existing_sites=[first.sites[0]]
        )
        assert first.sites[0] not in seeded.sites
        assert seeded.utility >= first.utility - 1e-9


class TestCapacities:
    def test_zero_capacity_site_never_helps(self):
        scores = np.asarray([[1.0, 0.9], [1.0, 0.9], [0.0, 0.9]])
        cov = coverage_from_scores(scores)
        capacities = np.asarray([0, 10])
        columns, utilities, _ = IncGreedy(cov).select(1, capacities=capacities)
        assert columns == [1]

    def test_capacity_limits_served_count(self):
        scores = np.ones((5, 1))
        cov = coverage_from_scores(scores)
        _, utilities, _ = IncGreedy(cov).select(1, capacities=np.asarray([2]))
        assert float(np.sum(utilities)) == pytest.approx(2.0)


class TestSolve:
    def test_solve_returns_result(self, grid_coverage, binary_query):
        result = IncGreedy(grid_coverage).solve(binary_query)
        assert result.algorithm == "inc-greedy"
        assert len(result.sites) == binary_query.k
        assert result.utility == pytest.approx(sum(result.per_trajectory_utility))
        assert result.elapsed_seconds >= 0.0

    def test_sites_are_labels_not_columns(self, grid_problem, binary_query):
        coverage = grid_problem.coverage(binary_query)
        result = IncGreedy(coverage).solve(binary_query)
        for site in result.sites:
            assert grid_problem.network.has_node(site)


def random_instance(rng):
    """A random (detours, τ) pair with mixed density for property tests."""
    m = int(rng.integers(5, 60))
    n = int(rng.integers(3, 40))
    density = float(rng.uniform(0.05, 0.6))
    detours = np.where(rng.random((m, n)) < density, rng.random((m, n)) * 2.0, np.inf)
    tau = float(rng.uniform(0.3, 1.5))
    return detours, tau


PREFERENCES = [BinaryPreference(), LinearPreference(), ExponentialPreference()]


class TestLazyGreedyEquivalence:
    """CELF must return exactly Inc-Greedy's selections (paper tie-breaks)."""

    def test_paper_example(self, paper_example):
        columns, utilities, _ = LazyGreedy(paper_example).select(2)
        assert set(columns) == {0, 1}
        assert float(np.sum(utilities)) == pytest.approx(0.9, abs=1e-9)

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("preference", PREFERENCES)
    def test_matches_recompute_on_random_instances(self, seed, preference):
        rng = np.random.default_rng(seed)
        detours, tau = random_instance(rng)
        dense = CoverageIndex(detours, tau, preference)
        sparse = SparseCoverageIndex(detours, tau, preference)
        k = int(rng.integers(1, 8))
        reference, ref_util, ref_gains = IncGreedy(dense, "recompute").select(k)
        for coverage in (dense, sparse):
            columns, utilities, gains = LazyGreedy(coverage).select(k)
            assert columns == reference
            assert np.allclose(utilities, ref_util)
            assert np.allclose(gains, ref_gains)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_with_weighted_trajectories(self, seed):
        rng = np.random.default_rng(100 + seed)
        detours, tau = random_instance(rng)
        weights = rng.uniform(0.5, 3.0, detours.shape[0])
        dense = CoverageIndex(detours, tau, LinearPreference(), trajectory_weights=weights)
        sparse = SparseCoverageIndex(
            detours, tau, LinearPreference(), trajectory_weights=weights
        )
        reference, _, _ = IncGreedy(dense, "recompute").select(5)
        assert LazyGreedy(dense).select(5)[0] == reference
        assert LazyGreedy(sparse).select(5)[0] == reference

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("preference", [BinaryPreference(), LinearPreference()])
    def test_matches_with_capacities(self, seed, preference):
        rng = np.random.default_rng(200 + seed)
        detours, tau = random_instance(rng)
        m, n = detours.shape
        capacities = rng.integers(0, m + 3, n)
        dense = CoverageIndex(detours, tau, preference)
        sparse = SparseCoverageIndex(detours, tau, preference)
        k = int(rng.integers(1, 8))
        reference, ref_util, _ = IncGreedy(dense, "recompute").select(
            k, capacities=capacities
        )
        for coverage in (dense, sparse):
            columns, utilities, _ = LazyGreedy(coverage).select(k, capacities=capacities)
            assert columns == reference
            assert np.allclose(utilities, ref_util)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_with_existing_columns(self, seed):
        rng = np.random.default_rng(300 + seed)
        detours, tau = random_instance(rng)
        n = detours.shape[1]
        existing = list(rng.choice(n, size=min(2, n), replace=False))
        dense = CoverageIndex(detours, tau, LinearPreference())
        sparse = SparseCoverageIndex(detours, tau, LinearPreference())
        reference, ref_util, _ = IncGreedy(dense, "recompute").select(
            4, existing_columns=list(existing)
        )
        for coverage in (dense, sparse):
            columns, utilities, _ = LazyGreedy(coverage).select(
                4, existing_columns=list(existing)
            )
            assert columns == reference
            assert np.allclose(utilities, ref_util)

    def test_matches_incremental_utility_on_grid(self, grid_coverage):
        incremental = IncGreedy(grid_coverage, update_strategy="incremental")
        for k in (1, 3, 5):
            _, util_inc, _ = incremental.select(k)
            _, util_lazy, _ = LazyGreedy(grid_coverage).select(k)
            assert float(np.sum(util_lazy)) == pytest.approx(
                float(np.sum(util_inc)), rel=1e-9
            )

    def test_tie_break_prefers_weight_then_index(self):
        # two identical columns (tie on gain and weight -> larger index) and
        # one lighter column
        scores = np.asarray([[1.0, 1.0, 0.4], [1.0, 1.0, 0.0]])
        cov = coverage_from_scores(scores)
        assert LazyGreedy(cov).select(1)[0] == [1]
        assert IncGreedy(cov, "recompute").select(1)[0] == [1]


class TestLazyGreedyBehaviour:
    def test_update_strategy_entry_point(self, grid_coverage):
        via_inc = IncGreedy(grid_coverage, update_strategy="lazy").select(5)
        direct = LazyGreedy(grid_coverage).select(5)
        assert via_inc[0] == direct[0]

    def test_sparse_coverage_requires_lazy(self):
        sparse = SparseCoverageIndex(np.zeros((2, 2)), 1.0, BinaryPreference())
        with pytest.raises(ValueError):
            IncGreedy(sparse, update_strategy="incremental")
        columns, _, _ = IncGreedy(sparse, update_strategy="lazy").select(1)
        assert len(columns) == 1

    def test_lazy_evaluates_fewer_gains(self, grid_coverage):
        sparse = SparseCoverageIndex(
            grid_coverage.detours,
            grid_coverage.tau_km,
            grid_coverage.preference,
        )
        greedy = LazyGreedy(sparse)
        k = 8
        greedy.select(k)
        eager_evaluations = k * sparse.num_sites
        assert greedy.last_num_evaluations < eager_evaluations

    def test_solve_reports_metadata(self, grid_coverage, binary_query):
        result = LazyGreedy(grid_coverage).solve(binary_query)
        assert result.algorithm == "lazy-greedy"
        assert len(result.sites) == binary_query.k
        assert result.metadata["update_strategy"] == "lazy"
        assert result.metadata["num_gain_evaluations"] >= grid_coverage.num_sites

    def test_empty_coverage_selects_one_site(self):
        """On a fully empty instance both solvers pick exactly one zero-gain site."""
        detours = np.full((3, 4), np.inf)
        dense = CoverageIndex(detours, 1.0, BinaryPreference())
        sparse = SparseCoverageIndex(detours, 1.0, BinaryPreference())
        reference, _, _ = IncGreedy(dense, "recompute").select(3)
        columns, utilities, _ = LazyGreedy(sparse).select(3)
        assert columns == reference
        assert len(columns) == 1
        assert float(np.sum(utilities)) == 0.0


class TestGreedyMaxCoverage:
    def test_columns_and_utilities(self):
        scores = np.asarray([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        columns, utilities = greedy_max_coverage_columns(scores, 1)
        assert columns == [0]
        assert float(np.sum(utilities)) == 2.0

    def test_selects_min_of_k_and_columns(self):
        scores = np.ones((3, 2))
        columns, _ = greedy_max_coverage_columns(scores, 5)
        assert len(columns) == 2
