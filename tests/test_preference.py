"""Unit tests for the preference-function family ψ."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preference import (
    BinaryPreference,
    ConvexProbabilityPreference,
    ExponentialPreference,
    InconveniencePreference,
    LinearPreference,
)

BOUNDED_PREFERENCES = [
    BinaryPreference(),
    LinearPreference(),
    ExponentialPreference(),
    ConvexProbabilityPreference(),
]


class TestCutoff:
    @pytest.mark.parametrize("pref", BOUNDED_PREFERENCES, ids=lambda p: p.name)
    def test_zero_beyond_tau(self, pref):
        assert pref(1.5, tau_km=1.0) == 0.0

    @pytest.mark.parametrize("pref", BOUNDED_PREFERENCES, ids=lambda p: p.name)
    def test_positive_at_zero_detour(self, pref):
        assert pref(0.0, tau_km=1.0) > 0.0

    @pytest.mark.parametrize("pref", BOUNDED_PREFERENCES, ids=lambda p: p.name)
    def test_scores_in_unit_interval(self, pref):
        detours = np.linspace(0, 2.0, 21)
        scores = pref(detours, tau_km=1.0)
        assert np.all(scores >= 0.0)
        assert np.all(scores <= 1.0)

    @pytest.mark.parametrize("pref", BOUNDED_PREFERENCES, ids=lambda p: p.name)
    def test_non_increasing(self, pref):
        detours = np.linspace(0, 1.0, 50)
        scores = pref(detours, tau_km=1.0)
        assert np.all(np.diff(scores) <= 1e-12)

    @pytest.mark.parametrize("pref", BOUNDED_PREFERENCES, ids=lambda p: p.name)
    def test_infinite_detour_zero(self, pref):
        assert pref(np.inf, tau_km=1.0) == 0.0

    @pytest.mark.parametrize("pref", BOUNDED_PREFERENCES, ids=lambda p: p.name)
    def test_scalar_in_scalar_out(self, pref):
        assert isinstance(pref(0.5, tau_km=1.0), float)

    @pytest.mark.parametrize("pref", BOUNDED_PREFERENCES, ids=lambda p: p.name)
    def test_array_in_array_out(self, pref):
        result = pref(np.asarray([0.1, 0.2]), tau_km=1.0)
        assert isinstance(result, np.ndarray)
        assert result.shape == (2,)


class TestBinary:
    def test_one_within_tau(self):
        pref = BinaryPreference()
        assert pref(0.99, tau_km=1.0) == 1.0
        assert pref(1.0, tau_km=1.0) == 1.0

    def test_is_binary_flag(self):
        assert BinaryPreference().is_binary
        assert not LinearPreference().is_binary


class TestLinear:
    def test_midpoint(self):
        assert LinearPreference()(0.5, tau_km=1.0) == pytest.approx(0.5)

    def test_zero_tau(self):
        pref = LinearPreference()
        assert pref(0.0, tau_km=0.0) == 1.0
        assert pref(0.5, tau_km=0.0) == 0.0


class TestExponential:
    def test_decay_rate(self):
        fast = ExponentialPreference(decay=4.0)
        slow = ExponentialPreference(decay=1.0)
        assert fast(0.5, tau_km=1.0) < slow(0.5, tau_km=1.0)

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            ExponentialPreference(decay=0.0)


class TestConvexProbability:
    def test_convexity_below_linear(self):
        convex = ConvexProbabilityPreference(power=2.0)
        linear = LinearPreference()
        assert convex(0.5, tau_km=1.0) < linear(0.5, tau_km=1.0)

    def test_power_one_equals_linear(self):
        convex = ConvexProbabilityPreference(power=1.0)
        linear = LinearPreference()
        detours = np.linspace(0, 1, 11)
        assert np.allclose(convex(detours, 1.0), linear(detours, 1.0))

    def test_invalid_power(self):
        with pytest.raises(ValueError):
            ConvexProbabilityPreference(power=0.0)


class TestInconvenience:
    def test_negated_detour(self):
        pref = InconveniencePreference()
        assert pref(2.5, tau_km=1e12) == pytest.approx(-2.5)

    def test_non_increasing(self):
        pref = InconveniencePreference()
        scores = pref(np.asarray([0.0, 1.0, 2.0]), tau_km=1e12)
        assert np.all(np.diff(scores) <= 0)
