"""Tests for the asyncio HTTP serving front end (``repro.service.server``).

Everything here drives a real server over real sockets: the
:func:`~repro.service.server.serve_in_background` handle binds an
ephemeral port on a dedicated event-loop thread and the tests speak plain
``http.client`` to it — the same path the benchmark harness and the CI
serving-smoke job exercise.

The coalescing / backpressure / timeout / drain tests inject a
:class:`GatedService` whose ``batch_query`` blocks on an event until the
test releases it, which makes "while the first request is still
computing" a deterministic state instead of a sleep-tuned race.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.service.placement import PlacementService
from repro.service.server import (
    LatencyReservoir,
    PlacementServer,
    serve_in_background,
)
from repro.service.specs import QuerySpec


class GatedService(PlacementService):
    """A placement service whose ``batch_query`` waits for a test-held gate.

    ``calls`` counts the underlying ``batch_query`` invocations (the
    coalescing assertions), and ``gate`` starts open so construction-time
    queries run through.
    """

    def __init__(self, index, **kwargs) -> None:
        super().__init__(index, **kwargs)
        self.gate = threading.Event()
        self.gate.set()
        self.calls = 0
        self._call_count_lock = threading.Lock()

    def batch_query(self, specs, use_cache=True):
        with self._call_count_lock:
            self.calls += 1
        assert self.gate.wait(timeout=20), "test gate never released"
        return super().batch_query(specs, use_cache=use_cache)


def request(
    address: tuple[str, int],
    method: str,
    path: str,
    payload=None,
    timeout: float = 20.0,
):
    """One HTTP request; returns ``(status, headers, parsed-or-text body)``."""
    host, port = address
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body)
        response = conn.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        is_json = content_type.startswith("application/json")
        parsed = json.loads(raw) if is_json else raw.decode()
        return response.status, dict(response.getheaders()), parsed
    finally:
        conn.close()


def wait_until(predicate, timeout: float = 10.0, message: str = "condition"):
    """Poll *predicate* until true (sub-ms requests make sleeps racy)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.fixture(scope="module")
def served(tiny_netclus):
    """A served (read-only) tiny index + a direct reference service."""
    service = PlacementService(tiny_netclus)
    reference = PlacementService(tiny_netclus)
    with serve_in_background(service) as handle:
        yield handle, service, reference


# ---------------------------------------------------------------------- #
# basic endpoints + parity
# ---------------------------------------------------------------------- #
def test_healthz(served):
    handle, _, _ = served
    status, _, body = request(handle.address, "GET", "/healthz")
    assert status == 200
    assert body["status"] == "ok"
    assert body["draining"] is False


def test_unknown_endpoint_404(served):
    handle, _, _ = served
    status, _, body = request(handle.address, "GET", "/nope")
    assert status == 404
    assert "no such endpoint" in body["error"]


def test_wrong_method_405(served):
    handle, _, _ = served
    status, _, _ = request(handle.address, "POST", "/healthz")
    assert status == 405
    status, _, _ = request(handle.address, "GET", "/query")
    assert status == 405


def test_bad_json_400(served):
    handle, _, _ = served
    host, port = handle.address
    conn = http.client.HTTPConnection(host, port, timeout=10)
    conn.request("POST", "/query", body=b"{not json")
    response = conn.getresponse()
    assert response.status == 400
    assert b"not valid JSON" in response.read()
    conn.close()


def test_bad_spec_400(served):
    handle, _, _ = served
    status, _, body = request(
        handle.address, "POST", "/query", [{"k": 3, "tau_km": 0.8, "typo": 1}]
    )
    assert status == 400
    assert "typo" in body["error"]
    status, _, _ = request(handle.address, "POST", "/query", [])
    assert status == 400


def test_served_placements_byte_identical_to_direct_service(served):
    """The acceptance bar: HTTP answers == in-process ``batch_query``."""
    handle, _, reference = served
    specs = [
        QuerySpec(k=3, tau_km=0.8),
        QuerySpec(k=6, tau_km=0.8),
        QuerySpec(k=4, tau_km=1.6, preference="linear"),
        QuerySpec(k=3, tau_km=0.8, capacity=25),
        QuerySpec(k=1, tau_km=0.8, budget=3.0),
    ]
    status, _, body = request(
        handle.address, "POST", "/query", [spec.to_dict() for spec in specs]
    )
    assert status == 200
    direct = reference.batch_query(specs, use_cache=False)
    assert len(body["results"]) == len(direct)
    for served_entry, want, spec in zip(body["results"], direct, specs):
        assert tuple(served_entry["sites"]) == want.sites
        assert served_entry["utility"] == want.utility
        assert (
            np.asarray(served_entry["per_trajectory_utility"], dtype=np.float64).tobytes()
            == np.asarray(want.per_trajectory_utility, dtype=np.float64).tobytes()
        ), f"per-trajectory utilities diverged for {spec}"


def test_query_accepts_object_envelope(served):
    handle, _, _ = served
    spec = {"k": 3, "tau_km": 0.8}
    status, _, body = request(
        handle.address, "POST", "/query", {"specs": [spec], "use_cache": False}
    )
    assert status == 200
    assert len(body["results"]) == 1
    assert body["results"][0]["spec"]["k"] == 3


def test_metrics_exposes_service_and_server_counters(served):
    handle, _, _ = served
    # ensure there is traffic to report
    request(handle.address, "POST", "/query", [{"k": 3, "tau_km": 0.8}])
    status, headers, text = request(handle.address, "GET", "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    lines = text.splitlines()
    assert any(line.startswith("netclus_service_queries_served") for line in lines)
    assert 'netclus_server_requests_total{endpoint="query"}' in text
    assert 'netclus_server_responses_total{status="200"}' in text
    assert (
        'netclus_server_request_latency_seconds{endpoint="query",quantile="0.99"}'
        in text
    )
    assert "netclus_index_version" in text
    # HELP/TYPE headers rendered once per metric name
    helps = [line for line in lines if line.startswith("# HELP")]
    assert len(helps) == len(set(helps))


# ---------------------------------------------------------------------- #
# coalescing
# ---------------------------------------------------------------------- #
def _background_query(handle, payload, results, key):
    results[key] = request(handle.address, "POST", "/query", payload, timeout=30)


def test_identical_concurrent_specs_coalesce_to_one_batch_query(tiny_netclus):
    """Two concurrent requests for one spec run ONE underlying batch_query."""
    service = GatedService(tiny_netclus)
    spec = {"k": 4, "tau_km": 0.8}
    with serve_in_background(service) as handle:
        service.gate.clear()
        results: dict[str, tuple] = {}
        first = threading.Thread(
            target=_background_query, args=(handle, [spec], results, "first")
        )
        first.start()
        wait_until(lambda: service.calls == 1, message="first request to reach the service")
        second = threading.Thread(
            target=_background_query, args=(handle, [spec], results, "second")
        )
        second.start()
        wait_until(
            lambda: handle.server.stats.coalesced_specs >= 1,
            message="second request to coalesce",
        )
        service.gate.set()
        first.join(timeout=20)
        second.join(timeout=20)

        assert results["first"][0] == 200 and results["second"][0] == 200
        assert results["first"][2]["results"][0]["sites"] == (
            results["second"][2]["results"][0]["sites"]
        )
        # one underlying service call, one greedy run — the second request
        # shared the first's future instead of queueing duplicate work
        assert service.calls == 1
        assert service.stats.greedy_runs == 1
        assert service.stats.coverage_builds == 1
        assert handle.server.stats.coalesced_specs == 1


def test_duplicate_specs_within_one_request_coalesce(tiny_netclus):
    service = GatedService(tiny_netclus)
    spec = {"k": 3, "tau_km": 0.8}
    with serve_in_background(service) as handle:
        status, _, body = request(handle.address, "POST", "/query", [spec, spec, spec])
        assert status == 200
        assert service.calls == 1
        assert handle.server.stats.coalesced_specs == 2
        sites = [tuple(entry["sites"]) for entry in body["results"]]
        assert sites[0] == sites[1] == sites[2]


# ---------------------------------------------------------------------- #
# backpressure
# ---------------------------------------------------------------------- #
def test_queue_full_rejects_503_without_corrupting_inflight_work(tiny_netclus):
    service = GatedService(tiny_netclus)
    reference = PlacementService(tiny_netclus)
    slow_spec = {"k": 4, "tau_km": 0.8}
    with serve_in_background(service, max_inflight=1) as handle:
        service.gate.clear()
        results: dict[str, tuple] = {}
        first = threading.Thread(
            target=_background_query, args=(handle, [slow_spec], results, "slow")
        )
        first.start()
        wait_until(lambda: service.calls == 1, message="slow request to be admitted")

        status, headers, body = request(
            handle.address, "POST", "/query", [{"k": 2, "tau_km": 1.6}]
        )
        assert status == 503
        assert "over capacity" in body["error"]
        assert headers.get("Retry-After") == "1"
        assert handle.server.stats.rejected_total == 1
        # health/metrics stay reachable while queries are saturated
        assert request(handle.address, "GET", "/healthz")[0] == 200
        assert request(handle.address, "GET", "/metrics")[0] == 200

        service.gate.set()
        first.join(timeout=20)
        # the in-flight request finished unharmed and correct
        assert results["slow"][0] == 200
        want = reference.query(QuerySpec(**slow_spec), use_cache=False)
        assert tuple(results["slow"][2]["results"][0]["sites"]) == want.sites

        # capacity is released: the previously rejected spec now answers
        status, _, _ = request(handle.address, "POST", "/query", [{"k": 2, "tau_km": 1.6}])
        assert status == 200


# ---------------------------------------------------------------------- #
# per-request timeout
# ---------------------------------------------------------------------- #
def test_request_timeout_answers_504_and_computation_survives(tiny_netclus):
    service = GatedService(tiny_netclus)
    spec = {"k": 3, "tau_km": 0.8}
    with serve_in_background(service, request_timeout=0.2) as handle:
        service.gate.clear()
        status, _, body = request(handle.address, "POST", "/query", [spec], timeout=30)
        assert status == 504
        assert "exceeded" in body["error"]
        assert handle.server.stats.timeouts_total == 1

        # the computation was not abandoned: once the gate opens it
        # completes, clears the in-flight table and warms the cache
        service.gate.set()
        wait_until(lambda: service.stats.greedy_runs >= 1, message="background completion")
        wait_until(
            lambda: not handle.server._inflight_specs,
            message="in-flight table to clear",
        )
        status, _, body = request(handle.address, "POST", "/query", [spec])
        assert status == 200
        wait_until(lambda: service.stats.cache_hits >= 1, message="cache hit")


# ---------------------------------------------------------------------- #
# updates through the writer lock
# ---------------------------------------------------------------------- #
@pytest.fixture
def mutable_served(tiny_problem):
    """A freshly built (mutable) served index — mutation tests only."""
    index = tiny_problem.build_netclus_index(gamma=0.75, tau_min_km=0.4, tau_max_km=4.0)
    service = PlacementService(index)
    with serve_in_background(service) as handle:
        yield handle, service


def test_update_bumps_version_and_later_queries_see_it(mutable_served):
    handle, service = mutable_served
    spec = {"k": 5, "tau_km": 0.8}
    status, _, before = request(handle.address, "POST", "/query", [spec])
    assert status == 200
    victim = before["results"][0]["sites"][0]

    status, _, body = request(
        handle.address, "POST", "/update", {"remove_sites": [victim]}
    )
    assert status == 200
    assert body["applied"] == 1
    assert body["index_version"] == body["index_version_before"] + 1
    assert service.index.version == body["index_version"]

    status, _, health = request(handle.address, "GET", "/healthz")
    assert health["index_version"] == body["index_version"]

    status, _, after = request(handle.address, "POST", "/query", [spec])
    assert status == 200
    assert victim not in after["results"][0]["sites"]
    assert after["index_version"] == body["index_version"]


def test_update_add_trajectory_over_http(mutable_served, tiny_problem):
    handle, service = mutable_served
    # a valid two-node walk along an existing edge of the network
    network = service.index.network
    node = next(n for n in network.node_ids() if network.successors(n))
    neighbor = next(iter(network.successors(node)))
    new_id = max(service.index.trajectory_ids) + 1
    status, _, body = request(
        handle.address,
        "POST",
        "/update",
        {"add_trajectories": [{"traj_id": new_id, "nodes": [node, neighbor]}]},
    )
    assert status == 200
    assert body["applied"] == 1
    assert new_id in service.index.trajectory_ids


def test_update_rejects_bad_deltas(mutable_served):
    handle, _ = mutable_served
    status, _, body = request(handle.address, "POST", "/update", {"bogus": [1]})
    assert status == 400
    assert "unknown update fields" in body["error"]
    status, _, body = request(handle.address, "POST", "/update", {})
    assert status == 400
    assert "empty update" in body["error"]
    # a site the index does not know: validated up front, nothing applied
    status, _, body = request(
        handle.address, "POST", "/update", {"remove_sites": [99999]}
    )
    assert status == 400


def test_update_then_query_served_from_patched_coverage_cache(tiny_problem):
    """The zero-rebuild bar over HTTP: ``POST /update`` then ``POST /query``
    on the same (τ, ψ) answers from the *patched* cache — exactly zero
    coverage builds after warm-up — and the answer is byte-identical to a
    cold coverage rebuild on the updated index."""
    import copy

    index = tiny_problem.build_netclus_index(
        gamma=0.75, tau_min_km=0.4, tau_max_km=4.0
    )
    service = PlacementService(index, engine="sparse", coverage_cache=True)
    spec = {"k": 5, "tau_km": 0.8}
    with serve_in_background(service) as handle:
        status, _, before = request(handle.address, "POST", "/query", [spec])
        assert status == 200
        assert service.stats.coverage_builds == 1  # the one cold warm-up build
        builds_after_warmup = service.stats.coverage_builds

        victim = before["results"][0]["sites"][0]
        status, _, body = request(
            handle.address, "POST", "/update", {"remove_sites": [victim]}
        )
        assert status == 200
        assert body["applied"] == 1

        status, _, after = request(handle.address, "POST", "/query", [spec])
        assert status == 200
        assert victim not in after["results"][0]["sites"]
        # the defining property: the post-update answer required no
        # coverage build — the part was patched, not rebuilt
        assert service.stats.coverage_builds == builds_after_warmup
        assert service.coverage_cache.stats()["patches"] == 1
        assert service.coverage_cache.stats()["invalidations"] == 0

        # byte parity against a cold coverage build on the updated index
        cold_index = copy.deepcopy(service.index)
        cold_index.coverage_cache = None
        cold = PlacementService(cold_index, engine="sparse")
        want = cold.batch_query([QuerySpec(k=5, tau_km=0.8)], use_cache=False)[0]
        assert tuple(after["results"][0]["sites"]) == want.sites
        assert (
            np.asarray(
                after["results"][0]["per_trajectory_utility"], dtype=np.float64
            ).tobytes()
            == np.asarray(want.per_trajectory_utility, dtype=np.float64).tobytes()
        )

        # /metrics exposes the cache counters
        status, _, text = request(handle.address, "GET", "/metrics")
        assert status == 200
        assert "netclus_covcache_patches 1" in text
        assert "netclus_covcache_parts 1" in text


# ---------------------------------------------------------------------- #
# graceful drain
# ---------------------------------------------------------------------- #
def test_shutdown_drains_inflight_requests(tiny_netclus):
    service = GatedService(tiny_netclus)
    spec = {"k": 3, "tau_km": 1.6}
    handle = serve_in_background(service)
    service.gate.clear()
    results: dict[str, tuple] = {}
    slow = threading.Thread(
        target=_background_query, args=(handle, [spec], results, "slow")
    )
    slow.start()
    wait_until(lambda: service.calls == 1, message="request to be in flight")

    closer = threading.Thread(target=handle.close)
    closer.start()
    wait_until(lambda: handle.server.draining, message="drain to begin")
    service.gate.set()
    slow.join(timeout=20)
    closer.join(timeout=20)

    # the in-flight request completed despite the concurrent shutdown
    assert results["slow"][0] == 200
    assert results["slow"][2]["results"][0]["sites"]
    # and the socket is really gone afterwards
    with pytest.raises(ConnectionRefusedError):
        http.client.HTTPConnection(*handle.address, timeout=2).request("GET", "/healthz")


def test_close_is_idempotent(tiny_netclus):
    handle = serve_in_background(PlacementService(tiny_netclus))
    handle.close()
    handle.close()


# ---------------------------------------------------------------------- #
# latency reservoir
# ---------------------------------------------------------------------- #
def test_latency_reservoir_quantiles():
    reservoir = LatencyReservoir(capacity=100)
    assert reservoir.quantile(0.5) == 0.0
    for value in range(1, 101):
        reservoir.record(value / 100.0)
    assert reservoir.count == 100
    assert reservoir.quantile(0.5) == pytest.approx(0.5)
    assert reservoir.quantile(0.99) == pytest.approx(0.99)
    assert reservoir.quantile(1.0) == pytest.approx(1.0)
    snapshot = reservoir.snapshot()
    assert snapshot["count"] == 100
    assert snapshot["p50"] == pytest.approx(0.5)


def test_latency_reservoir_windows_over_capacity():
    reservoir = LatencyReservoir(capacity=10)
    for _ in range(50):
        reservoir.record(1.0)
    for _ in range(10):
        reservoir.record(5.0)  # the window now holds only these
    assert reservoir.count == 60
    assert reservoir.quantile(0.5) == 5.0
    assert reservoir.quantile(0.99) == 5.0


def test_latency_reservoir_validates():
    with pytest.raises(ValueError):
        LatencyReservoir(capacity=0)
    with pytest.raises(ValueError):
        LatencyReservoir().quantile(1.5)


# ---------------------------------------------------------------------- #
# construction validation
# ---------------------------------------------------------------------- #
def test_server_validates_parameters(tiny_netclus):
    service = PlacementService(tiny_netclus)
    with pytest.raises(ValueError):
        PlacementServer(service, max_inflight=0)
    with pytest.raises(ValueError):
        PlacementServer(service, worker_threads=0)
    with pytest.raises(ValueError):
        PlacementServer(service, request_timeout=0.0)
