"""Unit tests for the CSR/CSC :class:`SparseCoverageIndex`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coverage import CoverageIndex, SparseCoverageIndex
from repro.core.preference import BinaryPreference, LinearPreference


def random_detours(rng, m, n, density=0.3, scale=2.0):
    """A random (m, n) detour matrix with roughly the given finite density."""
    detours = rng.random((m, n)) * scale
    return np.where(rng.random((m, n)) < density, detours, np.inf)


class TestAgainstDense:
    """The sparse index must reproduce every dense coverage structure."""

    @pytest.mark.parametrize("preference", [BinaryPreference(), LinearPreference()])
    @pytest.mark.parametrize("tau", [0.3, 0.8, 1.5])
    def test_structures_match_dense(self, rng, preference, tau):
        detours = random_detours(rng, 40, 25)
        dense = CoverageIndex(detours, tau, preference)
        sparse = SparseCoverageIndex(detours, tau, preference)
        assert sparse.num_trajectories == dense.num_trajectories
        assert sparse.num_sites == dense.num_sites
        assert np.allclose(sparse.site_weights, dense.site_weights)
        assert np.array_equal(sparse.coverage_mask(), dense.coverage_mask())
        assert sparse.covered_pairs() == dense.covered_pairs()
        for col in range(dense.num_sites):
            assert np.array_equal(
                sparse.trajectories_covered(col), dense.trajectories_covered(col)
            )
            d_rows, d_vals = dense.site_column(col)
            s_rows, s_vals = sparse.site_column(col)
            assert np.array_equal(d_rows, s_rows)
            assert np.allclose(d_vals, s_vals)
        for row in range(dense.num_trajectories):
            assert np.array_equal(
                sparse.sites_covering(row), dense.sites_covering(row)
            )

    def test_utilities_match_dense(self, rng):
        detours = random_detours(rng, 30, 12)
        dense = CoverageIndex(detours, 0.9, LinearPreference())
        sparse = SparseCoverageIndex(detours, 0.9, LinearPreference())
        columns = [0, 3, 7]
        assert sparse.utility_of(columns) == pytest.approx(dense.utility_of(columns))
        assert np.allclose(
            sparse.per_trajectory_utility(columns),
            dense.per_trajectory_utility(columns),
        )
        utilities = rng.random(30)
        assert np.allclose(sparse.marginal_gains(utilities), dense.marginal_gains(utilities))
        for col in (0, 5, 11):
            assert sparse.marginal_gain(col, utilities) == pytest.approx(
                dense.marginal_gain(col, utilities)
            )
            assert np.allclose(
                sparse.absorb(utilities, col), dense.absorb(utilities, col)
            )

    def test_capacity_absorb_matches_dense(self, rng):
        detours = random_detours(rng, 25, 8, density=0.5)
        dense = CoverageIndex(detours, 1.0, LinearPreference())
        sparse = SparseCoverageIndex(detours, 1.0, LinearPreference())
        utilities = np.zeros(25)
        for col in range(8):
            for cap in (0, 1, 3, 100):
                assert np.allclose(
                    sparse.absorb(utilities, col, cap), dense.absorb(utilities, col, cap)
                )
                assert sparse.marginal_gain(col, utilities, cap) == pytest.approx(
                    dense.marginal_gain(col, utilities, cap)
                )


class TestEdgeCases:
    def test_empty_coverage(self):
        """No detour within τ: a valid, fully empty index."""
        detours = np.full((4, 3), np.inf)
        sparse = SparseCoverageIndex(detours, 1.0, BinaryPreference())
        assert sparse.nnz == 0
        assert sparse.covered_pairs() == 0
        assert sparse.density == 0.0
        assert np.all(sparse.site_weights == 0.0)
        assert len(sparse.trajectories_covered(0)) == 0
        assert len(sparse.sites_covering(0)) == 0
        assert sparse.utility_of([0, 1, 2]) == 0.0

    def test_all_covered(self):
        """Zero detours everywhere: a fully dense 'sparse' index still works."""
        detours = np.zeros((3, 4))
        sparse = SparseCoverageIndex(detours, 1.0, BinaryPreference())
        assert sparse.nnz == 12
        assert sparse.density == 1.0
        assert np.all(sparse.site_weights == 3.0)
        assert sparse.utility_of([0]) == 3.0

    def test_weighted_trajectories(self):
        detours = np.zeros((3, 2))
        weights = np.asarray([1.0, 2.0, 3.0])
        sparse = SparseCoverageIndex(
            detours, 1.0, BinaryPreference(), trajectory_weights=weights
        )
        assert np.all(sparse.site_weights == 6.0)
        assert sparse.utility_of([0]) == 6.0
        dense = CoverageIndex(
            detours, 1.0, BinaryPreference(), trajectory_weights=weights
        )
        assert np.allclose(sparse.site_weights, dense.site_weights)

    def test_zero_score_within_tau_still_covered(self):
        """The linear preference scores exactly-τ detours 0 but they count as covered."""
        detours = np.asarray([[1.0, np.inf]])
        sparse = SparseCoverageIndex(detours, 1.0, LinearPreference())
        dense = CoverageIndex(detours, 1.0, LinearPreference())
        assert sparse.covered_pairs() == dense.covered_pairs() == 1
        assert np.array_equal(sparse.trajectories_covered(0), [0])
        assert sparse.utility_of([0]) == 0.0

    def test_single_trajectory_single_site(self):
        sparse = SparseCoverageIndex(np.asarray([[0.5]]), 1.0, LinearPreference())
        assert sparse.nnz == 1
        assert sparse.utility_of([0]) == pytest.approx(0.5)

    def test_labels_and_storage(self, rng):
        detours = random_detours(rng, 20, 10)
        sparse = SparseCoverageIndex(
            detours, 0.8, BinaryPreference(), site_labels=list(range(100, 110))
        )
        assert sparse.columns_for_labels([105, 100]) == [5, 0]
        assert sparse.storage_bytes() > 0
        dense = CoverageIndex(detours, 0.8, BinaryPreference())
        # roughly 30% density: the sparse payload must undercut the dense one
        assert sparse.storage_bytes() < dense.storage_bytes()


class TestFromCoverageLists:
    def test_matches_dense_construction(self, rng):
        detours = random_detours(rng, 30, 15)
        rows, cols = np.nonzero(np.isfinite(detours))
        from_lists = SparseCoverageIndex.from_coverage_lists(
            rows,
            cols,
            detours[rows, cols],
            num_trajectories=30,
            num_sites=15,
            tau_km=0.8,
            preference=LinearPreference(),
        )
        from_dense = SparseCoverageIndex(detours, 0.8, LinearPreference())
        assert from_lists.nnz == from_dense.nnz
        assert np.allclose(from_lists.site_weights, from_dense.site_weights)
        assert np.array_equal(from_lists.coverage_mask(), from_dense.coverage_mask())

    def test_duplicates_keep_smallest_detour(self):
        """NetClus emits one estimate per neighbouring cluster; keep the min."""
        rows = [0, 0, 0]
        cols = [1, 1, 1]
        detours = [0.9, 0.2, 0.5]
        sparse = SparseCoverageIndex.from_coverage_lists(
            rows, cols, detours, 2, 3, tau_km=1.0, preference=LinearPreference()
        )
        assert sparse.nnz == 1
        _, values = sparse.site_column(1)
        assert values[0] == pytest.approx(0.8)  # 1 - 0.2

    def test_drops_entries_beyond_tau(self):
        sparse = SparseCoverageIndex.from_coverage_lists(
            [0, 1, 1],
            [0, 0, 1],
            [0.5, 2.0, np.inf],
            2,
            2,
            tau_km=1.0,
            preference=BinaryPreference(),
        )
        assert sparse.nnz == 1
        assert np.array_equal(sparse.trajectories_covered(0), [0])

    def test_empty_lists(self):
        sparse = SparseCoverageIndex.from_coverage_lists(
            [], [], [], 3, 2, tau_km=1.0, preference=BinaryPreference()
        )
        assert sparse.nnz == 0
        assert sparse.utility_of([0, 1]) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SparseCoverageIndex.from_coverage_lists(
                [5], [0], [0.1], 2, 2, tau_km=1.0, preference=BinaryPreference()
            )
        with pytest.raises(ValueError):
            SparseCoverageIndex.from_coverage_lists(
                [0], [7], [0.1], 2, 2, tau_km=1.0, preference=BinaryPreference()
            )
