"""Tests for the multi-tenant index farm (``repro.service.farm``).

The core contract under test: a farm serving N tenants under a memory
budget — with lazy loads, LRU evictions and write-through updates — must
answer every query **byte-identically** to a dedicated per-tenant
:class:`PlacementService` that never evicts.  The seeded state-machine
test interleaves queries, updates and evictions across three tenants and
byte-compares every probe against mirrored direct services.
"""

from __future__ import annotations

import http.client
import json
import random

import numpy as np
import pytest

from repro.core.netclus import NetClusIndex, UpdateBatch
from repro.network.generators import grid_network
from repro.service import (
    IndexFarm,
    PlacementService,
    QuerySpec,
    load_manifest,
    save_index,
    serve_in_background,
)
from repro.service.farm import UnknownTenantError
from repro.trajectory.generators import commuter_trajectories

TENANTS = ("nyk", "bjg", "tky")


def _build_city(seed: int) -> NetClusIndex:
    network = grid_network(6, 6, spacing_km=0.5)
    dataset = commuter_trajectories(network, 30, seed=seed)
    index = NetClusIndex.build(
        network,
        dataset,
        network.node_ids()[::3],
        gamma=0.75,
        tau_min_km=0.4,
        tau_max_km=2.0,
    )
    index.enable_coverage_cache()
    return index


@pytest.fixture(scope="module")
def tenant_dirs(tmp_path_factory):
    """Three tenant index directories (distinct seeds → distinct cities)."""
    root = tmp_path_factory.mktemp("farm")
    return {
        name: save_index(_build_city(seed=11 + i), root / f"{name}.ncx")
        for i, name in enumerate(TENANTS)
    }


def _one_tenant_budget(tenant_dirs) -> int:
    """A budget that fits roughly one tenant (forces eviction churn)."""
    largest = max(
        int(load_manifest(path)["storage_bytes"]) for path in tenant_dirs.values()
    )
    return int(largest * 1.5)


def _probe(result):
    """The byte-comparable essence of one placement result."""
    return (
        tuple(result.sites),
        np.asarray(result.per_trajectory_utility).tobytes(),
    )


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
def test_unknown_tenant_raises(tenant_dirs):
    farm = IndexFarm()
    farm.add_tenant("nyk", tenant_dirs["nyk"])
    with pytest.raises(UnknownTenantError):
        farm.query("nope", QuerySpec(k=3, tau_km=1.0))
    with pytest.raises(UnknownTenantError):
        farm.evict("nope")


def test_duplicate_and_bad_names_refused(tenant_dirs):
    farm = IndexFarm()
    farm.add_tenant("nyk", tenant_dirs["nyk"])
    with pytest.raises(ValueError):
        farm.add_tenant("nyk", tenant_dirs["bjg"])
    with pytest.raises(ValueError):
        farm.add_tenant("a/b", tenant_dirs["bjg"])
    with pytest.raises(ValueError):
        farm.add_tenant("", tenant_dirs["bjg"])


def test_registration_is_lazy(tenant_dirs):
    """add_tenant reads only the manifest; no tenant is resident."""
    farm = IndexFarm()
    for name, path in tenant_dirs.items():
        record = farm.add_tenant(name, path)
        assert not record.resident
        assert record.storage_bytes > 0  # from the manifest, not a load
    assert farm.resident_tenants() == []
    assert farm.loads_total == 0


def test_remove_tenant_keeps_directory(tenant_dirs):
    farm = IndexFarm()
    farm.add_tenant("nyk", tenant_dirs["nyk"])
    farm.query("nyk", QuerySpec(k=3, tau_km=1.0))
    farm.remove_tenant("nyk")
    assert farm.tenants() == []
    assert (tenant_dirs["nyk"] / "manifest.json").is_file()


# ---------------------------------------------------------------------- #
# budget / eviction
# ---------------------------------------------------------------------- #
def test_budget_evicts_lru_never_the_touched_tenant(tenant_dirs):
    farm = IndexFarm(memory_budget_bytes=_one_tenant_budget(tenant_dirs))
    for name, path in tenant_dirs.items():
        farm.add_tenant(name, path)
    spec = QuerySpec(k=4, tau_km=1.0)
    farm.query("nyk", spec)
    assert farm.resident_tenants() == ["nyk"]
    farm.query("bjg", spec)
    # nyk (LRU) was evicted to fit bjg; bjg itself was never evicted
    assert farm.resident_tenants() == ["bjg"]
    assert farm.evictions_total == 1
    farm.query("tky", spec)
    assert farm.resident_tenants() == ["tky"]
    assert farm.evictions_total == 2
    assert farm.resident_bytes() <= farm.memory_budget_bytes


def test_oversized_tenant_still_serves(tenant_dirs):
    """A budget smaller than any single index still serves one tenant."""
    farm = IndexFarm(memory_budget_bytes=1)
    farm.add_tenant("nyk", tenant_dirs["nyk"])
    result = farm.query("nyk", QuerySpec(k=3, tau_km=1.0))
    assert result.sites
    assert farm.resident_tenants() == ["nyk"]


def test_no_budget_never_evicts(tenant_dirs):
    farm = IndexFarm()
    for name, path in tenant_dirs.items():
        farm.add_tenant(name, path)
    spec = QuerySpec(k=3, tau_km=1.0)
    for name in TENANTS:
        farm.query(name, spec)
    assert farm.resident_tenants() == sorted(TENANTS)
    assert farm.evictions_total == 0


def test_eviction_and_reload_are_transparent(tenant_dirs):
    farm = IndexFarm(memory_budget_bytes=_one_tenant_budget(tenant_dirs))
    for name, path in tenant_dirs.items():
        farm.add_tenant(name, path)
    spec = QuerySpec(k=5, tau_km=0.8)
    before = {name: _probe(farm.query(name, spec)) for name in TENANTS}
    assert farm.evictions_total >= 2  # the budget forced churn
    after = {name: _probe(farm.query(name, spec)) for name in TENANTS}
    assert after == before


def test_tenant_stats_survive_eviction(tenant_dirs):
    farm = IndexFarm()
    farm.add_tenant("nyk", tenant_dirs["nyk"])
    spec = QuerySpec(k=3, tau_km=1.0)
    farm.query("nyk", spec)
    farm.evict("nyk")
    farm.query("nyk", spec)
    stats = farm.tenant_stats("nyk")
    assert stats["queries_served"] == 2
    assert stats["greedy_runs"] == 2  # fresh service: no shared result cache
    assert farm.tenant_stats("nyk")["coverage_builds"] >= 1


def test_explicit_evict_reports_residency(tenant_dirs):
    farm = IndexFarm()
    farm.add_tenant("nyk", tenant_dirs["nyk"])
    assert farm.evict("nyk") is False  # never loaded
    farm.query("nyk", QuerySpec(k=3, tau_km=1.0))
    assert farm.evict("nyk") is True
    assert farm.evict("nyk") is False  # already out


# ---------------------------------------------------------------------- #
# write-through updates
# ---------------------------------------------------------------------- #
def test_updates_write_through_and_survive_eviction(tenant_dirs, tmp_path):
    # work on a copy: other tests share the module-scoped directories
    import shutil

    directory = tmp_path / "nyk.ncx"
    shutil.copytree(tenant_dirs["nyk"], directory)
    farm = IndexFarm()
    farm.add_tenant("nyk", directory)
    spec = QuerySpec(k=4, tau_km=1.0)
    sites = sorted(farm.service("nyk").index.sites)
    applied = farm.apply_updates("nyk", UpdateBatch(remove_sites=sites[:2]))
    assert applied == 2
    updated = _probe(farm.query("nyk", spec))
    farm.evict("nyk")
    # the reload reads the written-through directory, not the stale state
    assert _probe(farm.query("nyk", spec)) == updated
    assert farm.index_version("nyk") == 1


def test_update_refreshes_storage_accounting(tenant_dirs, tmp_path):
    import shutil

    directory = tmp_path / "nyk.ncx"
    shutil.copytree(tenant_dirs["nyk"], directory)
    farm = IndexFarm()
    record = farm.add_tenant("nyk", directory)
    before = record.storage_bytes
    ids = list(farm.service("nyk").index.trajectory_ids)[:10]
    farm.apply_updates("nyk", UpdateBatch(remove_trajectories=ids))
    assert record.storage_bytes < before


# ---------------------------------------------------------------------- #
# the seeded state machine: farm vs mirrored direct services
# ---------------------------------------------------------------------- #
def test_state_machine_matches_unevicted_direct_services(tenant_dirs, tmp_path):
    """Interleaved queries/updates/evictions across 3 tenants, byte-compared.

    The farm runs under a one-tenant budget (constant eviction churn);
    the mirrors are plain per-tenant services that never evict.  Every
    query probe must agree byte-for-byte, proving eviction, lazy reload
    and write-through can never change a result.
    """
    import shutil

    dirs = {}
    for name, source in tenant_dirs.items():
        dirs[name] = tmp_path / f"{name}.ncx"
        shutil.copytree(source, dirs[name])
    farm = IndexFarm(memory_budget_bytes=_one_tenant_budget(tenant_dirs))
    mirrors = {}
    for name, directory in dirs.items():
        farm.add_tenant(name, directory)
        mirrors[name] = PlacementService.from_path(directory)

    rng = random.Random(20260808)
    specs = [
        QuerySpec(k=3, tau_km=0.6),
        QuerySpec(k=5, tau_km=1.0),
        QuerySpec(k=4, tau_km=1.5),
    ]
    updates_done = 0
    for step in range(40):
        name = rng.choice(TENANTS)
        action = rng.random()
        if action < 0.6:
            spec = rng.choice(specs)
            assert _probe(farm.query(name, spec)) == _probe(
                mirrors[name].query(spec)
            ), f"step {step}: {name} diverged on {spec}"
        elif action < 0.8 and updates_done < 6:
            live_sites = sorted(mirrors[name].index.sites)
            if len(live_sites) > 4:
                batch = UpdateBatch(remove_sites=live_sites[:1])
                assert farm.apply_updates(name, batch) == mirrors[
                    name
                ].apply_updates(batch)
                updates_done += 1
        else:
            farm.evict(name)
    assert farm.evictions_total > 0, "the state machine never exercised eviction"
    assert updates_done > 0, "the state machine never exercised updates"
    # closing probe: all tenants, all specs, one last byte-compare
    for name in TENANTS:
        for spec in specs:
            assert _probe(farm.query(name, spec)) == _probe(mirrors[name].query(spec))
    farm.close()


# ---------------------------------------------------------------------- #
# HTTP farm mode
# ---------------------------------------------------------------------- #
def _http(address, method, path, payload=None):
    host, port = address
    conn = http.client.HTTPConnection(host, port, timeout=20)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body)
        response = conn.getresponse()
        raw = response.read()
        parsed = (
            json.loads(raw)
            if response.getheader("Content-Type", "").startswith("application/json")
            else raw.decode()
        )
        return response.status, parsed
    finally:
        conn.close()


@pytest.fixture()
def served_farm(tenant_dirs):
    farm = IndexFarm(memory_budget_bytes=_one_tenant_budget(tenant_dirs))
    for name, path in tenant_dirs.items():
        farm.add_tenant(name, path)
    with serve_in_background(farm=farm) as handle:
        yield farm, handle
    farm.close()


def test_http_tenant_query_matches_direct(served_farm, tenant_dirs):
    farm, handle = served_farm
    spec = QuerySpec(k=4, tau_km=1.0)
    direct = PlacementService.from_path(tenant_dirs["bjg"]).query(spec)
    status, body = _http(
        handle.address, "POST", "/t/bjg/query", {"specs": [spec.to_dict()]}
    )
    assert status == 200
    assert body["tenant"] == "bjg"
    result = body["results"][0]
    assert result["sites"] == list(direct.sites)
    assert result["per_trajectory_utility"] == pytest.approx(
        list(direct.per_trajectory_utility)
    )


def test_http_unknown_tenant_404(served_farm):
    _, handle = served_farm
    status, body = _http(
        handle.address,
        "POST",
        "/t/atlantis/query",
        {"specs": [{"k": 3, "tau_km": 1.0}]},
    )
    assert status == 404
    assert "atlantis" in body["error"]


def test_http_plain_endpoints_404_in_farm_mode(served_farm):
    _, handle = served_farm
    status, body = _http(
        handle.address, "POST", "/query", {"specs": [{"k": 3, "tau_km": 1.0}]}
    )
    assert status == 404
    assert "/t/<tenant>/query" in body["error"]


def test_http_eviction_between_requests_is_invisible(served_farm):
    farm, handle = served_farm
    spec = {"specs": [{"k": 5, "tau_km": 0.8}]}
    _, first = _http(handle.address, "POST", "/t/nyk/query", spec)
    farm.evict("nyk")
    _, second = _http(handle.address, "POST", "/t/nyk/query", spec)
    assert first["results"][0]["sites"] == second["results"][0]["sites"]
    assert (
        first["results"][0]["per_trajectory_utility"]
        == second["results"][0]["per_trajectory_utility"]
    )


def test_http_metrics_carry_tenant_labels(served_farm):
    farm, handle = served_farm
    _http(handle.address, "POST", "/t/nyk/query", {"specs": [{"k": 3, "tau_km": 1.0}]})
    status, text = _http(handle.address, "GET", "/metrics")
    assert status == 200
    assert 'netclus_service_queries_served{tenant="nyk"}' in text
    assert "netclus_farm_resident_bytes" in text
    assert "netclus_farm_evictions_total" in text
    assert "netclus_farm_memory_budget_bytes" in text
    assert 'netclus_farm_tenant_resident{tenant="nyk"}' in text


def test_http_healthz_reports_tenancy(served_farm):
    farm, handle = served_farm
    status, body = _http(handle.address, "GET", "/healthz")
    assert status == 200
    assert body["tenants"] == len(TENANTS)
    assert set(body["resident_tenants"]) <= set(TENANTS)
