"""Unit tests for the FM-sketch accelerated greedy (FMG)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coverage import CoverageIndex
from repro.core.fm_greedy import FMGreedy, _estimate_rows
from repro.core.greedy import IncGreedy
from repro.core.preference import BinaryPreference, LinearPreference
from repro.core.query import TOPSQuery
from repro.sketch.fm import FMSketchFamily


class TestEstimateRows:
    def test_matches_family_estimate(self):
        family = FMSketchFamily.from_items(range(200), num_copies=16)
        row_estimate = _estimate_rows(family.bits[np.newaxis, :])[0]
        assert row_estimate == pytest.approx(family.estimate())

    def test_empty_rows_estimate_small(self):
        bits = np.zeros((3, 8), dtype=np.uint32)
        assert np.all(_estimate_rows(bits) < 2.0)

    def test_more_items_larger_estimate(self):
        small = FMSketchFamily.from_items(range(10), num_copies=24)
        large = FMSketchFamily.from_items(range(1000), num_copies=24)
        bits = np.vstack([small.bits, large.bits])
        estimates = _estimate_rows(bits)
        assert estimates[1] > estimates[0]


class TestFMGreedy:
    def test_requires_binary_preference(self, grid_problem):
        query = TOPSQuery(k=3, tau_km=1.0, preference=LinearPreference())
        coverage = grid_problem.coverage(query)
        with pytest.raises(ValueError):
            FMGreedy(coverage)

    def test_selects_k_distinct_sites(self, grid_coverage):
        columns, _, _ = FMGreedy(grid_coverage, num_sketches=20).select(5)
        assert len(columns) == 5
        assert len(set(columns)) == 5

    def test_solve_reports_exact_utility(self, grid_coverage, binary_query):
        result = FMGreedy(grid_coverage, num_sketches=20).solve(binary_query)
        exact = grid_coverage.utility_of(grid_coverage.columns_for_labels(result.sites))
        assert result.utility == pytest.approx(exact)

    def test_close_to_inc_greedy(self, grid_coverage, binary_query):
        """With f=60 copies FMG should land within 25% of Inc-Greedy's utility."""
        incg = IncGreedy(grid_coverage).solve(binary_query)
        fmg = FMGreedy(grid_coverage, num_sketches=60).solve(binary_query)
        assert fmg.utility >= 0.75 * incg.utility

    def test_never_better_than_incg_by_much(self, grid_coverage, binary_query):
        """FMG cannot exceed Inc-Greedy's utility by more than numerical noise
        ... actually it can (both are heuristics), but it can never exceed the
        best possible utility of k sites; sanity-check against total mass."""
        fmg = FMGreedy(grid_coverage, num_sketches=30).solve(binary_query)
        assert fmg.utility <= grid_coverage.num_trajectories

    def test_deterministic(self, grid_coverage, binary_query):
        a = FMGreedy(grid_coverage, num_sketches=16).solve(binary_query)
        b = FMGreedy(grid_coverage, num_sketches=16).solve(binary_query)
        assert a.sites == b.sites

    def test_storage_bytes(self, grid_coverage):
        fmg = FMGreedy(grid_coverage, num_sketches=10)
        assert fmg.storage_bytes() == 4 * 10 * grid_coverage.num_sites

    def test_metadata_contains_estimate(self, grid_coverage, binary_query):
        result = FMGreedy(grid_coverage, num_sketches=20).solve(binary_query)
        assert "estimated_utility" in result.metadata
        assert result.metadata["num_sketches"] == 20

    def test_invalid_k(self, grid_coverage):
        with pytest.raises(ValueError):
            FMGreedy(grid_coverage).select(0)

    def test_single_site_problem(self):
        detours = np.asarray([[0.1], [0.5], [np.inf]])
        coverage = CoverageIndex(detours, 1.0, BinaryPreference())
        columns, _, _ = FMGreedy(coverage, num_sketches=8).select(3)
        assert columns == [0]
