"""The ``python -m repro.service`` CLI: build, query (JSON + CSV), inspect."""

from __future__ import annotations

import json

import pytest

from repro.service.cli import main


@pytest.fixture(scope="module")
def built_index(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "city.ncx"
    code = main(
        [
            "build",
            "--dataset", "beijing",
            "--scale", "tiny",
            "--tau-max", "2.0",
            "--max-instances", "3",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


def test_build_writes_index(built_index):
    assert (built_index / "manifest.json").is_file()
    assert (built_index / "payload.bin").is_file()


def test_build_records_content_fingerprint(built_index):
    """CLI-built indexes carry the trajectory-content fingerprint."""
    manifest = json.loads((built_index / "manifest.json").read_text())
    assert "trajectory_content" in manifest["fingerprints"]
    assert manifest["build_params"]["representative_strategy"] == "closest"


def test_build_rejects_scale_for_fixed_datasets(tmp_path):
    with pytest.raises(SystemExit, match="fixed size"):
        main(
            [
                "build",
                "--dataset", "new-york",
                "--scale", "tiny",
                "--out", str(tmp_path / "ny.ncx"),
            ]
        )


def test_inspect_prints_manifest(built_index, capsys):
    assert main(["inspect", "--index", str(built_index)]) == 0
    out = capsys.readouterr().out
    assert "netclus-index v4" in out
    assert "gamma=0.75" in out
    assert "graph sha256" in out


def test_inspect_json(built_index, capsys):
    assert main(["inspect", "--index", str(built_index), "--json"]) == 0
    manifest = json.loads(capsys.readouterr().out)
    assert manifest["format"] == "netclus-index"


def test_query_json_specs(built_index, tmp_path, capsys):
    specs = [
        {"k": 3, "tau_km": 0.8},
        {"k": 5, "tau_km": 0.8},
        {"k": 3, "tau_km": 1.5, "capacity": 20},
        {"k": 3, "tau_km": 0.8, "budget": 2.0},
    ]
    specs_path = tmp_path / "specs.json"
    specs_path.write_text(json.dumps(specs))
    output_path = tmp_path / "results.json"
    code = main(
        [
            "query",
            "--index", str(built_index),
            "--specs", str(specs_path),
            "--output", str(output_path),
        ]
    )
    assert code == 0
    rows = json.loads(output_path.read_text())
    assert len(rows) == 4
    assert all(len(row["sites"]) >= 1 for row in rows)
    assert rows[0]["sites"] == rows[1]["sites"][:3]  # prefix property via CLI
    out = capsys.readouterr().out
    assert "1 instance resolutions" not in out  # τ ∈ {0.8, 1.5} → 2 resolutions
    assert "2 instance resolutions" in out


def test_query_csv_specs(built_index, tmp_path, capsys):
    csv_path = tmp_path / "specs.csv"
    csv_path.write_text("k,tau_km,preference\n3,0.8,binary\n4,1.5,linear\n")
    assert main(["query", "--index", str(built_index), "--specs", str(csv_path)]) == 0
    out = capsys.readouterr().out
    assert "linear" in out


def test_query_rejects_bad_specs_file(built_index, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"k": 3}))
    with pytest.raises(SystemExit):
        main(["query", "--index", str(built_index), "--specs", str(bad)])


def test_run_all_index_cache(tmp_path, capsys):
    """build_context --index-cache round-trips through the experiments layer."""
    from repro.datasets import beijing_like
    from repro.experiments.runner import build_context

    bundle = beijing_like(scale="tiny", seed=3)
    cache = tmp_path / "ctx.ncx"
    first = build_context(
        bundle=bundle, tau_max_km=2.0, engine="sparse", index_path=cache
    )
    assert (cache / "manifest.json").is_file()
    second = build_context(
        bundle=bundle, tau_max_km=2.0, engine="sparse", index_path=cache
    )
    from repro.core.query import TOPSQuery

    query = TOPSQuery(k=4, tau_km=0.8)
    assert second.run_netclus(query).sites == first.run_netclus(query).sites


def test_run_all_index_cache_refuses_other_seed(tmp_path):
    """A cached index never silently serves a different seed's trajectories."""
    from repro.datasets import beijing_like
    from repro.experiments.runner import build_context
    from repro.service import IndexFormatError

    cache = tmp_path / "seeded.ncx"
    build_context(
        bundle=beijing_like(scale="tiny", seed=3),
        tau_max_km=2.0,
        index_path=cache,
    )
    with pytest.raises(IndexFormatError, match="trajectory content"):
        build_context(
            bundle=beijing_like(scale="tiny", seed=4),
            tau_max_km=2.0,
            index_path=cache,
        )


def test_run_all_index_cache_refuses_other_build_params(tmp_path):
    from repro.datasets import beijing_like
    from repro.experiments.runner import build_context
    from repro.service import IndexFormatError

    bundle = beijing_like(scale="tiny", seed=3)
    cache = tmp_path / "params.ncx"
    build_context(bundle=bundle, tau_max_km=2.0, index_path=cache)
    with pytest.raises(IndexFormatError, match="build_params|built with"):
        build_context(bundle=bundle, tau_max_km=4.0, index_path=cache)


def test_run_all_index_cache_refuses_capped_ladder(tmp_path):
    """An index built with --max-instances is not a valid experiment cache."""
    from repro.datasets import beijing_like
    from repro.experiments.runner import build_context
    from repro.service import IndexFormatError, save_index

    bundle = beijing_like(scale="tiny", seed=3)
    capped = bundle.problem().build_netclus_index(
        gamma=0.75, tau_min_km=0.4, tau_max_km=8.0, max_instances=2
    )
    cache = tmp_path / "capped.ncx"
    save_index(capped, cache, dataset=bundle.trajectories)
    with pytest.raises(IndexFormatError, match="instances"):
        build_context(bundle=bundle, index_path=cache)


# ---------------------------------------------------------------------- #
# update
# ---------------------------------------------------------------------- #
def test_update_applies_deltas(built_index, tmp_path):
    from repro.service.serialization import load_index, load_manifest

    index = load_index(built_index)
    victim_site = sorted(index.sites)[0]
    remove_id = index.trajectory_ids[0]
    # a short edge-connected walk for the new trajectory
    network = index.network
    path_nodes = [network.node_ids()[0]]
    for _ in range(5):
        successors = network.successors(path_nodes[-1])
        if not successors:
            break
        path_nodes.append(next(iter(successors)))
    new_id = max(index.trajectory_ids) + 1

    add_file = tmp_path / "add_trajectories.json"
    add_file.write_text(json.dumps([{"traj_id": new_id, "nodes": path_nodes}]))
    remove_traj_file = tmp_path / "remove_trajectories.json"
    remove_traj_file.write_text(json.dumps([remove_id]))
    remove_site_file = tmp_path / "remove_sites.json"
    remove_site_file.write_text(json.dumps([victim_site]))
    out = tmp_path / "updated.ncx"

    code = main(
        [
            "update",
            "--index", str(built_index),
            "--add-trajectories", str(add_file),
            "--remove-trajectories", str(remove_traj_file),
            "--remove-sites", str(remove_site_file),
            "--out", str(out),
        ]
    )
    assert code == 0
    updated = load_index(out)
    assert new_id in updated.trajectory_ids
    assert remove_id not in updated.trajectory_ids
    assert victim_site not in updated.sites
    assert updated.version == 3  # one bump per non-empty sub-batch
    assert load_manifest(out)["index_version"] == 3
    # --out leaves the source index untouched
    assert load_index(built_index).version == 0


def test_update_without_deltas_rejected(built_index):
    with pytest.raises(SystemExit, match="nothing to do"):
        main(["update", "--index", str(built_index)])


def test_update_rejects_malformed_trajectory_file(built_index, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps([{"nodes": [1, 2]}]))  # missing traj_id
    with pytest.raises(SystemExit, match="traj_id"):
        main(["update", "--index", str(built_index), "--add-trajectories", str(bad)])


def test_site_only_update_keeps_content_fingerprint(built_index, tmp_path):
    """A site-only delta carries the trajectory_content fingerprint over;
    a trajectory delta (content no longer verifiable) drops it."""
    from repro.service.serialization import load_manifest

    fingerprint = load_manifest(built_index)["fingerprints"]["trajectory_content"]
    remove_site_file = tmp_path / "rm_sites.json"
    remove_site_file.write_text(json.dumps([4]))
    out = tmp_path / "site_only.ncx"
    assert main(
        [
            "update",
            "--index", str(built_index),
            "--remove-sites", str(remove_site_file),
            "--out", str(out),
        ]
    ) == 0
    assert load_manifest(out)["fingerprints"]["trajectory_content"] == fingerprint

    from repro.service.serialization import load_index

    remove_traj_file = tmp_path / "rm_traj.json"
    remove_traj_file.write_text(json.dumps([load_index(out).trajectory_ids[0]]))
    out2 = tmp_path / "traj_delta.ncx"
    assert main(
        [
            "update",
            "--index", str(out),
            "--remove-trajectories", str(remove_traj_file),
            "--out", str(out2),
        ]
    ) == 0
    assert "trajectory_content" not in load_manifest(out2)["fingerprints"]


class TestBuildPipelineFlags:
    """`build --workers/--representative-strategy` and manifest round-trips."""

    @pytest.fixture(scope="class")
    def parallel_index(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli_parallel") / "city.ncx"
        code = main(
            [
                "build",
                "--dataset", "beijing",
                "--scale", "tiny",
                "--tau-max", "2.0",
                "--max-instances", "3",
                "--workers", "2",
                "--representative-strategy", "most_frequent",
                "--out", str(path),
            ]
        )
        assert code == 0
        return path

    def test_flags_round_trip_through_manifest(self, parallel_index):
        manifest = json.loads((parallel_index / "manifest.json").read_text())
        params = manifest["build_params"]
        assert params["representative_strategy"] == "most_frequent"
        assert params["max_instances"] == 3
        stages = [stat["stage"] for stat in manifest["build_stats"]]
        assert stages == ["clustering", "representatives", "registration", "neighbors"]
        assert manifest["build_stats"][0]["workers"] == 2

    def test_inspect_reports_flags_and_stages(self, parallel_index, capsys):
        assert main(["inspect", "--index", str(parallel_index)]) == 0
        out = capsys.readouterr().out
        assert "most_frequent" in out
        assert "instance cap 3" in out
        assert "offline pipeline" in out
        assert "clustering" in out

    def test_build_prints_stage_breakdown(self, tmp_path, capsys):
        code = main(
            [
                "build",
                "--dataset", "beijing",
                "--scale", "tiny",
                "--tau-max", "1.0",
                "--max-instances", "2",
                "--out", str(tmp_path / "seq.ncx"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stage clustering" in out
        assert "stage registration" in out

    def test_parallel_cli_build_equals_sequential(self, tmp_path):
        """The CLI-level parity: same dataset, workers=1 vs workers=2."""
        from repro.service.serialization import load_index, payload_digest

        sequential_path = tmp_path / "seq.ncx"
        parallel_path = tmp_path / "par.ncx"
        for path, workers in ((sequential_path, "1"), (parallel_path, "2")):
            assert main(
                [
                    "build",
                    "--dataset", "beijing",
                    "--scale", "tiny",
                    "--tau-max", "2.0",
                    "--max-instances", "3",
                    "--workers", workers,
                    "--out", str(path),
                ]
            ) == 0
        left = load_index(sequential_path)
        right = load_index(parallel_path)
        assert payload_digest(left, include_timings=False) == payload_digest(
            right, include_timings=False
        )


class TestShardedCLI:
    """``build --shards``, ``query --shards/--query-workers``, sharded inspect."""

    @pytest.fixture(scope="class")
    def sharded_index(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-sharded") / "city.ncx"
        code = main(
            [
                "build",
                "--dataset", "beijing",
                "--scale", "tiny",
                "--tau-max", "2.0",
                "--max-instances", "3",
                "--workers", "auto",
                "--shards", "3",
                "--out", str(path),
            ]
        )
        assert code == 0
        return path

    def test_shards_recorded_in_manifest(self, sharded_index):
        manifest = json.loads((sharded_index / "manifest.json").read_text())
        assert manifest["shards"] == 3
        assert len(manifest["shard_sizes"]) == 3
        assert sum(manifest["shard_sizes"]) == manifest["num_trajectories"]

    def test_inspect_reports_shard_layout(self, sharded_index, capsys):
        assert main(["inspect", "--index", str(sharded_index)]) == 0
        out = capsys.readouterr().out
        assert "shard layout" in out
        assert "3 shards" in out

    def test_inspect_timings_probe(self, sharded_index, capsys):
        assert main(["inspect", "--index", str(sharded_index), "--timings"]) == 0
        out = capsys.readouterr().out
        assert "query timings" in out
        assert "coverage_build_seconds" in out
        assert "greedy_seconds" in out

    def test_query_matches_unsharded_answers(self, sharded_index, tmp_path, capsys):
        specs = tmp_path / "specs.json"
        specs.write_text(json.dumps([{"k": 4, "tau_km": 0.8}, {"k": 7, "tau_km": 0.8}]))
        out_sharded = tmp_path / "sharded.json"
        out_plain = tmp_path / "plain.json"
        assert main(
            [
                "query",
                "--index", str(sharded_index),
                "--specs", str(specs),
                "--query-workers", "auto",
                "--output", str(out_sharded),
            ]
        ) == 0
        assert "stage seconds" in capsys.readouterr().out
        assert main(
            [
                "query",
                "--index", str(sharded_index),
                "--specs", str(specs),
                "--shards", "1",
                "--output", str(out_plain),
            ]
        ) == 0
        sharded_rows = json.loads(out_sharded.read_text())
        plain_rows = json.loads(out_plain.read_text())
        for got, want in zip(sharded_rows, plain_rows):
            assert got["sites"] == want["sites"]
            assert got["utility"] == want["utility"]

    def test_unsharded_inspect_prints_single_shard(self, built_index, capsys):
        assert main(["inspect", "--index", str(built_index)]) == 0
        assert "1 shard (unsharded query path)" in capsys.readouterr().out
