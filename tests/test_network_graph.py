"""Unit tests for the road-network graph model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.graph import RoadNetwork


@pytest.fixture
def triangle():
    """A 3-node directed triangle with asymmetric weights."""
    net = RoadNetwork()
    for idx in range(3):
        net.add_node(float(idx), 0.0)
    net.add_edge(0, 1, 1.0)
    net.add_edge(1, 2, 2.0)
    net.add_edge(2, 0, 3.0)
    return net


class TestConstruction:
    def test_add_node_assigns_dense_ids(self):
        net = RoadNetwork()
        assert net.add_node() == 0
        assert net.add_node() == 1
        assert net.num_nodes == 2

    def test_add_node_explicit_id(self):
        net = RoadNetwork()
        assert net.add_node(node_id=5) == 5
        assert net.add_node() == 6

    def test_duplicate_node_rejected(self):
        net = RoadNetwork()
        net.add_node(node_id=0)
        with pytest.raises(ValueError):
            net.add_node(node_id=0)

    def test_add_edge_requires_nodes(self):
        net = RoadNetwork()
        net.add_node()
        with pytest.raises(ValueError):
            net.add_edge(0, 1, 1.0)

    def test_add_edge_rejects_non_positive_length(self):
        net = RoadNetwork()
        net.add_node()
        net.add_node()
        with pytest.raises(ValueError):
            net.add_edge(0, 1, 0.0)

    def test_self_loop_rejected(self):
        net = RoadNetwork()
        net.add_node()
        with pytest.raises(ValueError):
            net.add_edge(0, 0, 1.0)

    def test_bidirectional_edge(self):
        net = RoadNetwork()
        net.add_node()
        net.add_node()
        net.add_bidirectional_edge(0, 1, 2.5)
        assert net.edge_length(0, 1) == 2.5
        assert net.edge_length(1, 0) == 2.5
        assert net.num_edges == 2

    def test_remove_edge(self, triangle):
        triangle.remove_edge(0, 1)
        assert not triangle.has_edge(0, 1)
        assert triangle.num_edges == 2


class TestInspection:
    def test_degrees(self, triangle):
        assert triangle.out_degree(0) == 1
        assert triangle.in_degree(0) == 1

    def test_successors_predecessors(self, triangle):
        assert triangle.successors(0) == {1: 1.0}
        assert triangle.predecessors(0) == {2: 3.0}

    def test_edges_iteration(self, triangle):
        edges = {(e.source, e.target): e.length for e in triangle.edges()}
        assert edges == {(0, 1): 1.0, (1, 2): 2.0, (2, 0): 3.0}

    def test_coordinates_shape(self, triangle):
        coords = triangle.coordinates()
        assert coords.shape == (3, 2)
        assert coords[2, 0] == 2.0

    def test_euclidean_distance(self, triangle):
        assert triangle.euclidean_distance(0, 2) == pytest.approx(2.0)

    def test_path_length(self, triangle):
        assert triangle.path_length([0, 1, 2]) == pytest.approx(3.0)

    def test_path_length_missing_edge_raises(self, triangle):
        with pytest.raises(KeyError):
            triangle.path_length([0, 2])


class TestSiteAugmentation:
    def test_insert_site_on_edge_splits_lengths(self):
        net = RoadNetwork()
        net.add_node(0.0, 0.0)
        net.add_node(4.0, 0.0)
        net.add_bidirectional_edge(0, 1, 4.0)
        new_node = net.insert_site_on_edge(0, 1, fraction=0.25)
        assert net.edge_length(0, new_node) == pytest.approx(1.0)
        assert net.edge_length(new_node, 1) == pytest.approx(3.0)
        assert not net.has_edge(0, 1)
        # the reverse direction is split as well
        assert net.edge_length(1, new_node) == pytest.approx(3.0)
        assert net.edge_length(new_node, 0) == pytest.approx(1.0)

    def test_insert_site_fraction_validation(self):
        net = RoadNetwork()
        net.add_node()
        net.add_node()
        net.add_edge(0, 1, 1.0)
        with pytest.raises(ValueError):
            net.insert_site_on_edge(0, 1, fraction=0.0)

    def test_insert_site_coordinates_interpolated(self):
        net = RoadNetwork()
        net.add_node(0.0, 0.0)
        net.add_node(2.0, 2.0)
        net.add_edge(0, 1, 2.83)
        new_node = net.insert_site_on_edge(0, 1, fraction=0.5, bidirectional=False)
        node = net.node(new_node)
        assert node.x == pytest.approx(1.0)
        assert node.y == pytest.approx(1.0)


class TestCSRAndConversions:
    def test_to_csr_matches_edges(self, triangle):
        csr = triangle.to_csr()
        assert csr.shape == (3, 3)
        assert csr[0, 1] == 1.0
        assert csr[2, 0] == 3.0

    def test_to_csr_reverse_is_transpose(self, triangle):
        forward = triangle.to_csr().toarray()
        backward = triangle.to_csr(reverse=True).toarray()
        assert np.array_equal(forward.T, backward)

    def test_csr_cache_invalidated_on_mutation(self, triangle):
        before = triangle.to_csr()
        triangle.add_edge(0, 2, 9.0)
        after = triangle.to_csr()
        assert after[0, 2] == 9.0
        assert before is not after

    def test_networkx_round_trip(self, triangle):
        graph = triangle.to_networkx()
        rebuilt = RoadNetwork.from_networkx(graph)
        assert rebuilt.num_nodes == triangle.num_nodes
        assert rebuilt.num_edges == triangle.num_edges
        assert rebuilt.edge_length(1, 2) == pytest.approx(2.0)

    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.add_node()
        assert clone.num_nodes == triangle.num_nodes + 1
