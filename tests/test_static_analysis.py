"""Tests for the ``repro.analysis`` static-analysis suite.

Three layers:

* **Repo gate** — the full pass over this repository reports zero live
  findings (the same invariant the CI ``static-analysis`` job enforces).
* **Rule fixtures** — for every rule id, a ``fires/`` mini-repo produces
  exactly the findings marked ``# expect: RA###`` (correct file:line), a
  ``clean/`` variant produces none, and a ``suppressed/`` variant turns
  each finding into a recorded suppression (``# noqa: RA###``).
* **Plumbing** — CLI exit codes and output formats, the documented JSON
  schema, rule selection, the RA000 parse-error channel, and the runtime
  behaviour of the ``@guarded_by``/``@holds_lock`` markers.

The mypy strict gate itself runs in CI (mypy is not a runtime
dependency); the config-presence test below keeps the gate wired.
"""

from __future__ import annotations

import importlib.util
import json
import threading
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_ANALYZERS,
    FAMILIES,
    all_analyzers,
    analyzers_for,
    run_analysis,
)
from repro.analysis.cli import main as analysis_main
from repro.utils.concurrency import (
    guarded_by,
    guarded_attributes,
    held_locks,
    holds_lock,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "analysis"
RULES = tuple(cls.rule for cls in ALL_ANALYZERS)


def expected_sites(root: Path, rule: str) -> set[tuple[str, int]]:
    """``(path, line)`` pairs marked ``# expect: RA###`` under *root*."""
    sites = set()
    for path in sorted(root.rglob("*.py")):
        for number, line in enumerate(path.read_text().splitlines(), start=1):
            if f"expect: {rule}" in line:
                sites.add((path.relative_to(root).as_posix(), number))
    return sites


class TestRepositoryGate:
    def test_full_pass_reports_zero_findings(self):
        report = run_analysis(REPO_ROOT, all_analyzers())
        rendered = "\n".join(found.render() for found in report.findings)
        assert report.findings == [], f"static analysis regressions:\n{rendered}"
        assert report.files_scanned > 50

    def test_every_repo_suppression_carries_a_justification(self):
        """Policy: a ``# noqa: RA###`` line (or the line above it) explains why."""
        report = run_analysis(REPO_ROOT, all_analyzers())
        for found in report.suppressed:
            text = (REPO_ROOT / found.path).read_text().splitlines()
            window = "\n".join(text[max(0, found.line - 4) : found.line])
            assert "#" in window.replace(f"# noqa: {found.rule}", "", 1), (
                f"suppression at {found.path}:{found.line} has no "
                "justification comment"
            )


class TestRuleFixtures:
    @pytest.mark.parametrize("rule", RULES)
    def test_fires_at_the_marked_sites(self, rule):
        root = FIXTURES / rule.lower() / "fires"
        report = run_analysis(root, analyzers_for([rule]))
        marked = expected_sites(root, rule)
        assert marked, f"fixture corpus for {rule} has no expect markers"
        assert {(f.path, f.line) for f in report.findings} == marked
        assert all(f.rule == rule for f in report.findings)
        assert not report.ok

    @pytest.mark.parametrize("rule", RULES)
    def test_clean_variant_is_silent(self, rule):
        root = FIXTURES / rule.lower() / "clean"
        report = run_analysis(root, analyzers_for([rule]))
        assert report.findings == []
        assert report.suppressed == []
        assert report.ok

    @pytest.mark.parametrize("rule", RULES)
    def test_suppressed_variant_records_but_does_not_fail(self, rule):
        root = FIXTURES / rule.lower() / "suppressed"
        report = run_analysis(root, analyzers_for([rule]))
        assert report.findings == []
        assert report.suppressed, f"{rule} suppressed fixture raised nothing"
        assert all(f.rule == rule for f in report.suppressed)
        assert report.ok

    def test_findings_carry_rule_message_and_hint(self):
        root = FIXTURES / "ra001" / "fires"
        (finding,) = run_analysis(root, analyzers_for(["RA001"])).findings
        assert finding.rule == "RA001"
        assert "set" in finding.message
        assert finding.hint
        assert finding.column >= 1
        assert finding.render().startswith("src/repro/core/example.py:")


class TestCli:
    def test_exit_zero_on_clean_tree(self, capsys):
        code = analysis_main(
            ["--root", str(FIXTURES / "ra001" / "clean"), "--rule", "RA001"]
        )
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_one_and_location_on_findings(self, capsys):
        code = analysis_main(
            ["--root", str(FIXTURES / "ra001" / "fires"), "--rule", "RA001"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "src/repro/core/example.py:7" in out
        assert "RA001" in out

    def test_json_schema(self, capsys):
        code = analysis_main(
            ["--root", str(FIXTURES / "ra002" / "fires"), "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["ok"] is False
        assert payload["rules"] == list(RULES)
        assert payload["files_scanned"] >= 1
        assert payload["counts"]["RA002"] == 1
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "path", "line", "column", "message", "hint"}
        assert finding["path"] == "src/repro/core/example.py"
        assert payload["suppressed"] == []

    def test_github_format_emits_error_annotations(self, capsys):
        code = analysis_main(
            [
                "--root",
                str(FIXTURES / "ra002" / "fires"),
                "--rule",
                "RA002",
                "--format",
                "github",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "::group::RA002" in out
        assert "::error file=src/repro/core/example.py,line=" in out
        assert "::endgroup::" in out

    def test_list_rules(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out
        for family in FAMILIES:
            assert family in out

    def test_family_selector_and_unknown_rule(self):
        assert [a.rule for a in analyzers_for(["locks"])] == ["RA005", "RA006"]
        assert [a.rule for a in analyzers_for(["ra003"])] == ["RA003"]
        with pytest.raises(ValueError, match="unknown rule"):
            analyzers_for(["RA999"])


class TestFramework:
    def test_parse_error_reported_as_ra000(self, tmp_path):
        bad = tmp_path / "src" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        report = run_analysis(tmp_path, all_analyzers())
        (finding,) = report.findings
        assert finding.rule == "RA000"
        assert finding.path == "src/broken.py"
        assert "does not parse" in finding.message

    def test_bare_noqa_suppresses_any_rule(self, tmp_path):
        target = tmp_path / "src" / "repro" / "core" / "example.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "def f(values):\n"
            "    seen = set(values)\n"
            "    return [v for v in seen]  # noqa\n"
        )
        report = run_analysis(tmp_path, analyzers_for(["RA001"]))
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_rule_counts_are_zero_filled(self):
        report = run_analysis(FIXTURES / "ra001" / "clean", all_analyzers())
        assert set(report.counts()) == set(RULES)
        assert all(count == 0 for count in report.counts().values())


class TestConcurrencyMarkers:
    def test_guarded_by_records_and_is_a_runtime_noop(self):
        @guarded_by("_lock", "a", "b")
        @guarded_by("_rw", "c", rw=True)
        class Sample:
            def __init__(self):
                self._lock = threading.Lock()
                self.a = self.b = self.c = 0

        table = guarded_attributes(Sample)
        assert table["a"].lock == "_lock" and not table["a"].rw
        assert table["c"].lock == "_rw" and table["c"].rw
        instance = Sample()
        instance.a = 5  # markers never wrap attribute access
        assert instance.a == 5

    def test_guarded_by_merges_without_mutating_the_base_class(self):
        @guarded_by("_lock", "a")
        class Base:
            pass

        @guarded_by("_lock", "b")
        class Derived(Base):
            pass

        assert set(guarded_attributes(Base)) == {"a"}
        assert set(guarded_attributes(Derived)) == {"a", "b"}

    def test_holds_lock_stamps_the_function(self):
        @holds_lock("_lock")
        def helper():
            return 1

        assert held_locks(helper) == frozenset({"_lock"})
        assert helper() == 1
        assert held_locks(lambda: None) == frozenset()

    def test_marker_validation(self):
        with pytest.raises(TypeError):
            guarded_by("", "a")
        with pytest.raises(TypeError):
            guarded_by("_lock")
        with pytest.raises(TypeError):
            holds_lock("")


class TestTypingGate:
    def test_mypy_gate_is_configured(self):
        """The CI job runs `mypy` with pyproject config; keep it wired."""
        text = (REPO_ROOT / "pyproject.toml").read_text()
        assert "[tool.mypy]" in text
        assert 'follow_imports = "silent"' in text
        for module in (
            "src/repro/core/coverage.py",
            "src/repro/core/covcache.py",
            "src/repro/core/shards.py",
            "src/repro/service",
        ):
            assert module in text
        ci = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert "mypy" in ci

    @pytest.mark.skipif(
        importlib.util.find_spec("mypy") is None,
        reason="mypy is not installed in this environment (CI runs it)",
    )
    def test_mypy_strict_gate_passes(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
