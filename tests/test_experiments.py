"""Integration tests for the experiment harness (every figure/table driver).

These run each driver at a deliberately tiny scale and assert that the output
rows are well-formed and that the qualitative shapes the paper reports hold
(e.g. utility grows with k, NetClus memory below Inc-Greedy memory).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import beijing_like, beijing_small_like
from repro.experiments.figures import (
    fig04_optimal,
    fig05_quality,
    fig06_runtime,
    fig07_cost_capacity,
    fig08_tops2,
    fig10_scalability,
    fig11_city_geometries,
    fig12_traj_length,
    table07_gamma,
    table08_fm_sketches,
    table09_memory,
    table10_updates,
    table11_index_construction,
    table12_jaccard,
)
from repro.experiments.metrics import relative_error_percent, utility_percent
from repro.experiments.reporting import format_table
from repro.experiments.runner import build_context


@pytest.fixture(scope="module")
def context():
    """One shared tiny experiment context for all driver tests."""
    return build_context(scale="tiny", seed=7, tau_max_km=4.0)


class TestMetricsAndReporting:
    def test_utility_percent(self):
        assert utility_percent(25, 100) == 25.0

    def test_relative_error(self):
        assert relative_error_percent(100, 95) == pytest.approx(5.0)
        assert relative_error_percent(0, 10) == 0.0

    def test_format_table_contains_columns(self):
        text = format_table([{"a": 1, "b": 2.5}], title="T")
        assert "T" in text and "a" in text and "2.500" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_save_rows_csv(self, tmp_path):
        from repro.experiments.reporting import save_rows_csv

        path = tmp_path / "rows.csv"
        save_rows_csv([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}], path)
        text = path.read_text().splitlines()
        assert text[0] == "a,b"
        assert text[1] == "1,2.5"

    def test_save_rows_csv_empty(self, tmp_path):
        from repro.experiments.reporting import save_rows_csv

        path = tmp_path / "empty.csv"
        save_rows_csv([], path)
        assert path.read_text() == ""


class TestComparisonDrivers:
    def test_fig05_quality(self, context):
        rows = fig05_quality.run_varying_k(context, k_values=(1, 3), tau_km=0.8)
        assert len(rows) == 2
        # utility grows (weakly) with k for every algorithm
        for name in ("incg", "netclus"):
            assert rows[1][f"{name}_utility_pct"] >= rows[0][f"{name}_utility_pct"] - 1e-9

    def test_fig05_tau_sweep(self, context):
        rows = fig05_quality.run_varying_tau(context, tau_values=(0.4, 1.6), k=3)
        assert rows[1]["incg_utility_pct"] >= rows[0]["incg_utility_pct"] - 1e-9

    def test_fig06_runtime(self, context):
        rows = fig06_runtime.run_varying_k(context, k_values=(1, 3), tau_km=0.8)
        for row in rows:
            assert row["incg_runtime_s"] > 0
            assert row["netclus_runtime_s"] > 0
            assert row["speedup_incg_over_netclus"] > 0

    def test_fig04_optimal(self):
        bundle = beijing_small_like(num_trajectories=40, num_sites=10, seed=5)
        ctx = build_context(bundle=bundle, tau_max_km=2.0)
        rows = fig04_optimal.run(k_values=(1, 2), context=ctx)
        for row in rows:
            # no heuristic may beat the optimum
            for name in ("incg", "fmg", "netclus", "fmnetclus"):
                assert row[f"{name}_utility_pct"] <= row["opt_utility_pct"] + 1e-6
            # greedy respects its (1 - 1/e) guarantee
            assert row["incg_utility_pct"] >= (1 - 1 / np.e) * row["opt_utility_pct"] - 1e-6


class TestParameterStudies:
    def test_table07_gamma(self):
        bundle = beijing_like("tiny", seed=7)
        rows = table07_gamma.run(gamma_values=(0.5, 1.0), bundle=bundle)
        assert len(rows) == 2
        # finer resolution (smaller gamma) -> more instances and a bigger index
        assert rows[0]["num_instances"] >= rows[1]["num_instances"]
        assert rows[0]["index_bytes"] >= rows[1]["index_bytes"]

    def test_table08_fm(self, context):
        rows = table08_fm_sketches.run(f_values=(2, 30), context=context)
        assert len(rows) == 2
        assert all(row["fm_netclus_time_s"] > 0 for row in rows)

    def test_table09_memory(self, context):
        rows = table09_memory.run(tau_values=(0.2, 0.8), context=context)
        for row in rows:
            # NetClus must use (estimated) less memory than Inc-Greedy
            assert row["netclus_mb"] < row["incg_mb"]
            assert row["fmg_mb"] >= row["incg_mb"]

    def test_table11_index_construction(self, context):
        rows = table11_index_construction.run(context=context)
        assert len(rows) == context.netclus.num_instances
        clusters = [row["num_clusters"] for row in rows]
        assert clusters == sorted(clusters, reverse=True)

    def test_table12_jaccard(self, context):
        rows = table12_jaccard.run(tau_values=(0.4, 0.8), context=context)
        assert len(rows) == 2
        for row in rows:
            assert row["jaccard_clusters"] >= 1


class TestExtensionsAndVariants:
    def test_fig07_cost(self, context):
        rows = fig07_cost_capacity.run_cost(context, std_values=(0.0, 0.8), budget=3.0)
        assert len(rows) == 2
        # larger cost spread lets the greedy pick more, cheaper sites
        assert rows[1]["incg_num_sites"] >= rows[0]["incg_num_sites"]

    def test_fig07_capacity(self, context):
        rows = fig07_cost_capacity.run_capacity(context, mean_fractions=(0.01, 1.0))
        assert rows[1]["incg_utility_pct"] >= rows[0]["incg_utility_pct"] - 1e-9

    def test_fig08_tops2(self, context):
        rows = fig08_tops2.run(tau_values=(0.8,), k_values=(3,), context=context)
        assert len(rows) == 1
        assert rows[0]["netclus_utility_pct"] >= 0.5 * rows[0]["incg_utility_pct"]


class TestRobustnessStudies:
    def test_fig10_scalability(self):
        bundle = beijing_like("tiny", seed=7)
        rows = fig10_scalability.run_varying_sites(bundle, site_fractions=(0.5, 1.0), k=3)
        assert rows[0]["num_sites"] < rows[1]["num_sites"]
        rows_t = fig10_scalability.run_varying_trajectories(
            bundle, trajectory_fractions=(0.5, 1.0), k=3
        )
        assert rows_t[0]["num_trajectories"] < rows_t[1]["num_trajectories"]

    def test_fig11_city_geometries(self):
        rows = fig11_city_geometries.run(k=3, tau_km=0.8, num_trajectories=60, seed=3)
        assert {row["city"] for row in rows} == {"NYK", "ATL", "BNG"}
        for row in rows:
            assert 0 < row["incg_utility_pct"] <= 100

    def test_fig12_traj_length(self):
        bundle = beijing_like("tiny", seed=7)
        rows = fig12_traj_length.run(
            length_bands_km=((1.0, 3.0), (3.0, 6.0)),
            num_per_band=20,
            bundle=bundle,
            k=3,
        )
        assert len(rows) >= 1
        for row in rows:
            assert row["num_trajectories"] > 0

    def test_table10_updates(self):
        bundle = beijing_like("tiny", seed=7)
        rows = table10_updates.run(batch_sizes=(10, 20), bundle=bundle)
        assert len(rows) == 2
        for row in rows:
            assert row["trajectory_add_s"] >= 0.0
            assert row["site_add_s"] >= 0.0
