"""Unit tests for the exact (optimal) TOPS solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coverage import CoverageIndex
from repro.core.greedy import IncGreedy
from repro.core.optimal import OptimalSolver
from repro.core.preference import BinaryPreference, LinearPreference
from repro.core.query import TOPSQuery
from repro.utils.rng import ensure_rng


def random_coverage(num_trajectories, num_sites, seed, binary=True):
    rng = ensure_rng(seed)
    detours = rng.uniform(0.0, 2.0, size=(num_trajectories, num_sites))
    # sparsify: most pairs uncovered
    detours[rng.uniform(size=detours.shape) < 0.5] = np.inf
    preference = BinaryPreference() if binary else LinearPreference()
    return CoverageIndex(detours, tau_km=1.0, preference=preference)


class TestBranchAndBound:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_exhaustive_binary(self, seed):
        coverage = random_coverage(12, 8, seed)
        query = TOPSQuery(k=3, tau_km=1.0)
        bb = OptimalSolver(coverage).solve(query)
        brute = OptimalSolver(coverage).solve_exhaustive(query)
        assert bb.utility == pytest.approx(brute.utility, abs=1e-9)

    @pytest.mark.parametrize("seed", [4, 5])
    def test_matches_exhaustive_graded(self, seed):
        coverage = random_coverage(10, 7, seed, binary=False)
        query = TOPSQuery(k=2, tau_km=1.0, preference=LinearPreference())
        bb = OptimalSolver(coverage).solve(query)
        brute = OptimalSolver(coverage).solve_exhaustive(query)
        assert bb.utility == pytest.approx(brute.utility, abs=1e-9)

    def test_at_least_greedy(self):
        coverage = random_coverage(20, 10, seed=7)
        query = TOPSQuery(k=3, tau_km=1.0)
        optimal = OptimalSolver(coverage).solve(query)
        greedy = IncGreedy(coverage).solve(query)
        assert optimal.utility >= greedy.utility - 1e-9

    def test_paper_example_optimum(self):
        """The optimal solution of Example 1 is {s1, s3} with utility 1.0."""
        scores = np.asarray([[0.4, 0.11, 0.0], [0.0, 0.5, 0.6]])
        detours = 1.0 - scores
        detours[scores == 0.0] = np.inf
        coverage = CoverageIndex(detours, 1.0, LinearPreference())
        result = OptimalSolver(coverage).solve(TOPSQuery(k=2, tau_km=1.0))
        assert set(result.sites) == {0, 2}
        assert result.utility == pytest.approx(1.0, abs=1e-9)

    def test_k_exceeding_sites(self):
        coverage = random_coverage(5, 3, seed=8)
        result = OptimalSolver(coverage).solve(TOPSQuery(k=10, tau_km=1.0))
        assert len(result.sites) <= 3

    def test_refuses_large_instances(self):
        coverage = random_coverage(5, 80, seed=9)
        with pytest.raises(ValueError):
            OptimalSolver(coverage, max_sites=64)

    def test_greedy_within_bound_of_optimal(self):
        """Greedy must achieve at least (1 − 1/e) of the optimum."""
        for seed in range(5):
            coverage = random_coverage(15, 9, seed=seed)
            query = TOPSQuery(k=3, tau_km=1.0)
            optimal = OptimalSolver(coverage).solve(query)
            greedy = IncGreedy(coverage).solve(query)
            assert greedy.utility >= (1 - 1 / np.e) * optimal.utility - 1e-9

    def test_result_metadata(self):
        coverage = random_coverage(6, 5, seed=10)
        result = OptimalSolver(coverage).solve(TOPSQuery(k=2, tau_km=1.0))
        assert result.algorithm == "optimal"
        assert result.metadata["method"] == "branch-and-bound"


class TestILP:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_ilp_matches_branch_and_bound_binary(self, seed):
        coverage = random_coverage(12, 8, seed)
        query = TOPSQuery(k=3, tau_km=1.0)
        ilp = OptimalSolver(coverage).solve_ilp(query)
        bb = OptimalSolver(coverage).solve(query)
        assert ilp.utility == pytest.approx(bb.utility, abs=1e-6)

    @pytest.mark.parametrize("seed", [5, 6])
    def test_ilp_matches_branch_and_bound_graded(self, seed):
        coverage = random_coverage(10, 7, seed, binary=False)
        query = TOPSQuery(k=2, tau_km=1.0, preference=LinearPreference())
        ilp = OptimalSolver(coverage).solve_ilp(query)
        bb = OptimalSolver(coverage).solve(query)
        assert ilp.utility == pytest.approx(bb.utility, abs=1e-6)

    def test_ilp_respects_cardinality(self):
        coverage = random_coverage(15, 9, seed=7)
        result = OptimalSolver(coverage).solve_ilp(TOPSQuery(k=3, tau_km=1.0))
        assert len(result.sites) <= 3
        assert result.metadata["method"] == "ilp"

    def test_ilp_paper_example(self):
        """The ILP finds the true optimum {s1, s3} of Example 1."""
        scores = np.asarray([[0.4, 0.11, 0.0], [0.0, 0.5, 0.6]])
        detours = 1.0 - scores
        detours[scores == 0.0] = np.inf
        coverage = CoverageIndex(detours, 1.0, LinearPreference())
        result = OptimalSolver(coverage).solve_ilp(TOPSQuery(k=2, tau_km=1.0))
        assert set(result.sites) == {0, 2}
        assert result.utility == pytest.approx(1.0, abs=1e-6)

    def test_ilp_empty_coverage(self):
        detours = np.full((4, 3), np.inf)
        coverage = CoverageIndex(detours, 1.0, BinaryPreference())
        result = OptimalSolver(coverage).solve_ilp(TOPSQuery(k=2, tau_km=1.0))
        assert result.utility == 0.0
        assert result.sites == ()
