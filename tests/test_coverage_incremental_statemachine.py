"""Randomized state-machine parity suite for the incremental coverage cache.

The coverage cache (:mod:`repro.core.covcache`) claims that a cached part
patched through an arbitrary sequence of :meth:`NetClusIndex.apply_updates`
batches answers queries **byte-identically** to a coverage structure built
from scratch on the same index state.  This suite drives that claim with a
seeded generator of arbitrary interleavings of

* add-trajectory batches (from a held-out pool),
* remove-trajectory batches,
* add-site / remove-site batches,
* mixed batches, and
* query probes on multiple ``(τ, ψ)`` keys,

and after **every** step byte-compares the warm index against a cache-free
twin across ``engine ∈ {dense, sparse}`` and ``shards ∈ {1, 4}``.  A failure
prints the reproducing seed and the full op script.

Also covers the cache's unit-level contracts: LRU bounds, the unregistered-ψ
bypass, staleness fallback on single-item mutators, and deepcopy hygiene.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core.covcache import CoverageCache, coverage_cache_key
from repro.core.netclus import NetClusIndex, UpdateBatch
from repro.core.preference import (
    BinaryPreference,
    LinearPreference,
    PreferenceFunction,
)
from repro.core.query import TOPSQuery
from repro.network.generators import grid_network
from repro.trajectory.generators import commuter_trajectories

#: the (τ, ψ) keys every parity sweep probes
KEYS: tuple[tuple[float, PreferenceFunction], ...] = (
    (1.2, BinaryPreference()),
    (2.0, LinearPreference()),
)
ENGINES = ("dense", "sparse")
SHARD_COUNTS = (1, 4)
NUM_OPS = 12


@pytest.fixture(scope="module")
def world():
    network = grid_network(8, 8, spacing_km=0.5)
    everything = commuter_trajectories(network, 80, seed=17)
    base = everything.sample(50, seed=1)
    held_out = [t for t in everything if t.traj_id not in set(base.ids())]
    sites = network.node_ids()[::2]
    return network, base, held_out, sites


def build(world, strategy="closest"):
    network, base, _, sites = world
    return NetClusIndex.build(
        network,
        base,
        sites,
        gamma=0.75,
        tau_min_km=0.4,
        tau_max_km=3.0,
        representative_strategy=strategy,
    )


# ---------------------------------------------------------------------- #
# op generator
# ---------------------------------------------------------------------- #
def generate_ops(rng, network, index, pool):
    """Yield ``(label, UpdateBatch | None)`` steps; ``None`` marks a query probe.

    Mutates nothing — sizes are drawn against a *simulated* live/site count
    so the generated script is a pure function of the seed.
    """
    live = index.num_trajectories
    num_sites = len(index.sites)
    pool_left = len(pool)
    pool_used = 0
    removed_site_pool = 0
    ops = []
    for _ in range(NUM_OPS):
        kind = int(rng.integers(0, 6))
        if kind == 0 and pool_left >= 3:
            take = int(rng.integers(1, min(6, pool_left + 1)))
            ops.append(("add_trajectories", {"count": take, "offset": pool_used}))
            pool_used += take
            pool_left -= take
            live += take
        elif kind == 1 and live > 20:
            count = int(rng.integers(1, 6))
            ops.append(("remove_trajectories", {"count": count, "seed": int(rng.integers(1 << 30))}))
            live -= count
        elif kind == 2 and removed_site_pool > 0:
            ops.append(("add_sites", {"count": removed_site_pool}))
            num_sites += removed_site_pool
            removed_site_pool = 0
        elif kind == 3 and num_sites > 12:
            count = int(rng.integers(1, 5))
            ops.append(("remove_sites", {"count": count, "seed": int(rng.integers(1 << 30))}))
            num_sites -= count
            removed_site_pool += count
        elif kind == 4 and live > 25 and pool_left >= 2 and num_sites > 12:
            ops.append(
                (
                    "mixed",
                    {
                        "add": 2,
                        "offset": pool_used,
                        "remove": 2,
                        "remove_sites": 1,
                        "seed": int(rng.integers(1 << 30)),
                    },
                )
            )
            pool_used += 2
            pool_left -= 2
            live += 2 - 2
            num_sites -= 1
            removed_site_pool += 1
        else:
            ops.append(("query", {"key": int(rng.integers(0, len(KEYS)))}))
    return ops


def op_to_batch(op, index, pool, removed_sites):
    """Materialise one generated op against the *current* index state."""
    label, params = op
    if label == "query":
        return None
    if label == "add_trajectories":
        return UpdateBatch(
            add_trajectories=pool[params["offset"] : params["offset"] + params["count"]]
        )
    if label == "remove_trajectories":
        rng = np.random.default_rng(params["seed"])
        ids = list(index.trajectory_ids)
        picks = rng.choice(len(ids), size=min(params["count"], len(ids)), replace=False)
        return UpdateBatch(remove_trajectories=[ids[int(p)] for p in sorted(picks)])
    if label == "add_sites":
        back = removed_sites[: params["count"]]
        del removed_sites[: params["count"]]
        return UpdateBatch(add_sites=back)
    if label == "remove_sites":
        rng = np.random.default_rng(params["seed"])
        sites = sorted(index.sites)
        picks = rng.choice(len(sites), size=min(params["count"], len(sites)), replace=False)
        victims = [sites[int(p)] for p in sorted(picks)]
        removed_sites.extend(victims)
        return UpdateBatch(remove_sites=victims)
    if label == "mixed":
        rng = np.random.default_rng(params["seed"])
        ids = list(index.trajectory_ids)
        picks = rng.choice(len(ids), size=params["remove"], replace=False)
        sites = sorted(index.sites)
        site_picks = rng.choice(len(sites), size=params["remove_sites"], replace=False)
        victims = [sites[int(p)] for p in sorted(site_picks)]
        removed_sites.extend(victims)
        return UpdateBatch(
            add_trajectories=pool[params["offset"] : params["offset"] + params["add"]],
            remove_trajectories=[ids[int(p)] for p in sorted(picks)],
            remove_sites=victims,
        )
    raise AssertionError(f"unknown op {label}")


def format_script(seed, ops, upto):
    lines = [f"seed = {seed}"]
    for i, (label, params) in enumerate(ops[: upto + 1]):
        lines.append(f"  step {i:2d}: {label}({params})")
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# the state machine
# ---------------------------------------------------------------------- #
def assert_parity(warm, seed, ops, step):
    """Byte-compare warm-cache answers vs a cache-free twin, full matrix."""
    cold = copy.deepcopy(warm)
    cold.coverage_cache = None
    for tau, preference in KEYS:
        for engine in ENGINES:
            for shards in SHARD_COUNTS:
                query = TOPSQuery(k=5, tau_km=tau, preference=preference)
                a = warm.query(query, engine=engine, shards=shards)
                b = cold.query(query, engine=engine, shards=shards)
                context = (
                    f"(tau={tau}, psi={preference.spec()[0]}, engine={engine}, "
                    f"shards={shards}) diverged after step {step}.\n"
                    f"Reproduce with:\n{format_script(seed, ops, step)}"
                )
                if list(a.sites) != list(b.sites):
                    pytest.fail(
                        f"warm selection {list(a.sites)} != cold {list(b.sites)} {context}"
                    )
                if (
                    np.asarray(a.per_trajectory_utility).tobytes()
                    != np.asarray(b.per_trajectory_utility).tobytes()
                ):
                    pytest.fail(f"per-trajectory utilities diverged {context}")


@pytest.mark.parametrize(
    "seed,strategy", [(11, "closest"), (23, "most_frequent"), (47, "closest")]
)
def test_statemachine_parity(world, seed, strategy):
    network, base, held_out, sites = world
    warm = build(world, strategy)
    warm.enable_coverage_cache()
    rng = np.random.default_rng(seed)
    ops = generate_ops(rng, network, warm, held_out)
    removed_sites: list[int] = []

    # warm every (τ, ψ) key up front so each later batch exercises a patch
    for tau, preference in KEYS:
        for engine in ENGINES:
            warm.query(TOPSQuery(k=5, tau_km=tau, preference=preference), engine=engine)

    batches_applied = 0
    for step, op in enumerate(ops):
        batch = op_to_batch(op, warm, held_out, removed_sites)
        if batch is not None:
            warm.apply_updates(batch)
            batches_applied += 1
        else:
            tau, preference = KEYS[op[1]["key"]]
            warm.query(TOPSQuery(k=4, tau_km=tau, preference=preference), engine="sparse")
        assert_parity(warm, seed, ops, step)

    stats = warm.coverage_cache.stats()
    # every batch patched every cached part in place — no invalidation, and
    # no part was ever rebuilt from scratch after the initial warm-up
    assert stats["parts"] == len(KEYS)
    assert stats["stores"] == len(KEYS)
    assert stats["invalidations"] == 0
    assert stats["patches"] == batches_applied * len(KEYS)


# ---------------------------------------------------------------------- #
# unit-level contracts
# ---------------------------------------------------------------------- #
def test_lru_bound(world):
    index = build(world)
    index.enable_coverage_cache(limit=2)
    for tau in (0.8, 1.2, 1.6, 2.0):
        index.query(TOPSQuery(k=3, tau_km=tau), engine="sparse")
    stats = index.coverage_cache.stats()
    assert stats["parts"] == 2
    described = index.coverage_cache.describe_parts()
    assert [p["tau_km"] for p in described] == [1.6, 2.0]


def test_unregistered_preference_bypasses_cache(world):
    class CustomPreference(PreferenceFunction):
        def raw_score(self, detour_km, tau_km):
            return np.full_like(np.asarray(detour_km, dtype=float), 0.5)

    assert coverage_cache_key(1.0, CustomPreference()) is None
    index = build(world)
    index.enable_coverage_cache()
    index.prepare_coverage(1.2, CustomPreference(), engine="sparse")
    assert index.coverage_cache.stats()["parts"] == 0


def test_single_item_mutator_falls_back_to_rebuild(world):
    """Singular mutators bypass the delta hooks — the stale part must be
    refused and transparently rebuilt, never served."""
    network, base, held_out, sites = world
    index = build(world)
    index.enable_coverage_cache()
    query = TOPSQuery(k=5, tau_km=1.2)
    index.query(query, engine="sparse")
    assert index.coverage_cache.stats()["parts"] == 1

    index.remove_trajectory(list(base.ids())[3])  # bumps version, no patch
    warm_answer = index.query(query, engine="sparse")
    stats = index.coverage_cache.stats()
    assert stats["invalidations"] == 1  # the stale part was dropped...
    assert stats["stores"] == 2  # ...and a fresh one stored

    cold = copy.deepcopy(index)
    cold.coverage_cache = None
    cold_answer = cold.query(query, engine="sparse")
    assert list(warm_answer.sites) == list(cold_answer.sites)
    assert (
        np.asarray(warm_answer.per_trajectory_utility).tobytes()
        == np.asarray(cold_answer.per_trajectory_utility).tobytes()
    )


def test_deepcopy_drops_views_but_keeps_parts(world):
    index = build(world)
    index.enable_coverage_cache()
    index.query(TOPSQuery(k=5, tau_km=1.2), engine="sparse")
    clone = copy.deepcopy(index)
    assert clone.coverage_cache is not index.coverage_cache
    assert clone.coverage_cache.stats()["parts"] == 1
    for part in clone.coverage_cache.parts.values():
        assert part.materialised == {}
    # the cloned cache still answers warm (re-materialises from its arrays)
    before = clone.coverage_cache.stats()["hits"]
    clone.query(TOPSQuery(k=5, tau_km=1.2), engine="sparse")
    assert clone.coverage_cache.stats()["hits"] == before + 1


def test_cache_key_is_param_sensitive():
    assert coverage_cache_key(1.0, LinearPreference()) == coverage_cache_key(
        1.0, LinearPreference()
    )
    assert coverage_cache_key(1.0, BinaryPreference()) != coverage_cache_key(
        1.5, BinaryPreference()
    )


def test_limit_resize(world):
    index = build(world)
    index.enable_coverage_cache(limit=4)
    assert isinstance(index.coverage_cache, CoverageCache)
    for tau in (0.8, 1.2, 1.6, 2.0):
        index.query(TOPSQuery(k=3, tau_km=tau), engine="sparse")
    assert index.coverage_cache.stats()["parts"] == 4
    index.enable_coverage_cache(limit=1)  # idempotent enable + shrink
    assert index.coverage_cache.stats()["parts"] == 1
