"""Unit tests for trajectory serialisation."""

from __future__ import annotations

import pytest

from repro.network.generators import grid_network
from repro.trajectory.generators import random_route_trajectories
from repro.trajectory.io import (
    load_trajectories_csv,
    load_trajectories_json,
    save_trajectories_csv,
    save_trajectories_json,
)


@pytest.fixture(scope="module")
def network():
    return grid_network(5, 5, spacing_km=0.5)


@pytest.fixture(scope="module")
def dataset(network):
    return random_route_trajectories(network, 12, seed=6)


class TestJsonRoundTrip:
    def test_counts(self, dataset, tmp_path):
        path = tmp_path / "trajs.json"
        save_trajectories_json(dataset, path)
        loaded = load_trajectories_json(path)
        assert len(loaded) == len(dataset)

    def test_node_sequences_preserved(self, dataset, tmp_path):
        path = tmp_path / "trajs.json"
        save_trajectories_json(dataset, path)
        loaded = load_trajectories_json(path)
        for original, restored in zip(dataset, loaded):
            assert original.nodes == restored.nodes

    def test_cumulative_preserved(self, dataset, tmp_path):
        path = tmp_path / "trajs.json"
        save_trajectories_json(dataset, path)
        loaded = load_trajectories_json(path)
        for original, restored in zip(dataset, loaded):
            assert original.cumulative_km == pytest.approx(restored.cumulative_km)


class TestCsvRoundTrip:
    def test_counts(self, dataset, tmp_path):
        path = tmp_path / "trajs.csv"
        save_trajectories_csv(dataset, path)
        loaded = load_trajectories_csv(path)
        assert len(loaded) == len(dataset)

    def test_node_sequences_preserved(self, dataset, tmp_path):
        path = tmp_path / "trajs.csv"
        save_trajectories_csv(dataset, path)
        loaded = load_trajectories_csv(path)
        for original, restored in zip(dataset, loaded):
            assert original.nodes == restored.nodes

    def test_recompute_with_network(self, dataset, network, tmp_path):
        path = tmp_path / "trajs.csv"
        save_trajectories_csv(dataset, path)
        loaded = load_trajectories_csv(path, network=network)
        for original, restored in zip(dataset, loaded):
            assert original.length_km == pytest.approx(restored.length_km)
