"""Unit tests for the distance oracle and detour computation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distances import DistanceOracle
from repro.core.preference import BinaryPreference
from repro.network.generators import grid_network, random_planar_network
from repro.trajectory.generators import random_route_trajectories
from repro.trajectory.model import Trajectory


@pytest.fixture(scope="module")
def network():
    return grid_network(6, 6, spacing_km=1.0)


@pytest.fixture(scope="module")
def oracle(network):
    return DistanceOracle(network, network.node_ids())


class TestConstruction:
    def test_rejects_empty_sites(self, network):
        with pytest.raises(ValueError):
            DistanceOracle(network, [])

    def test_rejects_duplicate_sites(self, network):
        with pytest.raises(ValueError):
            DistanceOracle(network, [0, 0, 1])

    def test_rejects_unknown_site(self, network):
        with pytest.raises(ValueError):
            DistanceOracle(network, [0, 999])

    def test_num_sites(self, network, oracle):
        assert oracle.num_sites == network.num_nodes


class TestDistanceTables:
    def test_distance_from_site(self, oracle):
        # grid with 1 km spacing: node 0 -> node 2 is two edges to the right
        assert oracle.distance_from_site(0, 2) == pytest.approx(2.0)

    def test_distance_to_site(self, oracle):
        assert oracle.distance_to_site(2, 0) == pytest.approx(2.0)

    def test_round_trip_site_distance_symmetric(self, oracle):
        assert oracle.round_trip_site_distance(0, 7) == pytest.approx(
            oracle.round_trip_site_distance(7, 0)
        )

    def test_storage_bytes_positive(self, oracle):
        assert oracle.storage_bytes() > 0


class TestDetour:
    def test_zero_for_site_on_trajectory(self, network, oracle):
        trajectory = Trajectory.from_nodes(0, [0, 1, 2, 3], network)
        detours = oracle.detour_vector(trajectory)
        for node in trajectory.nodes:
            assert detours[oracle.site_index[node]] == pytest.approx(0.0)

    def test_known_off_path_detour(self, network, oracle):
        # trajectory along the bottom row of the grid: nodes 0,1,2,3
        trajectory = Trajectory.from_nodes(0, [0, 1, 2, 3], network)
        # node 6+1=7 is directly above node 1 (1 km away); round-trip detour 2 km
        assert oracle.detour(trajectory, 7) == pytest.approx(2.0)

    def test_prefix_min_matches_bruteforce(self):
        network = random_planar_network(40, area_km=5.0, seed=8)
        oracle = DistanceOracle(network, network.node_ids())
        dataset = random_route_trajectories(network, 10, seed=8)
        for trajectory in dataset:
            fast = oracle.detour_vector(trajectory)
            for site in [0, 5, 13, 27, 39]:
                assert fast[oracle.site_index[site]] == pytest.approx(
                    oracle.detour_bruteforce(trajectory, site), abs=1e-9
                )

    def test_detour_non_negative(self, network, oracle):
        dataset = random_route_trajectories(network, 8, seed=2)
        for trajectory in dataset:
            assert np.all(oracle.detour_vector(trajectory) >= 0.0)

    def test_single_node_trajectory(self, network, oracle):
        trajectory = Trajectory(traj_id=0, nodes=(14,), cumulative_km=(0.0,))
        detours = oracle.detour_vector(trajectory)
        # for a static user the detour to a site is its round-trip distance
        assert detours[oracle.site_index[14]] == pytest.approx(0.0)
        assert detours[oracle.site_index[15]] == pytest.approx(2.0)

    def test_detour_matrix_shape(self, network, oracle):
        dataset = random_route_trajectories(network, 6, seed=3)
        matrix = oracle.detour_matrix(dataset)
        assert matrix.shape == (6, oracle.num_sites)

    def test_detour_decreases_with_longer_trajectory(self, network, oracle):
        """Extending a trajectory can only reduce (or keep) the detour to any site."""
        short = Trajectory.from_nodes(0, [0, 1, 2], network)
        longer = Trajectory.from_nodes(1, [0, 1, 2, 3, 4, 5], network)
        assert np.all(
            oracle.detour_vector(longer) <= oracle.detour_vector(short) + 1e-9
        )


class TestEvaluateUtility:
    def test_empty_selection(self, network, oracle):
        dataset = random_route_trajectories(network, 5, seed=4)
        total, per_traj = oracle.evaluate_utility(dataset, [], 1.0, BinaryPreference())
        assert total == 0.0
        assert np.all(per_traj == 0.0)

    def test_all_sites_cover_everything_with_huge_tau(self, network, oracle):
        dataset = random_route_trajectories(network, 5, seed=4)
        total, per_traj = oracle.evaluate_utility(
            dataset, network.node_ids(), 1e6, BinaryPreference()
        )
        assert total == pytest.approx(len(dataset))
        assert np.all(per_traj == 1.0)

    def test_monotone_in_site_set(self, network, oracle):
        dataset = random_route_trajectories(network, 10, seed=5)
        small, _ = oracle.evaluate_utility(dataset, [0, 1], 1.0, BinaryPreference())
        large, _ = oracle.evaluate_utility(dataset, [0, 1, 20, 30], 1.0, BinaryPreference())
        assert large >= small
