"""Unit tests for the synthetic road-network generators."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.sparse.csgraph import connected_components

from repro.network.generators import (
    grid_network,
    polycentric_network,
    random_planar_network,
    ring_radial_network,
    star_network,
)


def assert_strongly_connected(network):
    n_components, _ = connected_components(network.to_csr(), directed=True, connection="strong")
    assert n_components == 1


class TestGridNetwork:
    def test_node_count(self):
        assert grid_network(5, 7).num_nodes == 35

    def test_edge_count_matches_mesh(self):
        net = grid_network(4, 4, spacing_km=1.0)
        # 2 * (rows*(cols-1) + cols*(rows-1)) directed edges
        assert net.num_edges == 2 * (4 * 3 + 4 * 3)

    def test_strongly_connected(self):
        assert_strongly_connected(grid_network(6, 6))

    def test_spacing_respected(self):
        net = grid_network(3, 3, spacing_km=2.0)
        assert net.edge_length(0, 1) == pytest.approx(2.0)

    def test_jitter_changes_lengths(self):
        jittered = grid_network(4, 4, spacing_km=1.0, jitter=0.2, seed=1)
        lengths = [e.length for e in jittered.edges()]
        assert np.std(lengths) > 0.0

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            grid_network(1, 5)


class TestStarNetwork:
    def test_node_count(self):
        net = star_network(num_arms=6, nodes_per_arm=10)
        assert net.num_nodes == 1 + 6 * 10

    def test_strongly_connected(self):
        assert_strongly_connected(star_network(num_arms=5, nodes_per_arm=8))

    def test_hub_degree_at_least_arms(self):
        net = star_network(num_arms=7, nodes_per_arm=5)
        assert net.out_degree(0) >= 7

    def test_minimum_arms(self):
        with pytest.raises(ValueError):
            star_network(num_arms=2)


class TestPolycentricNetwork:
    def test_node_count(self):
        net = polycentric_network(num_centers=3, grid_size=5, seed=1)
        assert net.num_nodes == 3 * 25

    def test_strongly_connected(self):
        assert_strongly_connected(polycentric_network(num_centers=4, grid_size=6, seed=2))

    def test_minimum_centers(self):
        with pytest.raises(ValueError):
            polycentric_network(num_centers=1)


class TestRingRadialNetwork:
    def test_node_count(self):
        net = ring_radial_network(num_rings=3, nodes_per_ring=12, core_grid=4)
        assert net.num_nodes == 16 + 3 * 12

    def test_strongly_connected(self):
        assert_strongly_connected(
            ring_radial_network(num_rings=4, nodes_per_ring=16, core_grid=5)
        )

    def test_rings_increase_radius(self):
        net = ring_radial_network(num_rings=3, nodes_per_ring=12, ring_spacing_km=1.0, core_grid=4)
        coords = net.coordinates()
        radii = np.hypot(coords[:, 0], coords[:, 1])
        assert radii.max() == pytest.approx(3.0, rel=0.05)


class TestRandomPlanarNetwork:
    def test_node_count(self):
        assert random_planar_network(50, seed=0).num_nodes == 50

    def test_strongly_connected(self):
        assert_strongly_connected(random_planar_network(80, seed=4))

    def test_deterministic_for_seed(self):
        a = random_planar_network(30, seed=9)
        b = random_planar_network(30, seed=9)
        assert {(e.source, e.target) for e in a.edges()} == {
            (e.source, e.target) for e in b.edges()
        }

    def test_positive_edge_lengths(self):
        net = random_planar_network(40, seed=2)
        assert all(e.length > 0 for e in net.edges())
