"""Unit tests for the TOPS extensions and variants (Section 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coverage import CoverageIndex
from repro.core.greedy import IncGreedy
from repro.core.preference import (
    BinaryPreference,
    ConvexProbabilityPreference,
    InconveniencePreference,
    LinearPreference,
)
from repro.core.query import TOPSQuery
from repro.core.variants import (
    solve_tops_capacity,
    solve_tops_cost,
    solve_tops_market_share,
    solve_tops_min_inconvenience,
    solve_tops_with_existing,
)
from repro.datasets.workloads import site_capacities_normal, site_costs_normal


class TestTopsCost:
    def test_budget_respected(self, grid_coverage):
        costs = site_costs_normal(grid_coverage.num_sites, std=0.5, seed=1)
        result = solve_tops_cost(grid_coverage, budget=3.0, site_costs=costs)
        spent = sum(costs[grid_coverage.columns_for_labels(result.sites)])
        assert spent <= 3.0 + 1e-9

    def test_unit_costs_budget_k_equals_tops(self, grid_coverage, binary_query):
        """With unit costs and B = k, TOPS-COST selects k sites like TOPS."""
        costs = np.ones(grid_coverage.num_sites)
        result = solve_tops_cost(grid_coverage, budget=binary_query.k, site_costs=costs)
        greedy = IncGreedy(grid_coverage).solve(binary_query)
        assert len(result.sites) == binary_query.k
        # the cost-ratio greedy equals plain greedy here, so utilities match
        assert result.utility == pytest.approx(greedy.utility, rel=0.05)

    def test_larger_budget_no_worse(self, grid_coverage):
        costs = site_costs_normal(grid_coverage.num_sites, std=0.3, seed=2)
        small = solve_tops_cost(grid_coverage, budget=2.0, site_costs=costs)
        large = solve_tops_cost(grid_coverage, budget=8.0, site_costs=costs)
        assert large.utility >= small.utility - 1e-9

    def test_cheaper_sites_allow_more_selections(self, grid_coverage):
        expensive = np.full(grid_coverage.num_sites, 2.0)
        cheap = np.full(grid_coverage.num_sites, 0.5)
        few = solve_tops_cost(grid_coverage, budget=4.0, site_costs=expensive)
        many = solve_tops_cost(grid_coverage, budget=4.0, site_costs=cheap)
        assert len(many.sites) >= len(few.sites)

    def test_invalid_inputs(self, grid_coverage):
        with pytest.raises(ValueError):
            solve_tops_cost(grid_coverage, budget=0.0, site_costs=np.ones(grid_coverage.num_sites))
        with pytest.raises(ValueError):
            solve_tops_cost(grid_coverage, budget=1.0, site_costs=np.ones(3))
        with pytest.raises(ValueError):
            solve_tops_cost(
                grid_coverage, budget=1.0, site_costs=np.zeros(grid_coverage.num_sites)
            )

    def test_single_best_site_safeguard(self):
        """When one expensive site beats many cheap ones, it must be chosen."""
        detours = np.full((10, 3), np.inf)
        detours[:, 0] = 0.1  # site 0 covers everything but costs 5
        detours[0, 1] = 0.1  # sites 1, 2 cover one trajectory each, cost 1
        detours[1, 2] = 0.1
        coverage = CoverageIndex(detours, 1.0, BinaryPreference())
        result = solve_tops_cost(coverage, budget=5.0, site_costs=np.asarray([5.0, 1.0, 1.0]))
        assert result.utility == pytest.approx(10.0)


class TestTopsCapacity:
    def test_infinite_capacity_equals_tops(self, grid_coverage, binary_query):
        caps = np.full(grid_coverage.num_sites, grid_coverage.num_trajectories + 1)
        capped = solve_tops_capacity(grid_coverage, binary_query, caps)
        plain = IncGreedy(grid_coverage, update_strategy="recompute").solve(binary_query)
        assert capped.utility == pytest.approx(plain.utility)

    def test_utility_increases_with_capacity(self, grid_coverage, binary_query):
        m = grid_coverage.num_trajectories
        utilities = []
        for fraction in (0.02, 0.2, 1.0):
            caps = site_capacities_normal(
                grid_coverage.num_sites, m, mean_fraction=fraction, seed=3
            )
            utilities.append(solve_tops_capacity(grid_coverage, binary_query, caps).utility)
        assert utilities[0] <= utilities[1] <= utilities[2] + 1e-9

    def test_utility_bounded_by_total_capacity(self, grid_coverage, binary_query):
        caps = np.full(grid_coverage.num_sites, 2.0)
        result = solve_tops_capacity(grid_coverage, binary_query, caps)
        assert result.utility <= binary_query.k * 2.0 + 1e-9

    def test_length_mismatch_rejected(self, grid_coverage, binary_query):
        with pytest.raises(ValueError):
            solve_tops_capacity(grid_coverage, binary_query, np.ones(3))


class TestTopsWithExisting:
    def test_existing_sites_not_reselected(self, grid_coverage, binary_query):
        plain = IncGreedy(grid_coverage).solve(binary_query)
        existing = list(plain.sites[:2])
        result = solve_tops_with_existing(grid_coverage, binary_query, existing)
        assert not set(existing) & set(result.sites)

    def test_utility_includes_existing(self, grid_coverage, binary_query):
        plain = IncGreedy(grid_coverage).solve(binary_query)
        existing = list(plain.sites[:2])
        result = solve_tops_with_existing(grid_coverage, binary_query, existing)
        existing_only = grid_coverage.utility_of(grid_coverage.columns_for_labels(existing))
        assert result.utility >= existing_only - 1e-9

    def test_metadata_records_existing(self, grid_coverage, binary_query):
        result = solve_tops_with_existing(grid_coverage, binary_query, [0])
        assert result.metadata["existing_sites"] == (0,)


class TestTopsMarketShare:
    def test_reaches_target_coverage(self, grid_coverage):
        result = solve_tops_market_share(grid_coverage, beta=0.5)
        assert result.utility >= 0.5 * grid_coverage.num_trajectories - 1e-9

    def test_higher_beta_needs_no_fewer_sites(self, grid_coverage):
        low = solve_tops_market_share(grid_coverage, beta=0.3)
        high = solve_tops_market_share(grid_coverage, beta=0.8)
        assert len(high.sites) >= len(low.sites)

    def test_max_sites_cap(self, grid_coverage):
        result = solve_tops_market_share(grid_coverage, beta=1.0, max_sites=2)
        assert len(result.sites) <= 2

    def test_requires_binary_preference(self, grid_problem):
        query = TOPSQuery(k=3, tau_km=1.0, preference=LinearPreference())
        coverage = grid_problem.coverage(query)
        with pytest.raises(ValueError):
            solve_tops_market_share(coverage, beta=0.5)

    def test_invalid_beta(self, grid_coverage):
        with pytest.raises(ValueError):
            solve_tops_market_share(grid_coverage, beta=1.5)


class TestTopsMinInconvenience:
    @pytest.fixture
    def inconvenience_coverage(self, grid_problem):
        query = TOPSQuery(k=3, tau_km=1e9, preference=InconveniencePreference())
        return grid_problem.coverage(query)

    def test_selects_k_sites(self, inconvenience_coverage):
        query = TOPSQuery(k=3, tau_km=1e9, preference=InconveniencePreference())
        result = solve_tops_min_inconvenience(inconvenience_coverage, query)
        assert len(result.sites) == 3

    def test_total_deviation_decreases_with_k(self, inconvenience_coverage):
        deviations = []
        for k in (1, 3, 6):
            query = TOPSQuery(k=k, tau_km=1e9, preference=InconveniencePreference())
            result = solve_tops_min_inconvenience(inconvenience_coverage, query)
            deviations.append(result.metadata["total_deviation_km"])
        assert deviations[0] >= deviations[1] >= deviations[2] - 1e-9

    def test_deviation_is_non_negative(self, inconvenience_coverage):
        query = TOPSQuery(k=2, tau_km=1e9, preference=InconveniencePreference())
        result = solve_tops_min_inconvenience(inconvenience_coverage, query)
        assert result.metadata["total_deviation_km"] >= 0.0


class TestTops2ConvexPreference:
    def test_convex_preference_end_to_end(self, grid_problem):
        query = TOPSQuery(k=5, tau_km=1.0, preference=ConvexProbabilityPreference())
        result = grid_problem.solve(query)
        assert len(result.sites) == 5
        assert 0.0 < result.utility <= grid_problem.num_trajectories

    def test_convex_utility_below_binary(self, grid_problem):
        binary = grid_problem.solve(TOPSQuery(k=5, tau_km=1.0, preference=BinaryPreference()))
        convex = grid_problem.solve(
            TOPSQuery(k=5, tau_km=1.0, preference=ConvexProbabilityPreference())
        )
        assert convex.utility <= binary.utility + 1e-9


class TestVariantsOnSparseEngine:
    """Every variant driver (except TOPS3) runs on the sparse coverage index
    and returns the dense driver's selections."""

    @pytest.fixture
    def engines(self, grid_problem, binary_query):
        dense = grid_problem.coverage(binary_query, engine="dense")
        sparse = grid_problem.coverage(binary_query, engine="sparse")
        return dense, sparse

    def test_cost_matches_dense(self, engines):
        dense, sparse = engines
        costs = site_costs_normal(dense.num_sites, seed=5)
        a = solve_tops_cost(dense, budget=3.0, site_costs=costs)
        b = solve_tops_cost(sparse, budget=3.0, site_costs=costs)
        assert a.sites == b.sites
        assert a.utility == pytest.approx(b.utility)

    def test_capacity_matches_dense(self, engines, binary_query):
        dense, sparse = engines
        caps = site_capacities_normal(
            dense.num_sites, dense.num_trajectories, seed=5
        )
        a = solve_tops_capacity(dense, binary_query, caps)
        b = solve_tops_capacity(sparse, binary_query, caps)
        assert a.sites == b.sites
        assert a.utility == pytest.approx(b.utility)

    def test_existing_matches_dense(self, engines, binary_query):
        dense, sparse = engines
        base = IncGreedy(dense).solve(binary_query)
        seed_sites = list(base.sites[:2])
        a = solve_tops_with_existing(dense, binary_query, seed_sites)
        b = solve_tops_with_existing(sparse, binary_query, seed_sites)
        assert a.sites == b.sites
        assert a.utility == pytest.approx(b.utility)

    def test_market_share_matches_dense(self, engines):
        dense, sparse = engines
        a = solve_tops_market_share(dense, beta=0.6)
        b = solve_tops_market_share(sparse, beta=0.6)
        assert a.sites == b.sites
        assert a.utility == pytest.approx(b.utility)

    def test_min_inconvenience_requires_dense(self, grid_problem):
        query = TOPSQuery(k=3, tau_km=1.0, preference=InconveniencePreference())
        sparse = grid_problem.coverage(
            TOPSQuery(k=3, tau_km=1.0, preference=LinearPreference()), engine="sparse"
        )
        with pytest.raises(ValueError):
            solve_tops_min_inconvenience(sparse, query)
