"""Unit tests for the uint64-packed :class:`BitsetCoverageIndex`.

Covers the full coverage protocol against the dense and sparse engines,
the binary-ψ {0, 1} scoring invariant the popcount kernels rest on, the
``engine="auto"`` resolution policy, the cached label→column mapping, and
the ``@kernel``/:class:`KernelTimer` profiling hook.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

import repro.core.bitcov as bitcov_module
import repro.core.coverage as coverage_module
import repro.core.shards as shards_module
from repro.core.bitcov import BitsetCoverageIndex
from repro.core.coverage import (
    CoverageIndex,
    SparseCoverageIndex,
    build_label_map,
    resolve_engine,
)
from repro.core.greedy import IncGreedy, LazyGreedy
from repro.core.preference import (
    PREFERENCE_REGISTRY,
    BinaryPreference,
    LinearPreference,
    make_preference,
)
from repro.core.shards import ShardedCoverage
from repro.utils.timer import KernelTimer


def random_detours(rng, m, n, density=0.3, scale=2.0):
    detours = rng.random((m, n)) * scale
    return np.where(rng.random((m, n)) < density, detours, np.inf)


def build_engines(detours, tau=0.8):
    """The same coverage on all three engines (binary ψ)."""
    preference = BinaryPreference()
    return {
        "dense": CoverageIndex(detours, tau, preference),
        "sparse": SparseCoverageIndex(detours, tau, preference),
        "bitset": BitsetCoverageIndex(detours, tau, preference),
    }


class TestProtocolParity:
    """Every protocol surface must be byte-identical to dense/sparse."""

    @pytest.mark.parametrize("m", [1, 63, 64, 65, 130])
    def test_structures_match(self, rng, m):
        detours = random_detours(rng, m, 17)
        engines = build_engines(detours)
        dense, bitset = engines["dense"], engines["bitset"]
        assert bitset.num_trajectories == m
        assert bitset.num_sites == 17
        assert not bitset.is_sparse
        assert np.array_equal(bitset.site_weights, dense.site_weights)
        assert bitset.site_weights.tobytes() == dense.site_weights.tobytes()
        assert np.array_equal(bitset.coverage_mask(), dense.coverage_mask())
        assert bitset.covered_pairs() == dense.covered_pairs()
        assert bitset.nnz == engines["sparse"].nnz
        for col in range(17):
            d_rows, d_vals = dense.site_column(col)
            b_rows, b_vals = bitset.site_column(col)
            assert np.array_equal(d_rows, b_rows)
            assert np.array_equal(d_vals, b_vals)
            assert np.array_equal(
                bitset.trajectories_covered(col), dense.trajectories_covered(col)
            )
        for row in range(m):
            assert np.array_equal(
                bitset.sites_covering(row), dense.sites_covering(row)
            )

    def test_kernels_match_bytewise(self, rng):
        detours = random_detours(rng, 90, 20)
        engines = build_engines(detours)
        dense, sparse, bitset = (
            engines["dense"], engines["sparse"], engines["bitset"],
        )
        # binary utilities are exactly {0.0, 1.0} — the popcount regime
        utilities = (rng.random(90) < 0.4).astype(np.float64)
        assert (
            bitset.marginal_gains(utilities).tobytes()
            == dense.marginal_gains(utilities).tobytes()
            == sparse.marginal_gains(utilities).tobytes()
        )
        for col in (0, 7, 19):
            for cap in (None, 0, 1, 5, 1000):
                assert bitset.marginal_gain(col, utilities, cap) == dense.marginal_gain(
                    col, utilities, cap
                )
                assert (
                    bitset.absorb(utilities, col, cap).tobytes()
                    == dense.absorb(utilities, col, cap).tobytes()
                )
        rows = [0, 3, 41, 89]
        old = np.zeros(len(rows))
        new = np.ones(len(rows))
        assert (
            bitset.gain_updates(rows, old, new).tobytes()
            == dense.gain_updates(rows, old, new).tobytes()
        )
        assert bitset.gain_updates([], [], []).tobytes() == dense.gain_updates(
            [], [], []
        ).tobytes()
        columns = [2, 9, 14]
        assert (
            bitset.per_trajectory_utility(columns).tobytes()
            == dense.per_trajectory_utility(columns).tobytes()
        )
        assert bitset.utility_of(columns) == dense.utility_of(columns)
        assert (
            bitset.utilities_for_selection(columns, capacity=4, seed_columns=[0])
            .tobytes()
            == dense.utilities_for_selection(columns, capacity=4, seed_columns=[0])
            .tobytes()
        )

    def test_selections_identical_across_engines(self, rng):
        detours = random_detours(rng, 120, 30, density=0.2)
        engines = build_engines(detours)
        runs = {
            "dense": IncGreedy(engines["dense"]).select(6),
            "sparse": LazyGreedy(engines["sparse"]).select(6),
            "bitset": IncGreedy(engines["bitset"]).select(6),
        }
        columns = {name: run[0] for name, run in runs.items()}
        assert columns["dense"] == columns["sparse"] == columns["bitset"]
        assert (
            runs["dense"][1].tobytes()
            == runs["sparse"][1].tobytes()
            == runs["bitset"][1].tobytes()
        )

    def test_from_coverage_lists_merges_duplicates(self, rng):
        detours = random_detours(rng, 70, 9)
        reference = BitsetCoverageIndex(detours, 0.8, BinaryPreference())
        rows, cols = np.nonzero(detours <= 0.8)
        values = detours[rows, cols]
        # duplicate every entry and shuffle: the scatter-OR must dedup
        order = rng.permutation(2 * len(rows))
        built = BitsetCoverageIndex.from_coverage_lists(
            np.concatenate([rows, rows])[order],
            np.concatenate([cols, cols])[order],
            np.concatenate([values, values])[order],
            num_trajectories=70,
            num_sites=9,
            tau_km=0.8,
            preference=BinaryPreference(),
        )
        assert np.array_equal(built.coverage_mask(), reference.coverage_mask())
        assert built.site_weights.tobytes() == reference.site_weights.tobytes()

    def test_storage_is_tau_independent_and_small(self, rng):
        detours = random_detours(rng, 256, 40)
        small = BitsetCoverageIndex(detours, 0.2, BinaryPreference())
        large = BitsetCoverageIndex(detours, 1.9, BinaryPreference())
        dense = CoverageIndex(detours, 1.9, BinaryPreference())
        assert small.storage_bytes() == large.storage_bytes()
        assert large.storage_bytes() < dense.storage_bytes()


class TestConstructionGuards:
    def test_refuses_non_binary_preference(self, rng):
        detours = random_detours(rng, 20, 5)
        with pytest.raises(ValueError):
            BitsetCoverageIndex(detours, 0.8, LinearPreference())

    def test_refuses_non_unit_weights(self, rng):
        detours = random_detours(rng, 20, 5)
        with pytest.raises(ValueError):
            BitsetCoverageIndex(
                detours, 0.8, BinaryPreference(),
                trajectory_weights=np.full(20, 2.0),
            )


class TestResolveEngine:
    def test_auto_policy(self):
        assert resolve_engine("auto", BinaryPreference()) == "bitset"
        assert resolve_engine("auto", LinearPreference()) == "sparse"

    @pytest.mark.parametrize("engine", ["dense", "sparse", "bitset"])
    def test_concrete_engines_pass_through(self, engine):
        assert resolve_engine(engine, BinaryPreference()) == engine
        assert resolve_engine(engine, LinearPreference()) == engine

    def test_unknown_engine_refused(self):
        with pytest.raises(ValueError):
            resolve_engine("dense-v2", BinaryPreference())


BINARY_PREFERENCES = [
    name
    for name, cls in sorted(PREFERENCE_REGISTRY.items())
    if getattr(cls, "is_binary", False)
]

SMALL_DETOURS = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 70), st.integers(2, 10)),
    elements=st.one_of(
        st.floats(min_value=0.0, max_value=3.0),
        st.just(np.inf),
    ),
)


class TestBinaryScoresAreExactlyZeroOne:
    """The invariant that makes popcount == float sum: every registered
    binary ψ scores exactly {0.0, 1.0} over the ≤τ entry set, on every
    engine and shard layout."""

    @pytest.mark.parametrize("shards", [1, 4])
    @pytest.mark.parametrize("engine", ["dense", "sparse", "bitset"])
    @pytest.mark.parametrize("preference_name", BINARY_PREFERENCES)
    @given(detours=SMALL_DETOURS)
    @settings(max_examples=25, deadline=None)
    def test_scores_are_binary(self, preference_name, engine, shards, detours):
        preference = make_preference(preference_name)
        tau = 1.0
        if shards > 1:
            coverage = ShardedCoverage.from_detours(
                detours, tau, preference, num_shards=shards, engine=engine
            )
        else:
            cls = {
                "dense": CoverageIndex,
                "sparse": SparseCoverageIndex,
                "bitset": BitsetCoverageIndex,
            }[engine]
            coverage = cls(detours, tau, preference)
        entry_rows, entry_cols = np.nonzero(np.asarray(detours) <= tau)
        total_entries = 0
        for col in range(coverage.num_sites):
            rows, scores = coverage.site_column(col)
            assert set(np.unique(scores)).issubset({1.0})
            total_entries += len(rows)
            # the column's rows are exactly the ≤τ entries of that site
            assert np.array_equal(rows, entry_rows[entry_cols == col])
        assert total_entries == len(entry_rows)
        # utilities over any selection stay exactly {0.0, 1.0}
        utilities = coverage.per_trajectory_utility(
            list(range(min(3, coverage.num_sites)))
        )
        assert set(np.unique(utilities)).issubset({0.0, 1.0})


class TestLabelMapCache:
    """``columns_for_labels`` must build its label→column dict exactly once."""

    @pytest.mark.parametrize(
        "engine, module",
        [
            ("dense", coverage_module),
            ("sparse", coverage_module),
            ("bitset", bitcov_module),
            ("sharded", shards_module),
        ],
    )
    def test_mapping_built_once(self, rng, monkeypatch, engine, module):
        detours = random_detours(rng, 48, 12)
        labels = list(range(100, 112))
        preference = BinaryPreference()
        if engine == "sharded":
            coverage = ShardedCoverage.from_detours(
                detours, 0.8, preference, num_shards=3, site_labels=labels
            )
        else:
            cls = {
                "dense": CoverageIndex,
                "sparse": SparseCoverageIndex,
                "bitset": BitsetCoverageIndex,
            }[engine]
            coverage = cls(detours, 0.8, preference, site_labels=labels)
        calls = {"count": 0}

        def counting_build(site_labels):
            calls["count"] += 1
            return build_label_map(site_labels)

        monkeypatch.setattr(module, "build_label_map", counting_build)
        first = coverage.columns_for_labels([100, 105, 111])
        for _ in range(5):
            assert coverage.columns_for_labels([100, 105, 111]) == first
        assert first == [0, 5, 11]
        assert calls["count"] == 1


class TestKernelTimer:
    def test_records_calls_and_seconds(self):
        timer = KernelTimer()
        timer.record("marginal_gains", 0.25)
        timer.record("marginal_gains", 0.25)
        timer.record("absorb", 0.1)
        assert timer.calls() == {"absorb": 1, "marginal_gains": 2}
        assert timer.seconds()["marginal_gains"] == pytest.approx(0.5)
        snapshot = timer.snapshot()
        assert list(snapshot) == sorted(snapshot)
        timer.reset()
        assert timer.snapshot() == {}

    @pytest.mark.parametrize("engine", ["dense", "sparse", "bitset"])
    def test_attached_timer_profiles_kernels(self, rng, engine):
        detours = random_detours(rng, 40, 10)
        coverage = build_engines(detours)[engine]
        utilities = np.zeros(40)
        # no timer attached: the wrapper is pass-through
        coverage.marginal_gains(utilities)
        timer = KernelTimer()
        coverage.attach_kernel_timer(timer)
        coverage.marginal_gains(utilities)
        coverage.absorb(utilities, 0)
        coverage.gain_updates([0, 1], [0.0, 0.0], [1.0, 1.0])
        calls = timer.calls()
        assert calls["marginal_gains"] == 1
        assert calls["absorb"] == 1
        assert calls["gain_updates"] == 1
        assert all(seconds >= 0.0 for seconds in timer.seconds().values())

    def test_sharded_attach_propagates_to_parts(self, rng):
        detours = random_detours(rng, 60, 10)
        coverage = ShardedCoverage.from_detours(
            detours, 0.8, BinaryPreference(), num_shards=3, engine="bitset"
        )
        timer = KernelTimer()
        coverage.attach_kernel_timer(timer)
        assert all(part.kernel_timer is timer for part in coverage.parts)
        coverage.marginal_gains(np.zeros(60))
        # one record per shard part, none double-counted by the coordinator
        assert timer.calls()["marginal_gains"] == 3
