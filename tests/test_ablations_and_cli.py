"""Tests for the representative-strategy option, the ablation drivers and the
run-all command-line entry point."""

from __future__ import annotations

import pytest

from repro.core.netclus import NetClusIndex
from repro.core.query import TOPSQuery
from repro.experiments import run_all
from repro.experiments.figures import ablation_design_choices


class TestRepresentativeStrategy:
    def test_invalid_strategy_rejected(self, tiny_bundle):
        problem = tiny_bundle.problem()
        with pytest.raises(ValueError):
            NetClusIndex.build(
                tiny_bundle.network,
                tiny_bundle.trajectories,
                tiny_bundle.sites,
                tau_min_km=0.4,
                tau_max_km=2.0,
                representative_strategy="weird",
            )

    def test_most_frequent_strategy_builds(self, tiny_bundle):
        index = NetClusIndex.build(
            tiny_bundle.network,
            tiny_bundle.trajectories,
            tiny_bundle.sites,
            tau_min_km=0.4,
            tau_max_km=2.0,
            representative_strategy="most_frequent",
            max_instances=2,
        )
        result = index.query(TOPSQuery(k=3, tau_km=0.8))
        assert len(result.sites) == 3

    def test_most_frequent_picks_heaviest_site(self, tiny_bundle):
        visit_counts = tiny_bundle.trajectories.node_visit_counts(
            tiny_bundle.network.num_nodes
        )
        index = NetClusIndex.build(
            tiny_bundle.network,
            tiny_bundle.trajectories,
            tiny_bundle.sites,
            tau_min_km=0.4,
            tau_max_km=2.0,
            representative_strategy="most_frequent",
            max_instances=2,
        )
        sites = set(tiny_bundle.sites)
        instance = index.instances[-1]
        for cluster in instance.clusters:
            if not cluster.has_representative:
                continue
            candidate_counts = [
                visit_counts[n] for n in cluster.nodes if n in sites
            ]
            assert visit_counts[cluster.representative] == max(candidate_counts)

    def test_strategies_reach_similar_quality(self, tiny_bundle):
        rows = ablation_design_choices.run_representative_strategy(
            tiny_bundle, k_values=(5,), tau_km=0.8
        )
        row = rows[0]
        assert row["closest_utility_pct"] > 0
        assert abs(row["closest_utility_pct"] - row["most_frequent_utility_pct"]) <= 20.0


class TestAblationDrivers:
    def test_update_strategy_rows(self, tiny_bundle):
        rows = ablation_design_choices.run_update_strategy(tiny_bundle, k=4)
        assert {row["update_strategy"] for row in rows} == {
            "incremental",
            "recompute",
            "lazy",
        }
        utilities = [row["utility"] for row in rows]
        assert max(utilities) - min(utilities) < 1e-6

    def test_gdsp_counting_rows(self, tiny_bundle):
        rows = ablation_design_choices.run_gdsp_counting(tiny_bundle, radius_km=0.4)
        by_mode = {row["counting"]: row for row in rows}
        assert set(by_mode) == {"exact-lazy", "fm-sketch"}
        assert by_mode["fm-sketch"]["num_clusters"] >= by_mode["exact-lazy"]["num_clusters"] * 0.5


class TestRunAllCli:
    def test_experiment_registry_complete(self):
        expected = {
            "fig04", "fig05", "fig06", "fig07", "fig08", "fig10", "fig11", "fig12",
            "table07", "table08", "table09", "table10", "table11", "table12",
            "ablations",
        }
        assert set(run_all.EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            run_all.main(["--only", "fig99"])

    def test_single_experiment_runs(self, capsys):
        run_all.main(["--scale", "tiny", "--only", "table11"])
        captured = capsys.readouterr()
        assert "Table 11" in captured.out
        assert "num_clusters" in captured.out
