"""Unit tests for the naive placement baselines."""

from __future__ import annotations

import numpy as np

from repro.core.baselines import random_sites, static_demand_greedy, top_k_by_traffic
from repro.core.greedy import IncGreedy


class TestTopKByTraffic:
    def test_selects_heaviest_sites(self, grid_coverage, binary_query):
        result = top_k_by_traffic(grid_coverage, binary_query)
        weights = grid_coverage.site_weights
        chosen_columns = grid_coverage.columns_for_labels(result.sites)
        threshold = np.sort(weights)[::-1][binary_query.k - 1]
        assert all(weights[c] >= threshold for c in chosen_columns)

    def test_never_beats_greedy(self, grid_coverage, binary_query):
        """Frequency-based selection ignores overlap, so greedy is at least as good."""
        baseline = top_k_by_traffic(grid_coverage, binary_query)
        greedy = IncGreedy(grid_coverage).solve(binary_query)
        assert greedy.utility >= baseline.utility - 1e-9

    def test_k_sites_selected(self, grid_coverage, binary_query):
        assert len(top_k_by_traffic(grid_coverage, binary_query).sites) == binary_query.k


class TestRandomSites:
    def test_deterministic_with_seed(self, grid_coverage, binary_query):
        a = random_sites(grid_coverage, binary_query, seed=5)
        b = random_sites(grid_coverage, binary_query, seed=5)
        assert a.sites == b.sites

    def test_never_beats_greedy(self, grid_coverage, binary_query):
        baseline = random_sites(grid_coverage, binary_query, seed=5)
        greedy = IncGreedy(grid_coverage).solve(binary_query)
        assert greedy.utility >= baseline.utility - 1e-9

    def test_k_distinct_sites(self, grid_coverage, binary_query):
        result = random_sites(grid_coverage, binary_query, seed=1)
        assert len(set(result.sites)) == binary_query.k


class TestStaticDemandGreedy:
    def test_reported_utility_is_trajectory_aware(self, grid_problem, binary_query):
        """The baseline optimises endpoint coverage but is *scored* with the
        trajectory-aware utility, so it can never exceed Inc-Greedy."""
        coverage = grid_problem.coverage(binary_query)
        oracle = grid_problem.oracle
        endpoint_detours = np.empty((len(grid_problem.trajectories), coverage.num_sites))
        for row, trajectory in enumerate(grid_problem.trajectories):
            origin_rt = (
                oracle._to_site[:, trajectory.origin] + oracle._from_site[:, trajectory.origin]
            )
            dest_rt = (
                oracle._to_site[:, trajectory.destination]
                + oracle._from_site[:, trajectory.destination]
            )
            endpoint_detours[row] = np.minimum(origin_rt, dest_rt)
        baseline = static_demand_greedy(coverage, binary_query, endpoint_detours)
        greedy = IncGreedy(coverage).solve(binary_query)
        assert baseline.utility <= greedy.utility + 1e-9
        assert len(baseline.sites) == binary_query.k
