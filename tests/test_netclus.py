"""Unit tests for the NetClus index: construction, instance selection, querying."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.preference import BinaryPreference, LinearPreference
from repro.core.query import TOPSQuery


@pytest.fixture(scope="module")
def index(tiny_problem):
    return tiny_problem.build_netclus_index(gamma=0.75, tau_min_km=0.4, tau_max_km=4.0)


class TestConstruction:
    def test_instance_count_formula(self, index):
        expected = int(math.floor(math.log(4.0 / 0.4, 1.75))) + 1
        assert index.num_instances == expected

    def test_radii_ladder(self, index):
        radii = [instance.radius_km for instance in index.instances]
        assert radii[0] == pytest.approx(0.1)
        for prev, nxt in zip(radii, radii[1:]):
            assert nxt == pytest.approx(prev * 1.75)

    def test_cluster_count_decreases_with_radius(self, index):
        counts = [instance.num_clusters for instance in index.instances]
        assert counts[-1] < counts[0]
        assert all(b <= a for a, b in zip(counts, counts[1:]))

    def test_every_node_clustered_in_every_instance(self, tiny_problem, index):
        all_nodes = set(tiny_problem.network.node_ids())
        for instance in index.instances:
            clustered = set()
            for cluster in instance.clusters:
                clustered.update(cluster.nodes)
            assert clustered == all_nodes

    def test_cluster_radius_invariant(self, index):
        for instance in index.instances:
            for cluster in instance.clusters:
                for round_trip in cluster.nodes.values():
                    assert round_trip <= 2.0 * instance.radius_km + 1e-9

    def test_representative_is_site_in_cluster(self, index, tiny_problem):
        sites = set(tiny_problem.sites)
        for instance in index.instances:
            for cluster in instance.clusters:
                if cluster.has_representative:
                    assert cluster.representative in sites
                    assert cluster.representative in cluster.nodes

    def test_representative_is_closest_site_to_center(self, index, tiny_problem):
        sites = set(tiny_problem.sites)
        for instance in index.instances:
            for cluster in instance.clusters:
                if not cluster.has_representative:
                    continue
                site_distances = [
                    rt for node, rt in cluster.nodes.items() if node in sites
                ]
                assert cluster.representative_round_trip_km == pytest.approx(
                    min(site_distances)
                )

    def test_trajectory_lists_reference_real_trajectories(self, index, tiny_problem):
        traj_ids = set(tiny_problem.trajectories.ids())
        for instance in index.instances:
            for cluster in instance.clusters:
                assert set(cluster.trajectory_list) <= traj_ids

    def test_trajectory_list_distance_bounded(self, index):
        """dr(T, c_i) is the round trip of a member node, hence at most 2R."""
        for instance in index.instances:
            for cluster in instance.clusters:
                for distance in cluster.trajectory_list.values():
                    assert distance <= 2.0 * instance.radius_km + 1e-9

    def test_every_trajectory_registered_somewhere(self, index, tiny_problem):
        for instance in index.instances:
            registered = set()
            for cluster in instance.clusters:
                registered.update(cluster.trajectory_list)
            assert registered == set(tiny_problem.trajectories.ids())

    def test_neighbor_threshold(self, index):
        for instance in index.instances:
            threshold = 4.0 * instance.radius_km * (1.0 + instance.gamma)
            for cluster in instance.clusters:
                for neighbor_id, distance in cluster.neighbors:
                    assert distance <= threshold + 1e-9
                    assert neighbor_id != cluster.cluster_id

    def test_neighbors_sorted_by_distance(self, index):
        for instance in index.instances:
            for cluster in instance.clusters:
                distances = [d for _, d in cluster.neighbors]
                assert distances == sorted(distances)

    def test_construction_statistics(self, index):
        stats = index.construction_statistics()
        assert len(stats) == index.num_instances
        for row in stats:
            assert row["num_clusters"] >= 1
            assert row["storage_bytes"] > 0

    def test_storage_and_build_time(self, index):
        assert index.storage_bytes() > 0
        assert index.build_seconds() > 0.0

    def test_invalid_parameters(self, tiny_problem):
        with pytest.raises(ValueError):
            tiny_problem.build_netclus_index(gamma=-0.5)
        with pytest.raises(ValueError):
            tiny_problem.build_netclus_index(tau_min_km=2.0, tau_max_km=1.0)


class TestInstanceSelection:
    def test_tau_within_supported_range(self, index):
        for tau in (0.5, 0.8, 1.3, 2.0, 3.5):
            instance = index.instance_for(tau)
            low, high = instance.tau_range
            # τ must not be below the instance's lower bound (upper bound may
            # be exceeded only for the coarsest instance)
            if instance.instance_id < index.num_instances - 1:
                assert low <= tau < high or tau < low

    def test_formula(self, index):
        tau = 1.0
        expected = int(math.floor(math.log(tau / index.tau_min_km, 1.0 + index.gamma)))
        assert index.instance_for(tau).instance_id == expected

    def test_below_minimum_uses_finest(self, index):
        assert index.instance_for(0.05).instance_id == 0

    def test_above_maximum_uses_coarsest(self, index):
        assert index.instance_for(100.0).instance_id == index.num_instances - 1

    def test_invalid_tau(self, index):
        with pytest.raises(ValueError):
            index.instance_for(0.0)


class TestEstimatedDetours:
    def test_estimates_upper_bound_exact(self, index, tiny_problem):
        """d̂r(T, r_i) ≥ dr(T, r_i): the clustered estimate never undershoots."""
        query_tau = 0.8
        instance = index.instance_for(query_tau)
        rows = {tid: i for i, tid in enumerate(tiny_problem.trajectories.ids())}
        detours, rep_sites, _ = instance.estimated_detours(rows, query_tau)
        oracle = tiny_problem.oracle
        exact = np.stack(
            [
                oracle.detour_vector(trajectory)[[oracle.site_index[s] for s in rep_sites]]
                for trajectory in tiny_problem.trajectories
            ]
        )
        finite = np.isfinite(detours)
        assert np.all(detours[finite] >= exact[finite] - 1e-6)

    def test_approximate_cover_subset_of_exact(self, index, tiny_problem):
        """T̂C(r_i) ⊆ TC(r_i) (Section 5.1)."""
        query_tau = 0.8
        instance = index.instance_for(query_tau)
        rows = {tid: i for i, tid in enumerate(tiny_problem.trajectories.ids())}
        detours, rep_sites, _ = instance.estimated_detours(rows, query_tau)
        oracle = tiny_problem.oracle
        for col, site in enumerate(rep_sites):
            approx_cover = set(np.flatnonzero(detours[:, col] <= query_tau))
            exact_cover = {
                row
                for row, trajectory in enumerate(tiny_problem.trajectories)
                if oracle.detour(trajectory, site) <= query_tau + 1e-9
            }
            assert approx_cover <= exact_cover


class TestQuery:
    def test_returns_k_sites(self, index):
        result = index.query(TOPSQuery(k=5, tau_km=0.8))
        assert len(result.sites) == 5

    def test_sites_are_candidate_sites(self, index, tiny_problem):
        result = index.query(TOPSQuery(k=5, tau_km=0.8))
        assert set(result.sites) <= set(tiny_problem.sites)

    def test_quality_close_to_inc_greedy(self, index, tiny_problem):
        query = TOPSQuery(k=5, tau_km=0.8)
        incg = tiny_problem.solve(query)
        incg_pct = tiny_problem.utility_percent(incg.sites, query)
        netclus_pct = tiny_problem.utility_percent(index.query(query).sites, query)
        assert netclus_pct >= 0.75 * incg_pct

    def test_metadata_records_instance(self, index):
        result = index.query(TOPSQuery(k=3, tau_km=1.5))
        assert result.metadata["instance_id"] == index.instance_for(1.5).instance_id
        assert result.algorithm == "netclus"

    def test_fm_variant(self, index):
        result = index.query(TOPSQuery(k=3, tau_km=0.8), use_fm_sketches=True)
        assert result.algorithm == "fm-netclus"
        assert len(result.sites) == 3

    def test_fm_falls_back_for_graded_preference(self, index):
        query = TOPSQuery(k=3, tau_km=0.8, preference=LinearPreference())
        result = index.query(query, use_fm_sketches=True)
        assert result.algorithm == "netclus"

    def test_graded_preference_query(self, index, tiny_problem):
        query = TOPSQuery(k=4, tau_km=1.0, preference=LinearPreference())
        result = index.query(query)
        assert len(result.sites) == 4
        exact, _ = tiny_problem.evaluate(result.sites, query)
        assert exact > 0.0

    def test_existing_sites_excluded(self, index):
        query = TOPSQuery(k=3, tau_km=0.8)
        plain = index.query(query)
        seeded = index.query(query, existing_sites=[plain.sites[0]])
        assert plain.sites[0] not in seeded.sites

    def test_utility_monotone_in_k(self, index):
        utilities = [index.query(TOPSQuery(k=k, tau_km=0.8)).utility for k in (1, 3, 6)]
        assert utilities == sorted(utilities)


class TestSparseEngine:
    """The sparse (CSR + lazy greedy) engine must reproduce the dense answers."""

    @pytest.mark.parametrize("tau", [0.4, 0.8, 1.6, 3.0])
    @pytest.mark.parametrize(
        "preference", [BinaryPreference(), LinearPreference()], ids=["binary", "linear"]
    )
    def test_engines_agree(self, index, tau, preference):
        query = TOPSQuery(k=5, tau_km=tau, preference=preference)
        dense = index.query(query, engine="dense")
        sparse = index.query(query, engine="sparse")
        assert sparse.sites == dense.sites
        assert sparse.utility == pytest.approx(dense.utility)
        assert sparse.metadata["engine"] == "sparse"
        assert dense.metadata["engine"] == "dense"

    def test_engines_agree_with_fm_sketches(self, index):
        query = TOPSQuery(k=4, tau_km=0.8)
        dense = index.query(query, use_fm_sketches=True, engine="dense")
        sparse = index.query(query, use_fm_sketches=True, engine="sparse")
        assert sparse.sites == dense.sites
        assert sparse.algorithm == dense.algorithm == "fm-netclus"

    def test_engines_agree_with_existing_sites(self, index, tiny_problem):
        query = TOPSQuery(k=3, tau_km=0.8)
        seed_sites = list(tiny_problem.sites[:2])
        dense = index.query(query, existing_sites=seed_sites, engine="dense")
        sparse = index.query(query, existing_sites=seed_sites, engine="sparse")
        assert sparse.sites == dense.sites

    def test_sparse_entries_match_dense_matrix(self, index):
        """The coverage-list extraction agrees with the estimated-detour matrix."""
        instance = index.instance_for(0.8)
        rows = {traj_id: row for row, traj_id in enumerate(index._trajectory_ids)}
        detours, rep_sites, _ = instance.estimated_detours(rows, 0.8)
        entry_rows, entry_cols, estimates, sparse_sites, _ = (
            instance.estimated_coverage_entries(rows, 0.8)
        )
        assert sparse_sites == rep_sites
        rebuilt = np.full_like(detours, np.inf)
        np.minimum.at(rebuilt, (entry_rows, entry_cols), estimates)
        qualifying = detours <= 0.8
        assert np.array_equal(qualifying, rebuilt <= 0.8)
        assert np.allclose(rebuilt[qualifying], detours[qualifying])

    def test_invalid_engine_rejected(self, index):
        with pytest.raises(ValueError):
            index.query(TOPSQuery(k=2, tau_km=0.8), engine="bogus")