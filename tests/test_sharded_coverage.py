"""Trajectory-sharded coverage: layout, protocol, and selection parity.

The contract under test (the tentpole of the sharded query path): for any
shard count S and any worker count, sharded selections, per-trajectory
utilities, and summed marginal-gain vectors are identical to the unsharded
path — on both engines, across all greedy strategies, the TOPS variant
drivers, FM-greedy, the NetClus clustered space, dynamically updated
indexes, and the placement service.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.coverage import CoverageIndex, SparseCoverageIndex
from repro.core.fm_greedy import FMGreedy
from repro.core.greedy import IncGreedy, LazyGreedy
from repro.core.netclus import UpdateBatch
from repro.core.preference import BinaryPreference, make_preference
from repro.core.query import TOPSQuery
from repro.core.shards import (
    ShardedCoverage,
    shard_assignments,
    shard_layout,
    shard_of,
)
from repro.core.variants import (
    solve_tops_capacity,
    solve_tops_cost,
    solve_tops_market_share,
    solve_tops_min_inconvenience,
    solve_tops_with_existing,
)
from repro.service.placement import PlacementService
from repro.service.serialization import load_index, load_manifest, save_index
from repro.service.specs import QuerySpec
from repro.trajectory.model import Trajectory
from repro.utils.parallel import resolve_workers, usable_cpu_count

SHARD_COUNTS = (2, 3, 4, 7)


def _random_detours(rng, m=120, n=30, coverage_fraction=0.5, max_km=3.0):
    detours = rng.uniform(0.0, max_km, size=(m, n))
    detours[rng.random((m, n)) >= coverage_fraction] = np.inf
    return detours


# ---------------------------------------------------------------------- #
# shard layout
# ---------------------------------------------------------------------- #
class TestShardLayout:
    def test_every_trajectory_lands_in_exactly_one_shard(self):
        ids = np.arange(500)
        for shards in SHARD_COUNTS:
            layout = shard_layout(ids, shards)
            combined = np.sort(np.concatenate(layout))
            assert np.array_equal(combined, np.arange(500))

    def test_assignment_is_a_pure_function_of_id(self):
        ids = [0, 1, 7, 123, 99991, 2**40 + 17]
        for shards in SHARD_COUNTS:
            first = [shard_of(i, shards) for i in ids]
            second = shard_assignments(ids, shards).tolist()
            assert first == second
        # id order / surrounding ids never matter
        assert shard_of(123, 4) == shard_assignments([5, 123, 7], 4)[1]

    def test_layout_is_balanced_for_sequential_ids(self):
        counts = np.bincount(shard_assignments(np.arange(10_000), 8), minlength=8)
        assert counts.min() > 0.8 * counts.mean()
        assert counts.max() < 1.2 * counts.mean()

    def test_single_shard_is_identity(self):
        layout = shard_layout(np.arange(37), 1)
        assert len(layout) == 1
        assert np.array_equal(layout[0], np.arange(37))

    def test_rejects_non_positive_shard_counts(self):
        with pytest.raises(ValueError):
            shard_assignments([1, 2], 0)


# ---------------------------------------------------------------------- #
# coverage-protocol parity against the unsharded engines
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("engine", ["dense", "sparse"])
@pytest.mark.parametrize("pref_name", ["binary", "linear", "exponential"])
class TestProtocolParity:
    def _pair(self, rng, engine, pref_name, shards):
        detours = _random_detours(rng)
        preference = make_preference(pref_name)
        flat_cls = SparseCoverageIndex if engine == "sparse" else CoverageIndex
        flat = flat_cls(detours, 1.2, preference)
        sharded = ShardedCoverage.from_detours(
            detours, 1.2, preference, num_shards=shards, engine=engine
        )
        return flat, sharded

    def test_structure_and_weights(self, rng, engine, pref_name):
        for shards in SHARD_COUNTS:
            flat, sharded = self._pair(rng, engine, pref_name, shards)
            assert sharded.num_shards == shards
            assert sum(sharded.shard_sizes()) == flat.num_trajectories
            assert sharded.covered_pairs() == flat.covered_pairs()
            assert np.array_equal(sharded.coverage_mask(), flat.coverage_mask())
            np.testing.assert_allclose(
                sharded.site_weights, flat.site_weights, rtol=1e-12, atol=1e-12
            )

    def test_site_columns_merge_in_global_row_order(self, rng, engine, pref_name):
        flat, sharded = self._pair(rng, engine, pref_name, 4)
        for col in range(flat.num_sites):
            flat_rows, flat_values = flat.site_column(col)
            rows, values = sharded.site_column(col)
            assert np.array_equal(rows, np.asarray(flat_rows))
            np.testing.assert_array_equal(values, flat_values)
            assert np.array_equal(
                sharded.trajectories_covered(col), flat.trajectories_covered(col)
            )

    def test_sites_covering_delegates_to_the_owning_shard(self, rng, engine, pref_name):
        flat, sharded = self._pair(rng, engine, pref_name, 3)
        for row in range(0, flat.num_trajectories, 17):
            assert np.array_equal(
                np.sort(sharded.sites_covering(row)),
                np.sort(np.asarray(flat.sites_covering(row))),
            )

    def test_summed_gains_match_unsharded_gains(self, rng, engine, pref_name):
        for shards in SHARD_COUNTS:
            flat, sharded = self._pair(rng, engine, pref_name, shards)
            utilities = rng.uniform(0.0, 1.0, flat.num_trajectories)
            np.testing.assert_allclose(
                sharded.marginal_gains(utilities),
                flat.marginal_gains(utilities),
                rtol=1e-12,
                atol=1e-12,
            )
            for col in (0, flat.num_sites // 2, flat.num_sites - 1):
                assert sharded.marginal_gain(col, utilities) == pytest.approx(
                    flat.marginal_gain(col, utilities), rel=1e-12
                )
                assert sharded.marginal_gain(col, utilities, 5) == pytest.approx(
                    flat.marginal_gain(col, utilities, 5), rel=1e-12
                )

    def test_absorb_and_replay_are_bit_exact(self, rng, engine, pref_name):
        flat, sharded = self._pair(rng, engine, pref_name, 4)
        utilities = rng.uniform(0.0, 0.5, flat.num_trajectories)
        for col in (1, flat.num_sites // 2):
            assert np.array_equal(
                sharded.absorb(utilities, col), flat.absorb(utilities, col)
            )
            assert np.array_equal(
                sharded.absorb(utilities, col, 7), flat.absorb(utilities, col, 7)
            )
        columns = [0, 3, 9]
        assert np.array_equal(
            sharded.utilities_for_selection(columns, capacity=6, seed_columns=[2]),
            flat.utilities_for_selection(columns, capacity=6, seed_columns=[2]),
        )
        assert np.array_equal(
            sharded.per_trajectory_utility(columns),
            flat.per_trajectory_utility(columns),
        )
        assert sharded.utility_of(columns) == flat.utility_of(columns)

    def test_gain_updates_match(self, rng, engine, pref_name):
        flat, sharded = self._pair(rng, engine, pref_name, 3)
        utilities = rng.uniform(0.0, 0.4, flat.num_trajectories)
        rows = np.sort(
            rng.choice(flat.num_trajectories, size=20, replace=False)
        ).astype(np.int64)
        old = utilities[rows]
        new = old + rng.uniform(0.01, 0.5, len(rows))
        np.testing.assert_allclose(
            sharded.gain_updates(rows, old, new),
            flat.gain_updates(rows, old, new),
            rtol=1e-12,
            atol=1e-12,
        )


def test_dense_and_sparse_gain_updates_agree(rng):
    """The new sparse ``gain_updates`` kernel matches the dense one."""
    detours = _random_detours(rng)
    preference = make_preference("linear")
    dense = CoverageIndex(detours, 1.2, preference)
    sparse = SparseCoverageIndex(detours, 1.2, preference)
    utilities = rng.uniform(0.0, 0.4, dense.num_trajectories)
    rows = np.arange(0, dense.num_trajectories, 3, dtype=np.int64)
    old = utilities[rows]
    new = old + 0.25
    np.testing.assert_allclose(
        sparse.gain_updates(rows, old, new),
        dense.gain_updates(rows, old, new),
        rtol=1e-12,
        atol=1e-12,
    )
    assert np.array_equal(
        sparse.gain_updates(np.empty(0, dtype=np.int64), np.empty(0), np.empty(0)),
        np.zeros(dense.num_sites),
    )


# ---------------------------------------------------------------------- #
# greedy selection parity (the acceptance criterion)
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("pref_name", ["binary", "linear", "exponential"])
class TestSelectionParity:
    def test_dense_strategies(self, rng, pref_name):
        detours = _random_detours(rng)
        preference = make_preference(pref_name)
        flat = CoverageIndex(detours, 1.2, preference)
        for shards in SHARD_COUNTS:
            sharded = ShardedCoverage.from_detours(
                detours, 1.2, preference, num_shards=shards, engine="dense"
            )
            for strategy in ("incremental", "recompute"):
                expected = IncGreedy(flat, strategy).select(8)
                actual = IncGreedy(sharded, strategy).select(8)
                assert actual[0] == expected[0]
                assert np.array_equal(actual[1], expected[1])

    def test_sparse_lazy(self, rng, pref_name):
        detours = _random_detours(rng)
        preference = make_preference(pref_name)
        flat = SparseCoverageIndex(detours, 1.2, preference)
        for shards in SHARD_COUNTS:
            sharded = ShardedCoverage.from_detours(
                detours, 1.2, preference, num_shards=shards, engine="sparse"
            )
            expected = LazyGreedy(flat).select(8)
            actual = LazyGreedy(sharded).select(8)
            assert actual[0] == expected[0]
            assert np.array_equal(actual[1], expected[1])

    def test_capacities_and_existing_sites(self, rng, pref_name):
        detours = _random_detours(rng)
        preference = make_preference(pref_name)
        flat = CoverageIndex(detours, 1.2, preference)
        sharded = ShardedCoverage.from_detours(
            detours, 1.2, preference, num_shards=4, engine="dense"
        )
        capacities = np.full(flat.num_sites, 11)
        expected = IncGreedy(flat, "recompute").select(
            6, existing_columns=[2, 5], capacities=capacities
        )
        actual = IncGreedy(sharded, "recompute").select(
            6, existing_columns=[2, 5], capacities=capacities
        )
        assert actual[0] == expected[0]
        assert np.array_equal(actual[1], expected[1])

    def test_executor_does_not_change_selections(self, rng, pref_name):
        detours = _random_detours(rng)
        preference = make_preference(pref_name)
        flat = SparseCoverageIndex(detours, 1.2, preference)
        expected = LazyGreedy(flat).select(8)
        with ThreadPoolExecutor(max_workers=4) as pool:
            sharded = ShardedCoverage.from_detours(
                detours, 1.2, preference, num_shards=4, engine="sparse", executor=pool
            )
            actual = LazyGreedy(sharded).select(8)
        assert actual[0] == expected[0]
        assert np.array_equal(actual[1], expected[1])


# ---------------------------------------------------------------------- #
# variant drivers
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("engine", ["dense", "sparse"])
class TestVariantDriverParity:
    def _pair(self, rng, engine, preference=None, shards=4):
        detours = _random_detours(rng)
        preference = preference or BinaryPreference()
        flat_cls = SparseCoverageIndex if engine == "sparse" else CoverageIndex
        flat = flat_cls(detours, 1.2, preference)
        sharded = ShardedCoverage.from_detours(
            detours, 1.2, preference, num_shards=shards, engine=engine
        )
        return flat, sharded

    def test_tops_cost(self, rng, engine):
        flat, sharded = self._pair(rng, engine)
        costs = np.linspace(1.0, 3.0, flat.num_sites)
        expected = solve_tops_cost(flat, budget=10.0, site_costs=costs)
        actual = solve_tops_cost(sharded, budget=10.0, site_costs=costs)
        assert actual.sites == expected.sites
        assert actual.per_trajectory_utility == expected.per_trajectory_utility

    def test_tops_capacity(self, rng, engine):
        flat, sharded = self._pair(rng, engine, make_preference("linear"))
        query = TOPSQuery(k=5, tau_km=1.2, preference=make_preference("linear"))
        capacities = np.full(flat.num_sites, 9.0)
        expected = solve_tops_capacity(flat, query, capacities)
        actual = solve_tops_capacity(sharded, query, capacities)
        assert actual.sites == expected.sites
        assert actual.per_trajectory_utility == expected.per_trajectory_utility

    def test_tops_with_existing(self, rng, engine):
        flat, sharded = self._pair(rng, engine)
        query = TOPSQuery(k=4, tau_km=1.2)
        existing = [int(flat.site_labels[3]), int(flat.site_labels[8])]
        expected = solve_tops_with_existing(flat, query, existing)
        actual = solve_tops_with_existing(sharded, query, existing)
        assert actual.sites == expected.sites
        assert actual.per_trajectory_utility == expected.per_trajectory_utility

    def test_tops_market_share(self, rng, engine):
        flat, sharded = self._pair(rng, engine)
        expected = solve_tops_market_share(flat, beta=0.6)
        actual = solve_tops_market_share(sharded, beta=0.6)
        assert actual.sites == expected.sites
        assert actual.per_trajectory_utility == expected.per_trajectory_utility


def test_min_inconvenience_refuses_sharded_coverage(rng):
    detours = _random_detours(rng)
    from repro.core.preference import InconveniencePreference

    sharded = ShardedCoverage.from_detours(
        detours, 1e9, InconveniencePreference(), num_shards=2, engine="dense"
    )
    with pytest.raises(ValueError, match="shards=1"):
        solve_tops_min_inconvenience(sharded, TOPSQuery(k=3, tau_km=1e9))


def test_fm_greedy_parity(rng):
    detours = _random_detours(rng)
    flat = SparseCoverageIndex(detours, 1.2, BinaryPreference())
    sharded = ShardedCoverage.from_detours(
        detours, 1.2, BinaryPreference(), num_shards=4, engine="sparse"
    )
    expected = FMGreedy(flat, num_sketches=12).solve(TOPSQuery(k=5, tau_km=1.2))
    actual = FMGreedy(sharded, num_sketches=12).solve(TOPSQuery(k=5, tau_km=1.2))
    assert actual.sites == expected.sites
    assert actual.per_trajectory_utility == expected.per_trajectory_utility


# ---------------------------------------------------------------------- #
# NetClus clustered space
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("engine", ["dense", "sparse"])
def test_netclus_query_parity_across_shard_counts(tiny_netclus, engine):
    query = TOPSQuery(k=6, tau_km=0.9)
    baseline = tiny_netclus.query(query, engine=engine)
    assert baseline.metadata["shards"] == 1
    for shards in SHARD_COUNTS:
        prepared = tiny_netclus.prepare_coverage(
            query.tau_km, query.preference, engine=engine, shards=shards
        )
        assert prepared.num_shards == shards
        result = tiny_netclus.query(query, engine=engine, prepared=prepared)
        assert result.sites == baseline.sites
        assert result.per_trajectory_utility == baseline.per_trajectory_utility
        assert result.metadata["shards"] == shards


def test_netclus_index_default_shards(tiny_problem):
    index = tiny_problem.build_netclus_index(tau_max_km=2.0, max_instances=2)
    index.shards = 3
    prepared = index.prepare_coverage(0.8, BinaryPreference(), engine="sparse")
    assert prepared.num_shards == 3
    explicit = index.prepare_coverage(
        0.8, BinaryPreference(), engine="sparse", shards=1
    )
    assert explicit.num_shards == 1


def test_problem_coverage_shards_parity(grid_problem, binary_query):
    flat = grid_problem.coverage(binary_query, engine="sparse")
    sharded = grid_problem.coverage(binary_query, engine="sparse", shards=4)
    expected = LazyGreedy(flat).select(5)
    actual = LazyGreedy(sharded).select(5)
    assert actual[0] == expected[0]
    assert np.array_equal(actual[1], expected[1])


# ---------------------------------------------------------------------- #
# dynamic updates
# ---------------------------------------------------------------------- #
def test_sharded_parity_survives_apply_updates(tiny_bundle):
    problem = tiny_bundle.problem()
    index = problem.build_netclus_index(tau_max_km=2.0, max_instances=3)
    network = tiny_bundle.network
    # a fresh trajectory along real edges plus site churn, as one batch
    start = next(iter(index.sites))
    neighbor = next(iter(network.successors(start)))
    new_id = max(index.trajectory_ids) + 101
    trajectory = Trajectory.from_nodes(new_id, [start, neighbor, start], network)
    removable = sorted(index.sites)[:2]
    index.apply_updates(
        UpdateBatch(
            add_trajectories=(trajectory,),
            remove_sites=tuple(removable),
        )
    )
    query = TOPSQuery(k=5, tau_km=0.8)
    for engine in ("dense", "sparse"):
        baseline = index.query(query, engine=engine, shards=1)
        for shards in (2, 4):
            result = index.query(query, engine=engine, shards=shards)
            assert result.sites == baseline.sites
            assert result.per_trajectory_utility == baseline.per_trajectory_utility
    # the new trajectory hashes to the same shard any fresh layout assigns it
    prepared = index.prepare_coverage(0.8, BinaryPreference(), "sparse", shards=4)
    row = index.trajectory_ids.index(new_id)
    owning_shard = int(prepared.coverage._shard_of_row[row])
    assert owning_shard == shard_of(new_id, 4)


# ---------------------------------------------------------------------- #
# placement service
# ---------------------------------------------------------------------- #
def _mixed_specs():
    return [
        QuerySpec(k=3, tau_km=0.8),
        QuerySpec(k=7, tau_km=0.8),  # shares the k=7 run
        QuerySpec(k=4, tau_km=0.8, preference="linear"),
        QuerySpec(k=3, tau_km=0.8, capacity=12),
        QuerySpec(k=1, tau_km=0.8, budget=4.0),
        QuerySpec(k=3, tau_km=1.6, existing_sites=(0,)),
    ]


class TestShardedService:
    def test_batch_results_identical_to_unsharded(self, tiny_netclus):
        specs = _mixed_specs()
        plain = PlacementService(tiny_netclus, engine="sparse")
        expected = plain.batch_query(specs)
        for shards, workers in ((2, 1), (4, 2), (4, "auto")):
            service = PlacementService(
                tiny_netclus, engine="sparse", shards=shards, query_workers=workers
            )
            results = service.batch_query(specs)
            for got, want in zip(results, expected):
                assert got.sites == want.sites
                assert got.per_trajectory_utility == want.per_trajectory_utility
                assert got.metadata["shards"] == shards
            service.close()

    def test_effective_shards_inherits_index_default(self, tiny_problem):
        index = tiny_problem.build_netclus_index(tau_max_km=2.0, max_instances=2)
        index.shards = 4
        service = PlacementService(index)
        assert service.effective_shards == 4
        override = PlacementService(index, shards=2)
        assert override.effective_shards == 2

    def test_executor_is_persistent_and_closeable(self, tiny_netclus):
        service = PlacementService(
            tiny_netclus, engine="sparse", shards=4, query_workers=2
        )
        service.batch_query([QuerySpec(k=3, tau_km=0.8)], use_cache=False)
        first = service._executor
        assert first is not None
        service.batch_query([QuerySpec(k=4, tau_km=0.8)], use_cache=False)
        assert service._executor is first  # reused, not rebuilt
        service.close()
        assert service._executor is None
        # still serviceable after close
        service.batch_query([QuerySpec(k=3, tau_km=0.8)], use_cache=False)
        service.close()

    def test_unsharded_service_never_builds_a_pool(self, tiny_netclus):
        service = PlacementService(tiny_netclus, query_workers="auto")
        service.batch_query([QuerySpec(k=3, tau_km=0.8)])
        assert service._executor is None

    def test_stage_timings_accumulate(self, tiny_netclus):
        service = PlacementService(tiny_netclus, engine="sparse", shards=2)
        service.batch_query([QuerySpec(k=3, tau_km=0.8)], use_cache=False)
        stats = service.stats
        assert stats.coverage_build_seconds > 0.0
        assert stats.greedy_seconds > 0.0
        stages = stats.stage_seconds()
        # fixed stages plus one kernel_<name>_seconds entry per kernel hit
        assert {
            name for name in stages if not name.startswith("kernel_")
        } == {
            "coverage_build_seconds",
            "coverage_materialise_seconds",
            "greedy_seconds",
            "replay_seconds",
        }
        assert any(name.startswith("kernel_") for name in stages)
        result = service.query(QuerySpec(k=2, tau_km=0.8), use_cache=False)
        assert "coverage_build_seconds" in result.stage_seconds()
        assert "greedy_run_seconds" in result.stage_seconds()
        stats.reset()
        assert stats.coverage_build_seconds == 0

    def test_shards_round_trip_through_manifest(self, tiny_problem, tmp_path):
        index = tiny_problem.build_netclus_index(tau_max_km=2.0, max_instances=2)
        index.shards = 3
        save_index(index, tmp_path / "sharded.ncx")
        manifest = load_manifest(tmp_path / "sharded.ncx")
        assert manifest["shards"] == 3
        assert sum(manifest["shard_sizes"]) == index.num_trajectories
        loaded = load_index(tmp_path / "sharded.ncx")
        assert loaded.shards == 3
        service = PlacementService.from_path(tmp_path / "sharded.ncx")
        assert service.effective_shards == 3

    def test_unsharded_manifest_has_no_shard_keys(self, tiny_problem, tmp_path):
        index = tiny_problem.build_netclus_index(tau_max_km=2.0, max_instances=2)
        save_index(index, tmp_path / "plain.ncx")
        manifest = load_manifest(tmp_path / "plain.ncx")
        assert "shards" not in manifest
        assert "shard_sizes" not in manifest
        assert load_index(tmp_path / "plain.ncx").shards == 1


# ---------------------------------------------------------------------- #
# workers="auto"
# ---------------------------------------------------------------------- #
class TestResolveWorkers:
    def test_auto_resolves_to_usable_cpus(self):
        assert resolve_workers("auto") == usable_cpu_count()
        assert resolve_workers("AUTO") == usable_cpu_count()
        assert usable_cpu_count() >= 1

    def test_integers_pass_through(self):
        assert resolve_workers(3) == 3
        assert resolve_workers("2") == 2

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            resolve_workers("banana")

    def test_auto_accepted_by_build(self, tiny_bundle):
        problem = tiny_bundle.problem()
        index = problem.build_netclus_index(
            tau_max_km=1.0, max_instances=1, workers="auto"
        )
        assert index.num_instances == 1
