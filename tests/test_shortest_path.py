"""Unit tests for the shortest-path engine (validated against NetworkX)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.network.generators import grid_network, random_planar_network
from repro.network.shortest_path import (
    ShortestPathEngine,
    bounded_round_trip_neighbors,
    dijkstra_single_source,
    shortest_path_nodes,
)


@pytest.fixture(scope="module")
def network():
    return random_planar_network(40, area_km=5.0, seed=3)


@pytest.fixture(scope="module")
def nx_graph(network):
    return network.to_networkx()


@pytest.fixture(scope="module")
def engine(network):
    return ShortestPathEngine(network)


class TestDijkstraSingleSource:
    def test_matches_networkx(self, network, nx_graph):
        ours = dijkstra_single_source(network, 0)
        reference = nx.single_source_dijkstra_path_length(nx_graph, 0, weight="weight")
        assert set(ours) == set(reference)
        for node, dist in reference.items():
            assert ours[node] == pytest.approx(dist)

    def test_source_distance_zero(self, network):
        assert dijkstra_single_source(network, 5)[5] == 0.0

    def test_cutoff_limits_expansion(self, network):
        full = dijkstra_single_source(network, 0)
        limited = dijkstra_single_source(network, 0, cutoff=1.0)
        assert set(limited) <= set(full)
        assert all(dist <= 1.0 + 1e-9 for dist in limited.values())

    def test_reverse_matches_forward_on_symmetric_graph(self, network):
        # random_planar_network builds bidirectional edges with equal weights
        forward = dijkstra_single_source(network, 3)
        backward = dijkstra_single_source(network, 3, reverse=True)
        for node in forward:
            assert forward[node] == pytest.approx(backward[node])

    def test_directed_asymmetry(self):
        from repro.network.graph import RoadNetwork

        net = RoadNetwork()
        for _ in range(3):
            net.add_node()
        net.add_edge(0, 1, 1.0)
        net.add_edge(1, 2, 1.0)
        net.add_edge(2, 0, 10.0)
        forward = dijkstra_single_source(net, 0)
        backward = dijkstra_single_source(net, 0, reverse=True)
        assert forward[2] == pytest.approx(2.0)
        assert backward[2] == pytest.approx(10.0)


class TestShortestPathNodes:
    def test_path_endpoints(self, network):
        path = shortest_path_nodes(network, 0, 7)
        assert path[0] == 0
        assert path[-1] == 7

    def test_path_length_matches_distance(self, network):
        path = shortest_path_nodes(network, 0, 7)
        distance = dijkstra_single_source(network, 0)[7]
        assert network.path_length(path) == pytest.approx(distance)

    def test_unreachable_raises(self):
        from repro.network.graph import RoadNetwork

        net = RoadNetwork()
        net.add_node()
        net.add_node()
        net.add_edge(0, 1, 1.0)
        with pytest.raises(ValueError):
            shortest_path_nodes(net, 1, 0)


class TestEngine:
    def test_distances_from_matches_scalar_dijkstra(self, network, engine):
        table = engine.distances_from([0, 5])
        scalar = dijkstra_single_source(network, 5)
        for node, dist in scalar.items():
            assert table[1, node] == pytest.approx(dist)

    def test_distances_to_is_reverse(self, network, engine):
        table = engine.distances_to([4])
        scalar = dijkstra_single_source(network, 4, reverse=True)
        for node, dist in scalar.items():
            assert table[0, node] == pytest.approx(dist)

    def test_single_source_vector_shape(self, network, engine):
        vector = engine.single_source(0)
        assert vector.shape == (network.num_nodes,)

    def test_round_trip_matrix_symmetric(self, engine):
        nodes = [0, 3, 8, 12]
        matrix = engine.round_trip_matrix(nodes)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_round_trip_from_consistency(self, engine):
        round_trip = engine.round_trip_from(2)
        matrix = engine.round_trip_matrix([2, 9])
        assert round_trip[9] == pytest.approx(matrix[0, 1])

    def test_empty_sources_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.distances_from([])


class TestBoundedRoundTripNeighbors:
    def test_every_node_dominates_itself(self, network):
        neighbors = bounded_round_trip_neighbors(network, radius=0.5)
        for node, dominated in neighbors.items():
            assert node in dominated

    def test_threshold_respected(self, network, engine):
        radius = 0.8
        neighbors = engine.bounded_round_trip_neighbors(radius)
        matrix_nodes = [0, 1, 2, 3, 4]
        round_trips = engine.round_trip_matrix(matrix_nodes)
        for i, u in enumerate(matrix_nodes):
            for j, v in enumerate(matrix_nodes):
                if round_trips[i, j] <= 2 * radius:
                    assert v in neighbors[u]

    def test_symmetry_of_domination(self, network):
        neighbors = bounded_round_trip_neighbors(network, radius=0.7)
        for u, dominated in neighbors.items():
            for v in dominated:
                assert u in neighbors[int(v)]

    def test_chunking_matches_unchunked(self, network, engine):
        small_chunks = engine.bounded_round_trip_neighbors(0.6, chunk_size=7)
        one_chunk = engine.bounded_round_trip_neighbors(0.6, chunk_size=10_000)
        for node in small_chunks:
            assert np.array_equal(small_chunks[node], one_chunk[node])

    def test_larger_radius_dominates_more(self, engine):
        small = engine.bounded_round_trip_neighbors(0.3)
        large = engine.bounded_round_trip_neighbors(1.0)
        assert sum(len(v) for v in large.values()) >= sum(len(v) for v in small.values())


class TestGridSanity:
    def test_grid_distances_are_manhattan(self):
        grid = grid_network(4, 4, spacing_km=1.0)
        engine = ShortestPathEngine(grid)
        # node 0 is (0,0); node 15 is (3,3) -> network distance 6 km
        assert engine.single_source(0)[15] == pytest.approx(6.0)
