"""Unit tests for the trajectory model and dataset container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trajectory.model import Trajectory, TrajectoryDataset


@pytest.fixture
def line_trajectory(line_network):
    return Trajectory.from_nodes(0, [0, 1, 2, 3, 4], line_network)


class TestTrajectory:
    def test_from_nodes_cumulative(self, line_trajectory):
        assert line_trajectory.cumulative_km == (0.0, 1.0, 2.0, 3.0, 4.0)

    def test_length_and_counts(self, line_trajectory):
        assert line_trajectory.length_km == pytest.approx(4.0)
        assert line_trajectory.num_nodes == 5

    def test_origin_destination(self, line_trajectory):
        assert line_trajectory.origin == 0
        assert line_trajectory.destination == 4

    def test_consecutive_duplicates_collapsed(self, line_network):
        trajectory = Trajectory.from_nodes(1, [0, 0, 1, 1, 2], line_network)
        assert trajectory.nodes == (0, 1, 2)

    def test_missing_edge_raises(self, line_network):
        with pytest.raises(KeyError):
            Trajectory.from_nodes(2, [0, 2], line_network)

    def test_visits(self, line_trajectory):
        assert line_trajectory.visits(3)
        assert not line_trajectory.visits(99)

    def test_arrays(self, line_trajectory):
        assert line_trajectory.nodes_array().dtype == np.int64
        assert line_trajectory.cumulative_array().dtype == np.float64

    def test_misaligned_cumulative_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(traj_id=0, nodes=(0, 1), cumulative_km=(0.0,))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(traj_id=0, nodes=(), cumulative_km=())

    def test_timestamps_must_align(self):
        with pytest.raises(ValueError):
            Trajectory(
                traj_id=0, nodes=(0, 1), cumulative_km=(0.0, 1.0), timestamps=(0.0,)
            )

    def test_timestamps_preserved_from_nodes(self, line_network):
        trajectory = Trajectory.from_nodes(3, [0, 1, 2], line_network, timestamps=[0, 60, 120])
        assert trajectory.timestamps == (0.0, 60.0, 120.0)


class TestTrajectoryDataset:
    def test_from_node_sequences(self, line_network):
        dataset = TrajectoryDataset.from_node_sequences([[0, 1, 2], [2, 3, 4]], line_network)
        assert len(dataset) == 2
        assert dataset.ids() == [0, 1]

    def test_unique_ids_enforced(self, line_network):
        trajectory = Trajectory.from_nodes(0, [0, 1], line_network)
        with pytest.raises(ValueError):
            TrajectoryDataset([trajectory, trajectory])

    def test_by_id_and_missing(self, line_network):
        dataset = TrajectoryDataset.from_node_sequences([[0, 1, 2]], line_network)
        assert dataset.by_id(0).destination == 2
        with pytest.raises(KeyError):
            dataset.by_id(13)

    def test_add_remove(self, line_network):
        dataset = TrajectoryDataset.from_node_sequences([[0, 1]], line_network)
        extra = Trajectory.from_nodes(5, [1, 2, 3], line_network)
        dataset.add(extra)
        assert len(dataset) == 2
        removed = dataset.remove(5)
        assert removed.traj_id == 5
        assert len(dataset) == 1

    def test_add_duplicate_id_rejected(self, line_network):
        dataset = TrajectoryDataset.from_node_sequences([[0, 1]], line_network)
        with pytest.raises(ValueError):
            dataset.add(Trajectory.from_nodes(0, [1, 2], line_network))

    def test_next_id(self, line_network):
        dataset = TrajectoryDataset.from_node_sequences([[0, 1], [1, 2]], line_network)
        assert dataset.next_id() == 2
        assert TrajectoryDataset().next_id() == 0

    def test_filter(self, line_network):
        dataset = TrajectoryDataset.from_node_sequences(
            [[0, 1], [0, 1, 2, 3, 4]], line_network
        )
        long_only = dataset.filter(lambda t: t.length_km > 2)
        assert len(long_only) == 1

    def test_sample_deterministic(self, line_network):
        dataset = TrajectoryDataset.from_node_sequences(
            [[0, 1], [1, 2], [2, 3], [3, 4]], line_network
        )
        sample_a = dataset.sample(2, seed=3)
        sample_b = dataset.sample(2, seed=3)
        assert sample_a.ids() == sample_b.ids()

    def test_sample_too_large_rejected(self, line_network):
        dataset = TrajectoryDataset.from_node_sequences([[0, 1]], line_network)
        with pytest.raises(ValueError):
            dataset.sample(5)

    def test_length_classes(self, line_network):
        dataset = TrajectoryDataset.from_node_sequences(
            [[0, 1], [0, 1, 2], [0, 1, 2, 3, 4]], line_network
        )
        bands = dataset.length_classes([0.0, 2.0, 5.0])
        assert len(bands[(0.0, 2.0)]) == 1
        assert len(bands[(2.0, 5.0)]) == 2

    def test_node_visit_counts(self, line_network):
        dataset = TrajectoryDataset.from_node_sequences([[0, 1, 2], [1, 2, 3]], line_network)
        counts = dataset.node_visit_counts(5)
        assert counts[1] == 2
        assert counts[4] == 0

    def test_means(self, line_network):
        dataset = TrajectoryDataset.from_node_sequences([[0, 1], [0, 1, 2, 3]], line_network)
        assert dataset.mean_length_km() == pytest.approx(2.0)
        assert dataset.mean_num_nodes() == pytest.approx(3.0)
        assert TrajectoryDataset().mean_length_km() == 0.0
