"""Shared fixtures for the test suite.

Fixtures are session-scoped where the underlying objects are immutable and
expensive (networks, datasets, oracles, NetClus indexes) so that the several
hundred tests stay fast; tests that mutate state build their own objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preference import BinaryPreference, LinearPreference
from repro.core.problem import TOPSProblem
from repro.core.query import TOPSQuery
from repro.datasets import beijing_like, beijing_small_like
from repro.network.generators import grid_network, random_planar_network
from repro.trajectory.generators import commuter_trajectories


@pytest.fixture(scope="session")
def small_grid():
    """A 6x6 grid network with 0.5 km spacing (36 nodes)."""
    return grid_network(6, 6, spacing_km=0.5)


@pytest.fixture(scope="session")
def medium_grid():
    """A 10x10 grid network with 0.5 km spacing (100 nodes)."""
    return grid_network(10, 10, spacing_km=0.5)


@pytest.fixture(scope="session")
def planar_network():
    """A random quasi-planar network used by property-style tests."""
    return random_planar_network(60, area_km=6.0, seed=11)


@pytest.fixture(scope="session")
def grid_trajectories(medium_grid):
    """80 commuter trajectories on the 10x10 grid."""
    return commuter_trajectories(medium_grid, 80, seed=5)


@pytest.fixture(scope="session")
def grid_problem(medium_grid, grid_trajectories):
    """A TOPSProblem over the 10x10 grid with all nodes as candidate sites."""
    return TOPSProblem(medium_grid, grid_trajectories)


@pytest.fixture(scope="session")
def grid_oracle(grid_problem):
    """The distance oracle of the grid problem."""
    return grid_problem.oracle


@pytest.fixture(scope="session")
def binary_query():
    """Default TOPS query: k=5, τ=1.0 km, binary preference."""
    return TOPSQuery(k=5, tau_km=1.0, preference=BinaryPreference())


@pytest.fixture(scope="session")
def linear_query():
    """A TOPS query with the linear preference."""
    return TOPSQuery(k=5, tau_km=1.0, preference=LinearPreference())


@pytest.fixture(scope="session")
def grid_coverage(grid_problem, binary_query):
    """Coverage index of the grid problem at the default binary query."""
    return grid_problem.coverage(binary_query)


@pytest.fixture(scope="session")
def tiny_bundle():
    """The tiny Beijing-like dataset bundle."""
    return beijing_like(scale="tiny", seed=3)


@pytest.fixture(scope="session")
def tiny_problem(tiny_bundle):
    """TOPSProblem over the tiny Beijing-like bundle."""
    return tiny_bundle.problem()


@pytest.fixture(scope="session")
def tiny_netclus(tiny_problem):
    """A NetClus index over the tiny Beijing-like bundle."""
    return tiny_problem.build_netclus_index(
        gamma=0.75, tau_min_km=0.4, tau_max_km=4.0
    )


@pytest.fixture(scope="session")
def small_instance():
    """A hand-sized instance (Beijing-Small analogue) for exact-solver tests."""
    return beijing_small_like(num_trajectories=60, num_sites=15, seed=9)


@pytest.fixture
def rng():
    """A seeded NumPy generator for per-test randomness."""
    return np.random.default_rng(1234)


def make_line_network(num_nodes: int = 5, spacing_km: float = 1.0):
    """A simple bidirectional path network 0 - 1 - ... - (n-1)."""
    from repro.network.graph import RoadNetwork

    net = RoadNetwork()
    for idx in range(num_nodes):
        net.add_node(idx * spacing_km, 0.0)
    for idx in range(num_nodes - 1):
        net.add_bidirectional_edge(idx, idx + 1, spacing_km)
    return net


@pytest.fixture
def line_network():
    """A 5-node path network with 1 km edges."""
    return make_line_network()
