"""Command-line front end: ``python -m repro.analysis``.

Exit status 0 when no live finding remains, 1 otherwise (suppressed
findings never fail the run).  Three output formats:

* ``text`` (default) — one ``path:line:col RULE message`` line per
  finding plus a per-rule summary, human-oriented.
* ``json`` — the documented machine-readable report schema (see
  ``docs/static-analysis.md``), consumed by the pytest bridge and any
  tooling that wants structured findings.
* ``github`` — GitHub Actions workflow commands (``::error file=...``)
  so the CI job renders findings as inline annotations, grouped per rule.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from . import ALL_ANALYZERS, FAMILIES, AnalysisReport, analyzers_for, run_analysis

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Invariant-enforcing static analysis over the repository.",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root to analyse (default: current directory)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RA###|family",
        help="run only this rule id or family (repeatable; default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    by_rule = {cls.rule: cls for cls in ALL_ANALYZERS}
    for family, rules in FAMILIES.items():
        lines.append(f"{family}:")
        for rule in rules:
            lines.append(f"  {rule}  {by_rule[rule].title}")
    return "\n".join(lines)


def _render_text(report: AnalysisReport) -> str:
    lines = [found.render() for found in report.findings]
    if lines:
        lines.append("")
    counts = ", ".join(
        f"{rule}={count}" for rule, count in sorted(report.counts().items())
    )
    lines.append(
        f"{len(report.findings)} finding(s), {len(report.suppressed)} "
        f"suppressed, {report.files_scanned} file(s) scanned [{counts}]"
    )
    return "\n".join(lines)


def _render_github(report: AnalysisReport) -> str:
    """GitHub Actions annotations, grouped per rule for the job log."""
    lines = []
    by_rule: dict[str, list] = {}
    for found in report.findings:
        by_rule.setdefault(found.rule, []).append(found)
    for rule in sorted(by_rule):
        group = by_rule[rule]
        lines.append(f"::group::{rule} ({len(group)} finding(s))")
        for found in group:
            message = found.message
            if found.hint:
                message = f"{message} — {found.hint}"
            lines.append(
                f"::error file={found.path},line={found.line},"
                f"col={found.column},title={found.rule}::{message}"
            )
        lines.append("::endgroup::")
    lines.append(_render_text(report).splitlines()[-1])
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        print(_list_rules())
        return 0
    try:
        analyzers = analyzers_for(options.rule)
    except ValueError as exc:
        parser.error(str(exc))
    report = run_analysis(options.root, analyzers)
    if options.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    elif options.format == "github":
        print(_render_github(report))
    else:
        print(_render_text(report))
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
