"""Determinism lint (rules RA001–RA004).

Byte-identical selections are the repo's parity bar, and every historical
determinism bug traced back to one of four statically visible shapes in
the result-affecting trees (``src/repro/core``, ``src/repro/service``):

* **RA001** — iterating a ``set``/``frozenset`` in result order.  Set
  iteration order depends on insertion history and hash seeding; a greedy
  pass, serialization loop, or float ``sum`` driven by it can differ
  between otherwise-identical runs.  Exempt: order-insensitive consumers
  (``sorted``/``min``/``max``/``len``/``any``/``all``/``set``/
  ``frozenset``) and set comprehensions (the result is again unordered).
* **RA002** — raw ``==``/``<``/``>`` comparisons between gain/weight
  expressions.  Last-ulp float ties must go through the canonical
  ``GAIN_RTOL``/``tie_break_candidates`` helpers; a raw comparison picks
  whichever operand the kernel happened to round last.  Exempt:
  comparisons against numeric literals (sign/zero tests), comparisons
  involving a tolerance identifier, and explicitly epsilon-adjusted
  operands (``x - 1e-12``).
* **RA003** — unseeded random number generation (``np.random.*`` module
  state, bare ``random.*``) anywhere under ``src/``.  All randomness must
  flow from an explicitly seeded generator.
* **RA004** — wall-clock reads (``time.time``/``perf_counter``/…)
  inside kernel code.  Timing belongs to the declared stats wrappers
  (``_TIMING_ALLOWLIST``); a clock read anywhere else is either dead
  weight or a nondeterministic input.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import Analyzer, Finding, SourceFile

__all__ = [
    "RawFloatComparison",
    "UnorderedIteration",
    "UnseededRandom",
    "WallClockInKernel",
]

#: result-affecting trees the determinism rules scan
_RESULT_AFFECTING = ("src/repro/core/", "src/repro/service/")

#: builtins whose result does not depend on the argument's iteration order
_ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "min", "max", "len", "any", "all", "set", "frozenset"}
)

#: constructors/methods that produce a set-typed value
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
_SET_ANNOTATIONS = frozenset({"set", "frozenset", "Set", "FrozenSet", "AbstractSet"})


def _in_result_affecting(relative: str) -> bool:
    return relative.endswith(".py") and relative.startswith(_RESULT_AFFECTING)


def _annotation_is_set(node: ast.expr | None) -> bool:
    """Whether a type annotation denotes a set (``set[int]``, ``frozenset``…)."""
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATIONS
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return _annotation_is_set(ast.parse(node.value, mode="eval").body)
        except SyntaxError:
            return False
    return False


class _ScopeTypes:
    """Flow-insensitive inference of set-typed local names in one scope."""

    def __init__(self, scope: ast.AST) -> None:
        self.set_names: set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
            ]:
                if _annotation_is_set(arg.annotation):
                    self.set_names.add(arg.arg)
        # two passes reach a fixpoint for chains like a = set(); b = a | c
        for _ in range(2):
            for node in self._own_nodes(scope):
                if isinstance(node, ast.Assign) and self.is_set(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.set_names.add(target.id)
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    if _annotation_is_set(node.annotation) or (
                        node.value is not None and self.is_set(node.value)
                    ):
                        self.set_names.add(node.target.id)
                elif isinstance(node, ast.AugAssign) and isinstance(
                    node.target, ast.Name
                ):
                    if node.target.id in self.set_names or self.is_set(node.value):
                        if isinstance(
                            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
                        ):
                            self.set_names.add(node.target.id)

    @staticmethod
    def _own_nodes(scope: ast.AST) -> Iterator[ast.AST]:
        """Walk *scope* without descending into nested function scopes."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def is_set(self, node: ast.expr) -> bool:
        """Whether *node* is a set-typed expression in this scope."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_CONSTRUCTORS:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self.is_set(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_set(node.left) or self.is_set(node.right)
        return False


class UnorderedIteration(Analyzer):
    """RA001 — set/frozenset iterated in result-affecting order."""

    rule = "RA001"
    title = "unordered iteration over a set in a result-affecting path"
    hint = "iterate sorted(...) of the set, or consume it order-insensitively"

    def applies_to(self, relative: str) -> bool:
        return _in_result_affecting(relative)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        scopes: list[ast.AST] = [source.tree]
        scopes.extend(
            node
            for node in ast.walk(source.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            types = _ScopeTypes(scope)
            for node in _ScopeTypes._own_nodes(scope):
                yield from self._check_node(source, node, types)

    def _check_node(
        self, source: SourceFile, node: ast.AST, types: _ScopeTypes
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)) and types.is_set(node.iter):
            yield self.finding(
                source,
                node.iter,
                "for-loop iterates a set; iteration order is not deterministic",
            )
        elif isinstance(
            node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
        ):
            # a SetComp's result is again unordered, so order cannot leak
            parent = source.parent(node)
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_INSENSITIVE_CALLS
                and node in parent.args
            ):
                return
            for generator in node.generators:
                if types.is_set(generator.iter):
                    yield self.finding(
                        source,
                        generator.iter,
                        "comprehension iterates a set; element order leaks into "
                        "the result",
                    )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sum"
            and node.args
            and types.is_set(node.args[0])
        ):
            yield self.finding(
                source,
                node,
                "sum() over a set; float accumulation order is not deterministic",
                hint="sum(sorted(...)) or use math.fsum over a sorted sequence",
            )


#: identifier fragments marking a selection-relevant quantity
_GAINY_FRAGMENTS = ("gain", "weight")
#: identifiers marking an intentional tolerance-based comparison
_TOLERANCE_NAMES = frozenset(
    {"tolerance", "tol", "rtol", "atol", "eps", "epsilon", "gain_rtol"}
)


def _identifiers(node: ast.expr) -> Iterator[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def _is_gainy(node: ast.expr) -> bool:
    return any(
        fragment in name.lower()
        for name in _identifiers(node)
        for fragment in _GAINY_FRAGMENTS
    )


def _mentions_tolerance(node: ast.expr) -> bool:
    return any(name.lower() in _TOLERANCE_NAMES for name in _identifiers(node))


def _is_numeric_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float))
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_numeric_literal(node.operand)
    return False


def _is_epsilon_adjusted(node: ast.expr) -> bool:
    """``x - 1e-12`` / ``x + eps``-style explicitly slack-adjusted operand."""
    return (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, (ast.Add, ast.Sub))
        and (_is_numeric_literal(node.right) or _mentions_tolerance(node.right))
    )


class RawFloatComparison(Analyzer):
    """RA002 — raw float comparison between gain/weight expressions."""

    rule = "RA002"
    title = "raw float comparison on a gain/weight expression"
    hint = (
        "route float ties through GAIN_RTOL / tie_break_candidates "
        "(repro.core.greedy) instead of a raw comparison"
    )

    def applies_to(self, relative: str) -> bool:
        return _in_result_affecting(relative)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(
                    op, (ast.Lt, ast.Gt, ast.LtE, ast.GtE, ast.Eq, ast.NotEq)
                ):
                    continue
                if _is_numeric_literal(left) or _is_numeric_literal(right):
                    continue  # sign/zero/sentinel test, not a tie decision
                if _mentions_tolerance(left) or _mentions_tolerance(right):
                    continue  # already a tolerance-based comparison
                if _is_epsilon_adjusted(left) or _is_epsilon_adjusted(right):
                    continue  # explicitly slack-adjusted
                if _is_gainy(left) and _is_gainy(right):
                    yield self.finding(
                        source,
                        node,
                        "raw float comparison between gain/weight expressions; "
                        "last-ulp ties resolve nondeterministically",
                    )
                    break


#: seeded numpy.random constructors — fine even without an explicit seed arg
_NP_RANDOM_ALLOWED = frozenset({"Generator", "SeedSequence", "RandomState"})
#: stdlib ``random`` attributes that do not draw from the global stream
_STDLIB_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom", "seed", "getstate"})
#: modules exempt from RA003 (the sanctioned seeding helpers)
_RNG_ALLOWLIST = frozenset({"src/repro/utils/rng.py"})


class UnseededRandom(Analyzer):
    """RA003 — draw from global/unseeded RNG state."""

    rule = "RA003"
    title = "unseeded random number generation"
    hint = (
        "draw from an explicitly seeded np.random.Generator "
        "(np.random.default_rng(seed)) threaded through the call"
    )

    def applies_to(self, relative: str) -> bool:
        return (
            relative.endswith(".py")
            and relative.startswith("src/")
            and relative not in _RNG_ALLOWLIST
        )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            func = node.func
            base = func.value
            # np.random.<fn>(...) / numpy.random.<fn>(...)
            if (
                isinstance(base, ast.Attribute)
                and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in {"np", "numpy"}
            ):
                if func.attr in _NP_RANDOM_ALLOWED:
                    continue
                if func.attr == "default_rng" and node.args:
                    continue  # seeded construction
                yield self.finding(
                    source,
                    node,
                    f"np.random.{func.attr}() uses global/unseeded RNG state",
                )
            # random.<fn>(...) on the stdlib module
            elif (
                isinstance(base, ast.Name)
                and base.id == "random"
                and func.attr not in _STDLIB_RANDOM_ALLOWED
                and self._imports_stdlib_random(source)
            ):
                yield self.finding(
                    source,
                    node,
                    f"random.{func.attr}() draws from the global stdlib RNG",
                )

    @staticmethod
    def _imports_stdlib_random(source: SourceFile) -> bool:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import) and any(
                alias.name == "random" and alias.asname is None
                for alias in node.names
            ):
                return True
        return False


#: clock attributes of the ``time`` module that read wall/CPU clocks
_CLOCK_ATTRS = frozenset({"time", "perf_counter", "monotonic", "process_time"})
#: (relative path, enclosing function) pairs allowed to read clocks — the
#: declared stats timing wrappers.  Kernel timing belongs in
#: ``repro.utils.timer`` (outside the scanned trees); this list exists so a
#: future in-tree wrapper can be sanctioned explicitly instead of via noqa.
_TIMING_ALLOWLIST: frozenset[tuple[str, str]] = frozenset()


class WallClockInKernel(Analyzer):
    """RA004 — wall-clock read inside kernel code."""

    rule = "RA004"
    title = "wall-clock read inside a kernel function"
    hint = (
        "move timing to repro.utils.timer / the stats wrappers, or add the "
        "(path, function) pair to the RA004 allowlist"
    )

    def applies_to(self, relative: str) -> bool:
        return _in_result_affecting(relative)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _CLOCK_ATTRS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "time"
            ):
                continue
            function = self._enclosing_function(source, node)
            if (source.relative, function) in _TIMING_ALLOWLIST:
                continue
            yield self.finding(
                source,
                node,
                f"time.{node.func.attr}() read inside kernel code "
                f"(function {function!r})",
            )

    @staticmethod
    def _enclosing_function(source: SourceFile, node: ast.AST) -> str:
        current: ast.AST | None = node
        while current is not None:
            current = source.parent(current)
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current.name
        return "<module>"
