"""Framework of the invariant-enforcing static analysis suite.

The project's correctness bar is byte-identical selections across every
execution mode (dense/sparse engines, shard counts, warm vs cold coverage
cache, HTTP vs in-process), and the bug classes that historically broke it
— last-ulp float ties, unordered iteration, service state mutated outside
its critical section, observability surfaces drifting from the code — are
all *statically visible*.  This package makes them structural instead of
test-luck-dependent:

* :class:`Finding` — one structured diagnostic: rule id, ``file:line:col``,
  message, fix hint.
* :class:`SourceFile` — a parsed analysis target: source text, AST, parent
  links, and the per-line ``# noqa: RA###`` suppression table.
* :class:`Analyzer` — per-file AST rule (``check``); subclasses restrict
  their scope via ``applies_to`` (e.g. determinism rules only scan the
  result-affecting ``src/repro/core``/``src/repro/service`` trees).
* :class:`ProjectAnalyzer` — repo-level cross-check (``check_project``)
  for drift rules that compare two artifacts (CLI flags vs docs, benchmark
  registry vs on-disk scripts).
* :func:`run_analysis` — load every Python file under the root's ``src/``
  tree (plus whatever project analyzers read), run the requested rules,
  and split the results into live findings and suppressed ones.

Suppression follows the ruff convention: ``# noqa: RA002`` on the reported
line silences that rule there (a bare ``# noqa`` silences every rule).
Every suppression is expected to carry a justification comment — see
``docs/static-analysis.md`` for the policy and the rule catalogue.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Analyzer",
    "AnalysisReport",
    "Finding",
    "Project",
    "ProjectAnalyzer",
    "SourceFile",
    "run_analysis",
]

#: ``# noqa`` / ``# noqa: RA001, RA002`` (case-insensitive, ruff-style)
_NOQA_PATTERN = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*))?",
    re.IGNORECASE,
)

#: directories never scanned
_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".mypy_cache", ".pytest_cache"}


@dataclass(frozen=True)
class Finding:
    """One structured diagnostic of a static-analysis rule."""

    rule: str
    path: str
    line: int
    column: int
    message: str
    hint: str = ""

    def as_dict(self) -> dict[str, int | str]:
        """JSON-ready form (the ``--format json`` output schema)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        """One-line human-readable form (``--format text``)."""
        return f"{self.path}:{self.line}:{self.column} {self.rule} {self.message}"


class SourceFile:
    """One parsed Python file: text, AST with parent links, noqa table."""

    def __init__(self, root: Path, path: Path) -> None:
        self.root = root
        self.path = path
        self.relative = path.relative_to(root).as_posix()
        self.text = path.read_text()
        self.tree: ast.Module | None
        self.parse_error: SyntaxError | None = None
        try:
            self.tree = ast.parse(self.text, filename=str(path))
        except SyntaxError as exc:
            self.tree = None
            self.parse_error = exc
        self._parents: dict[ast.AST, ast.AST] = {}
        if self.tree is not None:
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[child] = parent
        #: line -> frozenset of silenced rule ids; empty set = bare noqa (all)
        self.noqa: dict[int, frozenset[str]] = {}
        for number, line in enumerate(self.text.splitlines(), start=1):
            match = _NOQA_PATTERN.search(line)
            if match is None:
                continue
            codes = match.group("codes")
            self.noqa[number] = (
                frozenset()
                if codes is None
                else frozenset(code.strip().upper() for code in codes.split(","))
            )

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of *node* (None for the module)."""
        return self._parents.get(node)

    def suppresses(self, rule: str, line: int) -> bool:
        """Whether a ``# noqa`` on *line* silences *rule*."""
        codes = self.noqa.get(line)
        if codes is None:
            return False
        return not codes or rule.upper() in codes


class Analyzer:
    """Base class of a per-file AST rule.

    Subclasses set ``rule`` (the ``RA###`` id), ``title`` and ``hint``, and
    implement :meth:`check`; :meth:`applies_to` restricts which files the
    rule scans (relative posix paths).
    """

    rule: str = "RA000"
    title: str = ""
    hint: str = ""

    def applies_to(self, relative: str) -> bool:
        """Whether the rule scans the file at *relative* (posix) path."""
        return relative.endswith(".py")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Yield findings for one file."""
        raise NotImplementedError

    def finding(
        self, source: SourceFile, node: ast.AST, message: str, hint: str | None = None
    ) -> Finding:
        """Build a finding anchored at *node*."""
        return Finding(
            rule=self.rule,
            path=source.relative,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=self.hint if hint is None else hint,
        )


class Project:
    """Repo-level view handed to :class:`ProjectAnalyzer` rules.

    Lazily loads and caches :class:`SourceFile` objects by root-relative
    path, so a project rule can parse exactly the artifacts it
    cross-checks.  ``sources`` is the pre-loaded per-file scan set.
    """

    def __init__(self, root: Path, sources: list[SourceFile]) -> None:
        self.root = root
        self.sources = sources
        self._cache: dict[str, SourceFile | None] = {
            source.relative: source for source in sources
        }

    def source(self, relative: str) -> SourceFile | None:
        """The parsed file at *relative*, or None if absent/unreadable."""
        if relative not in self._cache:
            path = self.root / relative
            self._cache[relative] = (
                SourceFile(self.root, path) if path.is_file() else None
            )
        return self._cache[relative]

    def text(self, relative: str) -> str | None:
        """Raw text of any repo file (docs, configs), or None if absent."""
        path = self.root / relative
        return path.read_text() if path.is_file() else None


class ProjectAnalyzer(Analyzer):
    """Base class of a repo-level cross-check (drift rules)."""

    def applies_to(self, relative: str) -> bool:  # pragma: no cover - unused
        return False

    def check(self, source: SourceFile) -> Iterator[Finding]:  # pragma: no cover
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Yield findings for the whole repository."""
        raise NotImplementedError


@dataclass
class AnalysisReport:
    """Outcome of one :func:`run_analysis` pass."""

    root: str
    rules: list[str]
    files_scanned: int
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no live (unsuppressed) finding remains."""
        return not self.findings

    def counts(self) -> dict[str, int]:
        """Live findings per rule id (zero-filled for every requested rule)."""
        table = {rule: 0 for rule in self.rules}
        for found in self.findings:
            table[found.rule] = table.get(found.rule, 0) + 1
        return table

    def as_dict(self) -> dict:
        """The documented ``--format json`` schema (see docs/static-analysis.md)."""
        return {
            "version": 1,
            "root": self.root,
            "rules": list(self.rules),
            "files_scanned": self.files_scanned,
            "findings": [found.as_dict() for found in self.findings],
            "suppressed": [found.as_dict() for found in self.suppressed],
            "counts": self.counts(),
            "ok": self.ok,
        }


def iter_python_files(root: Path) -> Iterator[Path]:
    """Every ``.py`` file of the scan set, in deterministic sorted order.

    The scan set is the ``src/`` tree when the root has one (the library
    code the invariants protect), else every Python file under the root
    (fixture mini-repos).  Project analyzers additionally read the
    specific artifacts they cross-check (docs, benchmarks) on their own.
    """
    base = root / "src" if (root / "src").is_dir() else root
    for path in sorted(base.rglob("*.py")):
        if any(part in _SKIP_DIRS for part in path.parts):
            continue
        yield path


def run_analysis(
    root: str | Path,
    analyzers: Iterable[Analyzer],
) -> AnalysisReport:
    """Run *analyzers* over the repository at *root*.

    Returns an :class:`AnalysisReport` whose ``findings`` are the live
    diagnostics (deterministically ordered by file, line, rule) and whose
    ``suppressed`` list records every ``# noqa``-silenced one — the CI
    job and the pytest bridge assert ``findings == []``.
    """
    root = Path(root).resolve()
    analyzers = list(analyzers)
    sources = [SourceFile(root, path) for path in iter_python_files(root)]
    project = Project(root, sources)

    raw: list[Finding] = []
    for source in sources:
        if source.parse_error is not None:
            raw.append(
                Finding(
                    rule="RA000",
                    path=source.relative,
                    line=source.parse_error.lineno or 1,
                    column=(source.parse_error.offset or 0) + 1,
                    message=f"file does not parse: {source.parse_error.msg}",
                    hint="fix the syntax error; no other rule ran on this file",
                )
            )
            continue
        for analyzer in analyzers:
            if isinstance(analyzer, ProjectAnalyzer):
                continue
            if analyzer.applies_to(source.relative):
                raw.extend(analyzer.check(source))
    for analyzer in analyzers:
        if isinstance(analyzer, ProjectAnalyzer):
            raw.extend(analyzer.check_project(project))

    findings: list[Finding] = []
    suppressed: list[Finding] = []
    for found in sorted(raw, key=lambda f: (f.path, f.line, f.column, f.rule)):
        source = project.source(found.path)
        if source is not None and source.suppresses(found.rule, found.line):
            suppressed.append(found)
        else:
            findings.append(found)
    return AnalysisReport(
        root=str(root),
        rules=[analyzer.rule for analyzer in analyzers],
        files_scanned=len(sources),
        findings=findings,
        suppressed=suppressed,
    )
