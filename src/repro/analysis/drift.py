"""Drift detection (rules RA007–RA009).

The repo carries three pairs of surfaces that must stay in lockstep but
live in different files, so nothing but convention kept them aligned:

* **RA007** — the ``/metrics`` Prometheus names are generated from
  ``ServiceStats.as_dict()`` (``netclus_service_<key>``), so the stats
  dataclass fields and the literal ``as_dict`` keys must match one-to-one
  (same for ``ServerStats`` / ``netclus_server_*``).
* **RA008** — every ``--flag`` the service CLI registers via
  ``argparse.add_argument`` must be mentioned in ``docs/api.md``.
* **RA009** — the ``SCRIPT_SMOKE_BENCHMARKS`` registry in
  ``benchmarks/conftest.py`` must list exactly the on-disk
  ``bench_*.py`` scripts that expose the script-entry contract
  (``__main__`` guard + ``build_parser`` + ``--smoke``).

Each rule skips silently when its artifacts are absent (fixture
mini-repos exercise one rule at a time), and anchors its findings at the
drifting declaration so ``file:line`` lands on the thing to edit.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .base import Finding, Project, ProjectAnalyzer, SourceFile

__all__ = ["BenchRegistryDrift", "CliDocsDrift", "MetricsStatsDrift"]


def _class_def(source: SourceFile, name: str) -> ast.ClassDef | None:
    assert source.tree is not None
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


class MetricsStatsDrift(ProjectAnalyzer):
    """RA007 — stats dataclass fields vs literal ``as_dict`` keys."""

    rule = "RA007"
    title = "stats dataclass drifted from its as_dict()/metrics surface"
    hint = (
        "/metrics names are generated from as_dict(); add the field to the "
        "as_dict literal (or drop it) so the exported surface matches"
    )

    #: (file, class) pairs whose as_dict feeds a metrics endpoint
    surfaces = (
        ("src/repro/service/placement.py", "ServiceStats"),
        ("src/repro/service/server.py", "ServerStats"),
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        for relative, class_name in self.surfaces:
            source = project.source(relative)
            if source is None or source.tree is None:
                continue
            cls = _class_def(source, class_name)
            if cls is None:
                continue
            yield from self._check_class(source, cls, class_name)

    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef, class_name: str
    ) -> Iterator[Finding]:
        fields: dict[str, ast.AnnAssign] = {}
        for item in cls.body:
            if (
                isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
                and not item.target.id.startswith("_")
            ):
                fields[item.target.id] = item
        literal = self._as_dict_literal(cls)
        if literal is None:
            return  # as_dict absent or not a literal dict — nothing to diff
        keys: dict[str, ast.expr] = {}
        for key in literal.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys[key.value] = key
        for name, field_node in fields.items():
            if name not in keys:
                yield self.finding(
                    source,
                    field_node,
                    f"{class_name}.{name} is not exported by as_dict(); the "
                    "metrics endpoint will silently miss it",
                )
        for name, key_node in keys.items():
            if name not in fields:
                yield self.finding(
                    source,
                    key_node,
                    f"as_dict() exports {name!r} which is not a "
                    f"{class_name} field",
                )

    @staticmethod
    def _as_dict_literal(cls: ast.ClassDef) -> ast.Dict | None:
        for item in cls.body:
            if isinstance(item, ast.FunctionDef) and item.name == "as_dict":
                for node in ast.walk(item):
                    if isinstance(node, ast.Return) and isinstance(
                        node.value, ast.Dict
                    ):
                        return node.value
        return None


class CliDocsDrift(ProjectAnalyzer):
    """RA008 — CLI argparse flags missing from docs/api.md."""

    rule = "RA008"
    title = "CLI flag not documented in docs/api.md"
    hint = "document the flag in docs/api.md (CLI reference section)"

    cli_path = "src/repro/service/cli.py"
    docs_path = "docs/api.md"

    def check_project(self, project: Project) -> Iterator[Finding]:
        source = project.source(self.cli_path)
        docs = project.text(self.docs_path)
        if source is None or source.tree is None or docs is None:
            return
        seen: set[str] = set()
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
            ):
                continue
            for arg in node.args:
                if not (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value.startswith("--")
                ):
                    continue
                flag = arg.value
                if flag in seen:
                    continue
                seen.add(flag)
                pattern = rf"(?<![\w-]){re.escape(flag)}(?![\w-])"
                if re.search(pattern, docs) is None:
                    yield self.finding(
                        source,
                        arg,
                        f"CLI flag {flag} is not mentioned in {self.docs_path}",
                    )


class BenchRegistryDrift(ProjectAnalyzer):
    """RA009 — SCRIPT_SMOKE_BENCHMARKS vs on-disk benchmark scripts."""

    rule = "RA009"
    title = "benchmark registry drifted from on-disk scripts"
    hint = (
        "keep SCRIPT_SMOKE_BENCHMARKS (benchmarks/conftest.py) equal to the "
        "bench_*.py scripts exposing a __main__ entry with build_parser/--smoke"
    )

    conftest_path = "benchmarks/conftest.py"
    registry_name = "SCRIPT_SMOKE_BENCHMARKS"
    #: substrings a script-style benchmark must contain
    markers = ('__name__ == "__main__"', "build_parser", "--smoke")

    def check_project(self, project: Project) -> Iterator[Finding]:
        source = project.source(self.conftest_path)
        if source is None or source.tree is None:
            return
        registry_node = self._registry_node(source)
        if registry_node is None:
            return
        registered = {
            element.value
            for element in registry_node.value.elts
            if isinstance(element, ast.Constant) and isinstance(element.value, str)
        }
        on_disk = set()
        bench_dir = project.root / "benchmarks"
        for path in sorted(bench_dir.glob("bench_*.py")):
            text = path.read_text()
            if all(marker in text for marker in self.markers):
                on_disk.add(path.stem)
        for name in sorted(registered - on_disk):
            yield self.finding(
                source,
                registry_node,
                f"registered benchmark {name!r} has no on-disk script with a "
                "__main__ entry, build_parser and --smoke",
            )
        for name in sorted(on_disk - registered):
            yield self.finding(
                source,
                registry_node,
                f"script-style benchmark {name!r} on disk is not registered "
                f"in {self.registry_name}",
            )

    def _registry_node(self, source: SourceFile) -> ast.Assign | None:
        assert source.tree is not None
        for node in source.tree.body:
            if (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(target, ast.Name)
                    and target.id == self.registry_name
                    for target in node.targets
                )
                and isinstance(node.value, (ast.Tuple, ast.List))
            ):
                return node
        return None
