"""Allocation lint for hot kernels (rule RA010).

The coverage engines' gain kernels (``marginal_gains`` / ``gain_updates``
/ ``absorb`` / ``marginal_gain``) run thousands of times per greedy
selection; a per-call ``np.zeros``/``np.empty`` temporary or an
``.astype`` copy inside them turns into allocator pressure that dominates
the kernel itself on large workloads.  Functions marked with the
``@kernel`` decorator (:func:`repro.utils.concurrency.kernel`) declare
themselves hot: inside them, RA010 flags

* ``np.zeros(...)`` / ``np.empty(...)`` (and the ``numpy.``-spelled
  forms) — route temporaries through the instance's ``_ScratchPool``
  and ufunc ``out=`` arguments instead;
* any ``.astype(...)`` call — a full-array copy; build the array in the
  right dtype up front.

An array that *escapes* the kernel as its result legitimately allocates —
suppress those lines with ``# noqa: RA010`` plus a justification comment,
per the repo suppression policy.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import Analyzer, Finding, SourceFile

__all__ = ["KernelAllocations"]

#: numpy constructors that allocate a fresh array every call
_ALLOCATING_CONSTRUCTORS = frozenset({"zeros", "empty"})
#: module aliases numpy is imported under
_NUMPY_NAMES = frozenset({"np", "numpy"})


def _is_kernel_decorated(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether the function carries the ``@kernel`` marker decorator."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "kernel":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "kernel":
            return True
    return False


class KernelAllocations(Analyzer):
    """RA010 — per-call array allocation inside an ``@kernel`` function."""

    rule = "RA010"
    title = "per-call array allocation inside a @kernel function"
    hint = (
        "reuse a _ScratchPool buffer with ufunc out= arguments, or build "
        "the array in its final dtype; escaping results may allocate with "
        "a justified # noqa: RA010"
    )

    def applies_to(self, relative: str) -> bool:
        return relative.endswith(".py") and relative.startswith("src/")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_kernel_decorated(node):
                continue
            yield from self._check_kernel(source, node)

    def _check_kernel(
        self, source: SourceFile, function: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node in ast.walk(function):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            func = node.func
            if (
                func.attr in _ALLOCATING_CONSTRUCTORS
                and isinstance(func.value, ast.Name)
                and func.value.id in _NUMPY_NAMES
            ):
                yield self.finding(
                    source,
                    node,
                    f"np.{func.attr}() allocates on every call of kernel "
                    f"{function.name!r}",
                )
            elif func.attr == "astype":
                yield self.finding(
                    source,
                    node,
                    f".astype() copies the array on every call of kernel "
                    f"{function.name!r}",
                )
