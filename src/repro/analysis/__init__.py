"""Invariant-enforcing static analysis for the NetClus reproduction.

Pure-stdlib AST rules guarding the invariants the runtime parity tests
can only sample: determinism of the selection path (RA001–RA004), the
declarative lock discipline of the serving layer (RA005–RA006), the
code↔docs↔registry surfaces that otherwise drift (RA007–RA009), and the
allocation discipline of the hot ``@kernel`` functions (RA010).

Run it as a module::

    python -m repro.analysis                 # full pass, exit 1 on findings
    python -m repro.analysis --rule RA005    # one rule family member
    python -m repro.analysis --format json   # machine-readable report

See ``docs/static-analysis.md`` for the rule catalogue and suppression
policy (``# noqa: RA###`` + justification comment).
"""

from __future__ import annotations

from .base import (
    AnalysisReport,
    Analyzer,
    Finding,
    Project,
    ProjectAnalyzer,
    SourceFile,
    run_analysis,
)
from .alloc import KernelAllocations
from .determinism import (
    RawFloatComparison,
    UnorderedIteration,
    UnseededRandom,
    WallClockInKernel,
)
from .drift import BenchRegistryDrift, CliDocsDrift, MetricsStatsDrift
from .locks import LockDiscipline, WriteUnderReadLock

__all__ = [
    "ALL_ANALYZERS",
    "FAMILIES",
    "AnalysisReport",
    "Analyzer",
    "Finding",
    "Project",
    "ProjectAnalyzer",
    "SourceFile",
    "all_analyzers",
    "analyzers_for",
    "run_analysis",
]

#: every registered rule class, in rule-id order
ALL_ANALYZERS: tuple[type[Analyzer], ...] = (
    UnorderedIteration,  # RA001
    RawFloatComparison,  # RA002
    UnseededRandom,  # RA003
    WallClockInKernel,  # RA004
    LockDiscipline,  # RA005
    WriteUnderReadLock,  # RA006
    MetricsStatsDrift,  # RA007
    CliDocsDrift,  # RA008
    BenchRegistryDrift,  # RA009
    KernelAllocations,  # RA010
)

#: rule families (documentation / --list-rules grouping)
FAMILIES: dict[str, tuple[str, ...]] = {
    "determinism": ("RA001", "RA002", "RA003", "RA004"),
    "locks": ("RA005", "RA006"),
    "drift": ("RA007", "RA008", "RA009"),
    "alloc": ("RA010",),
}


def all_analyzers() -> list[Analyzer]:
    """Fresh instances of every registered rule."""
    return [cls() for cls in ALL_ANALYZERS]


def analyzers_for(rules: list[str] | None) -> list[Analyzer]:
    """Instances for the requested rule ids (all rules when None/empty).

    Accepts rule ids (``RA005``) and family names (``locks``),
    case-insensitively; raises ``ValueError`` on an unknown selector.
    """
    if not rules:
        return all_analyzers()
    wanted: set[str] = set()
    for selector in rules:
        token = selector.strip().upper()
        family = FAMILIES.get(selector.strip().lower())
        if family is not None:
            wanted.update(family)
        elif any(cls.rule == token for cls in ALL_ANALYZERS):
            wanted.add(token)
        else:
            known = ", ".join(cls.rule for cls in ALL_ANALYZERS)
            raise ValueError(
                f"unknown rule {selector!r} (known: {known}; "
                f"families: {', '.join(FAMILIES)})"
            )
    return [cls() for cls in ALL_ANALYZERS if cls.rule in wanted]
