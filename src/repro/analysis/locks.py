"""Lock-discipline checker (rules RA005–RA006).

Reads the declarative markers from :mod:`repro.utils.concurrency`
syntactically — ``@guarded_by("_lock", "attr", ...)`` class decorators and
``@holds_lock("_lock")`` method decorators — and proves, lexically, that
every ``self.<attr>`` touch of a guarded attribute happens inside the
matching critical section:

* **RA005** — a guarded attribute read or written with the lock not held.
* **RA006** — a guarded attribute *written* while only the read side of a
  readers-writer lock is held (``rw=True`` guards).

Held-lock tracking is purely lexical: a ``with self.<lock>:`` block holds
the lock exclusively, ``with self.<lock>.read_locked():`` holds it in read
mode, ``with self.<lock>.write_locked():`` (or any other method of the
lock object) exclusively.  A method decorated ``@holds_lock`` is analysed
with that lock exclusively held from entry.  Nested functions and lambdas
start with an *empty* held set — a callback may outlive the critical
section that created it — so a guarded access inside one must take the
lock itself or move out of the closure.

Constructor-shaped methods (``__init__`` and friends) are exempt: the
instance is not yet shared, so its attributes cannot race.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import Analyzer, Finding, SourceFile

__all__ = ["LockDiscipline", "WriteUnderReadLock"]

#: methods where the instance is not yet (or no longer) shared
_EXEMPT_METHODS = frozenset(
    {"__init__", "__new__", "__post_init__", "__setstate__", "__del__",
     "__init_subclass__"}
)

_READ = "read"
_EXCLUSIVE = "exclusive"


def _decorator_call(node: ast.expr, name: str) -> ast.Call | None:
    """The decorator as a Call when it is ``name(...)`` / ``mod.name(...)``."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id == name:
        return node
    if isinstance(func, ast.Attribute) and func.attr == name:
        return node
    return None


def _string_args(call: ast.Call) -> list[str]:
    out = []
    for arg in call.args:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            out.append(arg.value)
    return out


def _guard_table(cls: ast.ClassDef) -> dict[str, tuple[str, bool]]:
    """``{attribute: (lock, rw)}`` from the class's guarded_by decorators.

    Decorators apply bottom-up at runtime, so the topmost one merges last
    and wins on a repeated attribute — mirrored here by walking the
    decorator list in reverse.
    """
    table: dict[str, tuple[str, bool]] = {}
    for decorator in reversed(cls.decorator_list):
        call = _decorator_call(decorator, "guarded_by")
        if call is None:
            continue
        strings = _string_args(call)
        if len(strings) < 2:
            continue
        lock, attributes = strings[0], strings[1:]
        rw = any(
            keyword.arg == "rw"
            and isinstance(keyword.value, ast.Constant)
            and bool(keyword.value.value)
            for keyword in call.keywords
        )
        for attribute in attributes:
            table[attribute] = (lock, rw)
    return table


def _held_from_decorators(func: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, str]:
    held: dict[str, str] = {}
    for decorator in func.decorator_list:
        call = _decorator_call(decorator, "holds_lock")
        if call is None:
            continue
        for lock in _string_args(call):
            held[lock] = _EXCLUSIVE
    return held


class LockDiscipline(Analyzer):
    """RA005 — guarded attribute touched outside its critical section."""

    rule = "RA005"
    title = "guarded attribute accessed without its lock held"
    hint = (
        "wrap the access in `with self.<lock>:` (or declare the method "
        "@holds_lock) — see docs/static-analysis.md"
    )

    #: hint attached to the sibling RA006 findings the shared walk produces
    write_under_read_hint = (
        "writes need the exclusive side: use `with self.<lock>.write_locked():`"
    )

    def applies_to(self, relative: str) -> bool:
        return relative.endswith(".py") and relative.startswith("src/")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for found in self._all_findings(source):
            if found.rule == self.rule:
                yield found

    def _all_findings(self, source: SourceFile) -> Iterator[Finding]:
        """Both RA005 and RA006 findings from one lexical walk."""
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(source, node)

    # ------------------------------------------------------------------ #
    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        table = _guard_table(cls)
        if not table:
            return
        locks = {lock for lock, _rw in table.values()}
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in _EXEMPT_METHODS:
                continue
            held = _held_from_decorators(item)
            for stmt in item.body:
                yield from self._visit(source, stmt, table, locks, held)

    # ------------------------------------------------------------------ #
    def _lock_mode(self, expr: ast.expr, locks: set[str]) -> tuple[str, str] | None:
        """``(lock, mode)`` when *expr* acquires a declared lock, else None."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in locks
        ):
            return expr.attr, _EXCLUSIVE
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            inner = self._lock_mode(expr.func.value, locks)
            if inner is not None:
                mode = _READ if expr.func.attr == "read_locked" else _EXCLUSIVE
                return inner[0], mode
        return None

    def _visit(
        self,
        source: SourceFile,
        node: ast.AST,
        table: dict[str, tuple[str, bool]],
        locks: set[str],
        held: dict[str, str],
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = dict(held)
            for item in node.items:
                yield from self._visit(source, item.context_expr, table, locks, held)
                acquired = self._lock_mode(item.context_expr, locks)
                if acquired is not None:
                    lock, mode = acquired
                    if inner.get(lock) != _EXCLUSIVE:
                        inner[lock] = mode
            for stmt in node.body:
                yield from self._visit(source, stmt, table, locks, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # a closure may run after the critical section ends
            nested_held = _held_from_decorators(node) if not isinstance(
                node, ast.Lambda
            ) else {}
            body = node.body if isinstance(node.body, list) else [node.body]
            for stmt in body:
                yield from self._visit(source, stmt, table, locks, nested_held)
            return
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in table
        ):
            lock, rw = table[node.attr]
            mode = held.get(lock)
            writing = isinstance(node.ctx, (ast.Store, ast.Del))
            if mode is None:
                kind = "written" if writing else "read"
                yield Finding(
                    rule="RA005",
                    path=source.relative,
                    line=node.lineno,
                    column=node.col_offset + 1,
                    message=(
                        f"guarded attribute self.{node.attr} {kind} without "
                        f"holding self.{lock}"
                    ),
                    hint=LockDiscipline.hint,
                )
            elif writing and mode == _READ:
                yield Finding(
                    rule="RA006",
                    path=source.relative,
                    line=node.lineno,
                    column=node.col_offset + 1,
                    message=(
                        f"guarded attribute self.{node.attr} written while "
                        f"self.{lock} is only held in read mode"
                    ),
                    hint=self.write_under_read_hint,
                )
        for child in ast.iter_child_nodes(node):
            yield from self._visit(source, child, table, locks, held)


class WriteUnderReadLock(LockDiscipline):
    """RA006 — guarded attribute written under a read lock.

    The detection logic lives in :class:`LockDiscipline` (one lexical walk
    produces both rules); this subclass selects the RA006 subset, so each
    rule id filters the shared walk and the pair never double-reports.
    """

    rule = "RA006"
    title = "guarded attribute written under a read lock"
    hint = LockDiscipline.write_under_read_hint
