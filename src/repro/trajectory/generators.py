"""Synthetic trajectory generators.

Substitutes for the paper's data sources:

* the T-Drive Beijing taxi trajectories → :func:`commuter_trajectories` /
  :class:`CommuterModel` (home/work origin-destination flows with hotspots,
  routed on the network with randomised-weight shortest paths so that users do
  *not* all follow the single deterministic shortest path, matching the
  paper's observation that real users deviate from shortest paths);
* the MNTG traffic generator used for New York / Atlanta / Bangalore →
  :func:`mntg_like_trajectories` (uniform origin-destination pairs with
  random-walk-ish perturbed routing);
* Fig. 12's length-band analysis → :func:`length_class_trajectories`.

All generators return :class:`TrajectoryDataset` objects whose trajectories
are valid node sequences (every consecutive pair is an edge).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.network.graph import RoadNetwork
from repro.trajectory.model import Trajectory, TrajectoryDataset
from repro.utils.rng import ensure_rng
from repro.utils.validation import require, require_positive

__all__ = [
    "perturbed_shortest_path",
    "random_route_trajectories",
    "CommuterModel",
    "commuter_trajectories",
    "mntg_like_trajectories",
    "length_class_trajectories",
]


def perturbed_shortest_path(
    network: RoadNetwork,
    source: int,
    target: int,
    rng: np.random.Generator,
    perturbation: float = 0.3,
) -> list[int] | None:
    """Shortest path under multiplicatively perturbed edge weights.

    Each edge weight is scaled by ``U(1, 1 + perturbation)`` drawn per edge
    relaxation, which yields realistic near-shortest routes that differ across
    users.  Returns ``None`` if *target* is unreachable.
    """
    dist: dict[int, float] = {source: 0.0}
    parent: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled: set[int] = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u == target:
            break
        for v, length in network.successors(u).items():
            factor = 1.0 + rng.uniform(0.0, perturbation)
            nd = d + length * factor
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    if target not in dist:
        return None
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def random_route_trajectories(
    network: RoadNetwork,
    num_trajectories: int,
    min_length_km: float = 1.0,
    perturbation: float = 0.3,
    seed: int | None = None,
) -> TrajectoryDataset:
    """Trajectories between uniformly random origin-destination node pairs.

    Pairs whose route is shorter than *min_length_km* (or unreachable) are
    re-drawn, up to a bounded number of attempts per trajectory.
    """
    require_positive(num_trajectories, "num_trajectories")
    rng = ensure_rng(seed)
    node_ids = network.node_ids()
    trajectories: list[Trajectory] = []
    attempts_per_trajectory = 20
    traj_id = 0
    while len(trajectories) < num_trajectories:
        path: list[int] | None = None
        for _ in range(attempts_per_trajectory):
            source, target = rng.choice(node_ids, size=2, replace=False)
            candidate = perturbed_shortest_path(
                network, int(source), int(target), rng, perturbation
            )
            if candidate is None or len(candidate) < 2:
                continue
            trajectory = Trajectory.from_nodes(traj_id, candidate, network)
            if trajectory.length_km >= min_length_km:
                path = candidate
                break
        if path is None:
            # fall back to whatever we last found to avoid infinite loops on
            # tiny networks
            source, target = rng.choice(node_ids, size=2, replace=False)
            path = perturbed_shortest_path(network, int(source), int(target), rng, perturbation)
            if path is None or len(path) < 2:
                continue
        trajectories.append(Trajectory.from_nodes(traj_id, path, network))
        traj_id += 1
    return TrajectoryDataset(trajectories)


@dataclass
class CommuterModel:
    """Origin-destination model with residential and employment hotspots.

    *num_hotspots* nodes are designated residential centres and another
    *num_hotspots* employment centres; origins/destinations are drawn from a
    Gaussian neighbourhood (in network-node index of nearest nodes by
    Euclidean distance) around a randomly chosen centre.  A fraction
    *background_fraction* of trips use uniformly random endpoints, mimicking
    the taxi background traffic in the Beijing data.
    """

    network: RoadNetwork
    num_hotspots: int = 6
    hotspot_radius_km: float = 1.0
    background_fraction: float = 0.2
    perturbation: float = 0.3
    seed: int | None = None

    def __post_init__(self) -> None:
        rng = ensure_rng(self.seed)
        node_ids = np.asarray(self.network.node_ids())
        self._rng = rng
        chosen = rng.choice(node_ids, size=2 * self.num_hotspots, replace=False)
        self.home_centers = [int(n) for n in chosen[: self.num_hotspots]]
        self.work_centers = [int(n) for n in chosen[self.num_hotspots :]]
        coords = self.network.coordinates()
        self._coords = coords
        self._node_ids = node_ids

    def _sample_near(self, center: int) -> int:
        center_xy = self._coords[center]
        deltas = self._coords - center_xy
        dists = np.hypot(deltas[:, 0], deltas[:, 1])
        nearby = np.flatnonzero(dists <= self.hotspot_radius_km)
        if len(nearby) == 0:
            return center
        return int(self._rng.choice(nearby))

    def sample_od_pair(self) -> tuple[int, int]:
        """Sample an origin-destination node pair."""
        if self._rng.uniform() < self.background_fraction:
            origin, dest = self._rng.choice(self._node_ids, size=2, replace=False)
            return int(origin), int(dest)
        home = self._sample_near(int(self._rng.choice(self.home_centers)))
        work = self._sample_near(int(self._rng.choice(self.work_centers)))
        if home == work:
            work = int(self._rng.choice(self._node_ids))
        # half of the commutes are the morning direction, half the return trip
        if self._rng.uniform() < 0.5:
            return home, work
        return work, home

    def generate(self, num_trajectories: int) -> TrajectoryDataset:
        """Generate *num_trajectories* commuter trajectories."""
        trajectories: list[Trajectory] = []
        traj_id = 0
        attempts = 0
        max_attempts = 30 * num_trajectories
        while len(trajectories) < num_trajectories and attempts < max_attempts:
            attempts += 1
            origin, dest = self.sample_od_pair()
            if origin == dest:
                continue
            path = perturbed_shortest_path(
                self.network, origin, dest, self._rng, self.perturbation
            )
            if path is None or len(path) < 2:
                continue
            trajectories.append(Trajectory.from_nodes(traj_id, path, self.network))
            traj_id += 1
        require(
            len(trajectories) == num_trajectories,
            "could not generate the requested number of trajectories; "
            "is the network strongly connected?",
        )
        return TrajectoryDataset(trajectories)


def commuter_trajectories(
    network: RoadNetwork,
    num_trajectories: int,
    num_hotspots: int = 6,
    seed: int | None = None,
) -> TrajectoryDataset:
    """Convenience wrapper around :class:`CommuterModel`."""
    model = CommuterModel(network, num_hotspots=num_hotspots, seed=seed)
    return model.generate(num_trajectories)


def mntg_like_trajectories(
    network: RoadNetwork,
    num_trajectories: int,
    perturbation: float = 0.5,
    seed: int | None = None,
) -> TrajectoryDataset:
    """MNTG-style traffic: uniform OD pairs, noisier route choice.

    The MNTG generator used by the paper produces broadly distributed traffic
    rather than hotspot-concentrated commutes; we model that with uniform
    endpoints and a higher routing perturbation.
    """
    return random_route_trajectories(
        network,
        num_trajectories,
        min_length_km=0.5,
        perturbation=perturbation,
        seed=seed,
    )


def length_class_trajectories(
    network: RoadNetwork,
    num_per_class: int,
    boundaries_km: Sequence[float] = (14.0, 16.0),
    seed: int | None = None,
    max_attempts_factor: int = 200,
) -> TrajectoryDataset:
    """Generate trajectories whose lengths fall in a given band.

    Used by the Fig. 12 experiment, which samples trajectories from four
    length classes.  Origins/destinations are rejected until the routed length
    lies in ``[boundaries_km[0], boundaries_km[1])``.
    """
    require(len(boundaries_km) == 2, "boundaries_km must be (low, high)")
    low, high = boundaries_km
    require(low < high, "boundaries must be increasing")
    rng = ensure_rng(seed)
    node_ids = network.node_ids()
    coords = network.coordinates()
    trajectories: list[Trajectory] = []
    traj_id = 0
    attempts = 0
    max_attempts = max_attempts_factor * num_per_class
    while len(trajectories) < num_per_class and attempts < max_attempts:
        attempts += 1
        source = int(rng.choice(node_ids))
        # bias the destination draw towards nodes at roughly the right
        # straight-line distance to keep the rejection rate manageable
        deltas = coords - coords[source]
        euclid = np.hypot(deltas[:, 0], deltas[:, 1])
        plausible = np.flatnonzero((euclid >= 0.4 * low) & (euclid <= 1.1 * high))
        if len(plausible) == 0:
            continue
        target = int(rng.choice(plausible))
        if target == source:
            continue
        path = perturbed_shortest_path(network, source, target, rng, 0.2)
        if path is None or len(path) < 2:
            continue
        trajectory = Trajectory.from_nodes(traj_id, path, network)
        if low <= trajectory.length_km < high:
            trajectories.append(trajectory)
            traj_id += 1
    return TrajectoryDataset(trajectories)
