"""GPS trace simulation.

The paper's Beijing dataset consists of raw taxi GPS traces that are
map-matched onto the road network.  The raw traces are not available offline,
so :func:`simulate_gps_trace` produces a noisy, sub-sampled GPS trace from a
ground-truth node path — the inverse of map-matching.  Together with
:mod:`repro.trajectory.mapmatch` this exercises the full
"GPS → map-matching → node-sequence trajectory" pipeline in Fig. 2 of the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.network.graph import RoadNetwork
from repro.utils.rng import ensure_rng
from repro.utils.validation import require, require_non_negative

__all__ = ["GPSPoint", "GPSTrace", "simulate_gps_trace"]


@dataclass(frozen=True)
class GPSPoint:
    """A single GPS fix: planar coordinates (km) and a timestamp (s)."""

    x: float
    y: float
    timestamp: float


@dataclass(frozen=True)
class GPSTrace:
    """An ordered sequence of GPS fixes belonging to one trip."""

    trace_id: int
    points: tuple[GPSPoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    def coordinates(self) -> np.ndarray:
        """Return an ``(n, 2)`` array of the fix coordinates."""
        return np.asarray([(p.x, p.y) for p in self.points], dtype=float)


def simulate_gps_trace(
    network: RoadNetwork,
    node_path: Sequence[int],
    trace_id: int = 0,
    noise_std_km: float = 0.03,
    sample_every_km: float = 0.2,
    speed_kmph: float = 30.0,
    seed: int | None = None,
) -> GPSTrace:
    """Simulate a noisy GPS trace along a ground-truth node path.

    The path is traversed at constant speed; a fix is emitted roughly every
    *sample_every_km* of travel, with isotropic Gaussian positional noise of
    standard deviation *noise_std_km*.

    Parameters
    ----------
    network:
        Road network providing node coordinates and edge lengths.
    node_path:
        Ground-truth node sequence (consecutive nodes must share an edge).
    noise_std_km:
        GPS error standard deviation (km); 0 gives exact positions.
    sample_every_km:
        Nominal spacing between fixes along the path.
    speed_kmph:
        Travel speed used to synthesise timestamps.
    """
    require(len(node_path) >= 2, "a GPS trace needs a path of at least 2 nodes")
    require_non_negative(noise_std_km, "noise_std_km")
    rng = ensure_rng(seed)
    points: list[GPSPoint] = []
    travelled = 0.0
    next_sample = 0.0
    for prev, nxt in zip(node_path, node_path[1:]):
        a, b = network.node(prev), network.node(nxt)
        seg_len = network.edge_length(prev, nxt)
        while next_sample <= travelled + seg_len:
            frac = 0.0 if seg_len == 0 else (next_sample - travelled) / seg_len
            x = a.x + frac * (b.x - a.x) + rng.normal(0.0, noise_std_km)
            y = a.y + frac * (b.y - a.y) + rng.normal(0.0, noise_std_km)
            timestamp = next_sample / speed_kmph * 3600.0
            points.append(GPSPoint(float(x), float(y), float(timestamp)))
            next_sample += sample_every_km
        travelled += seg_len
    # always include the final node so short paths emit at least two fixes
    last = network.node(node_path[-1])
    points.append(
        GPSPoint(
            float(last.x + rng.normal(0.0, noise_std_km)),
            float(last.y + rng.normal(0.0, noise_std_km)),
            float(travelled / speed_kmph * 3600.0),
        )
    )
    return GPSTrace(trace_id=trace_id, points=tuple(points))
