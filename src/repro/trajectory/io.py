"""Trajectory serialisation (JSON and CSV)."""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.network.graph import RoadNetwork
from repro.trajectory.model import Trajectory, TrajectoryDataset

__all__ = [
    "save_trajectories_json",
    "load_trajectories_json",
    "save_trajectories_csv",
    "load_trajectories_csv",
]


def save_trajectories_json(dataset: TrajectoryDataset, path: str | Path) -> None:
    """Write a dataset to JSON (node sequences and cumulative distances)."""
    payload = [
        {
            "id": trajectory.traj_id,
            "nodes": list(trajectory.nodes),
            "cumulative_km": list(trajectory.cumulative_km),
        }
        for trajectory in dataset
    ]
    Path(path).write_text(json.dumps(payload))


def load_trajectories_json(path: str | Path) -> TrajectoryDataset:
    """Load a dataset written by :func:`save_trajectories_json`."""
    payload = json.loads(Path(path).read_text())
    trajectories = [
        Trajectory(
            traj_id=int(item["id"]),
            nodes=tuple(int(n) for n in item["nodes"]),
            cumulative_km=tuple(float(c) for c in item["cumulative_km"]),
        )
        for item in payload
    ]
    return TrajectoryDataset(trajectories)


def save_trajectories_csv(dataset: TrajectoryDataset, path: str | Path) -> None:
    """Write a dataset to CSV with one row per (trajectory, node) visit."""
    with Path(path).open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["traj_id", "seq", "node", "cumulative_km"])
        for trajectory in dataset:
            for seq, (node, cum) in enumerate(
                zip(trajectory.nodes, trajectory.cumulative_km)
            ):
                writer.writerow([trajectory.traj_id, seq, node, f"{cum:.6f}"])


def load_trajectories_csv(path: str | Path, network: RoadNetwork | None = None) -> TrajectoryDataset:
    """Load a dataset written by :func:`save_trajectories_csv`.

    If *network* is given, cumulative distances are recomputed from the
    network (allowing CSVs that omit or round them); otherwise the stored
    values are used.
    """
    rows: dict[int, list[tuple[int, int, float]]] = {}
    with Path(path).open() as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            rows.setdefault(int(row["traj_id"]), []).append(
                (int(row["seq"]), int(row["node"]), float(row["cumulative_km"]))
            )
    trajectories: list[Trajectory] = []
    for traj_id in sorted(rows):
        entries = sorted(rows[traj_id])
        nodes = [node for _, node, _ in entries]
        if network is not None:
            trajectories.append(Trajectory.from_nodes(traj_id, nodes, network))
        else:
            cumulative = [cum for _, _, cum in entries]
            trajectories.append(
                Trajectory(traj_id=traj_id, nodes=tuple(nodes), cumulative_km=tuple(cumulative))
            )
    return TrajectoryDataset(trajectories)
