"""Trajectory substrate: model, GPS traces, map-matching, generators, and I/O."""

from repro.trajectory.model import Trajectory, TrajectoryDataset
from repro.trajectory.gps import GPSPoint, GPSTrace, simulate_gps_trace
from repro.trajectory.mapmatch import HMMMapMatcher, map_match_dataset
from repro.trajectory.generators import (
    CommuterModel,
    random_route_trajectories,
    commuter_trajectories,
    mntg_like_trajectories,
    length_class_trajectories,
)
from repro.trajectory.io import (
    save_trajectories_json,
    load_trajectories_json,
    save_trajectories_csv,
    load_trajectories_csv,
)

__all__ = [
    "Trajectory",
    "TrajectoryDataset",
    "GPSPoint",
    "GPSTrace",
    "simulate_gps_trace",
    "HMMMapMatcher",
    "map_match_dataset",
    "CommuterModel",
    "random_route_trajectories",
    "commuter_trajectories",
    "mntg_like_trajectories",
    "length_class_trajectories",
    "save_trajectories_json",
    "load_trajectories_json",
    "save_trajectories_csv",
    "load_trajectories_csv",
]
