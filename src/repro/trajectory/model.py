"""Trajectory model.

A trajectory is a map-matched sequence of road-network nodes (Section 2 of
the paper).  :class:`Trajectory` also carries the cumulative along-path
distance of each node, which the distance oracle uses to evaluate the detour
``dr(T_j, s)`` in O(l) per trajectory.

:class:`TrajectoryDataset` is an ordered container of trajectories with
convenience constructors, filtering, sampling, and summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.network.graph import RoadNetwork
from repro.utils.rng import ensure_rng
from repro.utils.validation import require

__all__ = ["Trajectory", "TrajectoryDataset"]


@dataclass(frozen=True)
class Trajectory:
    """A map-matched user trajectory.

    Attributes
    ----------
    traj_id:
        Identifier unique within a dataset.
    nodes:
        Sequence of visited road-network node ids, in travel order.
    cumulative_km:
        ``cumulative_km[i]`` is the along-path network distance (km) from the
        first node to ``nodes[i]``; ``cumulative_km[0] == 0``.
    timestamps:
        Optional per-node timestamps in seconds (same length as ``nodes``).
    """

    traj_id: int
    nodes: tuple[int, ...]
    cumulative_km: tuple[float, ...]
    timestamps: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        require(len(self.nodes) >= 1, "a trajectory needs at least one node")
        require(
            len(self.cumulative_km) == len(self.nodes),
            "cumulative_km must align with nodes",
        )
        if self.timestamps is not None:
            require(
                len(self.timestamps) == len(self.nodes),
                "timestamps must align with nodes",
            )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_nodes(
        cls,
        traj_id: int,
        nodes: Sequence[int],
        network: RoadNetwork,
        timestamps: Sequence[float] | None = None,
    ) -> "Trajectory":
        """Build a trajectory from a node sequence, computing path distances.

        Consecutive nodes must be joined by an edge in *network* (the output
        of map-matching or of the trajectory generators always satisfies
        this).  Consecutive duplicate nodes are collapsed.
        """
        cleaned: list[int] = []
        for node in nodes:
            if not cleaned or cleaned[-1] != node:
                cleaned.append(int(node))
        cumulative = [0.0]
        for prev, nxt in zip(cleaned, cleaned[1:]):
            cumulative.append(cumulative[-1] + network.edge_length(prev, nxt))
        ts = tuple(float(t) for t in timestamps) if timestamps is not None else None
        if ts is not None and len(ts) != len(cleaned):
            ts = None
        return cls(
            traj_id=traj_id,
            nodes=tuple(cleaned),
            cumulative_km=tuple(cumulative),
            timestamps=ts,
        )

    # ------------------------------------------------------------------ #
    @property
    def length_km(self) -> float:
        """Total along-path length of the trajectory in kilometres."""
        return self.cumulative_km[-1]

    @property
    def num_nodes(self) -> int:
        """Number of (map-matched) nodes."""
        return len(self.nodes)

    @property
    def origin(self) -> int:
        """First node of the trajectory."""
        return self.nodes[0]

    @property
    def destination(self) -> int:
        """Last node of the trajectory."""
        return self.nodes[-1]

    def nodes_array(self) -> np.ndarray:
        """Node ids as an ``int64`` array."""
        return np.asarray(self.nodes, dtype=np.int64)

    def cumulative_array(self) -> np.ndarray:
        """Cumulative along-path distances as a ``float64`` array."""
        return np.asarray(self.cumulative_km, dtype=np.float64)

    def visits(self, node_id: int) -> bool:
        """Return ``True`` if the trajectory passes through *node_id*."""
        return node_id in self.nodes


class TrajectoryDataset:
    """An ordered collection of trajectories over one road network."""

    def __init__(self, trajectories: Iterable[Trajectory] = ()) -> None:
        self._trajectories: list[Trajectory] = list(trajectories)
        ids = [t.traj_id for t in self._trajectories]
        require(len(ids) == len(set(ids)), "trajectory ids must be unique")

    # ------------------------------------------------------------------ #
    @classmethod
    def from_node_sequences(
        cls, sequences: Iterable[Sequence[int]], network: RoadNetwork
    ) -> "TrajectoryDataset":
        """Build a dataset from raw node sequences (ids assigned 0..m-1)."""
        trajectories = [
            Trajectory.from_nodes(idx, seq, network) for idx, seq in enumerate(sequences)
        ]
        return cls(trajectories)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._trajectories)

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self._trajectories)

    def __getitem__(self, index: int) -> Trajectory:
        return self._trajectories[index]

    def by_id(self, traj_id: int) -> Trajectory:
        """Return the trajectory with identifier *traj_id*."""
        for trajectory in self._trajectories:
            if trajectory.traj_id == traj_id:
                return trajectory
        raise KeyError(f"no trajectory with id {traj_id}")

    def ids(self) -> list[int]:
        """List of trajectory ids in dataset order."""
        return [t.traj_id for t in self._trajectories]

    def add(self, trajectory: Trajectory) -> None:
        """Append a trajectory (its id must be new)."""
        require(
            trajectory.traj_id not in set(self.ids()),
            f"trajectory id {trajectory.traj_id} already present",
        )
        self._trajectories.append(trajectory)

    def remove(self, traj_id: int) -> Trajectory:
        """Remove and return the trajectory with identifier *traj_id*."""
        for idx, trajectory in enumerate(self._trajectories):
            if trajectory.traj_id == traj_id:
                return self._trajectories.pop(idx)
        raise KeyError(f"no trajectory with id {traj_id}")

    def next_id(self) -> int:
        """Return the smallest id strictly greater than any existing id."""
        if not self._trajectories:
            return 0
        return max(t.traj_id for t in self._trajectories) + 1

    # ------------------------------------------------------------------ #
    def filter(self, predicate: Callable[[Trajectory], bool]) -> "TrajectoryDataset":
        """Return a new dataset with trajectories satisfying *predicate*."""
        return TrajectoryDataset([t for t in self._trajectories if predicate(t)])

    def sample(self, size: int, seed: int | None = None) -> "TrajectoryDataset":
        """Return a uniformly sampled (without replacement) sub-dataset."""
        require(size <= len(self), "sample size exceeds dataset size")
        rng = ensure_rng(seed)
        indices = rng.choice(len(self._trajectories), size=size, replace=False)
        return TrajectoryDataset([self._trajectories[int(i)] for i in sorted(indices)])

    def length_classes(
        self, boundaries_km: Sequence[float]
    ) -> dict[tuple[float, float], "TrajectoryDataset"]:
        """Partition trajectories into length bands.

        ``boundaries_km = [a, b, c]`` yields bands ``[a, b)``, ``[b, c)``.
        Used to reproduce Fig. 12 (effect of trajectory length).
        """
        bands: dict[tuple[float, float], list[Trajectory]] = {}
        for low, high in zip(boundaries_km, boundaries_km[1:]):
            bands[(low, high)] = []
        for trajectory in self._trajectories:
            for (low, high), bucket in bands.items():
                if low <= trajectory.length_km < high:
                    bucket.append(trajectory)
                    break
        return {band: TrajectoryDataset(items) for band, items in bands.items()}

    # ------------------------------------------------------------------ #
    def mean_length_km(self) -> float:
        """Mean trajectory length."""
        if not self._trajectories:
            return 0.0
        return float(np.mean([t.length_km for t in self._trajectories]))

    def mean_num_nodes(self) -> float:
        """Mean number of nodes per trajectory."""
        if not self._trajectories:
            return 0.0
        return float(np.mean([t.num_nodes for t in self._trajectories]))

    def node_visit_counts(self, num_nodes: int) -> np.ndarray:
        """Return, per network node, the number of distinct trajectories visiting it."""
        counts = np.zeros(num_nodes, dtype=np.int64)
        for trajectory in self._trajectories:
            counts[np.unique(trajectory.nodes_array())] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"TrajectoryDataset(m={len(self)}, mean_len={self.mean_length_km():.2f} km)"
