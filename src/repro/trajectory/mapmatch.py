"""HMM map-matching.

The paper map-matches raw GPS traces to node sequences using the method of
Lou et al. [33].  We implement a self-contained hidden-Markov-model matcher in
the same spirit:

* **candidates** — for every GPS fix, the nearest road-network nodes within a
  search radius are candidate states;
* **emission probability** — Gaussian in the distance between fix and node;
* **transition probability** — penalises the difference between network
  distance of consecutive candidates and the straight-line distance between
  consecutive fixes (the classic Newson–Krumm formulation);
* **Viterbi** — the most likely candidate sequence becomes the matched path;
  consecutive matched nodes are joined by network shortest paths so that the
  output is a connected node sequence suitable for :class:`Trajectory`.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.network.graph import RoadNetwork
from repro.network.shortest_path import dijkstra_single_source, shortest_path_nodes
from repro.trajectory.gps import GPSTrace
from repro.trajectory.model import Trajectory, TrajectoryDataset
from repro.utils.validation import require_positive

__all__ = ["HMMMapMatcher", "map_match_dataset"]


class HMMMapMatcher:
    """Hidden-Markov-model map-matcher from GPS traces to node sequences.

    Parameters
    ----------
    network:
        The road network to match onto.
    candidate_radius_km:
        Fixes consider nodes within this straight-line radius as candidate
        states (falling back to the single nearest node when none qualify).
    max_candidates:
        Maximum number of candidate nodes per fix.
    gps_std_km:
        Emission model standard deviation (GPS error).
    transition_beta:
        Scale of the exponential transition penalty on the difference between
        network and straight-line displacement.
    """

    def __init__(
        self,
        network: RoadNetwork,
        candidate_radius_km: float = 0.3,
        max_candidates: int = 5,
        gps_std_km: float = 0.05,
        transition_beta: float = 0.5,
    ) -> None:
        require_positive(candidate_radius_km, "candidate_radius_km")
        require_positive(gps_std_km, "gps_std_km")
        require_positive(transition_beta, "transition_beta")
        self.network = network
        self.candidate_radius_km = candidate_radius_km
        self.max_candidates = max_candidates
        self.gps_std_km = gps_std_km
        self.transition_beta = transition_beta
        self._coords = network.coordinates()

    # ------------------------------------------------------------------ #
    def candidates(self, x: float, y: float) -> list[tuple[int, float]]:
        """Return ``[(node, distance_km)]`` candidates for a fix at (x, y)."""
        deltas = self._coords - np.asarray([x, y])
        dists = np.hypot(deltas[:, 0], deltas[:, 1])
        order = np.argsort(dists)
        selected: list[tuple[int, float]] = []
        for idx in order[: self.max_candidates]:
            if dists[idx] <= self.candidate_radius_km or not selected:
                selected.append((int(idx), float(dists[idx])))
        return selected

    def _emission_logprob(self, distance_km: float) -> float:
        return -0.5 * (distance_km / self.gps_std_km) ** 2

    def _transition_logprob(self, network_km: float, straight_km: float) -> float:
        if math.isinf(network_km):
            return -1e9
        return -abs(network_km - straight_km) / self.transition_beta

    # ------------------------------------------------------------------ #
    def match(self, trace: GPSTrace, traj_id: int | None = None) -> Trajectory:
        """Map-match *trace* and return the resulting :class:`Trajectory`."""
        fixes = trace.coordinates()
        candidate_sets = [self.candidates(float(x), float(y)) for x, y in fixes]

        # Viterbi over candidate nodes
        prev_scores: dict[int, float] = {}
        prev_back: list[dict[int, int | None]] = []
        for node, dist in candidate_sets[0]:
            prev_scores[node] = self._emission_logprob(dist)
        prev_back.append({node: None for node, _ in candidate_sets[0]})

        # cache of single-source distances from candidate nodes, bounded
        cutoff = 10.0 * self.candidate_radius_km + 5.0
        sssp_cache: dict[int, dict[int, float]] = {}

        for step in range(1, len(candidate_sets)):
            straight = float(np.hypot(*(fixes[step] - fixes[step - 1])))
            scores: dict[int, float] = {}
            back: dict[int, int | None] = {}
            for node, dist in candidate_sets[step]:
                emission = self._emission_logprob(dist)
                best_score = -float("inf")
                best_prev: int | None = None
                for prev_node, prev_score in prev_scores.items():
                    if prev_node not in sssp_cache:
                        sssp_cache[prev_node] = dijkstra_single_source(
                            self.network, prev_node, cutoff=cutoff
                        )
                    network_km = sssp_cache[prev_node].get(node, float("inf"))
                    score = prev_score + self._transition_logprob(network_km, straight) + emission
                    if score > best_score:
                        best_score = score
                        best_prev = prev_node
                scores[node] = best_score
                back[node] = best_prev
            prev_scores = scores
            prev_back.append(back)

        # backtrack
        last_node = max(prev_scores, key=prev_scores.get)
        matched = [last_node]
        for step in range(len(candidate_sets) - 1, 0, -1):
            prev = prev_back[step][matched[-1]]
            if prev is None:
                break
            matched.append(prev)
        matched.reverse()

        # stitch with shortest paths to obtain a connected node sequence
        full_path: list[int] = [matched[0]]
        for prev, nxt in zip(matched, matched[1:]):
            if prev == nxt:
                continue
            try:
                segment = shortest_path_nodes(self.network, prev, nxt)
            except ValueError:
                segment = [prev, nxt] if self.network.has_edge(prev, nxt) else [nxt]
            full_path.extend(segment[1:])
        if traj_id is None:
            traj_id = trace.trace_id
        return Trajectory.from_nodes(traj_id, full_path, self.network)


def map_match_dataset(
    network: RoadNetwork,
    traces: Sequence[GPSTrace],
    matcher: HMMMapMatcher | None = None,
) -> TrajectoryDataset:
    """Map-match a collection of GPS traces into a :class:`TrajectoryDataset`."""
    if matcher is None:
        matcher = HMMMapMatcher(network)
    trajectories = [
        matcher.match(trace, traj_id=idx) for idx, trace in enumerate(traces)
    ]
    return TrajectoryDataset(trajectories)
