"""Table 9 — memory footprint of the algorithms across τ.

Inc-Greedy / FMG must hold the full site-to-trajectory covering structures,
which grow with τ (and blow past available memory beyond τ = 1.2 km in the
paper); NetClus / FM-NetClus only touch the index instance serving τ, whose
size *shrinks* as τ grows because coarser clusterings compress trajectories
more.  We report analytic byte estimates that preserve those trends, plus
the measured ``storage_bytes()`` of the three coverage engines (dense,
sparse, bitset) on the flat space — dense grows as 8·m·n, sparse with the
covered-pair count, and bitset is a flat m·n/8 bit matrix regardless of τ.
"""

from __future__ import annotations

from repro.core.preference import BinaryPreference
from repro.core.query import TOPSQuery
from repro.experiments.metrics import incgreedy_memory_bytes, netclus_memory_bytes
from repro.experiments.reporting import print_table
from repro.experiments.runner import ExperimentContext, build_context

__all__ = ["run", "main"]


def run(
    tau_values: tuple[float, ...] = (0.1, 0.2, 0.4, 0.8, 1.2, 1.6),
    scale: str = "small",
    seed: int = 42,
    context: ExperimentContext | None = None,
    num_sketches: int = 30,
) -> list[dict]:
    """Estimated bytes for INCG / FMG / NetClus / FM-NetClus at each τ,
    plus measured per-engine coverage ``storage_bytes``."""
    if context is None:
        context = build_context(scale=scale, seed=seed)
    rows: list[dict] = []
    for tau_km in tau_values:
        query = TOPSQuery(k=5, tau_km=tau_km)
        coverage = context.coverage(query)
        incg_bytes = incgreedy_memory_bytes(context.problem.oracle, coverage)
        # FMG additionally stores f 32-bit words per candidate site
        fmg_bytes = incg_bytes + 4 * num_sketches * coverage.num_sites
        netclus_bytes = netclus_memory_bytes(context.netclus, tau_km)
        instance = context.netclus.instance_for(tau_km)
        fm_netclus_bytes = netclus_bytes + 4 * num_sketches * len(instance.representatives())
        # measured engine footprints (binary ψ so the bitset engine applies)
        binary_query = TOPSQuery(k=5, tau_km=tau_km, preference=BinaryPreference())
        engine_bytes = {
            engine: context.problem.coverage(binary_query, engine=engine).storage_bytes()
            for engine in ("dense", "sparse", "bitset")
        }
        rows.append(
            {
                "tau_km": tau_km,
                "incg_mb": incg_bytes / 1e6,
                "fmg_mb": fmg_bytes / 1e6,
                "netclus_mb": netclus_bytes / 1e6,
                "fm_netclus_mb": fm_netclus_bytes / 1e6,
                "dense_cov_mb": engine_bytes["dense"] / 1e6,
                "sparse_cov_mb": engine_bytes["sparse"] / 1e6,
                "bitset_cov_mb": engine_bytes["bitset"] / 1e6,
            }
        )
    return rows


def main() -> list[dict]:
    """Run at default scale and print the Table 9 rows."""
    rows = run()
    print_table(rows, title="Table 9 — memory footprint (estimated MB) vs τ")
    return rows


if __name__ == "__main__":
    main()
