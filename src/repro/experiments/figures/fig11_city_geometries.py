"""Fig. 11 — effect of city geometry (New York / Atlanta / Bangalore).

The paper observes that the polycentric Bangalore network yields the highest
utility percentage (traffic concentrates around a few centres) and the lowest
running time (smallest road network), while the mesh-like Atlanta spreads
trajectories out and yields the lowest utility.  We run the same comparison
on topology-matched synthetic cities.
"""

from __future__ import annotations

from repro.core.query import TOPSQuery
from repro.datasets import atlanta_like, bangalore_like, new_york_like
from repro.experiments.reporting import print_table
from repro.experiments.runner import DEFAULT_TAU_RANGE
from repro.utils.timer import Timer

__all__ = ["run", "main"]


def run(
    k: int = 5,
    tau_km: float = 0.8,
    num_trajectories: int = 300,
    seed: int = 7,
    gamma: float = 0.75,
    engine: str = "dense",
) -> list[dict]:
    """Utility (%) and runtime of INCG vs NetClus for the three city types."""
    bundles = [
        ("NYK", new_york_like(num_trajectories=num_trajectories, seed=seed)),
        ("ATL", atlanta_like(num_trajectories=num_trajectories, seed=seed)),
        ("BNG", bangalore_like(num_trajectories=num_trajectories, seed=seed)),
    ]
    query = TOPSQuery(k=k, tau_km=tau_km)
    rows: list[dict] = []
    for short_name, bundle in bundles:
        problem = bundle.problem()
        with Timer() as incg_timer:
            incg = problem.solve(query, method="inc-greedy", engine=engine)
        index = problem.build_netclus_index(
            gamma=gamma, tau_min_km=DEFAULT_TAU_RANGE[0], tau_max_km=DEFAULT_TAU_RANGE[1]
        )
        with Timer() as netclus_timer:
            netclus = index.query(query, engine=engine)
        rows.append(
            {
                "city": short_name,
                "topology": bundle.name,
                "num_nodes": bundle.num_nodes,
                "incg_utility_pct": problem.utility_percent(incg.sites, query),
                "netclus_utility_pct": problem.utility_percent(netclus.sites, query),
                "incg_runtime_s": incg_timer.elapsed,
                "netclus_runtime_s": netclus_timer.elapsed,
            }
        )
    return rows


def main() -> list[dict]:
    """Run at default scale and print the Fig. 11 rows."""
    rows = run()
    print_table(rows, title="Fig. 11 — effect of city geometries (k = 5, τ = 0.8 km)")
    return rows


if __name__ == "__main__":
    main()
