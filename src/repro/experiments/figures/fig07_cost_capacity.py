"""Fig. 7 (and Fig. 9) — TOPS-COST and TOPS-CAPACITY extensions.

* Fig. 7a: utility of cost-constrained placement (budget B = 5, site costs
  ~ N(1, σ)) as σ sweeps over [0, 1] — utility grows with σ because cheaper
  sites become available and more of them fit in the budget.
* Fig. 9: the number of sites selected and the running time for the same
  sweep.
* Fig. 7b: utility of capacity-constrained placement as the mean capacity
  sweeps from 0.1% to 100% of the trajectory count.

Both extensions are run on the flat space (Inc-Greedy adaptation) and on the
NetClus clustered space.
"""

from __future__ import annotations


from repro.core.coverage import CoverageIndex
from repro.core.query import TOPSQuery
from repro.core.variants import solve_tops_capacity, solve_tops_cost
from repro.datasets.workloads import site_capacities_normal, site_costs_normal
from repro.experiments.reporting import print_table
from repro.experiments.runner import ExperimentContext, build_context
from repro.utils.timer import Timer

__all__ = ["run_cost", "run_capacity", "run", "main"]


def _netclus_coverage(context: ExperimentContext, query: TOPSQuery) -> CoverageIndex:
    """Clustered-space coverage index (estimated detours over representatives)."""
    instance = context.netclus.instance_for(query.tau_km)
    rows = {traj_id: row for row, traj_id in enumerate(context.bundle.trajectories.ids())}
    detours, rep_sites, _ = instance.estimated_detours(rows, query.tau_km)
    return CoverageIndex(
        detours,
        query.tau_km,
        query.preference,
        site_labels=rep_sites,
        trajectory_ids=context.bundle.trajectories.ids(),
    )


def run_cost(
    context: ExperimentContext,
    std_values: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    budget: float = 5.0,
    tau_km: float = 0.8,
    seed: int = 13,
) -> list[dict]:
    """Fig. 7a + Fig. 9: TOPS-COST utility, #sites and runtime vs cost std-dev."""
    query = TOPSQuery(k=1, tau_km=tau_km)
    flat_coverage = context.coverage(query)
    clustered_coverage = _netclus_coverage(context, query)
    rows: list[dict] = []
    for std in std_values:
        flat_costs = site_costs_normal(flat_coverage.num_sites, std=std, seed=seed)
        clustered_costs = site_costs_normal(clustered_coverage.num_sites, std=std, seed=seed)
        with Timer() as incg_timer:
            incg = solve_tops_cost(flat_coverage, budget, flat_costs)
        with Timer() as netclus_timer:
            netclus = solve_tops_cost(clustered_coverage, budget, clustered_costs)
        incg_pct = context.problem.utility_percent(incg.sites, query)
        netclus_pct = context.problem.utility_percent(netclus.sites, query)
        rows.append(
            {
                "cost_std": std,
                "budget": budget,
                "incg_utility_pct": incg_pct,
                "netclus_utility_pct": netclus_pct,
                "incg_num_sites": len(incg.sites),
                "netclus_num_sites": len(netclus.sites),
                "incg_runtime_s": incg_timer.elapsed,
                "netclus_runtime_s": netclus_timer.elapsed,
            }
        )
    return rows


def run_capacity(
    context: ExperimentContext,
    mean_fractions: tuple[float, ...] = (0.001, 0.01, 0.1, 0.5, 1.0),
    k: int = 5,
    tau_km: float = 0.8,
    seed: int = 13,
) -> list[dict]:
    """Fig. 7b: TOPS-CAPACITY utility vs mean site capacity (% of m)."""
    query = TOPSQuery(k=k, tau_km=tau_km)
    flat_coverage = context.coverage(query)
    clustered_coverage = _netclus_coverage(context, query)
    m = context.num_trajectories
    rows: list[dict] = []
    for fraction in mean_fractions:
        flat_caps = site_capacities_normal(
            flat_coverage.num_sites, m, mean_fraction=fraction, seed=seed
        )
        clustered_caps = site_capacities_normal(
            clustered_coverage.num_sites, m, mean_fraction=fraction, seed=seed
        )
        incg = solve_tops_capacity(flat_coverage, query, flat_caps)
        netclus = solve_tops_capacity(clustered_coverage, query, clustered_caps)
        rows.append(
            {
                "mean_capacity_pct_of_m": 100.0 * fraction,
                "incg_utility_pct": 100.0 * incg.utility / m,
                "netclus_utility_pct": 100.0 * netclus.utility / m,
            }
        )
    return rows


def run(
    scale: str = "small",
    seed: int = 42,
    context: ExperimentContext | None = None,
) -> dict[str, list[dict]]:
    """Both extensions at the default parameters."""
    if context is None:
        context = build_context(scale=scale, seed=seed)
    return {
        "cost": run_cost(context),
        "capacity": run_capacity(context),
    }


def main() -> dict[str, list[dict]]:
    """Run at default scale and print both panels."""
    panels = run()
    print_table(panels["cost"], title="Fig. 7a / Fig. 9 — TOPS-COST vs site-cost std-dev")
    print()
    print_table(panels["capacity"], title="Fig. 7b — TOPS-CAPACITY vs mean capacity")
    return panels


if __name__ == "__main__":
    main()
