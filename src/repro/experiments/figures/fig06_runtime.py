"""Fig. 6 — query running time versus k and versus τ.

The paper's headline efficiency result: NetClus (and FM-NetClus) answer
queries up to ~36x faster than Inc-Greedy/FMG because they operate on cluster
representatives of a single index instance instead of the full O(mn)
covering structures, and the advantage grows with τ.
"""

from __future__ import annotations

from repro.core.query import TOPSQuery
from repro.experiments.reporting import print_table
from repro.experiments.runner import ExperimentContext, build_context

__all__ = ["run_varying_k", "run_varying_tau", "run", "main"]


def run_varying_k(
    context: ExperimentContext,
    k_values: tuple[int, ...] = (1, 5, 10, 15, 20, 25),
    tau_km: float = 0.8,
) -> list[dict]:
    """Fig. 6a: running time vs k."""
    rows = []
    for k in k_values:
        query = TOPSQuery(k=k, tau_km=tau_km)
        comparison = context.compare_algorithms(query)
        row = {"k": k, "tau_km": tau_km}
        for name, stats in comparison.items():
            row[f"{name}_runtime_s"] = stats["runtime_s"]
        if comparison.get("netclus", {}).get("runtime_s"):
            row["speedup_incg_over_netclus"] = (
                comparison["incg"]["runtime_s"] / comparison["netclus"]["runtime_s"]
            )
        rows.append(row)
    return rows


def run_varying_tau(
    context: ExperimentContext,
    tau_values: tuple[float, ...] = (0.2, 0.4, 0.8, 1.2, 1.6, 2.4, 4.0),
    k: int = 5,
) -> list[dict]:
    """Fig. 6b: running time vs τ."""
    rows = []
    for tau_km in tau_values:
        query = TOPSQuery(k=k, tau_km=tau_km)
        comparison = context.compare_algorithms(query)
        row = {"k": k, "tau_km": tau_km}
        for name, stats in comparison.items():
            row[f"{name}_runtime_s"] = stats["runtime_s"]
        if comparison.get("netclus", {}).get("runtime_s"):
            row["speedup_incg_over_netclus"] = (
                comparison["incg"]["runtime_s"] / comparison["netclus"]["runtime_s"]
            )
        rows.append(row)
    return rows


def run(
    scale: str = "small",
    seed: int = 42,
    context: ExperimentContext | None = None,
    k_values: tuple[int, ...] = (1, 5, 10, 15, 20, 25),
    tau_values: tuple[float, ...] = (0.2, 0.4, 0.8, 1.2, 1.6, 2.4, 4.0),
) -> dict[str, list[dict]]:
    """Both panels of Fig. 6."""
    if context is None:
        context = build_context(scale=scale, seed=seed)
    return {
        "varying_k": run_varying_k(context, k_values=k_values),
        "varying_tau": run_varying_tau(context, tau_values=tau_values),
    }


def main() -> dict[str, list[dict]]:
    """Run at default scale and print both panels."""
    panels = run()
    print_table(panels["varying_k"], title="Fig. 6a — running time vs k (τ = 0.8 km)")
    print()
    print_table(panels["varying_tau"], title="Fig. 6b — running time vs τ (k = 5)")
    return panels


if __name__ == "__main__":
    main()
