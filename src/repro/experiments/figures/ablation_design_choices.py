"""Ablations of the design choices called out in the paper.

Three choices that the paper discusses but does not chart:

* **Representative selection** (Section 4.2) — the candidate site closest to
  the cluster center versus the most frequently visited one.  The paper found
  the two "quite similar, the [closest] marginally better"; this ablation
  regenerates that comparison.
* **Greedy update strategy** — Algorithm 1's incremental α-updates versus a
  full marginal recomputation per iteration; both are O(k·m·n), the ablation
  measures the constant factors and checks the selections agree.
* **Greedy-GDSP coverage counting** — exact lazy counting versus FM-sketch
  estimates during index construction (Section 4.1.2).
"""

from __future__ import annotations

from repro.core.gdsp import GreedyGDSP
from repro.core.greedy import IncGreedy
from repro.core.query import TOPSQuery
from repro.datasets import beijing_like
from repro.datasets.base import DatasetBundle
from repro.experiments.reporting import print_table
from repro.experiments.runner import DEFAULT_TAU_RANGE
from repro.utils.timer import Timer

__all__ = [
    "run_representative_strategy",
    "run_update_strategy",
    "run_gdsp_counting",
    "run",
    "main",
]


def run_representative_strategy(
    bundle: DatasetBundle,
    k_values: tuple[int, ...] = (5, 10),
    tau_km: float = 0.8,
    gamma: float = 0.75,
) -> list[dict]:
    """Utility of NetClus under the two representative-election strategies."""
    problem = bundle.problem()
    indexes = {
        strategy: problem.build_netclus_index(
            gamma=gamma,
            tau_min_km=DEFAULT_TAU_RANGE[0],
            tau_max_km=DEFAULT_TAU_RANGE[1],
            representative_strategy=strategy,
        )
        for strategy in ("closest", "most_frequent")
    }
    rows: list[dict] = []
    for k in k_values:
        query = TOPSQuery(k=k, tau_km=tau_km)
        row: dict = {"k": k, "tau_km": tau_km}
        for strategy, index in indexes.items():
            result = index.query(query)
            row[f"{strategy}_utility_pct"] = problem.utility_percent(result.sites, query)
        rows.append(row)
    return rows


def run_update_strategy(
    bundle: DatasetBundle,
    k: int = 10,
    tau_km: float = 0.8,
) -> list[dict]:
    """Runtime and utility of Inc-Greedy's marginal-update strategies.

    ``"lazy"`` is the CELF engine (identical selections, fewer evaluated
    gains); it runs here on the same dense coverage index so only the
    evaluation strategy differs.
    """
    problem = bundle.problem()
    query = TOPSQuery(k=k, tau_km=tau_km)
    coverage = problem.coverage(query)
    rows: list[dict] = []
    for strategy in ("incremental", "recompute", "lazy"):
        greedy = IncGreedy(coverage, update_strategy=strategy)
        with Timer() as timer:
            columns, utilities, _ = greedy.select(k)
        rows.append(
            {
                "update_strategy": strategy,
                "k": k,
                "utility": float(utilities.sum()),
                "selection_time_s": timer.elapsed,
            }
        )
    return rows


def run_gdsp_counting(
    bundle: DatasetBundle,
    radius_km: float = 0.3,
    num_sketches: int = 30,
) -> list[dict]:
    """Cluster count and build time: exact lazy counting vs FM sketches."""
    rows: list[dict] = []
    for use_fm in (False, True):
        gdsp = GreedyGDSP(
            bundle.network, use_fm_sketches=use_fm, num_sketches=num_sketches
        )
        result = gdsp.cluster(radius_km)
        rows.append(
            {
                "counting": "fm-sketch" if use_fm else "exact-lazy",
                "radius_km": radius_km,
                "num_clusters": result.num_clusters,
                "build_seconds": result.build_seconds,
            }
        )
    return rows


def run(scale: str = "small", seed: int = 42) -> dict[str, list[dict]]:
    """All three ablations on the Beijing-like dataset."""
    bundle = beijing_like(scale=scale, seed=seed)
    return {
        "representative_strategy": run_representative_strategy(bundle),
        "update_strategy": run_update_strategy(bundle),
        "gdsp_counting": run_gdsp_counting(bundle),
    }


def main() -> dict[str, list[dict]]:
    """Run at default scale and print all three ablation tables."""
    panels = run()
    print_table(
        panels["representative_strategy"],
        title="Ablation — cluster-representative selection (Section 4.2)",
    )
    print()
    print_table(panels["update_strategy"], title="Ablation — Inc-Greedy update strategy")
    print()
    print_table(panels["gdsp_counting"], title="Ablation — Greedy-GDSP coverage counting")
    return panels


if __name__ == "__main__":
    main()
