"""Table 8 — effect of the number of FM sketch copies f.

For each f the paper compares FM-NetClus against NetClus on the same query:
utility of both, the relative utility loss, the running times, and the
speed-up of the FM variant.  The error shrinks and the speed-up fades as f
grows; the paper settles on f = 30.
"""

from __future__ import annotations

from repro.core.query import TOPSQuery
from repro.experiments.metrics import relative_error_percent
from repro.experiments.reporting import print_table
from repro.experiments.runner import ExperimentContext, build_context
from repro.utils.timer import Timer

__all__ = ["run", "main"]


def run(
    f_values: tuple[int, ...] = (1, 2, 4, 10, 20, 30, 50),
    k: int = 5,
    tau_km: float = 0.8,
    scale: str = "small",
    seed: int = 42,
    context: ExperimentContext | None = None,
) -> list[dict]:
    """NetClus vs FM-NetClus utility / error / time / speed-up for each f."""
    if context is None:
        context = build_context(scale=scale, seed=seed)
    query = TOPSQuery(k=k, tau_km=tau_km)
    with Timer() as netclus_timer:
        netclus_result = context.run_netclus(query)
    netclus_pct = context.exact_utility_percent(netclus_result, query)
    rows: list[dict] = []
    for f in f_values:
        with Timer() as fm_timer:
            fm_result = context.netclus.query(query, use_fm_sketches=True, num_sketches=f)
        fm_pct = context.exact_utility_percent(fm_result, query)
        speedup = netclus_timer.elapsed / fm_timer.elapsed if fm_timer.elapsed else float("inf")
        rows.append(
            {
                "f": f,
                "netclus_utility_pct": netclus_pct,
                "fm_netclus_utility_pct": fm_pct,
                "rel_error_pct": relative_error_percent(netclus_pct, fm_pct),
                "netclus_time_s": netclus_timer.elapsed,
                "fm_netclus_time_s": fm_timer.elapsed,
                "speedup": speedup,
            }
        )
    return rows


def main() -> list[dict]:
    """Run at default scale and print the Table 8 rows."""
    rows = run()
    print_table(rows, title="Table 8 — variation across number of FM sketches f")
    return rows


if __name__ == "__main__":
    main()
