"""Table 7 — effect of the index-resolution parameter γ.

For γ ∈ {0.25, 0.5, 0.75, 1.0} the paper reports the offline construction
time, the index size, and the relative utility error of NetClus w.r.t.
Inc-Greedy (smaller γ → more instances → bigger/slower index but smaller
error).  We report the same three columns plus the number of instances.
"""

from __future__ import annotations

from repro.core.query import TOPSQuery
from repro.experiments.metrics import relative_error_percent
from repro.experiments.reporting import print_table
from repro.experiments.runner import DEFAULT_TAU_RANGE
from repro.datasets import beijing_like
from repro.datasets.base import DatasetBundle
from repro.utils.timer import Timer

__all__ = ["run", "main"]


def run(
    gamma_values: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0),
    scale: str = "small",
    seed: int = 42,
    k: int = 5,
    tau_km: float = 0.8,
    bundle: DatasetBundle | None = None,
    engine: str = "dense",
) -> list[dict]:
    """Index build time / size / relative error for each γ."""
    if bundle is None:
        bundle = beijing_like(scale=scale, seed=seed)
    problem = bundle.problem()
    query = TOPSQuery(k=k, tau_km=tau_km)
    reference = problem.solve(query, method="inc-greedy", engine=engine)
    reference_pct = problem.utility_percent(reference.sites, query)
    rows: list[dict] = []
    for gamma in gamma_values:
        with Timer() as timer:
            index = problem.build_netclus_index(
                gamma=gamma,
                tau_min_km=DEFAULT_TAU_RANGE[0],
                tau_max_km=DEFAULT_TAU_RANGE[1],
            )
        result = index.query(query, engine=engine)
        candidate_pct = problem.utility_percent(result.sites, query)
        rows.append(
            {
                "gamma": gamma,
                "num_instances": index.num_instances,
                "build_time_s": timer.elapsed,
                "index_bytes": index.storage_bytes(),
                "rel_error_pct_vs_incg": relative_error_percent(reference_pct, candidate_pct),
            }
        )
    return rows


def main() -> list[dict]:
    """Run at default scale and print the Table 7 rows."""
    rows = run()
    print_table(rows, title="Table 7 — variation across index resolution γ")
    return rows


if __name__ == "__main__":
    main()
