"""Fig. 8 — the TOPS2 variant (convex capture-probability preference).

TOPS2 replaces the binary preference with a convex decreasing probability of
capturing a trajectory; the paper shows NetClus stays close to Inc-Greedy in
utility while being roughly an order of magnitude faster, for
(τ, k) ∈ {0.4, 0.8} × {5, 10, 20}.
"""

from __future__ import annotations

from repro.core.preference import ConvexProbabilityPreference
from repro.core.query import TOPSQuery
from repro.experiments.reporting import print_table
from repro.experiments.runner import ExperimentContext, build_context
from repro.utils.timer import Timer

__all__ = ["run", "main"]


def run(
    tau_values: tuple[float, ...] = (0.4, 0.8),
    k_values: tuple[int, ...] = (5, 10, 20),
    scale: str = "small",
    seed: int = 42,
    context: ExperimentContext | None = None,
) -> list[dict]:
    """Utility (%) and runtime of INCG vs NetClus under the convex preference."""
    if context is None:
        context = build_context(scale=scale, seed=seed)
    preference = ConvexProbabilityPreference(power=2.0)
    rows: list[dict] = []
    for tau_km in tau_values:
        for k in k_values:
            query = TOPSQuery(k=k, tau_km=tau_km, preference=preference)
            with Timer() as incg_timer:
                incg = context.run_inc_greedy(query)
            with Timer() as netclus_timer:
                netclus = context.run_netclus(query)
            rows.append(
                {
                    "tau_km": tau_km,
                    "k": k,
                    "incg_utility_pct": context.exact_utility_percent(incg, query),
                    "netclus_utility_pct": context.exact_utility_percent(netclus, query),
                    "incg_runtime_s": incg_timer.elapsed,
                    "netclus_runtime_s": netclus_timer.elapsed,
                }
            )
    return rows


def main() -> list[dict]:
    """Run at default scale and print the Fig. 8 rows."""
    rows = run()
    print_table(rows, title="Fig. 8 — TOPS2 (convex preference): utility and runtime")
    return rows


if __name__ == "__main__":
    main()
