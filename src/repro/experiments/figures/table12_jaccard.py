"""Table 12 — the Jaccard-similarity clustering alternative.

Appendix B.1 clusters candidate sites by the Jaccard similarity of their
trajectory covers; Table 12 shows that its cost grows steeply with τ (the
covering sets must be built first) and eventually exhausts memory, which is
why NetClus uses distance-based clustering instead.  We report clustering
time, the number of clusters, and the covering-structure bytes per τ,
alongside the cost of building the equivalent NetClus instance.
"""

from __future__ import annotations

from repro.core.jaccard import jaccard_clustering
from repro.core.preference import BinaryPreference
from repro.core.query import TOPSQuery
from repro.experiments.reporting import print_table
from repro.experiments.runner import ExperimentContext, build_context

__all__ = ["run", "main"]


def run(
    tau_values: tuple[float, ...] = (0.2, 0.4, 0.8, 1.2, 1.6),
    alpha: float = 0.8,
    scale: str = "small",
    seed: int = 42,
    context: ExperimentContext | None = None,
) -> list[dict]:
    """Jaccard-clustering cost per τ, with the NetClus instance as reference."""
    if context is None:
        context = build_context(scale=scale, seed=seed)
    rows: list[dict] = []
    for tau_km in tau_values:
        query = TOPSQuery(k=5, tau_km=tau_km, preference=BinaryPreference())
        coverage = context.coverage(query)
        result = jaccard_clustering(coverage, alpha=alpha)
        instance = context.netclus.instance_for(tau_km)
        rows.append(
            {
                "tau_km": tau_km,
                "jaccard_clusters": result.num_clusters,
                "jaccard_time_s": result.build_seconds,
                "jaccard_storage_mb": result.storage_bytes / 1e6,
                "netclus_clusters": instance.num_clusters,
                "netclus_instance_build_s": instance.build_seconds,
                "netclus_instance_storage_mb": instance.storage_bytes() / 1e6,
            }
        )
    return rows


def main() -> list[dict]:
    """Run at default scale and print the Table 12 rows."""
    rows = run()
    print_table(rows, title="Table 12 — Jaccard-similarity clustering vs τ (α = 0.8)")
    return rows


if __name__ == "__main__":
    main()
