"""Table 10 — cost of dynamic index updates.

The paper reports the time to absorb batches of 10k–50k new trajectories and
candidate sites into the NetClus index, noting that trajectory additions are
more expensive (they touch every cluster along the path in every instance)
than site additions (a single cluster per instance).  We reproduce the same
two columns with batch sizes scaled to the dataset, absorbing each batch
through the streaming update engine
(:meth:`~repro.core.netclus.NetClusIndex.add_trajectories` /
:meth:`~repro.core.netclus.NetClusIndex.add_sites`), which shares the
per-instance lookup structures across a whole batch;
``benchmarks/bench_update_throughput.py`` measures the per-item speedup of
exactly this batching over the one-at-a-time calls.
"""

from __future__ import annotations


from repro.datasets import beijing_like
from repro.datasets.base import DatasetBundle
from repro.experiments.reporting import print_table
from repro.experiments.runner import DEFAULT_TAU_RANGE
from repro.trajectory.generators import CommuterModel
from repro.utils.rng import ensure_rng
from repro.utils.timer import Timer

__all__ = ["run", "main"]


def run(
    batch_sizes: tuple[int, ...] = (50, 100, 200, 400),
    scale: str = "small",
    seed: int = 42,
    gamma: float = 0.75,
    bundle: DatasetBundle | None = None,
) -> list[dict]:
    """Per-batch update times for trajectory and site additions."""
    if bundle is None:
        bundle = beijing_like(scale=scale, seed=seed)
    rng = ensure_rng(seed)
    # build the index over a half of the trajectories so additions are new
    base = bundle.trajectories.sample(max(1, bundle.num_trajectories // 2), seed=seed)
    base_ids = set(base.ids())
    problem_sites = bundle.sites[: max(10, len(bundle.sites) // 2)]
    from repro.core.netclus import NetClusIndex

    index = NetClusIndex.build(
        bundle.network,
        base,
        problem_sites,
        gamma=gamma,
        tau_min_km=DEFAULT_TAU_RANGE[0],
        tau_max_km=DEFAULT_TAU_RANGE[1],
    )
    model = CommuterModel(bundle.network, seed=seed + 1)
    remaining_sites = [s for s in bundle.sites if s not in set(problem_sites)]
    rows: list[dict] = []
    next_id = max(base_ids) + 1
    for batch in batch_sizes:
        new_trajectories = []
        for trajectory in model.generate(batch):
            new_trajectories.append(
                type(trajectory)(
                    traj_id=next_id,
                    nodes=trajectory.nodes,
                    cumulative_km=trajectory.cumulative_km,
                )
            )
            next_id += 1
        with Timer() as traj_timer:
            index.add_trajectories(new_trajectories)
        site_batch = [
            int(site)
            for site in rng.choice(
                remaining_sites if len(remaining_sites) >= batch else bundle.sites,
                size=min(batch, len(bundle.sites)),
                replace=False,
            )
            if int(site) not in index.sites
        ]
        with Timer() as site_timer:
            index.add_sites(site_batch)
        rows.append(
            {
                "batch_size": batch,
                "trajectory_add_s": traj_timer.elapsed,
                "site_add_s": site_timer.elapsed,
            }
        )
    return rows


def main() -> list[dict]:
    """Run at default scale and print the Table 10 rows."""
    rows = run()
    print_table(rows, title="Table 10 — index update cost (batched additions)")
    return rows


if __name__ == "__main__":
    main()
