"""Per-figure / per-table experiment drivers.

Each module reproduces one artefact of the paper's evaluation (Section 8) and
exposes

* ``run(...) -> list[dict]`` — compute the rows/series of the artefact;
* ``main()`` — run at the default scale and print the table.

See DESIGN.md (experiment index) and EXPERIMENTS.md (paper vs measured).
"""

from repro.experiments.figures import (
    ablation_design_choices,
    fig04_optimal,
    fig05_quality,
    fig06_runtime,
    fig07_cost_capacity,
    fig08_tops2,
    fig10_scalability,
    fig11_city_geometries,
    fig12_traj_length,
    table07_gamma,
    table08_fm_sketches,
    table09_memory,
    table10_updates,
    table11_index_construction,
    table12_jaccard,
)

__all__ = [
    "ablation_design_choices",
    "fig04_optimal",
    "fig05_quality",
    "fig06_runtime",
    "fig07_cost_capacity",
    "fig08_tops2",
    "fig10_scalability",
    "fig11_city_geometries",
    "fig12_traj_length",
    "table07_gamma",
    "table08_fm_sketches",
    "table09_memory",
    "table10_updates",
    "table11_index_construction",
    "table12_jaccard",
]
