"""Fig. 12 — effect of trajectory length.

The paper partitions trajectories into four length bands and samples an equal
number from each: longer trajectories pass more candidate sites and are easier
to cover (higher utility), but also cost more greedy update work (higher
running time).  We reproduce the sweep with bands scaled to the synthetic
city's extent.
"""

from __future__ import annotations

from repro.core.problem import TOPSProblem
from repro.core.query import TOPSQuery
from repro.datasets import beijing_like
from repro.datasets.base import DatasetBundle
from repro.experiments.reporting import print_table
from repro.experiments.runner import DEFAULT_TAU_RANGE
from repro.trajectory.generators import length_class_trajectories
from repro.utils.timer import Timer

__all__ = ["run", "main"]


def run(
    length_bands_km: tuple[tuple[float, float], ...] = (
        (2.0, 4.0),
        (4.0, 6.0),
        (6.0, 8.0),
        (8.0, 11.0),
    ),
    num_per_band: int = 150,
    k: int = 5,
    tau_km: float = 0.8,
    scale: str = "small",
    seed: int = 42,
    bundle: DatasetBundle | None = None,
    engine: str = "dense",
) -> list[dict]:
    """Utility (%) and runtime of INCG vs NetClus per trajectory-length band."""
    if bundle is None:
        bundle = beijing_like(scale=scale, seed=seed)
    network = bundle.network
    query = TOPSQuery(k=k, tau_km=tau_km)
    rows: list[dict] = []
    for low, high in length_bands_km:
        trajectories = length_class_trajectories(
            network, num_per_band, boundaries_km=(low, high), seed=seed
        )
        if len(trajectories) == 0:
            continue
        problem = TOPSProblem(network, trajectories, bundle.sites)
        with Timer() as incg_timer:
            incg = problem.solve(query, method="inc-greedy", engine=engine)
        index = problem.build_netclus_index(
            tau_min_km=DEFAULT_TAU_RANGE[0], tau_max_km=DEFAULT_TAU_RANGE[1]
        )
        with Timer() as netclus_timer:
            netclus = index.query(query, engine=engine)
        rows.append(
            {
                "length_band_km": f"{low:.0f}-{high:.0f}",
                "num_trajectories": len(trajectories),
                "mean_length_km": trajectories.mean_length_km(),
                "incg_utility_pct": problem.utility_percent(incg.sites, query),
                "netclus_utility_pct": problem.utility_percent(netclus.sites, query),
                "incg_runtime_s": incg_timer.elapsed,
                "netclus_runtime_s": netclus_timer.elapsed,
            }
        )
    return rows


def main() -> list[dict]:
    """Run at default scale and print the Fig. 12 rows."""
    rows = run()
    print_table(rows, title="Fig. 12 — effect of trajectory length (k = 5, τ = 0.8 km)")
    return rows


if __name__ == "__main__":
    main()
