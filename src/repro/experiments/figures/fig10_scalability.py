"""Fig. 10 — scalability with the number of candidate sites and trajectories.

The paper subsamples the Beijing candidate sites (100k–250k) and trajectories
(20k–120k) and shows NetClus stays roughly an order of magnitude faster than
Inc-Greedy throughout.  We sweep fractions of the scaled dataset instead,
and add a third axis the paper's single-core setup could not explore:
query latency as the trajectory-sharded query path splits the coverage
into S shards evaluated by a worker pool (selections are identical for
every S — the sweep asserts it).
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import TOPSProblem
from repro.core.query import TOPSQuery
from repro.datasets import beijing_like
from repro.datasets.base import DatasetBundle
from repro.experiments.reporting import print_table
from repro.experiments.runner import DEFAULT_TAU_RANGE
from repro.service.placement import PlacementService
from repro.service.specs import QuerySpec
from repro.utils.rng import ensure_rng
from repro.utils.timer import Timer

__all__ = [
    "run_varying_sites",
    "run_varying_trajectories",
    "run_varying_shards",
    "run",
    "main",
]


def _run_both(
    problem: TOPSProblem, query: TOPSQuery, gamma: float = 0.75, engine: str = "dense"
) -> dict[str, float]:
    with Timer() as incg_timer:
        incg = problem.solve(query, method="inc-greedy", engine=engine)
    with Timer() as build_timer:
        index = problem.build_netclus_index(
            gamma=gamma, tau_min_km=DEFAULT_TAU_RANGE[0], tau_max_km=DEFAULT_TAU_RANGE[1]
        )
    with Timer() as netclus_timer:
        netclus = index.query(query, engine=engine)
    return {
        "incg_runtime_s": incg_timer.elapsed,
        "netclus_runtime_s": netclus_timer.elapsed,
        "netclus_build_s": build_timer.elapsed,
        "incg_utility_pct": problem.utility_percent(incg.sites, query),
        "netclus_utility_pct": problem.utility_percent(netclus.sites, query),
    }


def run_varying_sites(
    bundle: DatasetBundle,
    site_fractions: tuple[float, ...] = (0.4, 0.6, 0.8, 1.0),
    k: int = 5,
    tau_km: float = 0.8,
    seed: int = 3,
    engine: str = "dense",
) -> list[dict]:
    """Fig. 10a: runtimes as the number of candidate sites grows."""
    rng = ensure_rng(seed)
    all_sites = np.asarray(bundle.sites)
    query = TOPSQuery(k=k, tau_km=tau_km)
    rows: list[dict] = []
    for fraction in site_fractions:
        size = max(10, int(round(fraction * len(all_sites))))
        sites = sorted(int(s) for s in rng.choice(all_sites, size=size, replace=False))
        problem = TOPSProblem(bundle.network, bundle.trajectories, sites)
        stats = _run_both(problem, query, engine=engine)
        rows.append({"num_sites": size, **stats})
    return rows


def run_varying_trajectories(
    bundle: DatasetBundle,
    trajectory_fractions: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0),
    k: int = 5,
    tau_km: float = 0.8,
    seed: int = 3,
    engine: str = "dense",
) -> list[dict]:
    """Fig. 10b: runtimes as the number of trajectories grows."""
    query = TOPSQuery(k=k, tau_km=tau_km)
    rows: list[dict] = []
    for fraction in trajectory_fractions:
        size = max(10, int(round(fraction * bundle.num_trajectories)))
        trajectories = bundle.trajectories.sample(size, seed=seed)
        problem = TOPSProblem(bundle.network, trajectories, bundle.sites)
        stats = _run_both(problem, query, engine=engine)
        rows.append({"num_trajectories": size, **stats})
    return rows


def run_varying_shards(
    bundle: DatasetBundle,
    shard_counts: tuple[int, ...] = (1, 2, 4),
    k: int = 10,
    tau_km: float = 0.8,
    engine: str = "sparse",
    query_workers: int | str = "auto",
    repeats: int = 3,
    index=None,
) -> list[dict]:
    """Fig. 10c (repro extension): query latency vs trajectory-shard count.

    Times the same ``(k, τ)`` batch through a
    :class:`~repro.service.PlacementService` per shard count (cache
    bypassed — every run measures real coverage-build + greedy work) over
    one shared NetClus index (pass ``index=`` to reuse an already-built
    one, e.g. the ``run_all`` context's).  Selections are asserted
    identical to the unsharded baseline; the ``speedup`` column is against
    shards=1 on the same service configuration.
    """
    if index is None:
        problem = TOPSProblem(bundle.network, bundle.trajectories, bundle.sites)
        index = problem.build_netclus_index(
            tau_min_km=DEFAULT_TAU_RANGE[0], tau_max_km=DEFAULT_TAU_RANGE[1]
        )
    specs = [QuerySpec(k=k, tau_km=tau_km)]
    rows: list[dict] = []
    baseline_sites: tuple[int, ...] | None = None
    baseline_seconds: float | None = None
    for shards in shard_counts:
        service = PlacementService(
            index, engine=engine, shards=shards, query_workers=query_workers
        )
        best = np.inf
        for _ in range(max(1, repeats)):
            with Timer() as timer:
                results = service.batch_query(specs, use_cache=False)
            best = min(best, timer.elapsed)
        service.close()
        if baseline_sites is None:
            baseline_sites = results[0].sites
            baseline_seconds = best
        elif results[0].sites != baseline_sites:
            raise AssertionError(
                f"sharded selection diverged at shards={shards}: "
                f"{results[0].sites} != {baseline_sites}"
            )
        rows.append(
            {
                "shards": shards,
                "query_workers": service.query_workers,
                "query_runtime_s": best,
                "speedup_vs_unsharded": baseline_seconds / best if best else 0.0,
                "utility": results[0].utility,
            }
        )
    return rows


def run(
    scale: str = "small",
    seed: int = 42,
    bundle: DatasetBundle | None = None,
    engine: str = "dense",
    index=None,
) -> dict[str, list[dict]]:
    """All three scalability sweeps (``index=`` reuses a built NetClus index
    for the shard panel)."""
    if bundle is None:
        bundle = beijing_like(scale=scale, seed=seed)
    return {
        "varying_sites": run_varying_sites(bundle, engine=engine),
        "varying_trajectories": run_varying_trajectories(bundle, engine=engine),
        "varying_shards": run_varying_shards(bundle, engine=engine, index=index),
    }


def main() -> dict[str, list[dict]]:
    """Run at default scale and print all panels."""
    panels = run()
    print_table(panels["varying_sites"], title="Fig. 10a — scalability vs #candidate sites")
    print()
    print_table(
        panels["varying_trajectories"], title="Fig. 10b — scalability vs #trajectories"
    )
    print()
    print_table(
        panels["varying_shards"],
        title="Fig. 10c — sharded query path vs shard count (repro extension)",
    )
    return panels


if __name__ == "__main__":
    main()
