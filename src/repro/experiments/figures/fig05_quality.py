"""Fig. 5 — solution quality (utility %) versus k and versus τ.

The paper reports that NetClus stays within a few percent of Inc-Greedy across
both sweeps, and that beyond τ = 1.2 km Inc-Greedy/FMG run out of memory while
NetClus keeps working (we reproduce the shape by sweeping τ across the same
range; the out-of-memory wall cannot be reproduced at laptop scale, so the
large-τ rows simply keep reporting both algorithms).
"""

from __future__ import annotations

from repro.core.query import TOPSQuery
from repro.experiments.reporting import print_table
from repro.experiments.runner import ExperimentContext, build_context

__all__ = ["run_varying_k", "run_varying_tau", "run", "main"]


def run_varying_k(
    context: ExperimentContext,
    k_values: tuple[int, ...] = (1, 5, 10, 15, 20, 25),
    tau_km: float = 0.8,
) -> list[dict]:
    """Fig. 5a: utility (%) vs number of service locations k."""
    rows = []
    for k in k_values:
        query = TOPSQuery(k=k, tau_km=tau_km)
        comparison = context.compare_algorithms(query)
        row = {"k": k, "tau_km": tau_km}
        for name, stats in comparison.items():
            row[f"{name}_utility_pct"] = stats["utility_pct"]
        rows.append(row)
    return rows


def run_varying_tau(
    context: ExperimentContext,
    tau_values: tuple[float, ...] = (0.2, 0.4, 0.8, 1.2, 1.6, 2.4, 4.0),
    k: int = 5,
) -> list[dict]:
    """Fig. 5b: utility (%) vs coverage threshold τ."""
    rows = []
    for tau_km in tau_values:
        query = TOPSQuery(k=k, tau_km=tau_km)
        comparison = context.compare_algorithms(query)
        row = {"k": k, "tau_km": tau_km}
        for name, stats in comparison.items():
            row[f"{name}_utility_pct"] = stats["utility_pct"]
        rows.append(row)
    return rows


def run(
    scale: str = "small",
    seed: int = 42,
    context: ExperimentContext | None = None,
    k_values: tuple[int, ...] = (1, 5, 10, 15, 20, 25),
    tau_values: tuple[float, ...] = (0.2, 0.4, 0.8, 1.2, 1.6, 2.4, 4.0),
) -> dict[str, list[dict]]:
    """Both panels of Fig. 5."""
    if context is None:
        context = build_context(scale=scale, seed=seed)
    return {
        "varying_k": run_varying_k(context, k_values=k_values),
        "varying_tau": run_varying_tau(context, tau_values=tau_values),
    }


def main() -> dict[str, list[dict]]:
    """Run at default scale and print both panels."""
    panels = run()
    print_table(panels["varying_k"], title="Fig. 5a — utility vs k (τ = 0.8 km)")
    print()
    print_table(panels["varying_tau"], title="Fig. 5b — utility vs τ (k = 5)")
    return panels


if __name__ == "__main__":
    main()
