"""Fig. 4 — comparison with the optimal algorithm on Beijing-Small.

The paper compares OPT, Inc-Greedy, FMG, NetClus and FM-NetClus on the small
sampled dataset (utility and running time as functions of k), showing that
all heuristics stay close to OPT while being orders of magnitude faster.
"""

from __future__ import annotations

from repro.core.optimal import OptimalSolver
from repro.core.query import TOPSQuery
from repro.datasets import beijing_small_like
from repro.experiments.reporting import print_table
from repro.experiments.runner import ExperimentContext, build_context
from repro.utils.timer import Timer

__all__ = ["run", "main"]


def run(
    k_values: tuple[int, ...] = (1, 3, 5, 7),
    tau_km: float = 0.8,
    num_trajectories: int = 120,
    num_sites: int = 25,
    seed: int = 42,
    include_optimal: bool = True,
    context: ExperimentContext | None = None,
) -> list[dict]:
    """Utility (%) and runtime of OPT / INCG / FMG / NetClus / FM-NetClus vs k."""
    if context is None:
        bundle = beijing_small_like(
            num_trajectories=num_trajectories, num_sites=num_sites, seed=seed
        )
        context = build_context(bundle=bundle, tau_min_km=0.4, tau_max_km=4.0)
    rows: list[dict] = []
    for k in k_values:
        query = TOPSQuery(k=k, tau_km=tau_km)
        comparison = context.compare_algorithms(query)
        row: dict = {"k": k, "tau_km": tau_km}
        if include_optimal:
            coverage = context.coverage(query)
            solver = OptimalSolver(coverage)
            with Timer() as timer:
                optimal = solver.solve(query)
            row["opt_utility_pct"] = context.exact_utility_percent(optimal, query)
            row["opt_runtime_s"] = timer.elapsed
        for name, stats in comparison.items():
            row[f"{name}_utility_pct"] = stats["utility_pct"]
            row[f"{name}_runtime_s"] = stats["runtime_s"]
        rows.append(row)
    return rows


def main() -> list[dict]:
    """Run at default scale and print the Fig. 4 series."""
    rows = run()
    print_table(rows, title="Fig. 4 — comparison with optimal (Beijing-Small-like)")
    return rows


if __name__ == "__main__":
    main()
