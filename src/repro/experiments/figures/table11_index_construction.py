"""Table 11 — NetClus index construction details per cluster radius.

For every index instance the paper reports the number of clusters, the
average dominating-set size, the average trajectory-list size, the average
neighbour count, and the per-instance construction time: coarser radii yield
exponentially fewer clusters with larger Λ and T L.  We print the same
columns from :meth:`NetClusIndex.construction_statistics`.
"""

from __future__ import annotations

from repro.experiments.reporting import print_table
from repro.experiments.runner import ExperimentContext, build_context

__all__ = ["run", "main"]


def run(
    scale: str = "small",
    seed: int = 42,
    gamma: float = 0.75,
    context: ExperimentContext | None = None,
) -> list[dict]:
    """Per-instance construction statistics (one row per cluster radius)."""
    if context is None:
        context = build_context(scale=scale, seed=seed, gamma=gamma)
    return [
        {
            "radius_km": stats["radius_km"],
            "num_clusters": stats["num_clusters"],
            "mean_dominating_set": stats["mean_dominating_set_size"],
            "mean_trajectory_list": stats["mean_trajectory_list_size"],
            "mean_neighbors": stats["mean_neighbor_count"],
            "build_seconds": stats["build_seconds"],
            "storage_mb": stats["storage_bytes"] / 1e6,
        }
        for stats in context.netclus.construction_statistics()
    ]


def main() -> list[dict]:
    """Run at default scale and print the Table 11 rows."""
    rows = run()
    print_table(rows, title="Table 11 — index construction details (γ = 0.75)")
    return rows


if __name__ == "__main__":
    main()
