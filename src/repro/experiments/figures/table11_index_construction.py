"""Table 11 — NetClus index construction details per cluster radius.

For every index instance the paper reports the number of clusters, the
average dominating-set size, the average trajectory-list size, the average
neighbour count, and the per-instance construction time: coarser radii yield
exponentially fewer clusters with larger Λ and T L.  We print the same
columns from :meth:`NetClusIndex.construction_statistics`, plus — since the
offline phase runs through the staged build pipeline of
:mod:`repro.core.build` — a second table breaking the construction down by
pipeline stage (clustering, representatives, registration, neighbors) from
the index's :attr:`~repro.core.netclus.NetClusIndex.build_stats`.
"""

from __future__ import annotations

from repro.experiments.reporting import print_table
from repro.experiments.runner import ExperimentContext, build_context

__all__ = ["run", "stage_rows", "main"]


def run(
    scale: str = "small",
    seed: int = 42,
    gamma: float = 0.75,
    context: ExperimentContext | None = None,
    workers: int = 1,
) -> list[dict]:
    """Per-instance construction statistics (one row per cluster radius).

    ``workers`` parallelises the offline phase when the context is built
    here (it has no effect on an already-built *context* index).
    """
    if context is None:
        context = build_context(scale=scale, seed=seed, gamma=gamma, workers=workers)
    return [
        {
            "radius_km": stats["radius_km"],
            "num_clusters": stats["num_clusters"],
            "mean_dominating_set": stats["mean_dominating_set_size"],
            "mean_trajectory_list": stats["mean_trajectory_list_size"],
            "mean_neighbors": stats["mean_neighbor_count"],
            "build_seconds": stats["build_seconds"],
            "storage_mb": stats["storage_bytes"] / 1e6,
        }
        for stats in context.netclus.construction_statistics()
    ]


def stage_rows(context: ExperimentContext) -> list[dict]:
    """Build-pipeline stage breakdown (one row per stage), possibly empty.

    An index loaded from a manifest that predates the staged pipeline
    carries no stage records; callers should skip the table then.
    """
    total = sum(stat.seconds for stat in context.netclus.build_stats) or 1.0
    return [
        {
            "stage": stat.stage,
            "seconds": stat.seconds,
            "share_pct": 100.0 * stat.seconds / total,
            "workers": stat.workers,
        }
        for stat in context.netclus.build_stats
    ]


def main() -> list[dict]:
    """Run at default scale and print the Table 11 rows."""
    context = build_context()
    rows = run(context=context)
    print_table(rows, title="Table 11 — index construction details (γ = 0.75)")
    stages = stage_rows(context)
    if stages:
        print()
        print_table(stages, title="Table 11b — offline phase by pipeline stage")
    return rows


if __name__ == "__main__":
    main()
