"""Evaluation metrics shared by all experiments.

The paper's two headline metrics are (a) total utility as a percentage of the
number of trajectories and (b) query running time; Table 7/8 additionally use
the *relative utility error* of NetClus (or FM variants) w.r.t. Inc-Greedy,
and Table 9 compares memory footprints.  Python object sizes are not
comparable to the authors' Java heap measurements, so the memory metrics are
analytic byte estimates of the payload structures each algorithm must hold —
they preserve the relative ordering and the trends with τ.
"""

from __future__ import annotations

from repro.core.coverage import CoverageIndex
from repro.core.distances import DistanceOracle
from repro.core.netclus import NetClusIndex
from repro.utils.validation import require_positive

__all__ = [
    "utility_percent",
    "relative_error_percent",
    "incgreedy_memory_bytes",
    "netclus_memory_bytes",
]


def utility_percent(utility: float, num_trajectories: int) -> float:
    """Utility as a percentage of the trajectory count."""
    require_positive(num_trajectories, "num_trajectories")
    return 100.0 * utility / num_trajectories


def relative_error_percent(reference_utility: float, candidate_utility: float) -> float:
    """Relative utility loss of *candidate* w.r.t. *reference* in percent.

    Matches the error definition of Tables 7 and 8: a positive value means the
    candidate achieves less utility than the reference.
    """
    if reference_utility == 0:
        return 0.0
    return 100.0 * (reference_utility - candidate_utility) / reference_utility


def incgreedy_memory_bytes(
    oracle: DistanceOracle, coverage: CoverageIndex, include_distance_tables: bool = True
) -> int:
    """Estimated working-set bytes of Inc-Greedy at a given (τ, ψ).

    Inc-Greedy needs the pre-computed site distance tables plus the covering
    structures (detours, scores, TC/SC membership); the latter grow with τ.
    """
    total = coverage.storage_bytes()
    # covering-set list entries (trajectory id + distance per covered pair)
    total += 16 * coverage.covered_pairs()
    if include_distance_tables:
        total += oracle.storage_bytes()
    return int(total)


def netclus_memory_bytes(index: NetClusIndex, tau_km: float) -> int:
    """Estimated working-set bytes of a NetClus query at coverage threshold τ.

    Only the index instance serving τ is touched at query time; coarser
    instances store fewer clusters and shorter (more compressed) trajectory
    lists, which is why the footprint *decreases* as τ grows (Table 9).
    """
    instance = index.instance_for(tau_km)
    reps = len(instance.representatives())
    # estimated-detour matrix in the clustered space
    matrix_bytes = 8 * reps * index.num_trajectories
    return int(instance.storage_bytes() + matrix_bytes)
