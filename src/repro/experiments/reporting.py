"""ASCII reporting helpers for the experiment drivers.

Every experiment driver returns its results as a list of dictionaries (one
per row/series point).  These helpers render them as aligned text tables, the
same rows/series the paper reports, so that a run of a benchmark or an
example prints something directly comparable to the paper's tables and
figures.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

__all__ = ["format_table", "print_table", "format_value", "save_rows_csv"]


def format_value(value: object, precision: int = 3) -> str:
    """Render one cell: floats rounded, everything else via ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Format a list of row dictionaries as an aligned ASCII table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [format_value(row.get(col, ""), precision) for col in columns] for row in rows
    ]
    widths = [
        max(len(str(col)), *(len(r[idx]) for r in rendered))
        for idx, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[idx]) for idx, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(widths[idx]) for idx, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 3,
) -> None:
    """Print :func:`format_table` output."""
    print(format_table(rows, columns=columns, title=title, precision=precision))


def save_rows_csv(
    rows: Sequence[Mapping[str, object]],
    path: str | Path,
    columns: Sequence[str] | None = None,
) -> None:
    """Write experiment rows to a CSV file (one column per row key).

    Useful for post-processing or plotting the regenerated tables/figures with
    external tooling.
    """
    path = Path(path)
    if not rows:
        path.write_text("")
        return
    if columns is None:
        columns = list(rows[0].keys())
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({col: row.get(col, "") for col in columns})
