"""Experiment harness: metrics, reporting and per-figure/table drivers."""

from repro.experiments.metrics import (
    relative_error_percent,
    utility_percent,
    incgreedy_memory_bytes,
    netclus_memory_bytes,
)
from repro.experiments.reporting import format_table, print_table
from repro.experiments.runner import ExperimentContext, build_context

__all__ = [
    "relative_error_percent",
    "utility_percent",
    "incgreedy_memory_bytes",
    "netclus_memory_bytes",
    "format_table",
    "print_table",
    "ExperimentContext",
    "build_context",
]
