"""Shared experiment context: dataset + problem + NetClus index, built once.

Most figure/table drivers compare the same four algorithms (Inc-Greedy, FMG,
NetClus, FM-NetClus) over sweeps of k or τ on the Beijing-like dataset.
:class:`ExperimentContext` bundles the dataset, the flat problem (distance
oracle and coverage builder), and a NetClus index so that drivers share the
expensive pre-computation.  The ``scale`` knob maps to the dataset presets
("tiny" for unit tests and CI, "small" for the default benchmark runs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path


from repro.core.bitcov import BitsetCoverageIndex
from repro.core.coverage import CoverageIndex, SparseCoverageIndex, resolve_engine
from repro.core.fm_greedy import FMGreedy
from repro.core.greedy import IncGreedy, LazyGreedy
from repro.core.netclus import NetClusIndex
from repro.core.problem import TOPSProblem
from repro.core.query import TOPSQuery, TOPSResult
from repro.datasets import beijing_like
from repro.datasets.base import DatasetBundle
from repro.service.placement import PlacementService
from repro.service.serialization import (
    IndexFormatError,
    load_index,
    load_manifest,
    save_index,
)
from repro.utils.parallel import resolve_workers
from repro.utils.timer import Timer

__all__ = ["ExperimentContext", "build_context", "DEFAULT_GAMMA", "DEFAULT_TAU_RANGE"]

DEFAULT_GAMMA = 0.75
DEFAULT_TAU_RANGE = (0.4, 8.0)


@dataclass
class ExperimentContext:
    """Everything a figure/table driver needs to run its sweeps."""

    bundle: DatasetBundle
    problem: TOPSProblem
    netclus: NetClusIndex
    gamma: float = DEFAULT_GAMMA
    num_sketches: int = 30
    engine: str = "dense"  # "dense", "sparse", "bitset" or "auto" coverage + greedy engine
    _service: PlacementService | None = field(default=None, repr=False)

    # ------------------------------------------------------------------ #
    @property
    def num_trajectories(self) -> int:
        """Number of trajectories m."""
        return self.bundle.num_trajectories

    @property
    def service(self) -> PlacementService:
        """The placement service wrapping this context's NetClus index.

        Shared by every driver that queries the clustered space; the
        drivers bypass its result cache (``use_cache=False``) so timing
        sweeps measure real query work, but batch amortisation and the
        service counters still apply.
        """
        if self._service is None:
            self._service = PlacementService(self.netclus, engine=self.engine)
        return self._service

    def coverage(
        self, query: TOPSQuery
    ) -> CoverageIndex | SparseCoverageIndex | BitsetCoverageIndex:
        """Flat-space coverage index for the query (cached detour matrix)."""
        return self.problem.coverage(query, engine=self.engine)

    def fresh_coverage(
        self, query: TOPSQuery
    ) -> CoverageIndex | SparseCoverageIndex | BitsetCoverageIndex:
        """Flat-space coverage index built from scratch (no cached detours).

        The paper charges Inc-Greedy/FMG the O(mn) covering-set computation at
        query time (Section 3.4): only the per-site distance tables are
        pre-computed offline.  The timed comparisons therefore rebuild the
        detour matrix from the oracle's tables on every query, while NetClus
        answers purely from its pre-built index.
        """
        detours = self.problem.oracle.detour_matrix(self.problem.trajectories)
        engine = resolve_engine(self.engine, query.preference)
        index_cls: type[CoverageIndex] | type[SparseCoverageIndex] | type[BitsetCoverageIndex]
        if engine == "sparse":
            index_cls = SparseCoverageIndex
        elif engine == "bitset":
            index_cls = BitsetCoverageIndex
        else:
            index_cls = CoverageIndex
        return index_cls(
            detours,
            query.tau_km,
            query.preference,
            site_labels=self.problem.sites,
            trajectory_ids=self.problem.trajectories.ids(),
        )

    # ------------------------------------------------------------------ #
    def run_inc_greedy(self, query: TOPSQuery) -> TOPSResult:
        """Greedy on the flat site space (includes covering-set build time).

        Runs the paper's Inc-Greedy on the dense and bitset engines and the
        equivalent CELF lazy greedy on the sparse engine.
        """
        coverage = self.fresh_coverage(query)
        if getattr(coverage, "is_sparse", False):
            return LazyGreedy(coverage).solve(query)
        return IncGreedy(coverage).solve(query)

    def run_fm_greedy(self, query: TOPSQuery) -> TOPSResult:
        """FM-sketch greedy on the flat site space (includes covering-set build)."""
        coverage = self.fresh_coverage(query)
        return FMGreedy(coverage, num_sketches=self.num_sketches).solve(query)

    def run_netclus(self, query: TOPSQuery) -> TOPSResult:
        """NetClus query (clustered space, greedy over representatives).

        Routed through the shared :attr:`service` with the result cache
        bypassed, so each call measures real query work (instance
        resolution + coverage build + greedy), exactly like
        ``netclus.query`` — with identical selections.  The service's
        ``stats`` counters record the work for inspection.
        """
        return self.service.query(query, use_cache=False)

    def run_fm_netclus(self, query: TOPSQuery) -> TOPSResult:
        """FM-NetClus query (clustered space, FM-greedy over representatives)."""
        return self.netclus.query(
            query,
            use_fm_sketches=True,
            num_sketches=self.num_sketches,
            engine=self.engine,
        )

    def exact_utility_percent(self, result: TOPSResult, query: TOPSQuery) -> float:
        """Score a result's site set with exact detours, as a percent of m."""
        return self.problem.utility_percent(result.sites, query)

    # ------------------------------------------------------------------ #
    def compare_algorithms(
        self,
        query: TOPSQuery,
        algorithms: tuple[str, ...] = ("incg", "fmg", "netclus", "fmnetclus"),
    ) -> dict[str, dict[str, float]]:
        """Run the requested algorithms and score them on a common footing.

        Returns ``{algorithm: {"utility_pct", "runtime_s", "raw_utility"}}``.
        """
        runners = {
            "incg": self.run_inc_greedy,
            "fmg": self.run_fm_greedy,
            "netclus": self.run_netclus,
            "fmnetclus": self.run_fm_netclus,
        }
        results: dict[str, dict[str, float]] = {}
        for name in algorithms:
            with Timer() as timer:
                result = runners[name](query)
            results[name] = {
                "utility_pct": self.exact_utility_percent(result, query),
                "runtime_s": timer.elapsed,
                "raw_utility": result.utility,
                "num_sites": float(len(result.sites)),
            }
        return results


def build_context(
    scale: str = "small",
    seed: int = 42,
    gamma: float = DEFAULT_GAMMA,
    tau_min_km: float = DEFAULT_TAU_RANGE[0],
    tau_max_km: float = DEFAULT_TAU_RANGE[1],
    num_sketches: int = 30,
    bundle: DatasetBundle | None = None,
    engine: str = "dense",
    index_path: str | Path | None = None,
    workers: int | str = 1,
) -> ExperimentContext:
    """Build an :class:`ExperimentContext` (Beijing-like by default).

    ``engine`` selects the coverage + greedy engine for every driver that
    goes through the context: ``"dense"`` (the paper's matrices),
    ``"sparse"`` (CSR/CSC coverage with CELF lazy greedy), ``"bitset"``
    (uint64-packed binary coverage with popcount gains; binary ψ only) or
    ``"auto"`` (bitset for binary ψ, sparse otherwise).

    ``workers`` parallelises the NetClus offline phase over a process pool
    (per-instance clustering); the built index is identical to a
    sequential build, only faster on multi-core machines.  ``"auto"``
    resolves to the usable-CPU count
    (:func:`repro.utils.parallel.resolve_workers`).

    ``index_path`` persists the NetClus index across runs: when the
    directory holds a saved index it is loaded instead of rebuilt (the
    offline phase dominates context construction) — refusing with
    :class:`~repro.service.IndexFormatError` if its fingerprints do not
    match this dataset; otherwise the index is built and saved there for
    the next run.
    """
    if bundle is None:
        bundle = beijing_like(scale=scale, seed=seed)
    problem = bundle.problem()
    netclus = None
    if index_path is not None and (Path(index_path) / "manifest.json").is_file():
        manifest = load_manifest(index_path)
        saved_params = manifest["build_params"]
        requested = {
            "gamma": gamma,
            "tau_min_km": tau_min_km,
            "tau_max_km": tau_max_km,
            "representative_strategy": "closest",
        }
        mismatched = any(
            saved_params.get(key) != value for key, value in requested.items()
        )
        # a --max-instances-capped index has the right params but a short
        # ladder; the full ladder has ⌊log_{1+γ}(τ_max/τ_min)⌋ + 1 instances
        expected_instances = (
            int(math.floor(math.log(tau_max_km / tau_min_km, 1.0 + gamma))) + 1
        )
        if mismatched or manifest["num_instances"] != expected_instances:
            raise IndexFormatError(
                f"index cache at {index_path} was built with {saved_params} "
                f"({manifest['num_instances']} instances), but this run "
                f"requests {requested} ({expected_instances} instances); "
                "pick a different --index-cache directory or delete it"
            )
        netclus = load_index(
            index_path, network=bundle.network, dataset=bundle.trajectories
        )
    if netclus is None:
        netclus = problem.build_netclus_index(
            gamma=gamma,
            tau_min_km=tau_min_km,
            tau_max_km=tau_max_km,
            num_sketches=num_sketches,
            workers=resolve_workers(workers),
        )
        if index_path is not None:
            save_index(netclus, index_path, dataset=bundle.trajectories)
    return ExperimentContext(
        bundle=bundle,
        problem=problem,
        netclus=netclus,
        gamma=gamma,
        num_sketches=num_sketches,
        engine=engine,
    )
