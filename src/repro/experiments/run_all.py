"""Run every experiment of the evaluation and print its table/figure rows.

Usage::

    python -m repro.experiments.run_all            # default ("small") scale
    python -m repro.experiments.run_all --scale tiny
    python -m repro.experiments.run_all --only fig05 fig06 table09

Each experiment id maps to a driver in :mod:`repro.experiments.figures`; the
printed rows are the reproduction's counterpart of the corresponding table or
figure in the paper (see EXPERIMENTS.md for the side-by-side reading).
"""

from __future__ import annotations

import argparse
from typing import Callable

from repro.experiments.figures import (
    ablation_design_choices,
    fig04_optimal,
    fig05_quality,
    fig06_runtime,
    fig07_cost_capacity,
    fig08_tops2,
    fig10_scalability,
    fig11_city_geometries,
    fig12_traj_length,
    table07_gamma,
    table08_fm_sketches,
    table09_memory,
    table10_updates,
    table11_index_construction,
    table12_jaccard,
)
from repro.experiments.reporting import print_table
from repro.experiments.runner import build_context
from repro.utils.parallel import resolve_workers
from repro.utils.timer import Timer

__all__ = ["main", "EXPERIMENTS"]


def _run_fig04(scale: str, seed: int, context) -> None:
    rows = fig04_optimal.run(
        k_values=(1, 3, 5), num_trajectories=100, num_sites=20, seed=seed
    )
    print_table(rows, title="Fig. 4 — comparison with optimal (Beijing-Small-like)")


def _run_fig05(scale: str, seed: int, context) -> None:
    panels = fig05_quality.run(context=context)
    print_table(panels["varying_k"], title="Fig. 5a — utility vs k (τ = 0.8 km)")
    print()
    print_table(panels["varying_tau"], title="Fig. 5b — utility vs τ (k = 5)")


def _run_fig06(scale: str, seed: int, context) -> None:
    panels = fig06_runtime.run(context=context)
    print_table(panels["varying_k"], title="Fig. 6a — running time vs k (τ = 0.8 km)")
    print()
    print_table(panels["varying_tau"], title="Fig. 6b — running time vs τ (k = 5)")


def _run_fig07(scale: str, seed: int, context) -> None:
    panels = fig07_cost_capacity.run(context=context)
    print_table(panels["cost"], title="Fig. 7a / Fig. 9 — TOPS-COST")
    print()
    print_table(panels["capacity"], title="Fig. 7b — TOPS-CAPACITY")


def _run_fig08(scale: str, seed: int, context) -> None:
    print_table(fig08_tops2.run(context=context), title="Fig. 8 — TOPS2 (convex preference)")


def _run_fig10(scale: str, seed: int, context) -> None:
    # the shard panel reuses the context's index (same bundle + τ range),
    # so --index-cache skips its offline build too
    panels = fig10_scalability.run(
        scale=scale, seed=seed, engine=context.engine, index=context.netclus
    )
    print_table(panels["varying_sites"], title="Fig. 10a — scalability vs #sites")
    print()
    print_table(panels["varying_trajectories"], title="Fig. 10b — scalability vs #trajectories")
    print()
    print_table(
        panels["varying_shards"],
        title="Fig. 10c — sharded query path vs shard count (repro extension)",
    )


def _run_fig11(scale: str, seed: int, context) -> None:
    print_table(
        fig11_city_geometries.run(seed=seed, engine=context.engine),
        title="Fig. 11 — city geometries",
    )


def _run_fig12(scale: str, seed: int, context) -> None:
    print_table(
        fig12_traj_length.run(scale=scale, seed=seed, engine=context.engine),
        title="Fig. 12 — trajectory length",
    )


def _run_table07(scale: str, seed: int, context) -> None:
    print_table(
        table07_gamma.run(scale=scale, seed=seed, engine=context.engine),
        title="Table 7 — index resolution γ",
    )


def _run_table08(scale: str, seed: int, context) -> None:
    print_table(
        table08_fm_sketches.run(context=context), title="Table 8 — number of FM sketches f"
    )


def _run_table09(scale: str, seed: int, context) -> None:
    print_table(table09_memory.run(context=context), title="Table 9 — memory footprint vs τ")


def _run_table10(scale: str, seed: int, context) -> None:
    print_table(
        table10_updates.run(scale=scale, seed=seed), title="Table 10 — index update cost"
    )


def _run_table11(scale: str, seed: int, context) -> None:
    print_table(
        table11_index_construction.run(context=context),
        title="Table 11 — index construction details",
    )
    stages = table11_index_construction.stage_rows(context)
    if stages:
        print()
        print_table(stages, title="Table 11b — offline phase by pipeline stage")


def _run_table12(scale: str, seed: int, context) -> None:
    print_table(table12_jaccard.run(context=context), title="Table 12 — Jaccard clustering")


def _run_ablations(scale: str, seed: int, context) -> None:
    panels = ablation_design_choices.run(scale=scale, seed=seed)
    print_table(panels["representative_strategy"], title="Ablation — representative selection")
    print()
    print_table(panels["update_strategy"], title="Ablation — greedy update strategy")
    print()
    print_table(panels["gdsp_counting"], title="Ablation — GDSP coverage counting")


#: experiment id -> (description, runner)
EXPERIMENTS: dict[str, tuple[str, Callable]] = {
    "fig04": ("comparison with the optimal algorithm", _run_fig04),
    "fig05": ("solution quality vs k and τ", _run_fig05),
    "fig06": ("query running time vs k and τ", _run_fig06),
    "fig07": ("TOPS-COST and TOPS-CAPACITY extensions", _run_fig07),
    "fig08": ("TOPS2 variant (convex preference)", _run_fig08),
    "fig10": ("scalability with #sites and #trajectories", _run_fig10),
    "fig11": ("effect of city geometries", _run_fig11),
    "fig12": ("effect of trajectory length", _run_fig12),
    "table07": ("effect of index resolution γ", _run_table07),
    "table08": ("effect of the number of FM sketches", _run_table08),
    "table09": ("memory footprint vs τ", _run_table09),
    "table10": ("dynamic update cost", _run_table10),
    "table11": ("index construction details", _run_table11),
    "table12": ("Jaccard clustering baseline", _run_table12),
    "ablations": ("design-choice ablations", _run_ablations),
}


def main(argv: list[str] | None = None) -> None:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "medium"])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--engine",
        default="dense",
        choices=["dense", "sparse", "bitset", "auto"],
        help="coverage + greedy engine: the paper's dense matrices, the "
        "CSR/CSC coverage with CELF lazy greedy, the uint64 popcount "
        "engine (binary ψ only), or auto (bitset for binary ψ, sparse "
        "otherwise) — same selections on every engine",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help=f"subset of experiment ids to run (available: {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--index-cache",
        default=None,
        metavar="DIR",
        help="persist the shared NetClus index in this directory: loaded if "
        "present (fingerprint-checked), built and saved otherwise — skips "
        "the offline phase on repeat runs",
    )
    parser.add_argument(
        "--workers",
        type=resolve_workers,
        default=1,
        help="processes for the NetClus offline phase (per-instance "
        "clustering fan-out; the built index is identical to --workers 1); "
        "a positive integer or 'auto' (the usable-CPU count)",
    )
    args = parser.parse_args(argv)

    selected = args.only if args.only else list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {unknown}")

    print(
        f"Building shared context (scale={args.scale}, seed={args.seed}, "
        f"engine={args.engine})..."
    )
    context = build_context(
        scale=args.scale,
        seed=args.seed,
        engine=args.engine,
        index_path=args.index_cache,
        workers=args.workers,
    )
    for name in selected:
        description, runner = EXPERIMENTS[name]
        print()
        print("=" * 78)
        print(f"{name}: {description}")
        print("=" * 78)
        with Timer() as timer:
            runner(args.scale, args.seed, context)
        print(f"[{name} finished in {timer.elapsed:.1f}s]")


if __name__ == "__main__":
    main()
