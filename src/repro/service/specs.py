"""Query specifications for the placement service.

:class:`QuerySpec` is the serialisable, hashable description of one placement
request — what a row of a batch file, a cache key, and a
:class:`~repro.core.query.TOPSQuery` have in common.  It extends the paper's
``(k, τ, ψ)`` with the service-level knobs of Section 7: a uniform per-site
``capacity`` (TOPS-CAPACITY), a ``budget``/``site_cost`` pair (TOPS-COST with
uniform costs), and ``existing_sites`` (TOPS with existing services).

Being a frozen dataclass of primitives, a spec can be used directly as an
LRU-cache key and round-trips through JSON/CSV (:meth:`QuerySpec.to_dict` /
:meth:`QuerySpec.from_dict`), which is what the ``python -m repro.service
query`` CLI reads.

Deliberately *not* part of a spec: execution-layout knobs like the
trajectory-shard count or the query worker pool.  Sharding never changes a
result (selections are identical for any ``shards``/``query_workers``),
so it lives on the :class:`~repro.service.PlacementService` — keeping it
out of the spec means a cached result stays valid when the service's
layout changes, and two deployments with different shard counts produce
interchangeable result sets for the same spec batch.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.core.preference import PreferenceFunction, make_preference
from repro.core.query import TOPSQuery
from repro.utils.validation import require, require_positive

__all__ = ["QuerySpec"]


@dataclass(frozen=True)
class QuerySpec:
    """One placement request against a :class:`~repro.service.PlacementService`.

    Attributes
    ----------
    k:
        Number of sites to select.
    tau_km:
        Coverage threshold τ in kilometres.
    preference:
        Registry name of the preference function ψ (``"binary"``,
        ``"linear"``, ``"exponential"``, ``"convex"``, ``"inconvenience"``).
    preference_params:
        Constructor parameters of ψ as a sorted tuple of ``(name, value)``
        pairs — kept as a tuple so the spec stays hashable.
    capacity:
        Optional uniform per-site capacity (max trajectories one site may
        serve; TOPS-CAPACITY, Section 7.2).
    budget:
        Optional total cost budget (TOPS-COST, Section 7.1).  When set, the
        service runs the budgeted greedy and ``k`` is ignored.
    site_cost:
        Uniform per-site cost used with *budget* (default 1.0 — the budget
        then caps the number of sites).
    existing_sites:
        Node ids of already-operating services (Section 7.3).
    """

    k: int
    tau_km: float
    preference: str = "binary"
    preference_params: tuple[tuple[str, float], ...] = ()
    capacity: int | None = None
    budget: float | None = None
    site_cost: float = 1.0
    existing_sites: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        require_positive(self.k, "k")
        require_positive(self.tau_km, "tau_km")
        require_positive(self.site_cost, "site_cost")
        if self.capacity is not None:
            require(self.capacity >= 0, "capacity must be non-negative")
        if self.budget is not None:
            require_positive(self.budget, "budget")
            require(
                self.capacity is None,
                "budget and capacity cannot be combined in one spec",
            )
            require(
                not self.existing_sites,
                "budgeted specs do not support existing_sites",
            )
        # normalise mutable/unsorted inputs so equal specs hash equally
        object.__setattr__(
            self,
            "preference_params",
            tuple(sorted((str(k), float(v)) for k, v in self.preference_params)),
        )
        object.__setattr__(
            self, "existing_sites", tuple(int(s) for s in self.existing_sites)
        )
        # fail fast on unknown preference names / bad params
        self.preference_fn()

    # ------------------------------------------------------------------ #
    def preference_fn(self) -> PreferenceFunction:
        """Instantiate the preference function ψ this spec names."""
        return make_preference(self.preference, **dict(self.preference_params))

    def to_query(self) -> TOPSQuery:
        """The plain ``(k, τ, ψ)`` TOPS query of this spec."""
        return TOPSQuery(k=self.k, tau_km=self.tau_km, preference=self.preference_fn())

    @classmethod
    def from_query(cls, query: TOPSQuery, **extras: Any) -> "QuerySpec":
        """Wrap a :class:`TOPSQuery` (capacity/budget/... via *extras*)."""
        name, params = query.preference.spec()
        return cls(
            k=query.k,
            tau_km=query.tau_km,
            preference=name,
            preference_params=tuple(sorted(params.items())),
            **extras,
        )

    # ------------------------------------------------------------------ #
    # grouping keys used by PlacementService.batch_query
    # ------------------------------------------------------------------ #
    @property
    def coverage_key(self) -> tuple:
        """Key identifying the coverage structures the spec needs: (τ, ψ)."""
        return (self.tau_km, self.preference, self.preference_params)

    @property
    def selection_key(self) -> tuple:
        """Key identifying a shareable greedy run: coverage + everything but k.

        Specs equal under this key differ only in ``k``; the greedy run at
        the largest k answers all of them (a greedy selection for k is a
        prefix of the selection for any larger k).  Budgeted specs never
        share runs (the budget changes the selection rule), so their key
        includes the budget.
        """
        return self.coverage_key + (
            self.capacity,
            self.budget,
            self.site_cost if self.budget is not None else None,
            self.existing_sites,
        )

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        payload: dict[str, Any] = {"k": self.k, "tau_km": self.tau_km}
        if self.preference != "binary" or self.preference_params:
            payload["preference"] = self.preference
        if self.preference_params:
            payload["preference_params"] = dict(self.preference_params)
        if self.capacity is not None:
            payload["capacity"] = self.capacity
        if self.budget is not None:
            payload["budget"] = self.budget
            if self.site_cost != 1.0:
                payload["site_cost"] = self.site_cost
        if self.existing_sites:
            payload["existing_sites"] = list(self.existing_sites)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QuerySpec":
        """Build a spec from a JSON object / CSV row dict.

        Recognised keys: ``k``, ``tau_km``, ``preference``,
        ``preference_params`` (object), ``capacity``, ``budget``,
        ``site_cost``, ``existing_sites`` (list).  Unknown keys raise, so a
        typo in a batch file fails loudly instead of being ignored.
        """
        known = {
            "k",
            "tau_km",
            "preference",
            "preference_params",
            "capacity",
            "budget",
            "site_cost",
            "existing_sites",
        }
        unknown = set(payload) - known
        require(not unknown, f"unknown QuerySpec fields: {sorted(unknown)}")
        require("k" in payload and "tau_km" in payload, "a spec needs k and tau_km")
        params = payload.get("preference_params", {})
        return cls(
            k=int(payload["k"]),
            tau_km=float(payload["tau_km"]),
            preference=str(payload.get("preference", "binary")),
            preference_params=tuple(sorted((str(k), float(v)) for k, v in params.items())),
            capacity=_opt_int(payload.get("capacity")),
            budget=_opt_float(payload.get("budget")),
            site_cost=float(payload.get("site_cost", 1.0) or 1.0),
            existing_sites=tuple(int(s) for s in payload.get("existing_sites", ())),
        )

    def with_k(self, k: int) -> "QuerySpec":
        """A copy of this spec with a different k."""
        return replace(self, k=k)


def _opt_int(value: Any) -> int | None:
    if value is None or value == "":
        return None
    return int(value)


def _opt_float(value: Any) -> float | None:
    if value is None or value == "":
        return None
    return float(value)
