"""Versioned on-disk persistence for :class:`~repro.core.netclus.NetClusIndex`.

An index directory holds exactly two files:

* ``payload.npz`` — every array of the index in NumPy's native ``.npz``
  container: the road network (nodes, coordinates, edges), the candidate-site
  set, the trajectory registry, and, per instance, the cluster arrays in
  flattened CSR-style form (see ``docs/index-format.md`` for the full key
  listing).
* ``manifest.json`` — human-readable metadata: format version, build
  parameters (γ, τ_min, τ_max, representative strategy, instance cap), the
  index's dynamic-update ``version`` counter, the staged build pipeline's
  per-stage :class:`~repro.core.build.BuildStats` records, per-instance
  statistics, and three fingerprints — the SHA-256 of the payload file, of
  the road network, and of the trajectory registry.

Loading refuses to proceed on any fingerprint or version mismatch
(:class:`IndexFormatError`), so a stale or corrupted index can never silently
answer queries for the wrong city.  A loaded index is behaviourally identical
to a freshly built one: queries, dynamic updates (``add_site``,
``add_trajectory``, :meth:`~repro.core.netclus.NetClusIndex.apply_updates`,
...) and storage statistics all agree, because the serialisation preserves
dict insertion orders (they decide tie-breaks in representative re-election)
and every per-cluster array.

Format v2 additionally round-trips the index ``version`` counter and, for
indexes built with ``representative_strategy="most_frequent"``, the
visit-count bookkeeping (per-node trajectory counts + per-trajectory unique
node lists) that dynamic re-election needs.  Format-v1 directories remain
loadable: they come back with ``version`` 0 and, for ``most_frequent``
indexes, without visit counts (their re-elections fall back to proximity,
the pre-v2 behaviour).

The manifest may additionally carry *optional shard keys* — ``shards``
(the index's default trajectory-shard count for the sharded query path)
and ``shard_sizes`` (trajectories per shard under the deterministic
id-hash layout, for ``inspect``).  They are written only for indexes whose
default is sharded (``shards > 1``); v1 and v2 manifests without them load
unchanged with ``shards`` 1.  Sharding is purely a query-time layout — it
never affects the payload, the fingerprints, or any selection.

Format v3 adds *optional coverage parts* — the canonical per-(τ, ψ)
coverage entries of the index's :class:`~repro.core.covcache.CoverageCache`
as extra ``cov<slot>_*`` payload arrays plus a manifest ``coverage_parts``
listing (τ, ψ spec, instance, the ``index_version`` each part was computed
at, entry counts).  Parts are loaded lazily — ``.npz`` members decompress
per array, so reading the index never touches part payloads it does not
need — and a part whose recorded ``index_version`` does not match the
manifest's is *refused* (skipped with a clean fallback to a cold rebuild);
a structurally inconsistent part (missing arrays, length mismatches,
out-of-range entries) raises :class:`IndexFormatError`.  v1/v2 directories
load exactly as before; a v3 directory without parts is identical to a v2
one apart from the version stamp.

Format v4 replaces the compressed ``.npz`` container with one *aligned
packed blob* (``payload.bin``): every payload array's raw little-endian
bytes at a 64-byte-aligned offset, described by a ``payload_arrays``
offset table in the manifest (offset, nbytes, dtype, shape per key).
:func:`load_index` maps the blob once (``np.memmap`` read-only) and hands
out zero-copy array views, so a cold load touches only the manifest, the
fingerprint-bearing structural arrays, and whatever instances/parts the
first query actually needs:

* index instances rebuild *lazily* — ``index.instances`` is a sequence
  that materialises each :class:`~repro.core.netclus.NetClusInstance` on
  first access, so a query at one τ pays for one ladder rung, not all;
* coverage parts attach as zero-copy views over the blob; their range
  validation is deferred to materialisation (the coverage constructors
  re-check), while shape/registry consistency is still verified eagerly
  from the offset table alone;
* every view is read-only (``writeable=False``); the index's mutation
  paths copy-on-write, so ``apply_updates`` on a v4-loaded index never
  writes through to the mapped file.

Integrity for v4 rests on the offset table: the blob's size must equal
the manifest's ``payload_total_bytes`` (truncation check) and every entry
must lie in bounds with ``nbytes`` matching its dtype/shape product — any
mismatch raises :class:`IndexFormatError` before a single page is
touched.  The whole-file ``payload_sha256`` fingerprint is still written
(offline verification) but no longer hashed on load — that is the point:
a v4 load reads only what the first query needs.  :func:`save_index`
writes v4 by default; pass ``format_version=3`` for the compressed
``.npz`` layout (bit-identical to what PR 9 wrote).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from collections.abc import Sequence
from pathlib import Path
from typing import Any, overload

import numpy as np

from repro.core.build import BuildStats
from repro.core.netclus import NetClusCluster, NetClusIndex, NetClusInstance
from repro.network.graph import RoadNetwork
from repro.trajectory.model import TrajectoryDataset

__all__ = [
    "FORMAT_VERSION",
    "SUPPORTED_FORMAT_VERSIONS",
    "FORMAT_NAME",
    "IndexFormatError",
    "save_index",
    "load_index",
    "load_manifest",
    "graph_fingerprint",
    "trajectory_fingerprint",
    "dataset_fingerprint",
    "payload_digest",
]

#: the version written by :func:`save_index`; bump on any layout change
FORMAT_VERSION = 4
#: the versions :func:`load_index` can read (older versions load with
#: documented fallbacks; see the module docstring)
SUPPORTED_FORMAT_VERSIONS = (1, 2, 3, 4)
#: the versions :func:`save_index` can write (v3 for the compressed
#: ``.npz`` layout, v4 for the mmap-able packed blob)
WRITABLE_FORMAT_VERSIONS = (3, 4)
FORMAT_NAME = "netclus-index"
MANIFEST_FILE = "manifest.json"
PAYLOAD_FILE = "payload.npz"
#: format-v4 payload: one packed blob of raw array bytes, described by the
#: manifest's ``payload_arrays`` offset table
PAYLOAD_BLOB_FILE = "payload.bin"
#: every array in the v4 blob starts at a multiple of this (cache-line
#: alignment; comfortably covers any numpy itemsize)
BLOB_ALIGN = 64
#: index of the ``build_seconds`` entry inside each ``i<id>_meta`` payload
#: array — the one slot timing-insensitive comparisons zero out (see
#: :func:`payload_digest` and ``tools/check_build_parity.py``)
META_BUILD_SECONDS_SLOT = 2


class IndexFormatError(RuntimeError):
    """Raised when an on-disk index cannot be loaded safely.

    Covers unknown format names/versions, missing files, payload corruption
    (payload hash mismatch), and graph/trajectory fingerprint mismatches
    against what the caller supplied.
    """


# ---------------------------------------------------------------------- #
# fingerprints
# ---------------------------------------------------------------------- #
_NETWORK_KEYS = (
    "net_node_ids",
    "net_node_xy",
    "net_edge_src",
    "net_edge_dst",
    "net_edge_len",
)


def graph_fingerprint(network: RoadNetwork) -> str:
    """SHA-256 fingerprint of a road network's structure.

    Hashes exactly the canonical flattening persisted in the payload
    (node ids, node coordinates, edge list sorted by ``(source, target)``)
    — deterministic regardless of insertion order, sensitive to any
    topology, coordinate or edge-length change, and guaranteed to agree
    with what :func:`save_index` writes because both share
    ``_network_arrays``.
    """
    return _graph_fingerprint_from_arrays(_network_arrays(network))


def _graph_fingerprint_from_arrays(arrays: dict[str, np.ndarray]) -> str:
    """:func:`graph_fingerprint` over an already-canonical flattening.

    ``load_index`` verifies the payload's stored ``net_*`` arrays with
    this directly — they *are* the canonical flattening, so re-deriving
    (and re-sorting) them from the just-rebuilt graph would only repeat
    work without strengthening the check.
    """
    digest = hashlib.sha256()
    for key in _NETWORK_KEYS:
        digest.update(np.ascontiguousarray(arrays[key]).tobytes())
    return digest.hexdigest()


def trajectory_fingerprint(trajectory_ids: list[int] | np.ndarray) -> str:
    """SHA-256 fingerprint of the trajectory registry (ordered id list).

    The index stores trajectories in compressed per-cluster form, so this
    fingerprint covers the registry — the ordered id list that fixes the
    coverage-matrix row order — rather than raw GPS points.  Ids alone
    cannot distinguish two datasets that both number their trajectories
    ``0..m-1``; pass the dataset to :func:`save_index` to additionally
    record a content fingerprint (:func:`dataset_fingerprint`).
    """
    ids = np.asarray(list(trajectory_ids), dtype=np.int64)
    return hashlib.sha256(ids.tobytes()).hexdigest()


def dataset_fingerprint(dataset: TrajectoryDataset) -> str:
    """SHA-256 fingerprint of full trajectory *content* (ids, nodes, distances).

    Unlike :func:`trajectory_fingerprint`, this distinguishes datasets that
    share an id numbering (e.g. the same city generated with two seeds).
    Recorded in the manifest when :func:`save_index` is given the dataset,
    and verified by :func:`load_index` when the caller supplies one.
    """
    digest = hashlib.sha256()
    for trajectory in dataset:
        digest.update(np.int64(trajectory.traj_id).tobytes())
        digest.update(trajectory.nodes_array().tobytes())
        digest.update(trajectory.cumulative_array().tobytes())
    return digest.hexdigest()


def dataset_matches(index: NetClusIndex, dataset: TrajectoryDataset) -> bool:
    """Whether *dataset*'s id registry matches the index's (order included)."""
    return trajectory_fingerprint(dataset.ids()) == trajectory_fingerprint(
        index.trajectory_ids
    )


def _file_sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


# ---------------------------------------------------------------------- #
# format v4: packed blob + offset table
# ---------------------------------------------------------------------- #
def _write_blob(
    path: Path, payload: dict[str, np.ndarray]
) -> tuple[dict[str, dict[str, Any]], int]:
    """Write the v4 packed blob; return (offset table, total bytes).

    Arrays are laid out in sorted key order, each at a 64-byte-aligned
    offset, as raw contiguous little-endian bytes.  The layout is fully
    deterministic, so two indexes with equal payload arrays produce
    byte-identical blobs (the same property ``payload_digest`` relies on).

    The blob is written to a temporary sibling and atomically renamed
    into place: a re-save over a directory whose previous blob is still
    mmap-mapped (a loaded v4 index — e.g. the farm's write-through save
    after updates) must not truncate the mapped inode; the old mapping
    keeps the old inode alive while new loads see the new file.
    """
    table: dict[str, dict[str, Any]] = {}
    cursor = 0
    staging = path.with_name(path.name + ".tmp")
    with open(staging, "wb") as handle:
        for key in sorted(payload):
            array = np.ascontiguousarray(payload[key])
            if array.dtype.byteorder == ">":  # pragma: no cover - LE platforms
                array = array.astype(array.dtype.newbyteorder("<"))
            pad = (-cursor) % BLOB_ALIGN
            if pad:
                handle.write(b"\x00" * pad)
                cursor += pad
            table[key] = {
                "offset": cursor,
                "nbytes": int(array.nbytes),
                "dtype": array.dtype.str,
                "shape": list(array.shape),
            }
            handle.write(array.tobytes())
            cursor += int(array.nbytes)
    os.replace(staging, path)
    return table, cursor


def _open_blob(
    directory: Path, manifest: dict[str, Any]
) -> tuple[np.memmap, dict[str, dict[str, Any]]]:
    """Map a v4 blob read-only after validating its offset table.

    Raises :class:`IndexFormatError` on a missing blob, a size/truncation
    mismatch against the manifest's ``payload_total_bytes``, or any
    offset-table entry that is out of bounds or inconsistent with its
    declared dtype/shape — all without touching a single payload page.
    """
    blob_path = directory / PAYLOAD_BLOB_FILE
    if not blob_path.is_file():
        raise IndexFormatError(f"no {PAYLOAD_BLOB_FILE} in {directory}")
    table = manifest.get("payload_arrays")
    if not isinstance(table, dict) or not table:
        raise IndexFormatError("v4 manifest has no payload_arrays offset table")
    total = int(manifest.get("payload_total_bytes", -1))
    actual = blob_path.stat().st_size
    if actual != total:
        raise IndexFormatError(
            f"payload blob size mismatch: {PAYLOAD_BLOB_FILE} holds {actual} "
            f"bytes, manifest declares {total} (truncated or corrupted index)"
        )
    for key, entry in table.items():
        try:
            offset = int(entry["offset"])
            nbytes = int(entry["nbytes"])
            dtype = np.dtype(str(entry["dtype"]))
            shape = tuple(int(dim) for dim in entry["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexFormatError(f"payload array {key!r}: malformed offset-table entry") from exc
        expected = dtype.itemsize
        for dim in shape:
            if dim < 0:
                raise IndexFormatError(f"payload array {key!r}: negative dimension")
            expected *= dim
        if nbytes != expected:
            raise IndexFormatError(
                f"payload array {key!r}: offset-table mismatch "
                f"(nbytes={nbytes}, dtype/shape require {expected})"
            )
        if offset < 0 or offset % dtype.itemsize or offset + nbytes > total:
            raise IndexFormatError(
                f"payload array {key!r}: offset-table entry out of bounds "
                f"(offset={offset}, nbytes={nbytes}, blob={total})"
            )
    blob = np.memmap(blob_path, dtype=np.uint8, mode="r")
    return blob, table


def _blob_views(
    blob: np.memmap, table: dict[str, dict[str, Any]]
) -> dict[str, np.ndarray]:
    """Zero-copy read-only array views over a validated v4 blob."""
    views: dict[str, np.ndarray] = {}
    for key, entry in table.items():
        offset, nbytes = int(entry["offset"]), int(entry["nbytes"])
        dtype = np.dtype(str(entry["dtype"]))
        shape = tuple(int(dim) for dim in entry["shape"])
        # .view(np.ndarray) drops the memmap wrapper (its per-element
        # __getitem__ bookkeeping costs ~1µs/access, which the ragged dict
        # rebuilds would pay hundreds of thousands of times); the plain
        # ndarray view keeps the mapping alive through .base and stays
        # zero-copy + read-only
        view = (
            blob[offset : offset + nbytes].view(dtype).reshape(shape).view(np.ndarray)
        )
        view.flags.writeable = False  # inherited from mode="r"; made explicit
        views[key] = view
    return views


# ---------------------------------------------------------------------- #
# save
# ---------------------------------------------------------------------- #
def save_index(
    index: NetClusIndex,
    path: str | Path,
    dataset: TrajectoryDataset | None = None,
    trajectory_content: str | None = None,
    *,
    format_version: int = FORMAT_VERSION,
) -> Path:
    """Persist *index* to directory *path* (created if missing).

    Writes the payload (``payload.bin`` packed blob for the default
    format v4, ``payload.npz`` for ``format_version=3``) and
    ``manifest.json`` (metadata + fingerprints).  Returns the directory
    path.  The format is documented in ``docs/index-format.md``; load with
    :func:`load_index`.

    When *dataset* (the trajectories the index was built on) is supplied,
    its content fingerprint is recorded too, letting :func:`load_index`
    distinguish datasets that merely share an id numbering — e.g. the same
    city generated with two different seeds.  The dataset's id registry
    must match the index's.  A caller that does not hold the dataset but
    knows a still-valid content fingerprint (e.g. the ``update`` CLI
    re-saving after a site-only delta) may pass it via
    *trajectory_content* instead; it is ignored when *dataset* is given.
    """
    if format_version not in WRITABLE_FORMAT_VERSIONS:
        raise IndexFormatError(
            f"cannot write format version {format_version!r} (writable: "
            f"{sorted(WRITABLE_FORMAT_VERSIONS)})"
        )
    directory = Path(path)
    if dataset is not None and not dataset_matches(index, dataset):
        raise IndexFormatError(
            "dataset/index mismatch: the supplied dataset's trajectory ids "
            "do not match the index registry"
        )
    if dataset is not None:
        trajectory_content = dataset_fingerprint(dataset)
    directory.mkdir(parents=True, exist_ok=True)
    payload = _payload_arrays(index)
    coverage_arrays, coverage_parts = _coverage_part_arrays(index)
    payload.update(coverage_arrays)
    blob_keys: dict[str, dict[str, Any]] = {}
    total_bytes = 0
    if format_version >= 4:
        payload_path = directory / PAYLOAD_BLOB_FILE
        blob_keys, total_bytes = _write_blob(payload_path, payload)
        # a directory re-saved in v4 must not keep a stale .npz around
        (directory / PAYLOAD_FILE).unlink(missing_ok=True)
    else:
        payload_path = directory / PAYLOAD_FILE
        with open(payload_path, "wb") as handle:
            np.savez_compressed(handle, **payload)
        (directory / PAYLOAD_BLOB_FILE).unlink(missing_ok=True)

    manifest = {
        "format": FORMAT_NAME,
        "format_version": format_version,
        **(
            {"payload_arrays": blob_keys, "payload_total_bytes": total_bytes}
            if format_version >= 4
            else {}
        ),
        "build_params": {
            "gamma": index.gamma,
            "tau_min_km": index.tau_min_km,
            "tau_max_km": index.tau_max_km,
            "representative_strategy": index.representative_strategy,
            "max_instances": index.max_instances,
        },
        "index_version": index.version,
        **(
            {
                "shards": index.shards,
                "shard_sizes": _shard_sizes(index),
            }
            if index.shards > 1
            else {}
        ),
        **(
            {"build_stats": [stat.as_dict() for stat in index.build_stats]}
            if index.build_stats
            else {}
        ),
        **({"coverage_parts": coverage_parts} if coverage_parts else {}),
        "num_instances": index.num_instances,
        "num_trajectories": index.num_trajectories,
        "num_sites": len(index.sites),
        "num_nodes": index.network.num_nodes,
        "num_edges": index.network.num_edges,
        "storage_bytes": index.storage_bytes(),
        "build_seconds": index.build_seconds(),
        "fingerprints": {
            "payload_sha256": _file_sha256(payload_path),
            "graph": graph_fingerprint(index.network),
            "trajectories": trajectory_fingerprint(index.trajectory_ids),
            **(
                {"trajectory_content": trajectory_content}
                if trajectory_content is not None
                else {}
            ),
        },
        "instances": [
            {
                "instance_id": instance.instance_id,
                "radius_km": instance.radius_km,
                "tau_range_km": list(instance.tau_range),
                "num_clusters": instance.num_clusters,
                "num_representatives": len(instance.representatives()),
                "build_seconds": instance.build_seconds,
                "mean_dominating_set_size": instance.mean_dominating_set_size,
            }
            for instance in index.instances
        ],
    }
    manifest_staging = directory / (MANIFEST_FILE + ".tmp")
    with open(manifest_staging, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(manifest_staging, directory / MANIFEST_FILE)
    return directory


#: payload arrays making up one persisted coverage part, in slot order
_COVERAGE_PART_KEYS = ("rows", "cols", "est", "rep_sites", "rep_clusters")


def _coverage_part_arrays(
    index: NetClusIndex,
) -> tuple[dict[str, np.ndarray], list[dict[str, Any]]]:
    """Payload arrays + manifest entries of the index's coverage parts.

    Parts bound to a stale ``index_version`` are skipped — a loader would
    refuse them anyway, so persisting them only wastes payload bytes.
    """
    cache = getattr(index, "coverage_cache", None)
    if cache is None:
        return {}, []
    arrays: dict[str, np.ndarray] = {}
    entries: list[dict[str, Any]] = []
    for part in cache.parts.values():
        if part.index_version != index.version:
            continue
        slot = len(entries)
        prefix = f"cov{slot}_"
        arrays[prefix + "rows"] = np.asarray(part.rows, dtype=np.int64)
        arrays[prefix + "cols"] = np.asarray(part.cols, dtype=np.int64)
        arrays[prefix + "est"] = np.asarray(part.estimates, dtype=np.float64)
        arrays[prefix + "rep_sites"] = np.asarray(part.rep_sites, dtype=np.int64)
        arrays[prefix + "rep_clusters"] = np.asarray(part.rep_clusters, dtype=np.int64)
        entries.append({"slot": slot, **part.describe()})
    return arrays, entries


def _attach_coverage_parts(
    index: NetClusIndex,
    manifest: dict[str, Any],
    *,
    available: set[str],
    fetch: Any,
    lazy: bool,
    known_instance_ids: set[int] | None,
) -> None:
    """Attach the manifest's coverage parts to *index* (formats v3/v4).

    *fetch* maps a payload key to its array: the open ``np.load`` handle's
    ``__getitem__`` for v3 (only accepted parts decompress), the blob-view
    mapping's for v4.  A part recorded at a different ``index_version``
    than the manifest's is refused (skipped); structural corruption raises
    :class:`IndexFormatError`.

    With ``lazy=True`` (v4) the entry arrays stay zero-copy read-only
    views and the per-entry range checks are *deferred* — the coverage
    constructors re-validate at materialisation, so the cold load never
    pages a part in.  Shape consistency (entry counts, representative
    arrays, dtypes) is still verified eagerly: for v4 it comes from the
    offset table, which costs no page faults.  ``known_instance_ids``
    replaces the instance scan so attaching never materialises the lazy
    instance ladder.
    """
    from repro.core.covcache import CoveragePart, coverage_cache_key
    from repro.core.preference import is_registered, make_preference

    part_entries = manifest.get("coverage_parts", [])
    if not part_entries:
        return
    cache = index.enable_coverage_cache(limit=max(len(part_entries), 1))
    for entry in part_entries:
        if int(entry.get("index_version", -1)) != index.version:
            continue  # stale part: refuse, fall back to a cold rebuild
        slot = int(entry["slot"])
        prefix = f"cov{slot}_"
        label = f"coverage part {slot}"
        missing = [key for key in _COVERAGE_PART_KEYS if prefix + key not in available]
        if missing:
            raise IndexFormatError(
                f"{label}: payload arrays missing ({', '.join(missing)})"
            )
        name = str(entry.get("preference", ""))
        params = {
            str(k): float(v) for k, v in dict(entry.get("preference_params", {})).items()
        }
        try:
            preference = make_preference(name, **params)
        except Exception as exc:
            raise IndexFormatError(f"{label}: unknown preference {name!r}") from exc
        if not is_registered(preference):
            raise IndexFormatError(f"{label}: unregistered preference {name!r}")
        tau_km = float(entry["tau_km"])
        instance_id = int(entry["instance_id"])
        if known_instance_ids is not None:
            if instance_id not in known_instance_ids:
                raise IndexFormatError(f"{label}: index has no instance {instance_id}")
        elif not any(inst.instance_id == instance_id for inst in index.instances):
            raise IndexFormatError(f"{label}: index has no instance {instance_id}")
        if lazy:
            rows = fetch(prefix + "rows")
            cols = fetch(prefix + "cols")
            estimates = fetch(prefix + "est")
            if (
                rows.dtype != np.int64
                or cols.dtype != np.int64
                or estimates.dtype != np.float64
            ):
                raise IndexFormatError(f"{label}: entry arrays have wrong dtypes")
        else:
            rows = fetch(prefix + "rows").astype(np.int64)
            cols = fetch(prefix + "cols").astype(np.int64)
            estimates = fetch(prefix + "est").astype(np.float64)
        rep_sites = fetch(prefix + "rep_sites").astype(np.int64)
        rep_clusters = fetch(prefix + "rep_clusters").astype(np.int64)
        declared = int(entry.get("num_entries", len(rows)))
        if not (len(rows) == len(cols) == len(estimates) == declared):
            raise IndexFormatError(
                f"{label}: entry arrays are inconsistent "
                f"(rows={len(rows)}, cols={len(cols)}, est={len(estimates)}, "
                f"declared={declared})"
            )
        if len(rep_sites) != len(rep_clusters):
            raise IndexFormatError(f"{label}: representative arrays are inconsistent")
        num_trajectories = int(entry.get("num_trajectories", index.num_trajectories))
        if num_trajectories != index.num_trajectories:
            raise IndexFormatError(
                f"{label}: registry size mismatch "
                f"({num_trajectories} != {index.num_trajectories})"
            )
        if not lazy and len(rows) and (
            int(rows.min()) < 0
            or int(rows.max()) >= num_trajectories
            or int(cols.min()) < 0
            or int(cols.max()) >= len(rep_sites)
        ):
            raise IndexFormatError(f"{label}: entry indices out of range")
        key = coverage_cache_key(tau_km, preference)
        cache.attach_part(
            key,
            CoveragePart(
                tau_km=tau_km,
                preference_name=key[1],
                preference_params=key[2],
                instance_id=instance_id,
                index_version=index.version,
                num_trajectories=num_trajectories,
                rows=rows,
                cols=cols,
                estimates=estimates,
                rep_sites=[int(s) for s in rep_sites],
                rep_clusters=[int(c) for c in rep_clusters],
            ),
        )


def _shard_sizes(index: NetClusIndex) -> list[int]:
    """Trajectories per shard under the index's default shard layout."""
    from repro.core.shards import shard_assignments

    assignments = shard_assignments(index.trajectory_ids, index.shards)
    return np.bincount(assignments, minlength=index.shards).astype(int).tolist()


def _payload_arrays(index: NetClusIndex) -> dict[str, np.ndarray]:
    """Every payload array of *index*, exactly as ``save_index`` writes them."""
    payload = _network_arrays(index.network)
    payload["sites"] = np.asarray(sorted(index.sites), dtype=np.int64)
    payload["trajectory_ids"] = np.asarray(index.trajectory_ids, dtype=np.int64)
    payload.update(_visit_arrays(index))
    for instance in index.instances:
        payload.update(_instance_arrays(instance))
    return payload


def payload_digest(index: NetClusIndex, include_timings: bool = True) -> str:
    """Canonical SHA-256 over the serialized payload arrays of *index*.

    Hashes every array ``save_index`` would write (key + raw bytes, in key
    order) without touching the filesystem, so two indexes digest equally
    iff their serialized payloads are byte-identical.  With
    ``include_timings=False`` the per-instance ``build_seconds`` slot of
    each ``i<id>_meta`` array is zeroed first — the one payload entry that
    legitimately differs between two builds of the same data (e.g. the
    ``workers=1`` vs ``workers=N`` parity check).
    """
    arrays = _payload_arrays(index)
    if not include_timings:
        for key, value in arrays.items():
            if key.endswith("_meta"):
                value = value.copy()
                value[META_BUILD_SECONDS_SLOT] = 0.0
                arrays[key] = value
    digest = hashlib.sha256()
    for key in sorted(arrays):
        digest.update(key.encode())
        digest.update(np.ascontiguousarray(arrays[key]).tobytes())
    return digest.hexdigest()


def _network_arrays(network: RoadNetwork) -> dict[str, np.ndarray]:
    """Flatten a road network into payload arrays."""
    node_ids = np.asarray(network.node_ids(), dtype=np.int64)
    coords = np.asarray(
        [[network.node(i).x, network.node(i).y] for i in node_ids], dtype=np.float64
    )
    edges = sorted((e.source, e.target, e.length) for e in network.edges())
    edge_src = np.asarray([e[0] for e in edges], dtype=np.int64)
    edge_dst = np.asarray([e[1] for e in edges], dtype=np.int64)
    edge_len = np.asarray([e[2] for e in edges], dtype=np.float64)
    return {
        "net_node_ids": node_ids,
        "net_node_xy": coords,
        "net_edge_src": edge_src,
        "net_edge_dst": edge_dst,
        "net_edge_len": edge_len,
    }


def _visit_arrays(index: NetClusIndex) -> dict[str, np.ndarray]:
    """Visit-count bookkeeping arrays (format v2, ``most_frequent`` only).

    ``visit_counts`` is the per-node distinct-trajectory count;
    ``traj_nodes_indptr``/``traj_nodes_flat`` hold each trajectory's unique
    node array (in registry order), which dynamic removal needs to decrement
    the counts.  An index that does not track visits contributes nothing.
    """
    if not index._tracks_visits:
        return {}
    node_lists = [index._trajectory_nodes[traj_id] for traj_id in index.trajectory_ids]
    counts = np.asarray([len(nodes) for nodes in node_lists], dtype=np.int64)
    indptr = np.zeros(len(node_lists) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    flat = (
        np.concatenate(node_lists).astype(np.int64)
        if node_lists
        else np.empty(0, dtype=np.int64)
    )
    return {
        "visit_counts": np.asarray(index._node_visit_counts, dtype=np.int64),
        "traj_nodes_indptr": indptr,
        "traj_nodes_flat": flat,
    }


def _instance_arrays(instance: NetClusInstance) -> dict[str, np.ndarray]:
    """Flatten one index instance into payload arrays (CSR-style ragged lists)."""
    prefix = f"i{instance.instance_id}_"
    clusters = instance.clusters
    for position, cluster in enumerate(clusters):
        if cluster.cluster_id != position:
            raise IndexFormatError(
                f"instance {instance.instance_id}: cluster_id {cluster.cluster_id} "
                f"is not positional (expected {position}); cannot serialise"
            )
    arrays: dict[str, np.ndarray] = {
        prefix + "meta": np.asarray(
            [
                instance.radius_km,
                instance.gamma,
                instance.build_seconds,
                instance.mean_dominating_set_size,
            ],
            dtype=np.float64,
        ),
        prefix + "centers": np.asarray([c.center for c in clusters], dtype=np.int64),
        prefix + "reps": np.asarray(
            [c.representative if c.representative is not None else -1 for c in clusters],
            dtype=np.int64,
        ),
        prefix + "rep_rt": np.asarray(
            [c.representative_round_trip_km for c in clusters], dtype=np.float64
        ),
    }
    # the three ragged per-cluster lists, each as (indptr, ids, values);
    # iteration order is preserved — it decides ties in re-election
    for key, pairs in (
        ("nodes", [list(c.nodes.items()) for c in clusters]),
        ("tl", [list(c.trajectory_list.items()) for c in clusters]),
        ("nb", [c.neighbors for c in clusters]),
    ):
        counts = np.asarray([len(p) for p in pairs], dtype=np.int64)
        indptr = np.zeros(len(pairs) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        flat = [item for p in pairs for item in p]
        arrays[prefix + key + "_indptr"] = indptr
        arrays[prefix + key + "_ids"] = np.asarray(
            [item[0] for item in flat], dtype=np.int64
        )
        arrays[prefix + key + "_vals"] = np.asarray(
            [item[1] for item in flat], dtype=np.float64
        )
    n2c = list(instance.node_to_cluster.items())
    arrays[prefix + "n2c_nodes"] = np.asarray([n for n, _ in n2c], dtype=np.int64)
    arrays[prefix + "n2c_clusters"] = np.asarray([c for _, c in n2c], dtype=np.int64)
    return arrays


# ---------------------------------------------------------------------- #
# load
# ---------------------------------------------------------------------- #
def load_manifest(path: str | Path) -> dict[str, Any]:
    """Read and validate the manifest of an index directory.

    Checks the format name and version only; :func:`load_index` additionally
    verifies the payload and fingerprints.
    """
    directory = Path(path)
    manifest_path = directory / MANIFEST_FILE
    if not manifest_path.is_file():
        raise IndexFormatError(f"no {MANIFEST_FILE} in {directory}")
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    if manifest.get("format") != FORMAT_NAME:
        raise IndexFormatError(
            f"not a {FORMAT_NAME} directory (format={manifest.get('format')!r})"
        )
    version = manifest.get("format_version")
    if version not in SUPPORTED_FORMAT_VERSIONS:
        raise IndexFormatError(
            f"unsupported format version {version!r} (this build reads "
            f"versions {sorted(SUPPORTED_FORMAT_VERSIONS)})"
        )
    return manifest


def load_index(
    path: str | Path,
    network: RoadNetwork | None = None,
    dataset: TrajectoryDataset | None = None,
    *,
    with_coverage: bool = True,
) -> NetClusIndex:
    """Load a persisted index from directory *path*.

    Parameters
    ----------
    path:
        Directory written by :func:`save_index`.
    network:
        Optional road network to attach instead of reconstructing one from
        the payload.  Its :func:`graph_fingerprint` must match the manifest —
        loading an index against a different city is refused.
    dataset:
        Optional trajectory dataset to validate against the index's
        trajectory registry (:func:`trajectory_fingerprint` must match —
        and, when the manifest carries a ``trajectory_content``
        fingerprint, :func:`dataset_fingerprint` as well).  The dataset is
        not stored in the index; this is purely a guard for callers that
        will score results exactly against it.
    with_coverage:
        Whether to attach the manifest's coverage parts (format v3) to the
        loaded index's :class:`~repro.core.covcache.CoverageCache`, so a
        placement service cold-starts warm.  ``False`` skips the part
        payloads entirely (they are stored as separate ``.npz`` members and
        are then never decompressed).  Parts recorded at a stale
        ``index_version`` are refused — skipped with a clean fallback to
        cold rebuilds — while structurally corrupted parts raise.

    Raises
    ------
    IndexFormatError
        On missing files, format/version mismatch, payload corruption, or a
        graph/trajectory fingerprint mismatch.
    """
    directory = Path(path)
    manifest = load_manifest(directory)
    format_version = int(manifest.get("format_version", 1))
    fingerprints = manifest.get("fingerprints", {})
    arrays: dict[str, np.ndarray]
    if format_version >= 4:
        # v4: map the packed blob once; views are zero-copy and read-only,
        # and nothing below this line decompresses or hashes the payload —
        # integrity rests on the offset-table validation in _open_blob plus
        # the structural fingerprint checks over the arrays actually read
        blob, table = _open_blob(directory, manifest)
        arrays = _blob_views(blob, table)
    else:
        payload_path = directory / PAYLOAD_FILE
        if not payload_path.is_file():
            raise IndexFormatError(f"no {PAYLOAD_FILE} in {directory}")
        actual_payload = _file_sha256(payload_path)
        if actual_payload != fingerprints.get("payload_sha256"):
            raise IndexFormatError(
                "payload fingerprint mismatch: payload.npz does not match the "
                "manifest (corrupted or partially written index)"
            )
        with np.load(payload_path) as payload:
            # coverage parts stay lazy: .npz members decompress per array, so
            # the structural load never touches cov<slot>_* payloads
            arrays = {
                key: payload[key] for key in payload.files if not key.startswith("cov")
            }

    if network is None:
        network = _rebuild_network(arrays)
        # the graph was just rebuilt from the payload's canonical
        # flattening — hash those arrays directly
        actual_graph = _graph_fingerprint_from_arrays(arrays)
    else:
        actual_graph = graph_fingerprint(network)
    if actual_graph != fingerprints.get("graph"):
        raise IndexFormatError(
            "graph fingerprint mismatch: the supplied road network is not "
            "the one this index was built on"
        )
    trajectory_ids = [int(t) for t in arrays["trajectory_ids"]]
    if trajectory_fingerprint(trajectory_ids) != fingerprints.get("trajectories"):
        raise IndexFormatError(
            "trajectory fingerprint mismatch: payload registry does not "
            "match the manifest"
        )
    if dataset is not None:
        if trajectory_fingerprint(dataset.ids()) != fingerprints.get("trajectories"):
            raise IndexFormatError(
                "trajectory fingerprint mismatch: the supplied dataset is not "
                "the one this index was built on"
            )
        expected_content = fingerprints.get("trajectory_content")
        if (
            expected_content is not None
            and dataset_fingerprint(dataset) != expected_content
        ):
            raise IndexFormatError(
                "trajectory content mismatch: the supplied dataset shares the "
                "index's id numbering but holds different trajectories"
            )

    params = manifest["build_params"]
    instance_ids = [int(entry["instance_id"]) for entry in manifest["instances"]]
    instances: Sequence[NetClusInstance]
    if format_version >= 4:
        # lazy ladder: a query at one τ materialises one instance; update
        # paths (which iterate every instance) materialise the rest on demand
        instances = _LazyInstances(arrays, instance_ids)
    else:
        instances = [_rebuild_instance(arrays, instance_id) for instance_id in instance_ids]
    node_visit_counts = None
    trajectory_nodes = None
    if "visit_counts" in arrays:  # format v2, most_frequent indexes only
        if format_version >= 4:
            # zero-copy read-only views; NetClusIndex copies-on-write
            node_visit_counts = arrays["visit_counts"]
            indptr = arrays["traj_nodes_indptr"]
            flat = arrays["traj_nodes_flat"]
            trajectory_nodes = {
                traj_id: flat[int(indptr[row]) : int(indptr[row + 1])]
                for row, traj_id in enumerate(trajectory_ids)
            }
        else:
            node_visit_counts = arrays["visit_counts"].astype(np.int64)
            indptr = arrays["traj_nodes_indptr"]
            flat = arrays["traj_nodes_flat"]
            trajectory_nodes = {
                traj_id: flat[int(indptr[row]) : int(indptr[row + 1])].astype(np.int64)
                for row, traj_id in enumerate(trajectory_ids)
            }
    index = NetClusIndex(
        network=network,
        sites=[int(s) for s in arrays["sites"]],
        instances=instances,
        tau_min_km=float(params["tau_min_km"]),
        tau_max_km=float(params["tau_max_km"]),
        gamma=float(params["gamma"]),
        trajectory_ids=trajectory_ids,
        representative_strategy=str(params.get("representative_strategy", "closest")),
        version=int(manifest.get("index_version", 0)),
        node_visit_counts=node_visit_counts,
        trajectory_nodes=trajectory_nodes,
        build_stats=[
            BuildStats.from_dict(entry) for entry in manifest.get("build_stats", [])
        ],
        max_instances=(
            int(params["max_instances"])
            if params.get("max_instances") is not None
            else None
        ),
        shards=int(manifest.get("shards", 1)),
    )
    if with_coverage and manifest.get("coverage_parts"):
        if format_version >= 4:
            _attach_coverage_parts(
                index,
                manifest,
                available=set(arrays),
                fetch=arrays.__getitem__,
                lazy=True,
                known_instance_ids=set(instance_ids),
            )
        else:
            with np.load(payload_path) as payload:
                _attach_coverage_parts(
                    index,
                    manifest,
                    available=set(payload.files),
                    fetch=payload.__getitem__,
                    lazy=False,
                    known_instance_ids=None,
                )
    return index


def _rebuild_network(arrays: dict[str, np.ndarray]) -> RoadNetwork:
    """Reconstruct the road network from payload arrays (bulk fast path)."""
    return RoadNetwork.from_arrays(
        arrays["net_node_ids"],
        arrays["net_node_xy"],
        arrays["net_edge_src"],
        arrays["net_edge_dst"],
        arrays["net_edge_len"],
    )


def _rebuild_instance(arrays: dict[str, np.ndarray], instance_id: int) -> NetClusInstance:
    """Reconstruct one index instance from payload arrays."""
    prefix = f"i{instance_id}_"
    meta = arrays[prefix + "meta"]
    centers = arrays[prefix + "centers"]
    reps = arrays[prefix + "reps"]
    rep_rt = arrays[prefix + "rep_rt"]
    ragged = {
        key: (
            arrays[prefix + key + "_indptr"],
            arrays[prefix + key + "_ids"],
            arrays[prefix + key + "_vals"],
        )
        for key in ("nodes", "tl", "nb")
    }
    clusters: list[NetClusCluster] = []
    for cid in range(len(centers)):
        cluster = NetClusCluster(
            cluster_id=cid,
            center=int(centers[cid]),
            nodes=_ragged_dict(ragged["nodes"], cid),
            representative=int(reps[cid]) if reps[cid] >= 0 else None,
            representative_round_trip_km=float(rep_rt[cid])
            if reps[cid] >= 0
            else math.inf,
            trajectory_list=_ragged_dict(ragged["tl"], cid),
            neighbors=_ragged_pairs(ragged["nb"], cid),
        )
        clusters.append(cluster)
    node_to_cluster = {
        int(node): int(cid)
        for node, cid in zip(arrays[prefix + "n2c_nodes"], arrays[prefix + "n2c_clusters"])
    }
    return NetClusInstance(
        instance_id=int(instance_id),
        radius_km=float(meta[0]),
        gamma=float(meta[1]),
        clusters=clusters,
        node_to_cluster=node_to_cluster,
        build_seconds=float(meta[2]),
        mean_dominating_set_size=float(meta[3]),
    )


class _LazyInstances(Sequence[NetClusInstance]):
    """The v4 instance ladder: rebuild each instance on first access.

    Positional access (the query path's τ snapping) materialises exactly
    one rung; iteration (update paths, ``storage_bytes``) materialises
    front-to-back and stops where the consumer stops, so e.g. the coverage
    cache's linear ``instance_id`` scan never touches rungs past its match.
    Materialised instances are cached — every access returns the same
    object, preserving the identity semantics of an eager list.
    """

    def __init__(self, arrays: dict[str, np.ndarray], instance_ids: list[int]) -> None:
        self._arrays = arrays
        self._instance_ids = list(instance_ids)
        self._cache: list[NetClusInstance | None] = [None] * len(self._instance_ids)

    def __len__(self) -> int:
        return len(self._instance_ids)

    def materialised_count(self) -> int:
        """How many rungs have been rebuilt so far (observability/tests)."""
        return sum(1 for instance in self._cache if instance is not None)

    def position_of(self, instance_id: int) -> int | None:
        """Ladder position of the rung with this id, or ``None``.

        Answered from the manifest's id list, so e.g. the coverage cache
        can jump straight to a part's backing rung instead of scanning
        (and thereby rebuilding) every rung below it.
        """
        try:
            return self._instance_ids.index(int(instance_id))
        except ValueError:
            return None

    def summary_of(self, position: int) -> tuple[int, float, int]:
        """``(instance_id, radius_km, num_clusters)`` of one rung, cheaply.

        Reads two payload arrays (the 4-float meta record and the center
        list's length) instead of rebuilding the rung — the coverage
        cache uses this to report query metadata for a warm part without
        materialising its backing instance.
        """
        cached = self._cache[position]
        if cached is not None:
            return (cached.instance_id, cached.radius_km, cached.num_clusters)
        instance_id = self._instance_ids[position]
        prefix = f"i{instance_id}_"
        meta = self._arrays[prefix + "meta"]
        num_clusters = int(self._arrays[prefix + "centers"].shape[0])
        return (int(instance_id), float(meta[0]), num_clusters)

    @overload
    def __getitem__(self, position: int) -> NetClusInstance: ...

    @overload
    def __getitem__(self, position: slice) -> Sequence[NetClusInstance]: ...

    def __getitem__(
        self, position: int | slice
    ) -> "NetClusInstance | Sequence[NetClusInstance]":
        if isinstance(position, slice):
            return [self[i] for i in range(*position.indices(len(self)))]
        index = int(position)
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        instance = self._cache[index]
        if instance is None:
            instance = _rebuild_instance(self._arrays, self._instance_ids[index])
            self._cache[index] = instance
        return instance


def _ragged_slice(
    ragged: tuple[np.ndarray, np.ndarray, np.ndarray], index: int
) -> tuple[np.ndarray, np.ndarray]:
    indptr, ids, vals = ragged
    start, stop = int(indptr[index]), int(indptr[index + 1])
    return ids[start:stop], vals[start:stop]


def _ragged_dict(
    ragged: tuple[np.ndarray, np.ndarray, np.ndarray], index: int
) -> dict[int, float]:
    ids, vals = _ragged_slice(ragged, index)
    return {int(i): float(v) for i, v in zip(ids, vals)}


def _ragged_pairs(
    ragged: tuple[np.ndarray, np.ndarray, np.ndarray], index: int
) -> list[tuple[int, float]]:
    ids, vals = _ragged_slice(ragged, index)
    return [(int(i), float(v)) for i, v in zip(ids, vals)]
