"""The placement service: a persistent, queryable façade over a NetClus index.

:class:`PlacementService` owns one :class:`~repro.core.netclus.NetClusIndex`
— loaded from disk, passed in, or lazily built on first use — and answers
batches of :class:`~repro.service.specs.QuerySpec` with three layers of
shared work:

1. **Coverage sharing** — specs with the same ``(τ, ψ)`` resolve the index
   instance and build the clustered-space coverage
   (:meth:`NetClusIndex.prepare_coverage`) exactly once per batch.
2. **Warm-started greedy** — specs that differ only in ``k`` share a single
   greedy run at the largest k: a greedy selection for k is a prefix of the
   selection for any larger k, so smaller-k answers are replayed from the
   shared selection order (``utilities_for_selection``).
3. **LRU result cache** — results are cached keyed on the (hashable) spec,
   so repeated queries — the common case for a served index — are O(1).
   The cache is stamped with the index's :attr:`~NetClusIndex.version` and
   drops itself automatically when the index has been mutated through
   dynamic updates (``service.index.add_site(...)``,
   :meth:`~NetClusIndex.apply_updates`, ...), so a served selection can
   never be stale.
4. **Sharded gain evaluation** — with ``shards=S`` every coverage is
   built as a :class:`~repro.core.shards.ShardedCoverage` (S disjoint
   trajectory shards, deterministic by trajectory id) and
   ``query_workers=N`` evaluates the per-shard marginal-gain work on a
   persistent thread pool.  Sharding never changes results — selections
   and utilities are identical to the unsharded path — it only splits the
   gain evaluation into concurrently evaluable pieces.

``stats`` counts every resolution/build/run and every cache hit, and
accumulates per-stage query timings (coverage build / greedy run / prefix
replay seconds), which is both the service's observability surface and how
the batch-amortisation contract is asserted in the test suite.

The service is **safe for concurrent callers**: ``batch_query`` runs under
a shared readers-writer lock (many batches in parallel), dynamic updates
go through :meth:`PlacementService.apply_updates` which takes the lock
exclusively — so a reader always observes either the pre- or the
post-update index, never a half-applied batch — and the LRU cache and
counters are mutex-guarded.  The lazy index build runs at most once no
matter how many threads race the first query.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.core.covcache import CoverageCache
from repro.core.coverage import ENGINES
from repro.core.greedy import IncGreedy, LazyGreedy
from repro.core.netclus import ClusteredCoverage, NetClusIndex, UpdateBatch
from repro.core.preference import is_registered
from repro.core.query import TOPSQuery, TOPSResult
from repro.core.variants import solve_tops_cost
from repro.network.graph import RoadNetwork
from repro.service.serialization import load_index, save_index
from repro.service.specs import QuerySpec
from repro.trajectory.model import TrajectoryDataset
from repro.utils.concurrency import guarded_by, holds_lock
from repro.utils.parallel import resolve_workers
from repro.utils.timer import KernelTimer, Timer
from repro.utils.validation import require

__all__ = ["PlacementService", "ServiceStats"]


@guarded_by("_condition", "_active_readers", "_writer_active", "_writers_waiting")
class _ReadWriteLock:
    """A writer-preferring readers-writer lock.

    Any number of readers may hold the lock together; a writer holds it
    exclusively.  Arriving writers block new readers (no writer
    starvation), which matches the service's profile — many concurrent
    ``batch_query`` readers, occasional ``apply_updates`` writers.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Hold the lock as one of possibly many concurrent readers."""
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._active_readers += 1
        try:
            yield
        finally:
            with self._condition:
                self._active_readers -= 1
                if self._active_readers == 0:
                    self._condition.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Hold the lock exclusively (no readers, no other writer)."""
        with self._condition:
            self._writers_waiting += 1
            while self._writer_active or self._active_readers:
                self._condition.wait()
            self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._condition:
                self._writer_active = False
                self._condition.notify_all()


@guarded_by(
    "_lock",
    "queries_served",
    "cache_hits",
    "cache_misses",
    "instance_resolutions",
    "coverage_builds",
    "coverage_cache_hits",
    "coverage_cache_misses",
    "greedy_runs",
    "index_builds",
    "coverage_build_seconds",
    "coverage_materialise_seconds",
    "greedy_seconds",
    "replay_seconds",
)
@dataclass
class ServiceStats:
    """Work counters of a :class:`PlacementService` (monotonic until reset).

    Increments go through :meth:`bump`, which serialises concurrent
    counting — the counters stay exact under parallel ``batch_query``
    callers.  Besides the integer work counters, the stats accumulate the
    per-stage query timings of every batch: seconds spent building
    coverages (instance resolution + estimate materialisation), running
    greedy selections, and replaying shared-run prefixes for smaller-k
    members.
    """

    queries_served: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    instance_resolutions: int = 0
    coverage_builds: int = 0
    #: coverage groups served warm from the index's coverage cache (zero
    #: coverage-build work) / groups that had to build because no current
    #: part existed — both stay 0 when no cache is enabled
    coverage_cache_hits: int = 0
    coverage_cache_misses: int = 0
    greedy_runs: int = 0
    index_builds: int = 0
    #: per-stage query timings (seconds, accumulated across batches)
    coverage_build_seconds: float = 0.0
    #: time spent materialising warm cache views (never coverage builds)
    coverage_materialise_seconds: float = 0.0
    greedy_seconds: float = 0.0
    replay_seconds: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    #: per-kernel profiler the service attaches to every prepared coverage;
    #: self-locking, so it is not guarded by ``_lock``
    _kernels: KernelTimer = field(
        default_factory=KernelTimer, repr=False, compare=False
    )

    @property
    def kernel_timer(self) -> KernelTimer:
        """The per-kernel profiler (attach it to a coverage index)."""
        return self._kernels

    def kernel_snapshot(self) -> dict[str, tuple[int, float]]:
        """``{kernel: (calls, seconds)}`` recorded by the ``@kernel`` wrapper."""
        return self._kernels.snapshot()

    def bump(self, **counts: int | float) -> None:
        """Atomically add the given amounts to the named counters."""
        with self._lock:
            for name, amount in counts.items():
                setattr(self, name, getattr(self, name) + amount)

    def as_dict(self) -> dict[str, int | float]:
        """The counters as one consistent plain dict (reporting/CLI/metrics).

        Taken under the counter lock, so a concurrent :meth:`bump` can
        never produce a torn snapshot — this is what the HTTP server's
        ``/metrics`` endpoint renders while query threads are counting.
        """
        with self._lock:
            return {
                "queries_served": self.queries_served,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "instance_resolutions": self.instance_resolutions,
                "coverage_builds": self.coverage_builds,
                "coverage_cache_hits": self.coverage_cache_hits,
                "coverage_cache_misses": self.coverage_cache_misses,
                "greedy_runs": self.greedy_runs,
                "index_builds": self.index_builds,
                "coverage_build_seconds": self.coverage_build_seconds,
                "coverage_materialise_seconds": self.coverage_materialise_seconds,
                "greedy_seconds": self.greedy_seconds,
                "replay_seconds": self.replay_seconds,
            }

    def stage_seconds(self) -> dict[str, float]:
        """The per-stage query timings, plus per-kernel seconds.

        Kernel entries appear as ``kernel_<name>_seconds`` (e.g.
        ``kernel_marginal_gains_seconds``) once the ``@kernel`` wrapper has
        recorded at least one call for that kernel.
        """
        kernel_seconds = self._kernels.seconds()
        with self._lock:
            stages = {
                "coverage_build_seconds": self.coverage_build_seconds,
                "coverage_materialise_seconds": self.coverage_materialise_seconds,
                "greedy_seconds": self.greedy_seconds,
                "replay_seconds": self.replay_seconds,
            }
        for name, seconds in kernel_seconds.items():
            stages[f"kernel_{name}_seconds"] = seconds
        return stages

    def reset(self) -> None:
        """Zero every counter, atomically with respect to :meth:`bump`."""
        with self._lock:
            self.queries_served = 0
            self.cache_hits = 0
            self.cache_misses = 0
            self.instance_resolutions = 0
            self.coverage_builds = 0
            self.coverage_cache_hits = 0
            self.coverage_cache_misses = 0
            self.greedy_runs = 0
            self.index_builds = 0
            self.coverage_build_seconds = 0.0
            self.coverage_materialise_seconds = 0.0
            self.greedy_seconds = 0.0
            self.replay_seconds = 0.0
        self._kernels.reset()


@dataclass
class _PreparedGroup:
    """One coverage group of a batch: shared structures + member spec indices."""

    prepared: ClusteredCoverage
    build_seconds: float
    members: list[int] = field(default_factory=list)


@guarded_by("_cache_lock", "_cache", "_cache_version")
@guarded_by("_executor_lock", "_executor")
class PlacementService:
    """A persistent placement service over one city's NetClus index.

    Parameters
    ----------
    index:
        A ready :class:`NetClusIndex` (e.g. from
        :func:`~repro.service.serialization.load_index`).
    builder:
        Alternative to *index*: a zero-argument callable building the index
        on first use (lazy construction; see :meth:`from_problem`).
    engine:
        Coverage engine for every query: ``"sparse"`` (default — CSR/CSC
        coverage with the CELF lazy greedy), ``"dense"`` (the paper's
        matrices), ``"bitset"`` (uint64-packed binary coverage with
        popcount gains; binary ψ only) or ``"auto"`` (bitset when the
        spec's ψ is binary, sparse otherwise — resolved per spec).
        Selections are identical for every engine.
    cache_size:
        Capacity of the LRU result cache (0 disables caching).
    shards:
        Trajectory-shard count for every coverage the service builds
        (``None`` = the index's own default, which is 1 unless the saved
        index carries a shard layout).  Sharding never changes results;
        with ``shards > 1`` the gain evaluation splits into S independent
        pieces that ``query_workers`` can evaluate concurrently.
    query_workers:
        Workers of the persistent shard-evaluation thread pool — a
        positive integer or ``"auto"`` (the usable-CPU count).  Only
        engaged when the effective shard count exceeds 1; ``1`` evaluates
        shards in-line.

    Examples
    --------
    >>> service = PlacementService.from_problem(problem, tau_max_km=4.0)
    >>> service.save("beijing.ncx")                        # doctest: +SKIP
    >>> service = PlacementService.from_path("beijing.ncx")  # doctest: +SKIP
    >>> results = service.batch_query([
    ...     QuerySpec(k=5, tau_km=1.0),
    ...     QuerySpec(k=10, tau_km=1.0),     # shares the k=10 greedy run
    ...     QuerySpec(k=5, tau_km=2.0, capacity=40),
    ... ])
    """

    def __init__(
        self,
        index: NetClusIndex | None = None,
        *,
        builder: Callable[[], NetClusIndex] | None = None,
        engine: str = "sparse",
        cache_size: int = 128,
        shards: int | None = None,
        query_workers: int | str = 1,
        coverage_cache: bool | None = None,
        coverage_cache_limit: int | None = None,
    ) -> None:
        require(
            (index is not None) or (builder is not None),
            "PlacementService needs an index or a builder",
        )
        require(
            engine in ENGINES,
            f"unknown engine {engine!r}; choose from {', '.join(ENGINES)}",
        )
        require(cache_size >= 0, "cache_size must be non-negative")
        if shards is not None:
            require(int(shards) >= 1, "shards must be >= 1")
            shards = int(shards)
        self._index = index
        self._builder = builder
        self.engine = engine
        self.cache_size = cache_size
        self.shards = shards
        self.query_workers = resolve_workers(query_workers)
        #: coverage-cache policy: ``True`` enables the index's persistent
        #: :class:`~repro.core.covcache.CoverageCache` (zero-rebuild
        #: steady-state queries), ``False`` detaches it, ``None`` (default)
        #: keeps whatever the index already has — e.g. parts loaded from a
        #: format-v3 directory
        self._coverage_cache_opt = coverage_cache
        self._coverage_cache_limit = coverage_cache_limit
        if index is not None:
            self._apply_coverage_cache_policy(index)
        self._cache: OrderedDict[QuerySpec, TOPSResult] = OrderedDict()
        self._cache_version: int | None = None
        self.stats = ServiceStats()
        # concurrency: readers (batch_query) share the index lock, writers
        # (apply_updates) take it exclusively; the cache has its own mutex
        # (it mutates on reads too — LRU recency), and the lazy index build
        # runs at most once behind its own lock.  The shard-evaluation
        # executor is created lazily (at most once) and persists across
        # queries.
        self._index_lock = _ReadWriteLock()
        self._cache_lock = threading.RLock()
        self._build_lock = threading.Lock()
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # construction / persistence
    # ------------------------------------------------------------------ #
    @classmethod
    def from_problem(
        cls,
        problem: Any,
        *,
        engine: str = "sparse",
        cache_size: int = 128,
        shards: int | None = None,
        query_workers: int | str = 1,
        coverage_cache: bool | None = None,
        coverage_cache_limit: int | None = None,
        **build_kwargs: Any,
    ) -> "PlacementService":
        """A service that lazily builds its index from a ``TOPSProblem``.

        *build_kwargs* are forwarded to
        :meth:`~repro.core.problem.TOPSProblem.build_netclus_index` (γ,
        τ range, ...); the offline phase runs on the first query or
        :meth:`save`, not at construction.
        """
        return cls(
            builder=lambda: problem.build_netclus_index(**build_kwargs),
            engine=engine,
            cache_size=cache_size,
            shards=shards,
            query_workers=query_workers,
            coverage_cache=coverage_cache,
            coverage_cache_limit=coverage_cache_limit,
        )

    @classmethod
    def from_path(
        cls,
        path: str | Path,
        network: RoadNetwork | None = None,
        dataset: TrajectoryDataset | None = None,
        *,
        engine: str = "sparse",
        cache_size: int = 128,
        shards: int | None = None,
        query_workers: int | str = 1,
        coverage_cache: bool | None = None,
        coverage_cache_limit: int | None = None,
    ) -> "PlacementService":
        """A service over a persisted index directory (see ``save``).

        Fingerprints are verified on load; a *network*/*dataset* that does
        not match what the index was built on is refused.  ``shards=None``
        inherits the saved index's shard layout (manifest ``shards`` key).
        A format-v3 directory with coverage parts cold-starts warm: the
        parts are attached on load (``coverage_cache=None`` keeps them;
        ``False`` drops them; ``True`` additionally enables the cache even
        when the directory carried no parts).
        """
        return cls(
            index=load_index(
                path,
                network=network,
                dataset=dataset,
                with_coverage=coverage_cache is not False,
            ),
            engine=engine,
            cache_size=cache_size,
            shards=shards,
            query_workers=query_workers,
            coverage_cache=coverage_cache,
            coverage_cache_limit=coverage_cache_limit,
        )

    @property
    def index(self) -> NetClusIndex:
        """The underlying NetClus index (building it now if lazy).

        The lazy build is serialised: concurrent first-time callers block
        until one of them has built the index, which every caller then
        shares (``stats.index_builds`` stays 1).
        """
        if self._index is None:
            with self._build_lock:
                if self._index is None:
                    built = self._builder()
                    self._apply_coverage_cache_policy(built)
                    self._index = built
                    self.stats.bump(index_builds=1)
        return self._index

    def _apply_coverage_cache_policy(self, index: NetClusIndex) -> None:
        """Enable/detach the index's coverage cache per the service knob."""
        if self._coverage_cache_opt is True:
            index.enable_coverage_cache(limit=self._coverage_cache_limit)
        elif self._coverage_cache_opt is False:
            index.coverage_cache = None
        elif self._coverage_cache_limit is not None and index.coverage_cache is not None:
            index.coverage_cache.limit = int(self._coverage_cache_limit)

    @property
    def coverage_cache(self) -> CoverageCache | None:
        """The index's coverage cache, or ``None`` (no lazy index build)."""
        return getattr(self._index, "coverage_cache", None)

    @property
    def index_version(self) -> int | None:
        """Version of the owned index without forcing the lazy build.

        ``None`` while a lazily-constructed service has not built its
        index yet; the HTTP server reports this as version ``-1`` on
        ``/healthz`` and ``/metrics`` rather than triggering a build
        from an observability probe.
        """
        return None if self._index is None else int(self._index.version)

    @property
    def effective_shards(self) -> int:
        """The shard count every coverage is built with (resolves the index default)."""
        if self.shards is not None:
            return self.shards
        return int(getattr(self.index, "shards", 1))

    def _shard_executor(self) -> ThreadPoolExecutor | None:
        """The persistent shard-evaluation pool (created at most once).

        ``None`` when sharding or the worker count makes a pool pointless;
        the pool is shared by every query and survives across batches — a
        served process pays the thread start-up exactly once.
        """
        if self.query_workers <= 1 or self.effective_shards <= 1:
            return None
        # always under the lock: a lock-free fast-path read of
        # self._executor races with close() swapping the pool out, and the
        # uncontended acquire costs nothing next to a shard evaluation
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=min(self.query_workers, self.effective_shards),
                    thread_name_prefix="shard-eval",
                )
            return self._executor

    def close(self) -> None:
        """Shut the shard-evaluation pool down (idempotent).

        Takes the index lock exclusively, so an in-flight ``batch_query``
        (a reader holding the pool) finishes before the pool shuts down —
        concurrent queries can never observe a dead executor.  Queries
        remain valid afterwards: the next sharded query simply re-creates
        the pool.
        """
        with self._index_lock.write_locked():
            with self._executor_lock:
                if self._executor is not None:
                    self._executor.shutdown(wait=True)
                    self._executor = None

    def save(self, path: str | Path, dataset: TrajectoryDataset | None = None) -> Path:
        """Persist the index to *path* (a directory); returns the path.

        Pass the *dataset* the index was built on to additionally record a
        trajectory-content fingerprint in the manifest (see
        :func:`~repro.service.serialization.save_index`).  Takes the index
        read lock, so a save never captures a mid-update index.
        """
        index = self.index
        with self._index_lock.read_locked():
            return save_index(index, path, dataset=dataset)

    # ------------------------------------------------------------------ #
    # dynamic updates
    # ------------------------------------------------------------------ #
    def apply_updates(self, batch: UpdateBatch) -> int:
        """Apply an :class:`~repro.core.netclus.UpdateBatch` to the index.

        The concurrency-safe mutation surface of the service: the batch is
        applied under the exclusive index lock, so in-flight
        ``batch_query`` calls finish against the pre-update index and
        every call starting afterwards sees the fully updated one —
        readers can never observe a half-applied batch.  The result cache
        is dropped in the same critical section.  Returns the number of
        update items applied.

        Mutating through ``service.index.apply_updates(...)`` directly
        remains *correct* for the cache (it is version-stamped) but
        bypasses the locking — concurrent readers may then race the
        mutation.  Multi-threaded deployments should mutate only through
        this method.
        """
        index = self.index
        with self._index_lock.write_locked():
            applied = index.apply_updates(batch)
            with self._cache_lock:
                self._cache.clear()
                self._cache_version = index.version
        return applied

    def invalidate_cache(self) -> None:
        """Drop every cached result (manual override).

        Calling this is no longer required after dynamic updates: the cache
        is stamped with :attr:`NetClusIndex.version` and invalidates itself
        as soon as a query observes a mutated index.  The method remains
        for callers that want to force a drop (e.g. to free memory).
        """
        with self._cache_lock:
            self._cache.clear()

    def _sync_cache_version(self) -> None:
        """Drop the cache if the index was mutated since it was populated."""
        if self._index is None:
            return
        with self._cache_lock:
            if self._cache and self._cache_version != self._index.version:
                self._cache.clear()
            self._cache_version = self._index.version

    @property
    def cache_len(self) -> int:
        """Number of results currently cached."""
        with self._cache_lock:
            return len(self._cache)

    # ------------------------------------------------------------------ #
    # querying
    # ------------------------------------------------------------------ #
    def query(
        self, spec: QuerySpec | TOPSQuery, use_cache: bool = True
    ) -> TOPSResult:
        """Answer a single spec (see :meth:`batch_query`)."""
        return self.batch_query([spec], use_cache=use_cache)[0]

    def batch_query(
        self,
        specs: Sequence[QuerySpec | TOPSQuery],
        use_cache: bool = True,
    ) -> list[TOPSResult]:
        """Answer a batch of specs, amortising shared work across them.

        Results are returned in input order and are identical — site
        selections, utilities, per-trajectory utilities — to answering each
        spec individually against a freshly prepared coverage (the batch
        only removes repeated work, never changes the computation).

        With ``use_cache=False`` the LRU cache is neither consulted nor
        populated (timing studies); batch-level sharing still applies.

        A :class:`TOPSQuery` whose preference is a custom (unregistered)
        :class:`~repro.core.preference.PreferenceFunction` subclass —
        including a subclass of a registered class — cannot be expressed
        as a serialisable spec; it is answered directly via ``index.query``
        with the original ψ object: correct, but outside the cache and the
        batch amortisation.

        ``batch_query`` is safe to call from many threads at once: the
        whole batch is served under the shared index read lock, so every
        member sees one consistent index-version snapshot — a concurrent
        :meth:`apply_updates` waits for in-flight batches and is observed
        only by batches starting after it, never mid-batch.
        """
        self.stats.bump(queries_served=len(specs))
        index = self.index  # resolve the lazy build outside the read lock
        with self._index_lock.read_locked():
            self._sync_cache_version()
            results: list[TOPSResult | None] = [None] * len(specs)
            resolved: list[QuerySpec | None] = [None] * len(specs)
            for position, spec in enumerate(specs):
                if isinstance(spec, TOPSQuery) and not is_registered(spec.preference):
                    # unregistered ψ: answer outside the spec machinery,
                    # but with the same shard layout + worker pool and the
                    # same per-stage timing accounting as spec queries
                    with Timer() as build_timer:
                        prepared = index.prepare_coverage(
                            spec.tau_km,
                            spec.preference,
                            engine=self.engine,
                            shards=self.effective_shards,
                            executor=self._shard_executor(),
                        )
                    prepared.coverage.attach_kernel_timer(self.stats.kernel_timer)
                    with Timer() as run_timer:
                        results[position] = index.query(
                            spec, engine=self.engine, prepared=prepared
                        )
                    self.stats.bump(
                        instance_resolutions=1,
                        coverage_builds=1,
                        greedy_runs=1,
                        coverage_build_seconds=build_timer.elapsed,
                        greedy_seconds=run_timer.elapsed,
                    )
                else:
                    resolved[position] = self._coerce(spec)

            pending: list[int] = []
            with self._cache_lock:
                for position, spec in enumerate(resolved):
                    if spec is None:
                        continue
                    if use_cache and spec in self._cache:
                        self._cache.move_to_end(spec)
                        self.stats.bump(cache_hits=1)
                        results[position] = self._cache[spec]
                    else:
                        if use_cache:
                            self.stats.bump(cache_misses=1)
                        pending.append(position)

            groups = self._prepare_groups(resolved, pending)
            for group in groups.values():
                self._answer_group(resolved, group, results)

            if use_cache and self.cache_size > 0:
                # stamp the entries stored below with the version they were
                # computed at; under the read lock the version cannot move,
                # so the stamp and the computed results always agree
                self._sync_cache_version()
                with self._cache_lock:
                    for position in pending:
                        self._cache_store(resolved[position], results[position])
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(spec: QuerySpec | TOPSQuery) -> QuerySpec:
        if isinstance(spec, TOPSQuery):
            return QuerySpec.from_query(spec)
        require(isinstance(spec, QuerySpec), f"not a QuerySpec: {spec!r}")
        return spec

    def _prepare_groups(
        self, resolved: list[QuerySpec | None], pending: list[int]
    ) -> dict[tuple, _PreparedGroup]:
        """Build the shared coverage structures, one per (τ, ψ) group.

        The index instance is resolved once per distinct τ and reused by
        every coverage group at that τ (``prepare_coverage(instance=...)``),
        so the ``instance_resolutions`` counter reports exactly the work
        performed.
        """
        groups: dict[tuple, _PreparedGroup] = {}
        instances: dict[float, object] = {}
        executor = self._shard_executor()
        cache = getattr(self.index, "coverage_cache", None)
        if cache is not None:
            cache.executor = executor
        for position in pending:
            spec = resolved[position]
            key = spec.coverage_key
            if key not in groups:
                preference = spec.preference_fn()
                if cache is not None and cache.peek(self.index, spec.tau_km, preference):
                    # warm part at the current index version: no instance
                    # resolution, no coverage build — at most a view
                    # materialisation over the canonical entries
                    with Timer() as timer:
                        prepared = self.index.prepare_coverage(
                            spec.tau_km,
                            preference,
                            engine=self.engine,
                            shards=self.effective_shards,
                            executor=executor,
                        )
                    prepared.coverage.attach_kernel_timer(self.stats.kernel_timer)
                    self.stats.bump(
                        coverage_cache_hits=1,
                        coverage_materialise_seconds=timer.elapsed,
                    )
                    groups[key] = _PreparedGroup(prepared=prepared, build_seconds=0.0)
                    groups[key].members.append(position)
                    continue
                if cache is not None:
                    self.stats.bump(coverage_cache_misses=1)
                if spec.tau_km not in instances:
                    instances[spec.tau_km] = self.index.instance_for(spec.tau_km)
                    self.stats.bump(instance_resolutions=1)
                with Timer() as timer:
                    prepared = self.index.prepare_coverage(
                        spec.tau_km,
                        preference,
                        engine=self.engine,
                        instance=instances[spec.tau_km],
                        shards=self.effective_shards,
                        executor=executor,
                    )
                prepared.coverage.attach_kernel_timer(self.stats.kernel_timer)
                self.stats.bump(
                    coverage_builds=1, coverage_build_seconds=timer.elapsed
                )
                groups[key] = _PreparedGroup(prepared=prepared, build_seconds=timer.elapsed)
            groups[key].members.append(position)
        return groups

    def _answer_group(
        self,
        resolved: list[QuerySpec | None],
        group: _PreparedGroup,
        results: list[TOPSResult | None],
    ) -> None:
        """Answer every member of one coverage group."""
        # subgroup by selection key: members differing only in k share a run
        runs: dict[tuple, list[int]] = {}
        for position in group.members:
            runs.setdefault(resolved[position].selection_key, []).append(position)
        for positions in runs.values():
            spec = resolved[positions[0]]
            if spec.budget is not None:
                # members of one budget run group differ at most in the
                # (ignored) k, so a single budgeted greedy answers them all
                shared = self._run_budgeted(spec, group)
                for position in positions:
                    results[position] = shared
            else:
                self._run_shared_greedy(resolved, positions, group, results)

    def _run_shared_greedy(
        self,
        resolved: list[QuerySpec | None],
        positions: list[int],
        group: _PreparedGroup,
        results: list[TOPSResult | None],
    ) -> None:
        """One greedy run at the largest k answers every member spec."""
        prepared = group.prepared
        coverage = prepared.coverage
        lead = resolved[max(positions, key=lambda p: resolved[p].k)]
        existing_columns = (
            prepared.existing_columns(lead.existing_sites) if lead.existing_sites else []
        )
        capacities = (
            None
            if lead.capacity is None
            else np.full(coverage.num_sites, int(lead.capacity), dtype=np.int64)
        )
        with Timer() as run_timer:
            greedy = (
                LazyGreedy(coverage)
                if getattr(coverage, "is_sparse", False)
                else IncGreedy(coverage)
            )
            columns, utilities, gains = greedy.select(
                lead.k, existing_columns=existing_columns, capacities=capacities
            )
        self.stats.bump(greedy_runs=1, greedy_seconds=run_timer.elapsed)
        with Timer() as replay_timer:
            for position in positions:
                spec = resolved[position]
                prefix = columns[: spec.k]
                if len(prefix) == len(columns):
                    spec_utilities = utilities
                else:
                    spec_utilities = coverage.utilities_for_selection(
                        prefix, capacity=spec.capacity, seed_columns=existing_columns
                    )
                results[position] = self._wrap_result(
                    spec,
                    group,
                    prefix,
                    spec_utilities,
                    gains[: spec.k],
                    run_seconds=run_timer.elapsed,
                )
        self.stats.bump(replay_seconds=replay_timer.elapsed)

    def _run_budgeted(self, spec: QuerySpec, group: _PreparedGroup) -> TOPSResult:
        """TOPS-COST: the budgeted greedy with uniform per-site costs."""
        coverage = group.prepared.coverage
        costs = np.full(coverage.num_sites, float(spec.site_cost))
        with Timer() as run_timer:
            result = solve_tops_cost(coverage, spec.budget, costs)
        self.stats.bump(greedy_runs=1, greedy_seconds=run_timer.elapsed)
        metadata = dict(result.metadata)
        metadata.update(self._group_metadata(group))
        return TOPSResult(
            sites=result.sites,
            utility=result.utility,
            per_trajectory_utility=result.per_trajectory_utility,
            elapsed_seconds=result.elapsed_seconds + group.build_seconds,
            algorithm=result.algorithm,
            metadata=metadata,
        )

    def _wrap_result(
        self,
        spec: QuerySpec,
        group: _PreparedGroup,
        columns: Sequence[int],
        utilities: np.ndarray,
        gains: Sequence[float],
        run_seconds: float,
    ) -> TOPSResult:
        coverage = group.prepared.coverage
        sites = tuple(int(coverage.site_labels[c]) for c in columns)
        metadata = self._group_metadata(group)
        metadata["greedy_run_seconds"] = run_seconds
        metadata["marginal_gains"] = [float(g) for g in gains]
        if spec.capacity is not None:
            metadata["capacity"] = spec.capacity
        if spec.existing_sites:
            metadata["existing_sites"] = list(spec.existing_sites)
        return TOPSResult(
            sites=sites,
            utility=float(np.sum(utilities)),
            per_trajectory_utility=tuple(float(u) for u in utilities),
            elapsed_seconds=run_seconds + group.build_seconds,
            algorithm=NetClusIndex.algorithm_name,
            metadata=metadata,
        )

    def _group_metadata(self, group: _PreparedGroup) -> dict:
        # summary-backed accessors: a coverage-cache hit answers these
        # without materialising the backing instance
        return {
            "instance_id": group.prepared.instance_id,
            "instance_radius_km": group.prepared.instance_radius_km,
            "num_clusters": group.prepared.num_clusters,
            "num_representatives": len(group.prepared.representative_sites),
            # the engine the group's coverage was actually built with
            # (``self.engine`` may be the unresolved "auto" policy)
            "engine": group.prepared.engine,
            "shards": group.prepared.num_shards,
            "coverage_build_seconds": group.build_seconds,
        }

    @holds_lock("_cache_lock")
    def _cache_store(self, spec: QuerySpec, result: TOPSResult | None) -> None:
        if result is None:  # pragma: no cover - defensive
            return
        self._cache[spec] = result
        self._cache.move_to_end(spec)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
