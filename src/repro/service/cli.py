"""``python -m repro.service`` — build, query, serve, farm, update, inspect.

Six subcommands::

    # offline phase: build a NetClus index for a dataset preset, save to disk
    python -m repro.service build --dataset beijing --scale tiny --out city.ncx

    # online phase: answer a JSON/CSV batch of query specs from the index
    # (optionally over S trajectory shards evaluated by a worker pool —
    #  selections are identical for any --shards / --query-workers)
    python -m repro.service query --index city.ncx --specs specs.json \\
        --shards 4 --query-workers auto

    # serving phase: the asyncio HTTP front end (POST /query, POST /update,
    # GET /metrics, GET /healthz) with coalescing + bounded admission
    python -m repro.service serve --index city.ncx --port 8321 --max-inflight 64

    # multi-tenant serving: N indexes in one process under a memory budget
    # (POST /t/<tenant>/query, /t/<tenant>/update; LRU eviction + lazy reload)
    python -m repro.service farm --tenant nyk=nyk.ncx --tenant bjg=bjg.ncx \\
        --memory-budget-mb 256 --port 8321

    # dynamic updates: absorb trajectory/site deltas as one batch, save back
    python -m repro.service update --index city.ncx \\
        --add-trajectories new_trips.json --remove-sites closed.json

    # print the manifest (format version, build params, fingerprints, stats)
    python -m repro.service inspect --index city.ncx

``specs.json`` is a JSON array of :class:`~repro.service.specs.QuerySpec`
objects (``[{"k": 5, "tau_km": 1.0}, ...]``); a ``.csv`` file with columns
``k,tau_km[,preference,capacity,budget,site_cost]`` is accepted too.

``update`` delta files: site files are JSON arrays of node ids; the
trajectory-removal file is a JSON array of trajectory ids; the
trajectory-addition file is a JSON array of ``{"traj_id": ..., "nodes":
[...]}`` objects whose node sequences must follow edges of the index's road
network (along-path distances are recomputed from the network).  See
``docs/api.md`` for the full spec vocabulary and ``docs/index-format.md``
for the on-disk format.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from pathlib import Path
from typing import Callable, Sequence

from repro.datasets import (
    atlanta_like,
    bangalore_like,
    beijing_like,
    beijing_small_like,
    new_york_like,
)
from repro.datasets.base import DatasetBundle
from repro.service.placement import PlacementService
from repro.service.serialization import load_manifest, save_index
from repro.service.specs import QuerySpec
from repro.utils.parallel import resolve_workers

__all__ = ["main"]


def _dataset_builders() -> dict[str, Callable[..., DatasetBundle]]:
    return {
        "beijing": beijing_like,
        "beijing-small": lambda scale, seed: beijing_small_like(seed=seed),
        "new-york": lambda scale, seed: new_york_like(seed=seed),
        "atlanta": lambda scale, seed: atlanta_like(seed=seed),
        "bangalore": lambda scale, seed: bangalore_like(seed=seed),
    }


# ---------------------------------------------------------------------- #
# build
# ---------------------------------------------------------------------- #
def _cmd_build(args: argparse.Namespace) -> int:
    if args.shards is not None and int(args.shards) < 1:
        # fail before the (potentially long) offline build runs
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    builders = _dataset_builders()
    if args.dataset == "beijing":
        bundle = builders["beijing"](scale=args.scale or "small", seed=args.seed)
    else:
        if args.scale is not None:
            raise SystemExit(
                f"--scale applies to the 'beijing' dataset only; "
                f"'{args.dataset}' has a fixed size"
            )
        bundle = builders[args.dataset](None, args.seed)
    problem = bundle.problem()
    print(
        f"Building NetClus index for {bundle.name} "
        f"({bundle.num_nodes} nodes, {bundle.num_trajectories} trajectories, "
        f"{bundle.num_sites} sites)..."
    )
    index = problem.build_netclus_index(
        gamma=args.gamma,
        tau_min_km=args.tau_min,
        tau_max_km=args.tau_max,
        max_instances=args.max_instances,
        representative_strategy=args.representative_strategy,
        workers=args.workers,  # already resolved by the argparse type
    )
    if args.shards is not None:
        index.shards = int(args.shards)
    directory = save_index(index, args.out, dataset=bundle.trajectories)
    for stat in index.build_stats:
        workers = f" ({stat.workers} workers)" if stat.workers > 1 else ""
        print(f"  stage {stat.stage:<16} {stat.seconds:7.2f}s{workers}")
    print(
        f"Saved {index.num_instances} instances "
        f"({index.storage_bytes() / 1e6:.2f} MB payload estimate, built in "
        f"{index.build_seconds():.1f}s) to {directory}"
    )
    return 0


# ---------------------------------------------------------------------- #
# query
# ---------------------------------------------------------------------- #
def _load_specs(path: Path) -> list[QuerySpec]:
    """Read a batch of specs from a ``.json`` array or a ``.csv`` table."""
    if path.suffix.lower() == ".csv":
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        return [
            QuerySpec.from_dict({k: v for k, v in row.items() if v not in (None, "")})
            for row in rows
        ]
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, list):
        raise SystemExit(f"{path}: expected a JSON array of spec objects")
    return [QuerySpec.from_dict(entry) for entry in payload]


def _cmd_query(args: argparse.Namespace) -> int:
    specs = _load_specs(Path(args.specs))
    if not specs:
        raise SystemExit(f"{args.specs}: no query specs found")
    service = PlacementService.from_path(
        args.index,
        engine=args.engine,
        shards=args.shards,
        query_workers=args.query_workers,  # already resolved by the argparse type
        coverage_cache=True if args.coverage_cache else None,
    )
    results = service.batch_query(specs)
    if args.save_coverage:
        if service.coverage_cache is None:
            raise SystemExit(
                "--save-coverage needs a coverage cache; pass --coverage-cache "
                "or query a v3 index saved with coverage parts"
            )
        directory = save_index(
            service.index,
            args.index,
            trajectory_content=(
                load_manifest(args.index).get("fingerprints", {}).get("trajectory_content")
            ),
        )
        parts = len(service.coverage_cache.describe_parts())
        print(f"Persisted {parts} coverage part(s) back to {directory}")

    rows = []
    for spec, result in zip(specs, results):
        rows.append(
            {
                "spec": spec.to_dict(),
                "sites": list(result.sites),
                "utility": result.utility,
                "algorithm": result.algorithm,
                "instance_id": result.metadata.get("instance_id"),
                "elapsed_seconds": result.elapsed_seconds,
            }
        )
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(rows, handle, indent=2)
            handle.write("\n")
        print(f"Wrote {len(rows)} results to {args.output}")
    header = f"{'k':>4} {'tau_km':>7} {'pref':<12} {'utility':>9}  sites"
    print(header)
    print("-" * len(header))
    for spec, result in zip(specs, results):
        label = "budget" if spec.budget is not None else spec.preference
        print(
            f"{spec.k:>4} {spec.tau_km:>7.2f} {label:<12} "
            f"{result.utility:>9.2f}  {list(result.sites)}"
        )
    stats = service.stats
    print(
        f"\n{stats.queries_served} specs | {stats.instance_resolutions} instance "
        f"resolutions | {stats.coverage_builds} coverage builds | "
        f"{stats.greedy_runs} greedy runs | {stats.cache_hits} cache hits"
    )
    if service.coverage_cache is not None:
        print(
            f"coverage cache: {stats.coverage_cache_hits} warm / "
            f"{stats.coverage_cache_misses} cold coverage lookups "
            f"({len(service.coverage_cache.describe_parts())} part(s) cached)"
        )
    print(
        f"shards {service.effective_shards} x {service.query_workers} workers | "
        f"stage seconds: coverage {stats.coverage_build_seconds:.3f} | "
        f"greedy {stats.greedy_seconds:.3f} | replay {stats.replay_seconds:.3f}"
    )
    return 0


# ---------------------------------------------------------------------- #
# serve
# ---------------------------------------------------------------------- #
def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.service.server import PlacementServer

    service = PlacementService.from_path(
        args.index,
        engine=args.engine,
        shards=args.shards,
        query_workers=args.query_workers,  # already resolved by the argparse type
        coverage_cache=True if args.coverage_cache else None,
    )
    server = PlacementServer(
        service,
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        worker_threads=args.worker_threads,
        request_timeout=args.request_timeout,
    )

    async def _serve() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-Unix loops
                pass
        host, port = server.address
        print(
            f"Serving {args.index} on http://{host}:{port} "
            f"(max-inflight {server.max_inflight}, "
            f"{server.worker_threads} worker threads, "
            f"request timeout {server.request_timeout:g}s)",
            flush=True,
        )
        print(
            "Endpoints: POST /query | POST /update | GET /metrics | GET /healthz",
            flush=True,
        )
        await stop.wait()
        print("Signal received — draining in-flight requests...", flush=True)
        await server.shutdown(drain_timeout=args.drain_timeout)

    asyncio.run(_serve())
    stats = server.stats
    print(
        f"Served {stats.requests_total['query']} query / "
        f"{stats.requests_total['update']} update requests "
        f"({stats.coalesced_specs} specs coalesced, "
        f"{stats.rejected_total} rejected); shut down cleanly."
    )
    return 0


# ---------------------------------------------------------------------- #
# farm
# ---------------------------------------------------------------------- #
def _cmd_farm(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.service.farm import IndexFarm
    from repro.service.server import PlacementServer

    farm = IndexFarm(
        memory_budget_bytes=(
            None if args.memory_budget_mb is None else int(args.memory_budget_mb * 1e6)
        ),
        engine=args.engine,
        shards=args.shards,
        query_workers=args.query_workers,  # already resolved by the argparse type
        coverage_cache=True if args.coverage_cache else None,
    )
    for entry in args.tenant:
        name, separator, directory = entry.partition("=")
        if not separator or not name or not directory:
            raise SystemExit(f"--tenant expects NAME=INDEX_DIR, got {entry!r}")
        farm.add_tenant(name, directory)
    server = PlacementServer(
        farm=farm,
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        worker_threads=args.worker_threads,
        request_timeout=args.request_timeout,
    )

    async def _serve() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-Unix loops
                pass
        host, port = server.address
        budget = (
            "no memory budget"
            if farm.memory_budget_bytes is None
            else f"budget {farm.memory_budget_bytes / 1e6:.0f} MB"
        )
        print(
            f"Serving {len(farm.tenants())} tenant(s) on http://{host}:{port} "
            f"({budget}, max-inflight {server.max_inflight}, "
            f"{server.worker_threads} worker threads)",
            flush=True,
        )
        print(
            "Endpoints: POST /t/<tenant>/query | POST /t/<tenant>/update | "
            "GET /metrics | GET /healthz",
            flush=True,
        )
        for name in farm.tenants():
            print(f"  tenant {name}", flush=True)
        await stop.wait()
        print("Signal received — draining in-flight requests...", flush=True)
        await server.shutdown(drain_timeout=args.drain_timeout)

    asyncio.run(_serve())
    farm.close()
    stats = server.stats
    print(
        f"Served {stats.requests_total['query']} query / "
        f"{stats.requests_total['update']} update requests across "
        f"{len(farm.tenants())} tenant(s) "
        f"({farm.loads_total} loads, {farm.evictions_total} evictions); "
        f"shut down cleanly."
    )
    return 0


# ---------------------------------------------------------------------- #
# update
# ---------------------------------------------------------------------- #
def _load_json(path: str, expected: str) -> list:
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, list):
        raise SystemExit(f"{path}: expected a JSON array of {expected}")
    return payload


def _cmd_update(args: argparse.Namespace) -> int:
    from repro.core.netclus import UpdateBatch
    from repro.service.serialization import load_index
    from repro.trajectory.model import Trajectory
    from repro.utils.timer import Timer

    if not any(
        (args.add_trajectories, args.remove_trajectories, args.add_sites, args.remove_sites)
    ):
        raise SystemExit("update: no delta files given (nothing to do)")
    content_fingerprint = (
        load_manifest(args.index).get("fingerprints", {}).get("trajectory_content")
    )
    index = load_index(args.index)
    add_trajectories = []
    if args.add_trajectories:
        for entry in _load_json(args.add_trajectories, "trajectory objects"):
            if not isinstance(entry, dict) or "traj_id" not in entry or "nodes" not in entry:
                raise SystemExit(
                    f"{args.add_trajectories}: each entry needs 'traj_id' and 'nodes'"
                )
            add_trajectories.append(
                Trajectory.from_nodes(
                    int(entry["traj_id"]),
                    [int(n) for n in entry["nodes"]],
                    index.network,
                )
            )
    batch = UpdateBatch(
        add_trajectories=add_trajectories,
        remove_trajectories=(
            _load_json(args.remove_trajectories, "trajectory ids")
            if args.remove_trajectories
            else ()
        ),
        add_sites=_load_json(args.add_sites, "node ids") if args.add_sites else (),
        remove_sites=_load_json(args.remove_sites, "node ids") if args.remove_sites else (),
    )
    version_before = index.version
    with Timer() as timer:
        applied = index.apply_updates(batch)
    out = args.out or args.index
    trajectories_changed = bool(batch.add_trajectories or batch.remove_trajectories)
    directory = save_index(
        index,
        out,
        # a site-only delta leaves the trajectory content untouched, so the
        # manifest's content fingerprint stays valid and is carried over;
        # trajectory deltas invalidate it (no dataset here to recompute it)
        trajectory_content=None if trajectories_changed else content_fingerprint,
    )
    print(
        f"Applied {applied} updates "
        f"(+{len(batch.add_trajectories)}/-{len(batch.remove_trajectories)} "
        f"trajectories, +{len(batch.add_sites)}/-{len(batch.remove_sites)} sites) "
        f"in {timer.elapsed:.3f}s; index version {version_before} -> {index.version}"
    )
    print(
        f"Saved {index.num_trajectories} trajectories / {len(index.sites)} sites "
        f"to {directory}"
    )
    cache = index.coverage_cache
    if cache is not None and cache.describe_parts():
        counters = cache.stats()
        print(
            f"Coverage cache: patched {counters['patches']} part(s) in place "
            f"({counters['invalidations']} invalidated); "
            f"{len(cache.describe_parts())} part(s) saved warm"
        )
    return 0


# ---------------------------------------------------------------------- #
# inspect
# ---------------------------------------------------------------------- #
def _cmd_inspect(args: argparse.Namespace) -> int:
    manifest = load_manifest(args.index)
    if args.json:
        json.dump(manifest, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    params = manifest["build_params"]
    prints = manifest["fingerprints"]
    print(f"format           : {manifest['format']} v{manifest['format_version']}")
    print(f"update version   : {manifest.get('index_version', 0)}")
    print(
        f"build params     : gamma={params['gamma']}, "
        f"tau=[{params['tau_min_km']}, {params['tau_max_km']}] km"
    )
    max_instances = params.get("max_instances")
    print(
        f"representatives  : {params.get('representative_strategy', 'closest')}, "
        f"instance cap "
        f"{'none (full ladder)' if max_instances is None else max_instances}"
    )
    shards = int(manifest.get("shards", 1))
    if shards > 1:
        sizes = manifest.get("shard_sizes", [])
        layout = (
            ", ".join(str(s) for s in sizes) if sizes else "sizes not recorded"
        )
        print(f"shard layout     : {shards} shards (trajectories: {layout})")
    else:
        print("shard layout     : 1 shard (unsharded query path)")
    print(
        f"size             : {manifest['num_instances']} instances, "
        f"{manifest['num_trajectories']} trajectories, "
        f"{manifest['num_sites']} sites, {manifest['num_nodes']} nodes"
    )
    print(
        f"offline phase    : {manifest['build_seconds']:.1f}s build, "
        f"~{manifest['storage_bytes'] / 1e6:.2f} MB payload"
    )
    print(f"graph sha256     : {prints['graph'][:16]}…")
    print(f"trajectories sha : {prints['trajectories'][:16]}…")
    print(f"payload sha256   : {prints['payload_sha256'][:16]}…")
    build_stats = manifest.get("build_stats", [])
    if build_stats:
        print()
        print("offline pipeline :")
        for stat in build_stats:
            workers = (
                f" ({stat.get('workers', 1)} workers)"
                if stat.get("workers", 1) > 1
                else ""
            )
            print(f"  {stat['stage']:<16} {stat['seconds']:7.2f}s{workers}")
    print()
    header = (
        f"{'inst':>4} {'radius_km':>10} {'tau range (km)':>18} "
        f"{'clusters':>9} {'reps':>6} {'build_s':>8}"
    )
    print(header)
    print("-" * len(header))
    for entry in manifest["instances"]:
        low, high = entry["tau_range_km"]
        print(
            f"{entry['instance_id']:>4} {entry['radius_km']:>10.3f} "
            f"{f'[{low:.2f}, {high:.2f})':>18} {entry['num_clusters']:>9} "
            f"{entry['num_representatives']:>6} {entry['build_seconds']:>8.2f}"
        )
    coverage_parts = manifest.get("coverage_parts", [])
    if coverage_parts:
        print()
        header = (
            f"{'part':>4} {'tau_km':>7} {'preference':<14} {'inst':>4} "
            f"{'version':>7} {'entries':>9} {'reps':>6}"
        )
        print(f"coverage parts   : {len(coverage_parts)} warm (format v3)")
        print(header)
        print("-" * len(header))
        for entry in coverage_parts:
            print(
                f"{entry['slot']:>4} {entry['tau_km']:>7.2f} "
                f"{entry['preference']:<14} {entry['instance_id']:>4} "
                f"{entry['index_version']:>7} {entry['num_entries']:>9} "
                f"{entry['num_representatives']:>6}"
            )
    if args.timings:
        _print_probe_timings(args.index, manifest, shards)
    return 0


def _print_probe_timings(index_path: str, manifest: dict, shards: int) -> None:
    """Load the index and report per-stage timings of one probe batch.

    The probe runs a small k-sweep at a mid-range τ through a
    :class:`PlacementService` configured with the manifest's shard layout,
    then prints the service's per-stage query timings (coverage build /
    greedy / prefix replay) — the live counterpart of the static manifest
    numbers above.
    """
    params = manifest["build_params"]
    tau = min(2.0 * float(params["tau_min_km"]), float(params["tau_max_km"]))
    service = PlacementService.from_path(
        index_path, shards=shards if shards > 1 else None, query_workers="auto"
    )
    specs = [QuerySpec(k=k, tau_km=tau) for k in (3, 5, 8)]
    service.batch_query(specs, use_cache=False)
    stats = service.stats
    print()
    print(
        f"query timings    : probe batch ({len(specs)} specs at tau={tau:g} km, "
        f"{service.effective_shards} shard(s) x {service.query_workers} workers)"
    )
    for stage, seconds in stats.stage_seconds().items():
        print(f"  {stage:<24} {seconds:8.4f}s")


# ---------------------------------------------------------------------- #
def main(argv: Sequence[str] | None = None) -> int:
    """Command-line entry point (returns the process exit code)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service", description=__doc__.split("\n\n")[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build an index and save it to disk")
    build.add_argument(
        "--dataset",
        default="beijing",
        choices=sorted(_dataset_builders()),
        help="dataset preset to build the index for",
    )
    build.add_argument(
        "--scale",
        default=None,
        choices=["tiny", "small", "medium"],
        help="dataset scale — 'beijing' only (default: small); the other "
        "presets have a fixed size",
    )
    build.add_argument("--seed", type=int, default=42)
    build.add_argument("--gamma", type=float, default=0.75, help="index resolution γ")
    build.add_argument("--tau-min", type=float, default=0.4, help="τ_min in km")
    build.add_argument("--tau-max", type=float, default=8.0, help="τ_max in km")
    build.add_argument(
        "--max-instances", type=int, default=None, help="cap the instance ladder"
    )
    build.add_argument(
        "--representative-strategy",
        default="closest",
        choices=["closest", "most_frequent"],
        help="how clusters elect their representative site: nearest to the "
        "center (the paper's choice) or most visited by trajectories",
    )
    build.add_argument(
        "--workers",
        type=resolve_workers,
        default=1,
        help="processes for the offline phase (per-instance clustering "
        "fan-out; the built index is identical to --workers 1); a positive "
        "integer or 'auto' (the usable-CPU count)",
    )
    build.add_argument(
        "--shards",
        type=int,
        default=None,
        help="default trajectory-shard count stamped on the index for the "
        "sharded query path (recorded in the manifest; selections are "
        "identical for any value)",
    )
    build.add_argument("--out", required=True, help="output index directory")
    build.set_defaults(func=_cmd_build)

    query = sub.add_parser("query", help="answer a batch of specs from an index")
    query.add_argument("--index", required=True, help="index directory (from build)")
    query.add_argument("--specs", required=True, help="JSON array or CSV of specs")
    query.add_argument(
        "--engine",
        default="sparse",
        choices=["dense", "sparse", "bitset", "auto"],
        help="coverage engine (bitset: binary-preference popcount kernels; "
        "auto: bitset for binary specs, sparse otherwise)",
    )
    query.add_argument(
        "--shards",
        type=int,
        default=None,
        help="trajectory-shard count for the query path (default: the "
        "index's saved layout; results are identical for any value)",
    )
    query.add_argument(
        "--query-workers",
        type=resolve_workers,
        default="auto",
        help="threads of the shard-evaluation pool; a positive integer or "
        "'auto' (the usable-CPU count, the default — so an index saved "
        "with a shard layout is served with a matching pool)",
    )
    query.add_argument(
        "--coverage-cache",
        action="store_true",
        help="keep materialised coverage in an in-process cache so repeated "
        "(tau, preference) specs skip the coverage build (a v3 index saved "
        "with coverage parts enables this automatically)",
    )
    query.add_argument(
        "--save-coverage",
        action="store_true",
        help="after answering, save the warmed coverage parts back into the "
        "index directory (format v3) so later runs start warm",
    )
    query.add_argument("--output", default=None, help="write results JSON here")
    query.set_defaults(func=_cmd_query)

    serve = sub.add_parser(
        "serve", help="serve an index over HTTP (asyncio front end)"
    )
    serve.add_argument("--index", required=True, help="index directory (from build)")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8321, help="bind port (0 picks an ephemeral port)"
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="bound on concurrently admitted query/update requests; the "
        "next request is answered 503 instead of queueing without bound",
    )
    serve.add_argument(
        "--worker-threads",
        type=int,
        default=4,
        help="thread-pool size for blocking placement work (the event loop "
        "itself never computes a placement)",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="per-request budget in seconds before a 504 is answered",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds to let in-flight requests finish on shutdown",
    )
    serve.add_argument(
        "--engine",
        default="sparse",
        choices=["dense", "sparse", "bitset", "auto"],
        help="coverage engine (bitset: binary-preference popcount kernels; "
        "auto: bitset for binary specs, sparse otherwise)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="trajectory-shard count for the query path (default: the "
        "index's saved layout; results are identical for any value)",
    )
    serve.add_argument(
        "--query-workers",
        type=resolve_workers,
        default="auto",
        help="threads of the shard-evaluation pool; a positive integer or "
        "'auto' (the usable-CPU count)",
    )
    serve.add_argument(
        "--coverage-cache",
        action="store_true",
        help="keep materialised coverage warm across requests — POST /update "
        "patches the cached parts instead of forcing a coverage rebuild on "
        "the next query (a v3 index with saved parts enables this "
        "automatically)",
    )
    serve.set_defaults(func=_cmd_serve)

    farm = sub.add_parser(
        "farm", help="serve many tenant indexes from one process (memory budget)"
    )
    farm.add_argument(
        "--tenant",
        action="append",
        required=True,
        metavar="NAME=INDEX_DIR",
        help="register one tenant: a name and its index directory; repeat "
        "the flag for every tenant (indexes load lazily on first query)",
    )
    farm.add_argument(
        "--memory-budget-mb",
        type=float,
        default=None,
        help="cap on the summed storage bytes of resident tenant indexes; "
        "least-recently-used tenants are evicted to fit (evicted tenants "
        "reload transparently on their next query); default: no budget",
    )
    farm.add_argument("--host", default="127.0.0.1", help="bind address")
    farm.add_argument(
        "--port", type=int, default=8321, help="bind port (0 picks an ephemeral port)"
    )
    farm.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="bound on concurrently admitted query/update requests; the "
        "next request is answered 503 instead of queueing without bound",
    )
    farm.add_argument(
        "--worker-threads",
        type=int,
        default=4,
        help="thread-pool size for blocking placement work (tenant loads "
        "and evictions also happen here, never on the event loop)",
    )
    farm.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="per-request budget in seconds before a 504 is answered",
    )
    farm.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds to let in-flight requests finish on shutdown",
    )
    farm.add_argument(
        "--engine",
        default="sparse",
        choices=["dense", "sparse", "bitset", "auto"],
        help="coverage engine for every tenant (bitset: binary-preference "
        "popcount kernels; auto: bitset for binary specs, sparse otherwise)",
    )
    farm.add_argument(
        "--shards",
        type=int,
        default=None,
        help="trajectory-shard count for every tenant's query path "
        "(default: each index's saved layout; results are identical for "
        "any value)",
    )
    farm.add_argument(
        "--query-workers",
        type=resolve_workers,
        default="auto",
        help="threads of the shard-evaluation pool; a positive integer or "
        "'auto' (the usable-CPU count)",
    )
    farm.add_argument(
        "--coverage-cache",
        action="store_true",
        help="keep materialised coverage warm per tenant across requests "
        "(an index saved with coverage parts enables this automatically)",
    )
    farm.set_defaults(func=_cmd_farm)

    update = sub.add_parser(
        "update", help="apply trajectory/site deltas to an index as one batch"
    )
    update.add_argument("--index", required=True, help="index directory (from build)")
    update.add_argument(
        "--add-trajectories",
        default=None,
        help="JSON array of {traj_id, nodes} objects to add",
    )
    update.add_argument(
        "--remove-trajectories",
        default=None,
        help="JSON array of trajectory ids to remove",
    )
    update.add_argument(
        "--add-sites", default=None, help="JSON array of node ids to register"
    )
    update.add_argument(
        "--remove-sites", default=None, help="JSON array of node ids to unregister"
    )
    update.add_argument(
        "--out",
        default=None,
        help="output index directory (default: update --index in place)",
    )
    update.set_defaults(func=_cmd_update)

    inspect = sub.add_parser("inspect", help="print an index manifest")
    inspect.add_argument("--index", required=True, help="index directory")
    inspect.add_argument("--json", action="store_true", help="raw manifest JSON")
    inspect.add_argument(
        "--timings",
        action="store_true",
        help="additionally load the index and report per-stage query "
        "timings of a small probe batch (coverage build / greedy / replay)",
    )
    inspect.set_defaults(func=_cmd_inspect)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `... inspect | head`; not an error
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
