"""A multi-tenant index farm: many cities, one process, one memory budget.

:class:`IndexFarm` hosts N tenant indexes behind a single registry of
``tenant name → index directory``.  Tenants are *registered* cheaply (a
manifest read, no payload pages touched) and *loaded* lazily: the first
query against a tenant constructs its
:class:`~repro.service.placement.PlacementService` from the directory via
the format-v4 mmap loader, so a farm of dozens of cities starts in
milliseconds and pays per-tenant load cost only on first use.

**Memory budget.** ``memory_budget_bytes`` caps the summed
``storage_bytes`` of resident tenants (the manifest's Table 9-style
per-engine accounting — cluster arrays, trajectory lists, neighbor maps).
When loading a tenant would exceed the budget, least-recently-used
resident tenants are evicted until it fits; the tenant being touched is
never evicted to make room for itself, so one oversized index still
serves (budget permitting nothing else to stay resident).  Eviction is
transparent to clients: the next query on an evicted tenant reloads from
disk and — because every :meth:`apply_updates` writes through to the
tenant directory before returning — always observes the fully updated
index.  Evicting a tenant can never change any query result.

**Stats.** Each tenant keeps cumulative
:class:`~repro.service.placement.ServiceStats` counters across evictions:
the live service's counters are folded into the tenant record on
eviction, and :meth:`tenant_stats` reports the sum of the folded history
and the current live service.  Farm-level counters (loads, evictions,
resident bytes) surface on the server's ``/metrics``.

**Concurrency.** The registry, the LRU clock and the resident set are
guarded by one mutex.  Queries run *outside* it, on the tenant's own
service (readers-writer locked), so slow placements on one tenant never
block lookups or evictions of another.  An eviction concurrent with an
in-flight query is safe: the query holds a reference to the old service
object and finishes against it; the mmap keeps the (possibly replaced)
blob inode alive.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.core.netclus import UpdateBatch
from repro.core.query import TOPSQuery, TOPSResult
from repro.service.placement import PlacementService
from repro.service.serialization import load_manifest
from repro.service.specs import QuerySpec
from repro.utils.validation import require

__all__ = ["IndexFarm", "TenantRecord", "UnknownTenantError"]


class UnknownTenantError(KeyError):
    """Raised for a tenant name the farm has no registration for."""


@dataclass
class TenantRecord:
    """One tenant's registry entry (name, directory, residency, history)."""

    name: str
    directory: Path
    #: Table 9-style in-memory footprint, from the manifest at registration
    #: and refreshed from the live index after every update batch
    storage_bytes: int
    #: the live service, or ``None`` while the tenant is evicted/not yet loaded
    service: PlacementService | None = None
    #: LRU clock value of the most recent touch (monotonic farm counter)
    last_used: int = 0
    #: times this tenant's index was loaded from its directory
    loads: int = 0
    #: times this tenant was evicted to fit the memory budget
    evictions: int = 0
    #: ServiceStats counters folded in from evicted service generations
    folded_stats: dict[str, int | float] = field(default_factory=dict)

    @property
    def resident(self) -> bool:
        """Whether the tenant's index is currently in memory."""
        return self.service is not None


class IndexFarm:
    """N tenant indexes in one process, under one memory budget.

    Parameters
    ----------
    memory_budget_bytes:
        Cap on the summed ``storage_bytes`` of resident tenants;
        ``None`` disables eviction (every loaded tenant stays resident).
    service_kwargs:
        Forwarded to every tenant's :class:`PlacementService` constructor
        (``engine``, ``cache_size``, ``shards``, ``query_workers``,
        ``coverage_cache``, ...), so all tenants share one serving
        configuration.

    Examples
    --------
    >>> farm = IndexFarm(memory_budget_bytes=256 << 20)
    >>> farm.add_tenant("nyk", "indexes/nyk.ncx")     # doctest: +SKIP
    >>> farm.add_tenant("bjg", "indexes/bjg.ncx")     # doctest: +SKIP
    >>> farm.query("nyk", QuerySpec(k=5, tau_km=1.0))  # doctest: +SKIP
    """

    def __init__(
        self,
        *,
        memory_budget_bytes: int | None = None,
        **service_kwargs: Any,
    ) -> None:
        if memory_budget_bytes is not None:
            require(
                int(memory_budget_bytes) > 0, "memory_budget_bytes must be positive"
            )
            memory_budget_bytes = int(memory_budget_bytes)
        self.memory_budget_bytes = memory_budget_bytes
        self._service_kwargs = dict(service_kwargs)
        self._tenants: dict[str, TenantRecord] = {}
        self._clock = 0
        self._loads_total = 0
        self._evictions_total = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # registry
    # ------------------------------------------------------------------ #
    def add_tenant(self, name: str, directory: str | Path) -> TenantRecord:
        """Register *name* → *directory* (cheap: reads only the manifest).

        The directory must hold a loadable index (its manifest is read for
        the ``storage_bytes`` accounting and to fail fast on a missing or
        torn directory); the payload is not touched until first use.
        """
        require(bool(name) and "/" not in name, f"bad tenant name {name!r}")
        with self._lock:
            require(name not in self._tenants, f"tenant {name!r} already registered")
            path = Path(directory)
            manifest = load_manifest(path)  # raises IndexFormatError if torn
            record = TenantRecord(
                name=name,
                directory=path,
                storage_bytes=int(manifest.get("storage_bytes", 0)),
            )
            self._tenants[name] = record
            return record

    def remove_tenant(self, name: str) -> None:
        """Drop a tenant from the farm (its directory is left untouched)."""
        with self._lock:
            record = self._record(name)
            if record.service is not None:
                self._evict_record(record, count=False)
            del self._tenants[name]

    def tenants(self) -> list[str]:
        """Registered tenant names, sorted."""
        with self._lock:
            return sorted(self._tenants)

    def has_tenant(self, name: str) -> bool:
        """Whether *name* is registered."""
        with self._lock:
            return name in self._tenants

    def resident_tenants(self) -> list[str]:
        """Names of tenants currently holding a live index, sorted."""
        with self._lock:
            return sorted(n for n, r in self._tenants.items() if r.resident)

    def resident_bytes(self) -> int:
        """Summed ``storage_bytes`` of resident tenants."""
        with self._lock:
            return sum(r.storage_bytes for r in self._tenants.values() if r.resident)

    def _record(self, name: str) -> TenantRecord:
        record = self._tenants.get(name)
        if record is None:
            raise UnknownTenantError(name)
        return record

    # ------------------------------------------------------------------ #
    # residency / eviction
    # ------------------------------------------------------------------ #
    def service(self, name: str) -> PlacementService:
        """The tenant's live service, loading (and evicting) as needed.

        Touches the tenant's LRU clock; when loading pushes the resident
        set over ``memory_budget_bytes``, least-recently-used *other*
        tenants are evicted until the budget holds (or only the touched
        tenant remains).
        """
        with self._lock:
            record = self._record(name)
            self._clock += 1
            record.last_used = self._clock
            if record.service is None:
                record.service = PlacementService.from_path(
                    record.directory, **self._service_kwargs
                )
                record.loads += 1
                self._loads_total += 1
                manifest = load_manifest(record.directory)
                record.storage_bytes = int(manifest.get("storage_bytes", 0))
            self._enforce_budget(keep=name)
            return record.service

    def _enforce_budget(self, keep: str) -> None:
        """Evict LRU residents (never *keep*) until the budget holds."""
        if self.memory_budget_bytes is None:
            return
        while True:
            resident = [
                r
                for r in self._tenants.values()
                if r.resident and r.name != keep
            ]
            over = (
                sum(r.storage_bytes for r in self._tenants.values() if r.resident)
                > self.memory_budget_bytes
            )
            if not over or not resident:
                return
            victim = min(resident, key=lambda r: r.last_used)
            self._evict_record(victim)

    def evict(self, name: str) -> bool:
        """Explicitly evict one tenant; returns whether it was resident.

        Updates are written through on :meth:`apply_updates`, so eviction
        never persists anything — it only drops the in-memory index (and
        folds the service counters into the tenant's cumulative stats).
        """
        with self._lock:
            record = self._record(name)
            if record.service is None:
                return False
            self._evict_record(record)
            return True

    def _evict_record(self, record: TenantRecord, count: bool = True) -> None:
        """Drop a tenant's live service (must hold the farm lock)."""
        service = record.service
        assert service is not None
        for key, value in service.stats.as_dict().items():
            record.folded_stats[key] = record.folded_stats.get(key, 0) + value
        service.close()
        record.service = None
        if count:
            record.evictions += 1
            self._evictions_total += 1

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def query(
        self, name: str, spec: QuerySpec | TOPSQuery, use_cache: bool = True
    ) -> TOPSResult:
        """Answer one spec for the named tenant."""
        return self.batch_query(name, [spec], use_cache=use_cache)[0]

    def batch_query(
        self,
        name: str,
        specs: Sequence[QuerySpec | TOPSQuery],
        use_cache: bool = True,
    ) -> list[TOPSResult]:
        """Answer a batch for the named tenant (loading it if evicted).

        The placement work runs outside the farm lock, on the tenant's
        own readers-writer-locked service — concurrent queries against
        different tenants never serialise on the farm.
        """
        service = self.service(name)
        return service.batch_query(specs, use_cache=use_cache)

    def apply_updates(self, name: str, batch: UpdateBatch) -> int:
        """Apply an update batch to the named tenant, writing through.

        The updated index is saved back to the tenant's directory before
        this returns, so a later eviction-and-reload observes exactly the
        post-update state — eviction can never lose an update or change a
        result.  The tenant's ``storage_bytes`` accounting is refreshed
        from the re-saved manifest.
        """
        service = self.service(name)
        applied = service.apply_updates(batch)
        service.save(self._record(name).directory)
        with self._lock:
            record = self._record(name)
            manifest = load_manifest(record.directory)
            record.storage_bytes = int(manifest.get("storage_bytes", 0))
            self._enforce_budget(keep=name)
        return applied

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def index_version(self, name: str) -> int | None:
        """The tenant's live index version, or ``None`` while evicted.

        Never triggers a load — observability probes must not page a
        tenant in (the same policy as ``PlacementService.index_version``).
        """
        with self._lock:
            record = self._record(name)
            return None if record.service is None else record.service.index_version

    def tenant_stats(self, name: str) -> dict[str, int | float]:
        """Cumulative ServiceStats counters for one tenant.

        The sum of every evicted service generation's counters and the
        live service's current ones — eviction never zeroes a tenant's
        externally visible counters.
        """
        with self._lock:
            record = self._record(name)
            totals: dict[str, int | float] = dict(record.folded_stats)
            if record.service is not None:
                for key, value in record.service.stats.as_dict().items():
                    totals[key] = totals.get(key, 0) + value
            return totals

    def describe(self) -> dict[str, Any]:
        """One JSON-friendly snapshot of the whole farm (CLI / healthz)."""
        with self._lock:
            return {
                "memory_budget_bytes": self.memory_budget_bytes,
                "resident_bytes": sum(
                    r.storage_bytes for r in self._tenants.values() if r.resident
                ),
                "loads_total": self._loads_total,
                "evictions_total": self._evictions_total,
                "tenants": {
                    name: {
                        "directory": str(record.directory),
                        "resident": record.resident,
                        "storage_bytes": record.storage_bytes,
                        "loads": record.loads,
                        "evictions": record.evictions,
                    }
                    for name, record in sorted(self._tenants.items())
                },
            }

    @property
    def loads_total(self) -> int:
        """Lifetime count of tenant index loads."""
        with self._lock:
            return self._loads_total

    @property
    def evictions_total(self) -> int:
        """Lifetime count of budget/explicit evictions."""
        with self._lock:
            return self._evictions_total

    def close(self) -> None:
        """Evict every resident tenant (folding stats); keep registrations."""
        with self._lock:
            for record in self._tenants.values():
                if record.service is not None:
                    self._evict_record(record, count=False)
