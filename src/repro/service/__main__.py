"""Entry point for ``python -m repro.service``."""

from repro.service.cli import main

raise SystemExit(main())
