"""Asynchronous HTTP serving front end over :class:`PlacementService`.

:class:`PlacementServer` turns the in-process placement service into a
network service: a hand-rolled HTTP/1.1 front end on
:func:`asyncio.start_server` (stdlib only — no web framework, no
``http.server``) exposing four endpoints:

``POST /query``
    A JSON array of :class:`~repro.service.specs.QuerySpec` objects (or
    ``{"specs": [...]}``) answered through
    :meth:`PlacementService.batch_query`; placements, utilities and
    per-trajectory utility vectors come back byte-identical to a direct
    in-process call.
``POST /update``
    One :class:`~repro.core.netclus.UpdateBatch` delta (the CLI's JSON
    vocabulary: ``add_trajectories`` / ``remove_trajectories`` /
    ``add_sites`` / ``remove_sites``) applied through the service's
    exclusive writer lock; the response reports the applied count and the
    index-version bump.
``GET /metrics``
    Prometheus-style text: every :class:`ServiceStats` counter plus the
    server-level counters of :class:`ServerStats` (in-flight gauge,
    coalesced specs, rejections, timeouts, p50/p99 latency reservoirs).
``GET /healthz``
    Liveness: status, draining flag, index version.

The correctness mechanics, not the routing, are the point of this module:

* **Request coalescing** — specs are hashable, so identical in-flight
  specs collapse onto one future: while a ``QuerySpec`` is being computed,
  every further request asking for it awaits the same result instead of
  queueing duplicate work (``netclus_server_coalesced_specs_total``
  counts the deduplicated specs, and ``ServiceStats`` proves the single
  underlying ``batch_query``).
* **Bounded admission + backpressure** — at most ``max_inflight``
  query/update requests are admitted at once; request number
  ``max_inflight + 1`` is rejected immediately with ``503`` and a
  ``Retry-After`` hint rather than queueing without bound.  ``/healthz``
  and ``/metrics`` are always served.
* **Per-request timeouts** — a request that exceeds ``request_timeout``
  seconds answers ``504``; the underlying computation is *not* abandoned
  (it cannot be cancelled mid-NumPy): it finishes on the worker pool,
  resolves the shared futures of any coalesced waiters and warms the
  service cache.
* **Event-loop isolation** — every blocking service call runs on a sized
  ``ThreadPoolExecutor`` (``worker_threads``), so the event loop keeps
  accepting, parsing and answering while placements are computed.
* **Graceful drain** — :meth:`PlacementServer.shutdown` stops accepting,
  lets in-flight requests finish (bounded by ``drain_timeout``), then
  closes lingering keep-alive connections; requests arriving mid-drain
  answer ``503``.

:func:`serve_in_background` runs a server on a dedicated event-loop
thread and returns a :class:`ServerHandle` — the harness the test suite
and ``benchmarks/bench_serving.py`` drive real sockets through.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

from repro.core.netclus import UpdateBatch
from repro.core.query import TOPSResult
from repro.network.graph import RoadNetwork
from repro.service.farm import IndexFarm
from repro.service.placement import PlacementService
from repro.service.specs import QuerySpec
from repro.trajectory.model import Trajectory
from repro.utils.concurrency import guarded_by
from repro.utils.validation import require

__all__ = [
    "LatencyReservoir",
    "PlacementServer",
    "ServerHandle",
    "ServerStats",
    "serve_in_background",
]

#: HTTP status phrases the server emits (stdlib ``http`` not needed).
_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _BadRequest(ValueError):
    """A client error the handler converts into a 400 response."""


@guarded_by("_lock", "_samples", "_cursor", "_total", "_capacity")
class LatencyReservoir:
    """A bounded ring of the most recent request latencies.

    Quantiles are computed over the last *capacity* samples — a sliding
    window, not a lifetime histogram — which is what a load test or a
    dashboard wants from ``/metrics``.  Thread-safe: the server records
    from the event loop while benchmarks read over HTTP, and the handle
    API exposes it to other threads.
    """

    def __init__(self, capacity: int = 4096) -> None:
        require(capacity >= 1, "reservoir capacity must be >= 1")
        self._capacity = capacity
        self._samples: list[float] = []
        self._cursor = 0
        self._total = 0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Add one latency sample (overwrites the oldest when full)."""
        with self._lock:
            self._total += 1
            if len(self._samples) < self._capacity:
                self._samples.append(float(seconds))
            else:
                self._samples[self._cursor] = float(seconds)
                self._cursor = (self._cursor + 1) % self._capacity

    @property
    def count(self) -> int:
        """Lifetime number of recorded samples (not capped)."""
        with self._lock:
            return self._total

    def quantile(self, q: float) -> float:
        """The *q*-quantile (nearest-rank) of the windowed samples; 0.0 if empty."""
        require(0.0 <= q <= 1.0, "quantile must be in [0, 1]")
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
        if q >= 1.0:
            rank = len(ordered) - 1
        return ordered[rank]

    def snapshot(self) -> dict[str, float]:
        """p50/p90/p99 plus the sample count, as one consistent dict."""
        with self._lock:
            ordered = sorted(self._samples)
            total = self._total
        if not ordered:
            return {"count": float(total), "p50": 0.0, "p90": 0.0, "p99": 0.0}

        def at(q: float) -> float:
            rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
            return ordered[rank]

        return {"count": float(total), "p50": at(0.5), "p90": at(0.9), "p99": at(0.99)}


@dataclass
class ServerStats:
    """Server-level counters of a :class:`PlacementServer`.

    These sit *above* :class:`~repro.service.placement.ServiceStats`: the
    service counts placement work (coverage builds, greedy runs, cache
    hits), the server counts HTTP traffic — admissions, rejections,
    coalesced specs, timeouts — and keeps per-endpoint latency
    reservoirs.  All mutation happens on the event loop; reads from other
    threads see at worst a one-request-stale counter, never a torn value
    (ints are swapped atomically).
    """

    requests_total: dict[str, int] = field(
        default_factory=lambda: {"query": 0, "update": 0, "metrics": 0, "healthz": 0}
    )
    responses_by_status: dict[int, int] = field(default_factory=dict)
    in_flight: int = 0
    coalesced_specs: int = 0
    rejected_total: int = 0
    timeouts_total: int = 0
    specs_received: int = 0
    updates_applied: int = 0
    latency: dict[str, LatencyReservoir] = field(
        default_factory=lambda: {"query": LatencyReservoir(), "update": LatencyReservoir()}
    )

    def count_response(self, status: int) -> None:
        """Tally one response by status code."""
        self.responses_by_status[status] = self.responses_by_status.get(status, 0) + 1

    def as_dict(self) -> dict:
        """Plain-JSON counters (reporting / the benchmark harness)."""
        return {
            "requests_total": dict(self.requests_total),
            "responses_by_status": {str(k): v for k, v in self.responses_by_status.items()},
            "in_flight": self.in_flight,
            "coalesced_specs": self.coalesced_specs,
            "rejected_total": self.rejected_total,
            "timeouts_total": self.timeouts_total,
            "specs_received": self.specs_received,
            "updates_applied": self.updates_applied,
            "latency": {name: res.snapshot() for name, res in self.latency.items()},
        }


def _render_metric(
    lines: list[str], name: str, kind: str, help_text: str, value: float, **labels: str
) -> None:
    """Append one metric (with ``# HELP`` / ``# TYPE`` once per name)."""
    header = f"# HELP {name} {help_text}"
    if header not in lines:
        lines.append(header)
        lines.append(f"# TYPE {name} {kind}")
    if labels:
        rendered = ",".join(f'{key}="{val}"' for key, val in sorted(labels.items()))
        lines.append(f"{name}{{{rendered}}} {value}")
    else:
        lines.append(f"{name} {value}")


@dataclass
class _Request:
    """One parsed HTTP/1.1 request."""

    method: str
    path: str
    headers: dict[str, str]
    body: bytes
    keep_alive: bool


@dataclass
class _Response:
    """One response about to be serialised onto the socket."""

    status: int
    body: bytes
    content_type: str = "application/json"

    @classmethod
    def json(cls, status: int, payload: dict) -> "_Response":
        return cls(status, (json.dumps(payload) + "\n").encode())

    @classmethod
    def error(cls, status: int, message: str) -> "_Response":
        return cls.json(status, {"error": message})


class PlacementServer:
    """An asyncio HTTP/1.1 front end over one :class:`PlacementService`.

    Parameters
    ----------
    service:
        The placement service to serve.  Its readers-writer lock is what
        makes concurrent ``/query`` + ``/update`` traffic safe; the
        server adds coalescing, admission control and the HTTP surface.
    farm:
        Alternative to *service*: an :class:`~repro.service.farm.IndexFarm`
        serving N tenants from one process.  Farm mode replaces the plain
        endpoints with tenant-scoped ones — ``POST /t/<tenant>/query`` and
        ``POST /t/<tenant>/update`` (404 for unregistered tenants) — and
        ``/metrics`` reports per-tenant service counters (``tenant``
        label) plus farm-level residency/eviction gauges.  Coalescing is
        tenant-scoped: identical specs for different tenants never share
        a result.  Eviction and reload under the farm's memory budget are
        invisible to clients (at worst a slower first query).
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start` — the test/bench harness
        relies on this).
    max_inflight:
        Bound on concurrently admitted ``/query``/``/update`` requests.
        Request ``max_inflight + 1`` is answered ``503`` immediately —
        bounded admission instead of an unbounded queue.
    worker_threads:
        Size of the thread pool blocking service calls run on.  The
        event loop itself never computes a placement.
    request_timeout:
        Per-request budget in seconds; exceeding it answers ``504``
        while the computation finishes in the background (coalesced
        waiters and the service cache still get the result).
    max_body_bytes:
        Reject larger request bodies with ``413``.
    """

    def __init__(
        self,
        service: PlacementService | None = None,
        *,
        farm: IndexFarm | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        worker_threads: int = 4,
        request_timeout: float = 30.0,
        max_body_bytes: int = 8 << 20,
    ) -> None:
        require(
            (service is None) != (farm is None),
            "PlacementServer needs exactly one of service or farm",
        )
        require(max_inflight >= 1, "max_inflight must be >= 1")
        require(worker_threads >= 1, "worker_threads must be >= 1")
        require(request_timeout > 0, "request_timeout must be positive")
        self.service = service
        self.farm = farm
        self.host = host
        self.port = port
        self.max_inflight = int(max_inflight)
        self.worker_threads = int(worker_threads)
        self.request_timeout = float(request_timeout)
        self.max_body_bytes = int(max_body_bytes)
        self.stats = ServerStats()
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor: ThreadPoolExecutor | None = None
        # coalescing key: (tenant, spec) — tenant is None in single mode,
        # so identical specs for *different* tenants never share a future
        self._inflight_specs: dict[tuple[str | None, QuerySpec], asyncio.Future] = {}
        self._connections: set[asyncio.StreamWriter] = set()
        self._inflight_requests = 0
        self._draining = False
        self._shutdown_started = False
        self._closed_event: asyncio.Event | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the listening socket and start accepting connections."""
        require(self._server is None, "server already started")
        self._loop = asyncio.get_running_loop()
        self._closed_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.worker_threads, thread_name_prefix="placement-serve"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (ephemeral port resolved after start)."""
        return (self.host, self.port)

    @property
    def draining(self) -> bool:
        """True once shutdown has begun (new work is rejected)."""
        return self._draining

    async def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` completes (from another task)."""
        require(self._closed_event is not None, "server not started")
        await self._closed_event.wait()

    async def shutdown(self, drain_timeout: float = 10.0) -> None:
        """Stop accepting, drain in-flight requests, close connections.

        Idempotent; concurrent callers all return once the first
        shutdown finishes.  In-flight requests get up to *drain_timeout*
        seconds to complete before their connections are closed.
        """
        if self._shutdown_started:
            await self._closed_event.wait()
            return
        self._shutdown_started = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = self._loop.time() + drain_timeout
        while self._inflight_requests and self._loop.time() < deadline:
            await asyncio.sleep(0.01)
        for writer in list(self._connections):
            writer.close()
        self._connections.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        self._closed_event.set()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    await self._write_response(
                        writer, _Response.error(400, str(exc)), keep_alive=False
                    )
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                keep_alive = request.keep_alive and not self._draining
                await self._write_response(writer, response, keep_alive=keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            with contextlib.suppress(ConnectionResetError, BrokenPipeError):
                await writer.wait_closed()

    async def _read_request(self, reader: asyncio.StreamReader) -> _Request | None:
        """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
        try:
            request_line = await reader.readline()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(f"malformed request line: {request_line!r}")
        method, target, version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) > 100:
                raise _BadRequest("too many headers")
            name, separator, value = line.decode("latin-1").partition(":")
            if not separator:
                raise _BadRequest(f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0:
            raise _BadRequest("negative content-length")
        if length > self.max_body_bytes:
            raise _BadRequest(f"request body over {self.max_body_bytes} bytes")
        body = await reader.readexactly(length) if length else b""
        connection = headers.get("connection", "").lower()
        keep_alive = connection != "close" and version != "HTTP/1.0"
        path = target.split("?", 1)[0]
        return _Request(
            method=method, path=path, headers=headers, body=body, keep_alive=keep_alive
        )

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: _Response, keep_alive: bool
    ) -> None:
        self.stats.count_response(response.status)
        phrase = _PHRASES.get(response.status, "Unknown")
        head = (
            f"HTTP/1.1 {response.status} {phrase}\r\n"
            f"Content-Type: {response.content_type}\r\n"
            f"Content-Length: {len(response.body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        )
        if response.status == 503:
            head += "Retry-After: 1\r\n"
        writer.write(head.encode("latin-1") + b"\r\n" + response.body)
        await writer.drain()

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    async def _dispatch(self, request: _Request) -> _Response:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            self.stats.requests_total["healthz"] += 1
            payload = {
                "status": "ok",
                "draining": self._draining,
                "in_flight": self._inflight_requests,
            }
            if self.farm is not None:
                payload["tenants"] = len(self.farm.tenants())
                payload["resident_tenants"] = self.farm.resident_tenants()
            else:
                payload["index_version"] = self._index_version()
            return _Response.json(200, payload)
        if route == ("GET", "/metrics"):
            self.stats.requests_total["metrics"] += 1
            return _Response(200, self.render_metrics().encode(), "text/plain; version=0.0.4")
        if request.path.startswith("/t/"):
            return await self._dispatch_tenant(request)
        if route == ("POST", "/query"):
            self.stats.requests_total["query"] += 1
            if self.farm is not None:
                return _Response.error(404, "farm mode: use /t/<tenant>/query")
            return await self._admitted(self._handle_query, request, "query")
        if route == ("POST", "/update"):
            self.stats.requests_total["update"] += 1
            if self.farm is not None:
                return _Response.error(404, "farm mode: use /t/<tenant>/update")
            return await self._admitted(self._handle_update, request, "update")
        if request.path in ("/healthz", "/metrics", "/query", "/update"):
            return _Response.error(405, f"{request.method} not allowed on {request.path}")
        return _Response.error(404, f"no such endpoint: {request.path}")

    async def _dispatch_tenant(self, request: _Request) -> _Response:
        """Route ``/t/<tenant>/query`` and ``/t/<tenant>/update``."""
        if self.farm is None:
            return _Response.error(404, "tenant endpoints need a farm-mode server")
        parts = request.path.split("/")
        if len(parts) != 4 or parts[3] not in ("query", "update") or not parts[2]:
            return _Response.error(404, f"no such endpoint: {request.path}")
        tenant, endpoint = parts[2], parts[3]
        if request.method != "POST":
            return _Response.error(405, f"{request.method} not allowed on {request.path}")
        if not self.farm.has_tenant(tenant):
            return _Response.error(404, f"no such tenant: {tenant}")
        self.stats.requests_total[endpoint] += 1
        if endpoint == "query":
            return await self._admitted(
                lambda req: self._handle_query(req, tenant), request, "query"
            )
        return await self._admitted(
            lambda req: self._handle_update(req, tenant), request, "update"
        )

    def _index_version(self, tenant: str | None = None) -> int:
        if self.farm is not None:
            version = self.farm.index_version(tenant) if tenant is not None else None
        else:
            assert self.service is not None
            version = self.service.index_version
        return -1 if version is None else version

    async def _admitted(
        self,
        handler: Callable[[_Request], Awaitable[_Response]],
        request: _Request,
        endpoint: str,
    ) -> _Response:
        """Run *handler* under admission control, timing and timeout."""
        if self._draining:
            return _Response.error(503, "server is draining")
        if self._inflight_requests >= self.max_inflight:
            self.stats.rejected_total += 1
            return _Response.error(503, f"over capacity ({self.max_inflight} in flight)")
        self._inflight_requests += 1
        self.stats.in_flight = self._inflight_requests
        start = self._loop.time()
        try:
            work = asyncio.ensure_future(handler(request))
            try:
                response = await asyncio.wait_for(
                    asyncio.shield(work), self.request_timeout
                )
            except asyncio.TimeoutError:
                # the computation is not cancelled: it completes on the
                # worker pool, resolving coalesced waiters + the cache
                self.stats.timeouts_total += 1
                return _Response.error(504, f"request exceeded {self.request_timeout}s")
            except _BadRequest as exc:
                return _Response.error(400, str(exc))
            except Exception as exc:  # noqa: BLE001 - boundary: keep serving
                return _Response.error(500, f"{type(exc).__name__}: {exc}")
            return response
        finally:
            self._inflight_requests -= 1
            self.stats.in_flight = self._inflight_requests
            self.stats.latency[endpoint].record(self._loop.time() - start)

    # ------------------------------------------------------------------ #
    # /query — coalescing core
    # ------------------------------------------------------------------ #
    @staticmethod
    def _parse_specs(body: bytes) -> tuple[list[QuerySpec], bool]:
        try:
            payload = json.loads(body or b"null")
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"body is not valid JSON: {exc}") from None
        use_cache = True
        if isinstance(payload, dict):
            use_cache = bool(payload.get("use_cache", True))
            payload = payload.get("specs")
        if not isinstance(payload, list) or not payload:
            raise _BadRequest("expected a non-empty JSON array of query specs")
        try:
            specs = [QuerySpec.from_dict(entry) for entry in payload]
        except (ValueError, TypeError, AttributeError) as exc:
            raise _BadRequest(f"bad query spec: {exc}") from None
        return specs, use_cache

    async def _handle_query(
        self, request: _Request, tenant: str | None = None
    ) -> _Response:
        specs, use_cache = self._parse_specs(request.body)
        self.stats.specs_received += len(specs)

        # Coalesce: every spec resolves to a future.  A spec already in
        # flight (from any connection, or earlier in this very batch)
        # shares the existing future; the rest are owned by this request
        # and computed through ONE underlying batch_query call.  Keys are
        # tenant-scoped, so farm tenants never share each other's results.
        futures: list[asyncio.Future] = []
        owned: list[tuple[QuerySpec, asyncio.Future]] = []
        for spec in specs:
            existing = self._inflight_specs.get((tenant, spec))
            if existing is not None:
                self.stats.coalesced_specs += 1
                futures.append(existing)
            else:
                future = self._loop.create_future()
                self._inflight_specs[(tenant, spec)] = future
                owned.append((spec, future))
                futures.append(future)
        if owned:
            await self._compute_owned(owned, use_cache, tenant)
        results: list[TOPSResult] = list(await asyncio.gather(*futures))
        body = {
            "results": [
                self._result_payload(spec, result)
                for spec, result in zip(specs, results)
            ],
            "index_version": self._index_version(tenant),
        }
        if tenant is not None:
            body["tenant"] = tenant
        return _Response.json(200, body)

    async def _compute_owned(
        self,
        owned: list[tuple[QuerySpec, asyncio.Future]],
        use_cache: bool,
        tenant: str | None = None,
    ) -> None:
        """Answer the owned specs via one pooled ``batch_query`` call.

        Futures are always resolved (result or exception) and always
        removed from the in-flight table, even if the service raises —
        a failed computation must not wedge later requests for the same
        spec.  In farm mode the call goes through the farm, so a lazy
        tenant load (and any budget eviction it triggers) happens on the
        worker pool, never on the event loop.
        """
        specs = [spec for spec, _ in owned]
        if self.farm is not None:
            assert tenant is not None
            farm, name = self.farm, tenant
            call = lambda: farm.batch_query(name, specs, use_cache=use_cache)  # noqa: E731
        else:
            service = self.service
            assert service is not None
            call = lambda: service.batch_query(specs, use_cache=use_cache)  # noqa: E731
        try:
            results = await self._loop.run_in_executor(self._executor, call)
        except Exception as exc:  # noqa: BLE001 - propagate to every waiter
            for _, future in owned:
                if not future.done():
                    future.set_exception(exc)
            # gathering our own futures re-raises for this request; other
            # coalesced waiters observe the same exception
        else:
            for (_, future), result in zip(owned, results):
                if not future.done():
                    future.set_result(result)
        finally:
            for spec, _ in owned:
                self._inflight_specs.pop((tenant, spec), None)

    @staticmethod
    def _result_payload(spec: QuerySpec, result: TOPSResult) -> dict:
        return {
            "spec": spec.to_dict(),
            "sites": list(result.sites),
            "utility": result.utility,
            "per_trajectory_utility": list(result.per_trajectory_utility),
            "algorithm": result.algorithm,
            "instance_id": result.metadata.get("instance_id"),
            "elapsed_seconds": result.elapsed_seconds,
        }

    # ------------------------------------------------------------------ #
    # /update
    # ------------------------------------------------------------------ #
    @staticmethod
    def _parse_update(body: bytes, network: RoadNetwork) -> UpdateBatch:
        try:
            payload = json.loads(body or b"null")
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise _BadRequest("expected a JSON object with update-delta keys")
        known = {"add_trajectories", "remove_trajectories", "add_sites", "remove_sites"}
        unknown = set(payload) - known
        if unknown:
            raise _BadRequest(f"unknown update fields: {sorted(unknown)}")
        if not any(payload.get(key) for key in known):
            raise _BadRequest("empty update: no delta keys given")
        add_trajectories = []
        try:
            for entry in payload.get("add_trajectories", ()):
                if not isinstance(entry, dict) or {"traj_id", "nodes"} - entry.keys():
                    raise _BadRequest("each added trajectory needs 'traj_id' and 'nodes'")
                add_trajectories.append(
                    Trajectory.from_nodes(
                        int(entry["traj_id"]), [int(n) for n in entry["nodes"]], network
                    )
                )
            return UpdateBatch(
                add_trajectories=add_trajectories,
                remove_trajectories=[
                    int(t) for t in payload.get("remove_trajectories", ())
                ],
                add_sites=[int(s) for s in payload.get("add_sites", ())],
                remove_sites=[int(s) for s in payload.get("remove_sites", ())],
            )
        except _BadRequest:
            raise
        except (ValueError, TypeError, KeyError) as exc:
            raise _BadRequest(f"bad update delta: {exc}") from None

    async def _handle_update(
        self, request: _Request, tenant: str | None = None
    ) -> _Response:
        if self.farm is not None:
            assert tenant is not None
            farm, name = self.farm, tenant
            # resolving the tenant may page its index in — worker pool
            service = await self._loop.run_in_executor(
                self._executor, lambda: farm.service(name)
            )
            batch = self._parse_update(request.body, service.index.network)
            apply = lambda: farm.apply_updates(name, batch)  # noqa: E731
        else:
            service = self.service
            assert service is not None
            batch = self._parse_update(request.body, service.index.network)
            local = service
            apply = lambda: local.apply_updates(batch)  # noqa: E731
        version_before = service.index.version
        try:
            applied = await self._loop.run_in_executor(self._executor, apply)
        except (ValueError, KeyError) as exc:
            # apply_updates validates the whole batch up front; a bad
            # member (unknown site, duplicate id, ...) is a client error
            message = exc.args[0] if exc.args else str(exc)
            raise _BadRequest(str(message)) from None
        self.stats.updates_applied += applied
        body = {
            "applied": applied,
            "index_version_before": version_before,
            "index_version": service.index.version,
        }
        if tenant is not None:
            body["tenant"] = tenant
        return _Response.json(200, body)

    # ------------------------------------------------------------------ #
    # /metrics
    # ------------------------------------------------------------------ #
    def render_metrics(self) -> str:
        """The Prometheus-style text body of ``GET /metrics``."""
        lines: list[str] = []
        if self.farm is not None:
            self._render_farm_metrics(lines)
        else:
            self._render_service_metrics(lines)
        stats = self.stats
        for endpoint, count in sorted(stats.requests_total.items()):
            _render_metric(
                lines,
                "netclus_server_requests_total",
                "counter",
                "HTTP requests received per endpoint",
                count,
                endpoint=endpoint,
            )
        for status, count in sorted(stats.responses_by_status.items()):
            _render_metric(
                lines,
                "netclus_server_responses_total",
                "counter",
                "HTTP responses sent per status code",
                count,
                status=str(status),
            )
        _render_metric(
            lines,
            "netclus_server_in_flight",
            "gauge",
            "query/update requests currently admitted",
            stats.in_flight,
        )
        _render_metric(
            lines,
            "netclus_server_coalesced_specs_total",
            "counter",
            "specs answered by an already-in-flight identical spec",
            stats.coalesced_specs,
        )
        _render_metric(
            lines,
            "netclus_server_rejected_total",
            "counter",
            "requests rejected with 503 by the admission bound",
            stats.rejected_total,
        )
        _render_metric(
            lines,
            "netclus_server_timeouts_total",
            "counter",
            "requests answered 504 after exceeding the request timeout",
            stats.timeouts_total,
        )
        _render_metric(
            lines,
            "netclus_server_specs_received_total",
            "counter",
            "query specs received across all /query requests",
            stats.specs_received,
        )
        _render_metric(
            lines,
            "netclus_server_updates_applied_total",
            "counter",
            "update items applied through /update",
            stats.updates_applied,
        )
        for endpoint, reservoir in sorted(stats.latency.items()):
            snapshot = reservoir.snapshot()
            for quantile, key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
                _render_metric(
                    lines,
                    "netclus_server_request_latency_seconds",
                    "summary",
                    "request latency quantiles over a sliding sample window",
                    snapshot[key],
                    endpoint=endpoint,
                    quantile=quantile,
                )
            _render_metric(
                lines,
                "netclus_server_request_latency_count",
                "counter",
                "requests contributing to the latency reservoirs",
                snapshot["count"],
                endpoint=endpoint,
            )
        if self.farm is None:
            _render_metric(
                lines,
                "netclus_index_version",
                "gauge",
                "monotonic version of the served index",
                self._index_version(),
            )
        return "\n".join(lines) + "\n"

    def _render_service_metrics(self, lines: list[str]) -> None:
        """Single-tenant service/kernel/covcache counters (no labels)."""
        service = self.service
        assert service is not None
        for name, value in service.stats.as_dict().items():
            kind = "counter" if isinstance(value, int) else "gauge"
            _render_metric(
                lines,
                f"netclus_service_{name}",
                kind,
                f"PlacementService {name.replace('_', ' ')}",
                value,
            )
        for kernel, (calls, seconds) in service.stats.kernel_snapshot().items():
            _render_metric(
                lines,
                "netclus_kernel_calls_total",
                "counter",
                "coverage kernel invocations per kernel",
                calls,
                kernel=kernel,
            )
            _render_metric(
                lines,
                "netclus_kernel_seconds_total",
                "counter",
                "cumulative seconds spent per coverage kernel",
                seconds,
                kernel=kernel,
            )
        coverage_cache = getattr(service, "coverage_cache", None)
        if coverage_cache is not None:
            for name, value in coverage_cache.stats().items():
                kind = "counter" if isinstance(value, int) else "gauge"
                _render_metric(
                    lines,
                    f"netclus_covcache_{name}",
                    kind,
                    f"CoverageCache {name.replace('_', ' ')}",
                    value,
                )

    def _render_farm_metrics(self, lines: list[str]) -> None:
        """Farm gauges plus per-tenant service counters (``tenant`` label)."""
        farm = self.farm
        assert farm is not None
        snapshot = farm.describe()
        if snapshot["memory_budget_bytes"] is not None:
            _render_metric(
                lines,
                "netclus_farm_memory_budget_bytes",
                "gauge",
                "memory budget over resident tenant indexes",
                snapshot["memory_budget_bytes"],
            )
        _render_metric(
            lines,
            "netclus_farm_resident_bytes",
            "gauge",
            "summed storage bytes of resident tenant indexes",
            snapshot["resident_bytes"],
        )
        _render_metric(
            lines,
            "netclus_farm_loads_total",
            "counter",
            "tenant index loads from disk",
            snapshot["loads_total"],
        )
        _render_metric(
            lines,
            "netclus_farm_evictions_total",
            "counter",
            "tenant evictions under the memory budget",
            snapshot["evictions_total"],
        )
        for tenant, info in snapshot["tenants"].items():
            _render_metric(
                lines,
                "netclus_farm_tenant_resident",
                "gauge",
                "whether the tenant index is currently in memory",
                1.0 if info["resident"] else 0.0,
                tenant=tenant,
            )
            _render_metric(
                lines,
                "netclus_farm_tenant_storage_bytes",
                "gauge",
                "Table 9-style storage bytes of the tenant index",
                info["storage_bytes"],
                tenant=tenant,
            )
            for name, value in farm.tenant_stats(tenant).items():
                kind = "counter" if isinstance(value, int) else "gauge"
                _render_metric(
                    lines,
                    f"netclus_service_{name}",
                    kind,
                    f"PlacementService {name.replace('_', ' ')}",
                    value,
                    tenant=tenant,
                )


# ---------------------------------------------------------------------- #
# background harness (tests + benchmarks + examples)
# ---------------------------------------------------------------------- #
class ServerHandle:
    """A running :class:`PlacementServer` on its own event-loop thread.

    The synchronous world's view of the async server: construction via
    :func:`serve_in_background` starts the loop thread and blocks until
    the socket is bound; :meth:`close` drains and joins.  Usable as a
    context manager.
    """

    def __init__(self, server: PlacementServer) -> None:
        self.server = server
        self._loop = asyncio.new_event_loop()
        self._started: threading.Event = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="placement-server", daemon=True
        )

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to the starter
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_until_complete(self.server.serve_forever())
        finally:
            self._loop.close()

    def start(self) -> "ServerHandle":
        """Start the loop thread; returns once the socket is bound."""
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        return self.server.address

    def close(self, drain_timeout: float = 10.0) -> None:
        """Drain and stop the server, then join the loop thread (idempotent)."""
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain_timeout=drain_timeout), self._loop
        )
        future.result(timeout=drain_timeout + 30)
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def serve_in_background(
    service: PlacementService | None = None, **server_kwargs: Any
) -> ServerHandle:
    """Start a :class:`PlacementServer` on a dedicated thread; return its handle.

    Pass ``farm=...`` instead of a service to serve an
    :class:`~repro.service.farm.IndexFarm` (tenant-scoped endpoints).

    ``port`` defaults to 0 (ephemeral) — read the real address back from
    ``handle.address``.  The handle is a context manager::

        with serve_in_background(service) as handle:
            host, port = handle.address
            ...  # real HTTP against the live server

    This is the harness the server test-suite and the serving benchmark
    drive sockets through; the CLI's ``serve`` subcommand runs the same
    server on the main thread instead.
    """
    return ServerHandle(PlacementServer(service, **server_kwargs)).start()
