"""repro.service — the persistent, queryable placement-service layer.

NetClus is an *index*: built once per city, then queried many times for TOPS
placements at varying (τ, k, cost, capacity).  This package turns the
in-memory :class:`~repro.core.netclus.NetClusIndex` into a service:

* :mod:`repro.service.serialization` — versioned on-disk format
  (:func:`save_index` / :func:`load_index`): a NumPy ``.npz`` payload plus a
  JSON manifest with format version, build parameters and graph/trajectory
  fingerprints.  A loaded index answers ``query`` / ``add_site`` /
  ``add_trajectory`` identically to a freshly built one.
* :mod:`repro.service.specs` — :class:`QuerySpec`, the hashable,
  JSON/CSV-serialisable description of one placement request
  (k, τ, ψ, capacity, budget, existing sites).
* :mod:`repro.service.placement` — :class:`PlacementService`, the façade
  owning a loaded (or lazily built) index: ``batch_query`` with shared-work
  amortisation across same-(τ, ψ) specs, an LRU result cache that
  auto-invalidates off :attr:`NetClusIndex.version` when the index is
  mutated, and warm-start reuse of one greedy run across k values.  The
  service is safe for concurrent callers: queries share a readers-writer
  lock, :meth:`PlacementService.apply_updates` mutates exclusively, and
  the cache/counters are mutex-guarded.
* :mod:`repro.service.server` — :class:`PlacementServer`, the asyncio
  HTTP/1.1 front end over a service: ``POST /query`` with identical
  in-flight specs coalesced onto one future, ``POST /update`` through the
  writer lock, ``GET /metrics`` (Prometheus-style text) and ``GET
  /healthz``; bounded admission with 503 backpressure, per-request
  timeouts, and graceful drain on shutdown.  Blocking placement work runs
  on a sized thread pool so the event loop never stalls.
* ``python -m repro.service`` — the ``build`` / ``query`` / ``serve`` /
  ``update`` / ``inspect`` CLI.

See ``docs/architecture.md`` for where this layer sits and
``docs/index-format.md`` for the on-disk format specification.
"""

from repro.service.farm import IndexFarm, TenantRecord, UnknownTenantError
from repro.service.placement import PlacementService, ServiceStats
from repro.service.serialization import (
    FORMAT_VERSION,
    SUPPORTED_FORMAT_VERSIONS,
    IndexFormatError,
    graph_fingerprint,
    load_index,
    load_manifest,
    payload_digest,
    save_index,
    trajectory_fingerprint,
)
from repro.service.server import (
    LatencyReservoir,
    PlacementServer,
    ServerHandle,
    ServerStats,
    serve_in_background,
)
from repro.service.specs import QuerySpec

__all__ = [
    "IndexFarm",
    "TenantRecord",
    "UnknownTenantError",
    "PlacementService",
    "PlacementServer",
    "ServerHandle",
    "ServerStats",
    "LatencyReservoir",
    "serve_in_background",
    "ServiceStats",
    "QuerySpec",
    "save_index",
    "load_index",
    "load_manifest",
    "graph_fingerprint",
    "trajectory_fingerprint",
    "payload_digest",
    "FORMAT_VERSION",
    "SUPPORTED_FORMAT_VERSIONS",
    "IndexFormatError",
]
