"""Road-network serialisation.

Two interchange formats are supported:

* **JSON** — nodes with coordinates plus a directed edge list; lossless and
  self-describing, used by the examples to persist generated cities.
* **Edge list** — a plain whitespace-separated text format
  (``source target length`` per line, ``# node id x y`` comment header),
  compatible with common graph tooling.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.network.graph import RoadNetwork

__all__ = [
    "save_network_json",
    "load_network_json",
    "save_edge_list",
    "load_edge_list",
]


def save_network_json(network: RoadNetwork, path: str | Path) -> None:
    """Serialise *network* to a JSON file at *path*."""
    payload = {
        "nodes": [
            {"id": node.node_id, "x": node.x, "y": node.y} for node in network.nodes()
        ],
        "edges": [
            {"source": edge.source, "target": edge.target, "length": edge.length}
            for edge in network.edges()
        ],
    }
    Path(path).write_text(json.dumps(payload))


def load_network_json(path: str | Path) -> RoadNetwork:
    """Load a network previously written by :func:`save_network_json`."""
    payload = json.loads(Path(path).read_text())
    network = RoadNetwork()
    for node in sorted(payload["nodes"], key=lambda n: n["id"]):
        network.add_node(node["x"], node["y"], node_id=int(node["id"]))
    for edge in payload["edges"]:
        network.add_edge(int(edge["source"]), int(edge["target"]), float(edge["length"]))
    return network


def save_edge_list(network: RoadNetwork, path: str | Path) -> None:
    """Write a plain-text edge list with a node-coordinate comment header."""
    lines = [
        f"# node {node.node_id} {node.x} {node.y}" for node in network.nodes()
    ]
    lines += [
        f"{edge.source} {edge.target} {edge.length}" for edge in network.edges()
    ]
    Path(path).write_text("\n".join(lines) + "\n")


def load_edge_list(path: str | Path) -> RoadNetwork:
    """Load a network from the edge-list format written by :func:`save_edge_list`.

    Lines beginning with ``# node`` define node ids and coordinates; all other
    non-comment lines are ``source target length`` triples.  Nodes referenced
    only by edges are created with zero coordinates.
    """
    network = RoadNetwork()
    edge_lines: list[tuple[int, int, float]] = []
    for raw in Path(path).read_text().splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line[1:].split()
            if parts and parts[0] == "node":
                node_id, x, y = int(parts[1]), float(parts[2]), float(parts[3])
                network.add_node(x, y, node_id=node_id)
            continue
        source, target, length = line.split()
        edge_lines.append((int(source), int(target), float(length)))
    for source, target, length in edge_lines:
        if not network.has_node(source):
            network.add_node(node_id=source)
        if not network.has_node(target):
            network.add_node(node_id=target)
        network.add_edge(source, target, length)
    return network
