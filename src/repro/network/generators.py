"""Synthetic road-network generators.

The paper evaluates on the Beijing road network (OpenStreetMap) and on three
synthetic cities generated with the MNTG traffic generator — New York (star
topology), Atlanta (mesh) and Bangalore (polycentric).  Neither OSM extracts
nor MNTG are available offline, so this module provides topology-faithful
generators:

* :func:`grid_network` — rectangular mesh ("Atlanta-like");
* :func:`star_network` — radial arterials with ring connectors
  ("New-York-like" star topology as characterised in the paper);
* :func:`polycentric_network` — several dense local grids connected by
  arterials ("Bangalore-like");
* :func:`ring_radial_network` — concentric ring roads with radial spokes and
  a dense core ("Beijing-like");
* :func:`random_planar_network` — Delaunay-ish random planar graph used by
  property tests.

All generators return a strongly-connected-by-construction bidirectional
network with planar coordinates in kilometres, and accept a seed for
reproducibility where randomness is involved.
"""

from __future__ import annotations

import math

import numpy as np

from repro.network.graph import RoadNetwork
from repro.utils.rng import ensure_rng
from repro.utils.validation import require, require_positive

__all__ = [
    "grid_network",
    "star_network",
    "polycentric_network",
    "ring_radial_network",
    "random_planar_network",
]


def grid_network(
    rows: int,
    cols: int,
    spacing_km: float = 0.5,
    jitter: float = 0.0,
    seed: int | None = None,
) -> RoadNetwork:
    """Rectangular mesh network (Atlanta-like).

    Parameters
    ----------
    rows, cols:
        Grid dimensions; the network has ``rows * cols`` nodes.
    spacing_km:
        Distance between adjacent intersections.
    jitter:
        Optional relative positional jitter (fraction of spacing) to break the
        perfect regularity; edge lengths follow the jittered coordinates.
    seed:
        RNG seed used only when ``jitter > 0``.
    """
    require(rows >= 2 and cols >= 2, "grid must be at least 2x2")
    require_positive(spacing_km, "spacing_km")
    rng = ensure_rng(seed)
    net = RoadNetwork()
    coords = {}
    for r in range(rows):
        for c in range(cols):
            x = c * spacing_km
            y = r * spacing_km
            if jitter > 0:
                x += rng.uniform(-jitter, jitter) * spacing_km
                y += rng.uniform(-jitter, jitter) * spacing_km
            node = net.add_node(x, y)
            coords[(r, c)] = node
    for r in range(rows):
        for c in range(cols):
            u = coords[(r, c)]
            if c + 1 < cols:
                v = coords[(r, c + 1)]
                net.add_bidirectional_edge(u, v, net.euclidean_distance(u, v))
            if r + 1 < rows:
                v = coords[(r + 1, c)]
                net.add_bidirectional_edge(u, v, net.euclidean_distance(u, v))
    return net


def star_network(
    num_arms: int = 8,
    nodes_per_arm: int = 30,
    spacing_km: float = 0.4,
    num_rings: int = 3,
    seed: int | None = None,
) -> RoadNetwork:
    """Star / radial network (New-York-like per the paper's characterisation).

    A central hub with ``num_arms`` arterial spokes; a few concentric ring
    connectors join adjacent arms so that cross-arm travel does not always go
    through the centre.
    """
    require(num_arms >= 3, "need at least 3 arms")
    require(nodes_per_arm >= 2, "need at least 2 nodes per arm")
    require_positive(spacing_km, "spacing_km")
    net = RoadNetwork()
    hub = net.add_node(0.0, 0.0)
    arm_nodes: list[list[int]] = []
    for arm in range(num_arms):
        angle = 2.0 * math.pi * arm / num_arms
        prev = hub
        nodes: list[int] = []
        for step in range(1, nodes_per_arm + 1):
            radius = step * spacing_km
            node = net.add_node(radius * math.cos(angle), radius * math.sin(angle))
            net.add_bidirectional_edge(prev, node, net.euclidean_distance(prev, node))
            nodes.append(node)
            prev = node
        arm_nodes.append(nodes)
    # ring connectors at evenly spaced depths
    if num_rings > 0:
        depths = np.linspace(2, nodes_per_arm - 1, num=num_rings, dtype=int)
        for depth in depths:
            for arm in range(num_arms):
                u = arm_nodes[arm][int(depth)]
                v = arm_nodes[(arm + 1) % num_arms][int(depth)]
                net.add_bidirectional_edge(u, v, net.euclidean_distance(u, v))
    return net


def polycentric_network(
    num_centers: int = 4,
    grid_size: int = 10,
    spacing_km: float = 0.35,
    center_spread_km: float = 6.0,
    seed: int | None = None,
) -> RoadNetwork:
    """Polycentric network (Bangalore-like): several local grids + arterials.

    Each centre is a ``grid_size x grid_size`` mesh; centres are placed on a
    circle of radius *center_spread_km* and adjacent centres are connected by
    a single arterial edge between their nearest corner nodes.
    """
    require(num_centers >= 2, "need at least 2 centers")
    rng = ensure_rng(seed)
    net = RoadNetwork()
    center_corner_nodes: list[list[int]] = []
    for idx in range(num_centers):
        angle = 2.0 * math.pi * idx / num_centers
        cx = center_spread_km * math.cos(angle)
        cy = center_spread_km * math.sin(angle)
        local_nodes: dict[tuple[int, int], int] = {}
        for r in range(grid_size):
            for c in range(grid_size):
                x = cx + (c - grid_size / 2) * spacing_km + rng.uniform(-0.02, 0.02)
                y = cy + (r - grid_size / 2) * spacing_km + rng.uniform(-0.02, 0.02)
                local_nodes[(r, c)] = net.add_node(x, y)
        for r in range(grid_size):
            for c in range(grid_size):
                u = local_nodes[(r, c)]
                if c + 1 < grid_size:
                    v = local_nodes[(r, c + 1)]
                    net.add_bidirectional_edge(u, v, net.euclidean_distance(u, v))
                if r + 1 < grid_size:
                    v = local_nodes[(r + 1, c)]
                    net.add_bidirectional_edge(u, v, net.euclidean_distance(u, v))
        corners = [
            local_nodes[(0, 0)],
            local_nodes[(0, grid_size - 1)],
            local_nodes[(grid_size - 1, 0)],
            local_nodes[(grid_size - 1, grid_size - 1)],
        ]
        center_corner_nodes.append(corners)
    # arterial links between adjacent centres (and one chord for redundancy)
    for idx in range(num_centers):
        nxt = (idx + 1) % num_centers
        u = _closest_pair(net, center_corner_nodes[idx], center_corner_nodes[nxt])
        net.add_bidirectional_edge(u[0], u[1], net.euclidean_distance(u[0], u[1]))
    if num_centers > 3:
        u = _closest_pair(net, center_corner_nodes[0], center_corner_nodes[num_centers // 2])
        net.add_bidirectional_edge(u[0], u[1], net.euclidean_distance(u[0], u[1]))
    return net


def ring_radial_network(
    num_rings: int = 5,
    nodes_per_ring: int = 40,
    ring_spacing_km: float = 1.2,
    core_grid: int = 6,
    core_spacing_km: float = 0.35,
    seed: int | None = None,
) -> RoadNetwork:
    """Ring-radial network (Beijing-like).

    Concentric ring roads with radial spokes (every other ring node carries a
    spoke), plus a dense core grid around the centre connected to the first
    ring.  This mirrors Beijing's ring-road structure at reduced scale.
    """
    require(num_rings >= 2, "need at least 2 rings")
    require(nodes_per_ring >= 8, "need at least 8 nodes per ring")
    net = RoadNetwork()
    # dense core grid
    core_nodes: dict[tuple[int, int], int] = {}
    for r in range(core_grid):
        for c in range(core_grid):
            x = (c - core_grid / 2) * core_spacing_km
            y = (r - core_grid / 2) * core_spacing_km
            core_nodes[(r, c)] = net.add_node(x, y)
    for r in range(core_grid):
        for c in range(core_grid):
            u = core_nodes[(r, c)]
            if c + 1 < core_grid:
                v = core_nodes[(r, c + 1)]
                net.add_bidirectional_edge(u, v, net.euclidean_distance(u, v))
            if r + 1 < core_grid:
                v = core_nodes[(r + 1, c)]
                net.add_bidirectional_edge(u, v, net.euclidean_distance(u, v))
    # rings
    ring_nodes: list[list[int]] = []
    for ring in range(1, num_rings + 1):
        radius = ring * ring_spacing_km
        nodes: list[int] = []
        for idx in range(nodes_per_ring):
            angle = 2.0 * math.pi * idx / nodes_per_ring
            nodes.append(net.add_node(radius * math.cos(angle), radius * math.sin(angle)))
        for idx in range(nodes_per_ring):
            u, v = nodes[idx], nodes[(idx + 1) % nodes_per_ring]
            net.add_bidirectional_edge(u, v, net.euclidean_distance(u, v))
        ring_nodes.append(nodes)
    # radial spokes between consecutive rings
    for ring in range(len(ring_nodes) - 1):
        for idx in range(0, nodes_per_ring, 2):
            u = ring_nodes[ring][idx]
            v = ring_nodes[ring + 1][idx]
            net.add_bidirectional_edge(u, v, net.euclidean_distance(u, v))
    # connect core boundary to the innermost ring
    boundary = [core_nodes[(r, c)] for r in range(core_grid) for c in range(core_grid)
                if r in (0, core_grid - 1) or c in (0, core_grid - 1)]
    inner = ring_nodes[0]
    for idx in range(0, nodes_per_ring, 4):
        ring_node = inner[idx]
        nearest = min(boundary, key=lambda b: net.euclidean_distance(b, ring_node))
        net.add_bidirectional_edge(nearest, ring_node, net.euclidean_distance(nearest, ring_node))
    return net


def random_planar_network(
    num_nodes: int,
    area_km: float = 10.0,
    avg_degree: float = 3.0,
    seed: int | None = None,
) -> RoadNetwork:
    """Random connected quasi-planar network used by tests and fuzzing.

    Nodes are placed uniformly at random in a square of side *area_km*; each
    node is connected to its nearest neighbours until the average degree is
    roughly *avg_degree*; finally a spanning chain guarantees connectivity.
    """
    require(num_nodes >= 2, "need at least 2 nodes")
    rng = ensure_rng(seed)
    net = RoadNetwork()
    points = rng.uniform(0.0, area_km, size=(num_nodes, 2))
    for x, y in points:
        net.add_node(float(x), float(y))
    k_neighbors = max(1, int(round(avg_degree / 2)))
    # connect each node to its k nearest neighbours
    for u in range(num_nodes):
        deltas = points - points[u]
        dists = np.hypot(deltas[:, 0], deltas[:, 1])
        order = np.argsort(dists)
        added = 0
        for v in order:
            if v == u:
                continue
            if not net.has_edge(u, int(v)):
                net.add_bidirectional_edge(u, int(v), max(float(dists[v]), 1e-6))
            added += 1
            if added >= k_neighbors:
                break
    # spanning chain over a random permutation guarantees strong connectivity
    perm = rng.permutation(num_nodes)
    for i in range(num_nodes - 1):
        u, v = int(perm[i]), int(perm[i + 1])
        if not net.has_edge(u, v):
            length = max(float(np.hypot(*(points[u] - points[v]))), 1e-6)
            net.add_bidirectional_edge(u, v, length)
    return net


def _closest_pair(
    net: RoadNetwork, nodes_a: list[int], nodes_b: list[int]
) -> tuple[int, int]:
    """Return the (a, b) pair with the smallest Euclidean distance."""
    best = (nodes_a[0], nodes_b[0])
    best_dist = float("inf")
    for a in nodes_a:
        for b in nodes_b:
            dist = net.euclidean_distance(a, b)
            if dist < best_dist:
                best_dist = dist
                best = (a, b)
    return best
