"""Road-network substrate: graph model, shortest paths, generators, and I/O."""

from repro.network.graph import RoadNetwork, Node, Edge
from repro.network.shortest_path import (
    ShortestPathEngine,
    dijkstra_single_source,
    bounded_round_trip_neighbors,
)
from repro.network.generators import (
    grid_network,
    star_network,
    polycentric_network,
    ring_radial_network,
    random_planar_network,
)
from repro.network.io import (
    save_network_json,
    load_network_json,
    save_edge_list,
    load_edge_list,
)

__all__ = [
    "RoadNetwork",
    "Node",
    "Edge",
    "ShortestPathEngine",
    "dijkstra_single_source",
    "bounded_round_trip_neighbors",
    "grid_network",
    "star_network",
    "polycentric_network",
    "ring_radial_network",
    "random_planar_network",
    "save_network_json",
    "load_network_json",
    "save_edge_list",
    "load_edge_list",
]
