"""Directed road-network graph model.

The paper models a road network as a directed graph ``G = (V, E)`` where nodes
are road intersections and edges are road segments weighted by their length
(in kilometres throughout this library).  Candidate sites live on nodes; a
site located in the middle of a segment is spliced in as a new node
(:meth:`RoadNetwork.insert_site_on_edge`), exactly as described in Section 2
of the paper.

The class keeps plain adjacency dictionaries for incremental construction and
lazily materialises a SciPy CSR matrix for the bulk shortest-path computations
used by the distance oracle and the Greedy-GDSP clustering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np
from scipy.sparse import csr_matrix

from repro.utils.validation import require, require_positive

__all__ = ["Node", "Edge", "RoadNetwork"]


@dataclass(frozen=True)
class Node:
    """A road intersection.

    Attributes
    ----------
    node_id:
        Dense integer identifier (0..N-1 after construction).
    x, y:
        Planar coordinates in kilometres.  Used by generators, the GPS noise
        simulator, and the map-matcher; the optimisation algorithms only use
        network distances.
    """

    node_id: int
    x: float = 0.0
    y: float = 0.0


@dataclass(frozen=True)
class Edge:
    """A directed road segment from ``source`` to ``target`` of length ``length`` km."""

    source: int
    target: int
    length: float


class RoadNetwork:
    """A directed, weighted road network.

    Nodes are identified by dense non-negative integers.  Edge weights are
    road-segment lengths in kilometres and must be positive.

    Examples
    --------
    >>> net = RoadNetwork()
    >>> a = net.add_node(0.0, 0.0)
    >>> b = net.add_node(1.0, 0.0)
    >>> net.add_edge(a, b, 1.0)
    >>> net.add_edge(b, a, 1.0)
    >>> net.num_nodes, net.num_edges
    (2, 2)
    """

    def __init__(self) -> None:
        self._nodes: dict[int, Node] = {}
        self._succ: dict[int, dict[int, float]] = {}
        self._pred: dict[int, dict[int, float]] = {}
        self._next_id: int = 0
        self._csr_cache: csr_matrix | None = None
        self._csr_rev_cache: csr_matrix | None = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, x: float = 0.0, y: float = 0.0, node_id: int | None = None) -> int:
        """Add a node and return its identifier.

        If *node_id* is given it must not already exist; otherwise the next
        free dense id is assigned.
        """
        if node_id is None:
            node_id = self._next_id
        require(node_id not in self._nodes, f"node {node_id} already exists")
        require(node_id >= 0, "node ids must be non-negative")
        self._nodes[node_id] = Node(node_id, float(x), float(y))
        self._succ.setdefault(node_id, {})
        self._pred.setdefault(node_id, {})
        self._next_id = max(self._next_id, node_id + 1)
        self._invalidate_cache()
        return node_id

    def add_edge(self, source: int, target: int, length: float) -> None:
        """Add (or overwrite) the directed edge ``source -> target``."""
        require_positive(length, "edge length")
        require(source in self._nodes, f"unknown source node {source}")
        require(target in self._nodes, f"unknown target node {target}")
        require(source != target, "self-loops are not allowed in a road network")
        self._succ[source][target] = float(length)
        self._pred[target][source] = float(length)
        self._invalidate_cache()

    def add_bidirectional_edge(self, u: int, v: int, length: float) -> None:
        """Add both ``u -> v`` and ``v -> u`` with the same length."""
        self.add_edge(u, v, length)
        self.add_edge(v, u, length)

    @classmethod
    def from_arrays(
        cls,
        node_ids: np.ndarray,
        node_xy: np.ndarray,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_len: np.ndarray,
    ) -> "RoadNetwork":
        """Bulk-construct a network from parallel arrays.

        The deserialization fast path: equivalent to ``add_node`` /
        ``add_edge`` in array order but built with vectorised checks and
        C-level dict construction instead of per-element calls.  Input
        must satisfy the same invariants those methods enforce (unique
        non-negative node ids, known endpoints, positive lengths, no
        self-loops) — violations raise, as they would element-wise.
        """
        node_xy = np.asarray(node_xy, dtype=np.float64)
        ids = [int(i) for i in np.asarray(node_ids).tolist()]
        require(len(ids) == len(set(ids)), "node ids must be unique")
        require(all(i >= 0 for i in ids), "node ids must be non-negative")
        require(node_xy.shape == (len(ids), 2), "node_xy must be (num_nodes, 2)")
        lengths = np.asarray(edge_len, dtype=np.float64)
        require(
            bool(np.all(lengths > 0)) if lengths.size else True,
            "edge length must be positive",
        )
        require(
            not bool(np.any(np.asarray(edge_src) == np.asarray(edge_dst))),
            "self-loops are not allowed in a road network",
        )
        network = cls()
        network._nodes = {
            i: Node(i, x, y)
            for i, (x, y) in zip(ids, node_xy.tolist())
        }
        succ: dict[int, dict[int, float]] = {i: {} for i in ids}
        pred: dict[int, dict[int, float]] = {i: {} for i in ids}
        for source, target, length in zip(
            np.asarray(edge_src).tolist(),
            np.asarray(edge_dst).tolist(),
            lengths.tolist(),
        ):
            succ[source][target] = length  # KeyError = unknown source node
            pred[target][source] = length  # KeyError = unknown target node
        network._succ = succ
        network._pred = pred
        network._next_id = max(ids) + 1 if ids else 0
        return network

    def remove_edge(self, source: int, target: int) -> None:
        """Remove the directed edge ``source -> target`` (KeyError if absent)."""
        del self._succ[source][target]
        del self._pred[target][source]
        self._invalidate_cache()

    def insert_site_on_edge(
        self, source: int, target: int, fraction: float, bidirectional: bool = True
    ) -> int:
        """Splice a new node onto the edge ``source -> target``.

        Implements the site-augmentation described in Section 2 of the paper:
        the original edge (and its reverse, when *bidirectional*) is replaced
        by two segments through the new node.  ``fraction`` is the position of
        the new node along the edge, in ``(0, 1)``.

        Returns the new node's id.
        """
        require(0.0 < fraction < 1.0, "fraction must lie strictly between 0 and 1")
        length = self._succ[source][target]
        src, tgt = self._nodes[source], self._nodes[target]
        x = src.x + fraction * (tgt.x - src.x)
        y = src.y + fraction * (tgt.y - src.y)
        new_id = self.add_node(x, y)
        self.remove_edge(source, target)
        self.add_edge(source, new_id, fraction * length)
        self.add_edge(new_id, target, (1.0 - fraction) * length)
        if bidirectional and source in self._succ.get(target, {}):
            rev_length = self._succ[target][source]
            self.remove_edge(target, source)
            self.add_edge(target, new_id, (1.0 - fraction) * rev_length)
            self.add_edge(new_id, source, fraction * rev_length)
        return new_id

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the network."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of directed edges in the network."""
        return sum(len(nbrs) for nbrs in self._succ.values())

    def nodes(self) -> Iterator[Node]:
        """Iterate over :class:`Node` records."""
        return iter(self._nodes.values())

    def node_ids(self) -> list[int]:
        """Return the sorted list of node ids."""
        return sorted(self._nodes)

    def node(self, node_id: int) -> Node:
        """Return the :class:`Node` record for *node_id*."""
        return self._nodes[node_id]

    def has_node(self, node_id: int) -> bool:
        """Return ``True`` if *node_id* exists."""
        return node_id in self._nodes

    def has_edge(self, source: int, target: int) -> bool:
        """Return ``True`` if the directed edge exists."""
        return target in self._succ.get(source, {})

    def edge_length(self, source: int, target: int) -> float:
        """Return the length of the directed edge ``source -> target``."""
        return self._succ[source][target]

    def edges(self) -> Iterator[Edge]:
        """Iterate over all directed edges."""
        for source, nbrs in self._succ.items():
            for target, length in nbrs.items():
                yield Edge(source, target, length)

    def successors(self, node_id: int) -> dict[int, float]:
        """Return ``{neighbor: length}`` for outgoing edges of *node_id*."""
        return dict(self._succ[node_id])

    def predecessors(self, node_id: int) -> dict[int, float]:
        """Return ``{neighbor: length}`` for incoming edges of *node_id*."""
        return dict(self._pred[node_id])

    def out_degree(self, node_id: int) -> int:
        """Number of outgoing edges of *node_id*."""
        return len(self._succ[node_id])

    def in_degree(self, node_id: int) -> int:
        """Number of incoming edges of *node_id*."""
        return len(self._pred[node_id])

    def coordinates(self) -> np.ndarray:
        """Return an ``(N, 2)`` array of node coordinates indexed by node id.

        Requires dense ids ``0..N-1`` (true for all generators in this
        library).
        """
        coords = np.zeros((self.num_nodes, 2), dtype=float)
        for node in self._nodes.values():
            coords[node.node_id, 0] = node.x
            coords[node.node_id, 1] = node.y
        return coords

    def euclidean_distance(self, u: int, v: int) -> float:
        """Straight-line distance (km) between the coordinates of *u* and *v*."""
        a, b = self._nodes[u], self._nodes[v]
        return float(np.hypot(a.x - b.x, a.y - b.y))

    def path_length(self, path: Iterable[int]) -> float:
        """Sum of edge lengths along a node path (raises if an edge is missing)."""
        total = 0.0
        prev: int | None = None
        for node_id in path:
            if prev is not None:
                total += self._succ[prev][node_id]
            prev = node_id
        return total

    # ------------------------------------------------------------------ #
    # CSR export (used by the shortest-path engine)
    # ------------------------------------------------------------------ #
    def to_csr(self, reverse: bool = False) -> csr_matrix:
        """Return the adjacency as a SciPy CSR matrix of edge lengths.

        Node ids must be dense ``0..N-1``.  Results are cached and invalidated
        on mutation.  With ``reverse=True`` the transposed graph is returned
        (used for distances *to* a site).
        """
        if reverse:
            if self._csr_rev_cache is None:
                self._csr_rev_cache = self._build_csr(self._pred)
            return self._csr_rev_cache
        if self._csr_cache is None:
            self._csr_cache = self._build_csr(self._succ)
        return self._csr_cache

    def _build_csr(self, adjacency: dict[int, dict[int, float]]) -> csr_matrix:
        n = self.num_nodes
        require(
            set(self._nodes) == set(range(n)),
            "CSR export requires dense node ids 0..N-1",
        )
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        for source, nbrs in adjacency.items():
            for target, length in nbrs.items():
                rows.append(source)
                cols.append(target)
                data.append(length)
        return csr_matrix(
            (np.asarray(data), (np.asarray(rows, dtype=np.int32), np.asarray(cols, dtype=np.int32))),
            shape=(n, n),
        )

    def _invalidate_cache(self) -> None:
        self._csr_cache = None
        self._csr_rev_cache = None

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` (lengths stored as ``weight``)."""
        import networkx as nx

        graph = nx.DiGraph()
        for node in self._nodes.values():
            graph.add_node(node.node_id, x=node.x, y=node.y)
        for edge in self.edges():
            graph.add_edge(edge.source, edge.target, weight=edge.length)
        return graph

    @classmethod
    def from_networkx(cls, graph) -> "RoadNetwork":
        """Build a :class:`RoadNetwork` from a ``networkx`` graph.

        Node labels must be integers; ``weight`` (or ``length``) edge
        attributes give segment lengths, defaulting to 1.0.
        """
        net = cls()
        for node_id, attrs in sorted(graph.nodes(data=True)):
            net.add_node(attrs.get("x", 0.0), attrs.get("y", 0.0), node_id=int(node_id))
        for u, v, attrs in graph.edges(data=True):
            length = float(attrs.get("weight", attrs.get("length", 1.0)))
            net.add_edge(int(u), int(v), length)
            if not graph.is_directed():
                net.add_edge(int(v), int(u), length)
        return net

    def copy(self) -> "RoadNetwork":
        """Return a deep copy of the network."""
        clone = RoadNetwork()
        for node in self._nodes.values():
            clone.add_node(node.x, node.y, node_id=node.node_id)
        for edge in self.edges():
            clone.add_edge(edge.source, edge.target, edge.length)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"RoadNetwork(nodes={self.num_nodes}, edges={self.num_edges})"
