"""Shortest-path engine for road networks.

Two layers are provided:

* :func:`dijkstra_single_source` — a plain binary-heap Dijkstra over the
  adjacency dictionaries.  Used for trajectory routing, map-matching and for
  small ad-hoc queries; also serves as the reference implementation in tests.
* :class:`ShortestPathEngine` — bulk computations on the CSR adjacency via
  :func:`scipy.sparse.csgraph.dijkstra`: multi-source distance tables
  (``d(site -> v)`` and ``d(v -> site)`` for every node), bounded round-trip
  neighbourhoods (used by Greedy-GDSP) and pairwise round-trip distances.

All distances are in kilometres; unreachable pairs are ``inf``.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np
from scipy.sparse.csgraph import dijkstra as csgraph_dijkstra

from repro.network.graph import RoadNetwork
from repro.utils.validation import require

__all__ = [
    "dijkstra_single_source",
    "shortest_path_nodes",
    "ShortestPathEngine",
    "bounded_round_trip_neighbors",
]


def dijkstra_single_source(
    network: RoadNetwork,
    source: int,
    cutoff: float | None = None,
    reverse: bool = False,
) -> dict[int, float]:
    """Dijkstra distances from *source* over the adjacency dictionaries.

    Parameters
    ----------
    network:
        The road network.
    source:
        Start node.
    cutoff:
        If given, nodes farther than *cutoff* are not expanded (their distance
        is omitted from the result).
    reverse:
        If ``True``, travel edges backwards, i.e. compute ``d(v -> source)``.

    Returns
    -------
    dict
        ``{node: distance}`` for every reached node (including the source at
        distance 0).
    """
    neighbors = network.predecessors if reverse else network.successors
    dist: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled: set[int] = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        for v, length in neighbors(u).items():
            nd = d + length
            if cutoff is not None and nd > cutoff:
                continue
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def shortest_path_nodes(network: RoadNetwork, source: int, target: int) -> list[int]:
    """Return the node sequence of a shortest path ``source -> target``.

    Raises ``ValueError`` if *target* is unreachable.  Used by the trajectory
    generators to produce realistic (map-matched-like) node sequences.
    """
    dist: dict[int, float] = {source: 0.0}
    parent: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled: set[int] = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u == target:
            break
        for v, length in network.successors(u).items():
            nd = d + length
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    if target not in dist:
        raise ValueError(f"node {target} is not reachable from {source}")
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


class ShortestPathEngine:
    """Bulk shortest-path computations over a :class:`RoadNetwork`.

    The engine wraps the CSR adjacency (and its transpose) and exposes the
    distance tables the TOPS algorithms need:

    * ``distances_from(sources)`` — ``d(s -> v)`` for every source and node;
    * ``distances_to(targets)`` — ``d(v -> t)`` for every target and node;
    * ``round_trip_matrix(nodes)`` — pairwise ``dr(u, v) = d(u,v) + d(v,u)``;
    * ``bounded_round_trip_neighbors`` — nodes within round-trip ``2R`` of each
      node (the GDSP dominance relation), computed in source chunks to bound
      memory.
    """

    def __init__(self, network: RoadNetwork) -> None:
        self.network = network
        self._csr = network.to_csr(reverse=False)
        self._csr_rev = network.to_csr(reverse=True)
        self.num_nodes = int(self._csr.shape[0])

    # ------------------------------------------------------------------ #
    def to_payload(self) -> dict[str, np.ndarray]:
        """Flatten the engine into picklable CSR arrays.

        The payload carries everything the bulk computations touch — the
        forward and reverse CSR adjacencies — without the Python-dict
        :class:`RoadNetwork` behind them, so it ships to a worker process
        cheaply.  Restore with :meth:`from_payload`.
        """
        return {
            "csr_data": self._csr.data,
            "csr_indices": self._csr.indices,
            "csr_indptr": self._csr.indptr,
            "csr_rev_data": self._csr_rev.data,
            "csr_rev_indices": self._csr_rev.indices,
            "csr_rev_indptr": self._csr_rev.indptr,
            "num_nodes": np.int64(self._csr.shape[0]),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, np.ndarray]) -> "ShortestPathEngine":
        """Rebuild an engine from :meth:`to_payload` arrays (worker side).

        The restored engine has no :class:`RoadNetwork` attached
        (``engine.network is None``); every bulk computation
        (``distances_from``/``distances_to``/``round_trip_matrix``/
        ``bounded_round_trip_neighbors``) works purely off the CSR matrices.
        """
        from scipy.sparse import csr_matrix

        n = int(payload["num_nodes"])
        engine = cls.__new__(cls)
        engine.network = None
        engine._csr = csr_matrix(
            (payload["csr_data"], payload["csr_indices"], payload["csr_indptr"]),
            shape=(n, n),
        )
        engine._csr_rev = csr_matrix(
            (
                payload["csr_rev_data"],
                payload["csr_rev_indices"],
                payload["csr_rev_indptr"],
            ),
            shape=(n, n),
        )
        engine.num_nodes = n
        return engine

    # ------------------------------------------------------------------ #
    def distances_from(
        self, sources: Sequence[int], limit: float = np.inf
    ) -> np.ndarray:
        """Return ``(len(sources), N)`` array of ``d(source -> node)``.

        Entries beyond *limit* are ``inf``.
        """
        require(len(sources) > 0, "sources must be non-empty")
        return csgraph_dijkstra(
            self._csr, directed=True, indices=np.asarray(sources, dtype=np.int64), limit=limit
        )

    def distances_to(self, targets: Sequence[int], limit: float = np.inf) -> np.ndarray:
        """Return ``(len(targets), N)`` array of ``d(node -> target)``.

        Computed as forward Dijkstra on the reversed graph.
        """
        require(len(targets) > 0, "targets must be non-empty")
        return csgraph_dijkstra(
            self._csr_rev, directed=True, indices=np.asarray(targets, dtype=np.int64), limit=limit
        )

    def single_source(self, source: int, limit: float = np.inf) -> np.ndarray:
        """Return a length-``N`` vector of ``d(source -> node)``."""
        return self.distances_from([source], limit=limit)[0]

    def single_target(self, target: int, limit: float = np.inf) -> np.ndarray:
        """Return a length-``N`` vector of ``d(node -> target)``."""
        return self.distances_to([target], limit=limit)[0]

    def round_trip_matrix(
        self, nodes: Sequence[int], limit: float = np.inf
    ) -> np.ndarray:
        """Pairwise round-trip distances among *nodes*.

        ``result[i, j] = d(nodes[i], nodes[j]) + d(nodes[j], nodes[i])``.
        """
        forward = self.distances_from(nodes, limit=limit)[:, list(nodes)]
        return forward + forward.T

    def round_trip_from(self, source: int, limit: float = np.inf) -> np.ndarray:
        """Round-trip distance from *source* to every node: ``d(s,v) + d(v,s)``."""
        out = self.distances_from([source], limit=limit)[0]
        back = self.distances_to([source], limit=limit)[0]
        return out + back

    # ------------------------------------------------------------------ #
    def bounded_round_trip_neighbors(
        self,
        radius: float,
        nodes: Sequence[int] | None = None,
        chunk_size: int = 512,
    ) -> dict[int, np.ndarray]:
        """For each node, the nodes within round-trip distance ``2 * radius``.

        This is the dominance relation of the Generalized Dominating Set
        Problem (Problem 2 in the paper): ``u`` dominates ``v`` when
        ``d(u, v) + d(v, u) <= 2R``.  Sources are processed in chunks of
        *chunk_size* to keep the dense distance blocks small.

        Returns
        -------
        dict
            ``{node: sorted int array of dominated nodes}`` (always including
            the node itself).
        """
        if nodes is None:
            nodes = list(range(self.num_nodes))
        nodes = list(nodes)
        threshold = 2.0 * radius
        result: dict[int, np.ndarray] = {}
        for start in range(0, len(nodes), chunk_size):
            chunk = nodes[start : start + chunk_size]
            fwd = self.distances_from(chunk, limit=threshold)
            bwd = self.distances_to(chunk, limit=threshold)
            round_trip = fwd + bwd
            for row, node in enumerate(chunk):
                dominated = np.flatnonzero(round_trip[row] <= threshold)
                result[node] = dominated.astype(np.int64)
        return result


def bounded_round_trip_neighbors(
    network: RoadNetwork,
    radius: float,
    chunk_size: int = 512,
    engine: ShortestPathEngine | None = None,
) -> dict[int, np.ndarray]:
    """Convenience wrapper: GDSP dominance neighbourhoods for every node.

    Pass an *engine* already built over *network* to reuse its CSR
    adjacencies; without one, a fresh :class:`ShortestPathEngine` (two CSR
    conversions) is constructed for this single call.
    """
    if engine is None:
        engine = ShortestPathEngine(network)
    return engine.bounded_round_trip_neighbors(radius, chunk_size=chunk_size)
