"""Packed-bitset coverage engine for binary preferences (popcount kernels).

For the binary ψ of TOPS1 (Definition 3) the ψ-score matrix *is* a bit
matrix: a (trajectory, site) pair scores exactly 1.0 within τ and 0.0
beyond it.  :class:`BitsetCoverageIndex` packs that matrix into ``uint64``
bitset blocks — one word covers 64 trajectories, and each site column is a
contiguous block row — so the greedy hot-path kernels become bit
operations:

* ``marginal_gains`` — popcount of ``col & ~covered`` for every site, one
  ``np.bitwise_and`` + ``np.bitwise_count`` over the ``(n, W)`` block
  matrix (``W = ⌈m/64⌉``) instead of an ``(m, n)`` float reduction;
* ``gain_updates`` — a popcount over the packed row-mask delta (under a
  binary ψ an improved trajectory always goes 0 → 1, so the per-site gain
  drop is exactly the number of covered improved rows);
* ``absorb`` / capacitated paths — served on the *unpacked* column through
  the exact same ``serve_top_capacity`` / ``_top_capacity_sum`` code as
  the sparse engine, which is what keeps selections and per-trajectory
  utilities byte-identical across engines.

Exactness: with a binary ψ and unit trajectory weights (both enforced at
construction) every utility is exactly 0.0 or 1.0, so the float sums the
dense/sparse engines compute are integers below 2⁵³ — and a popcount
converted to ``float64`` reproduces them bit for bit.  Combined with the
shared ``GAIN_RTOL`` / ``tie_break_candidates`` tie discipline, IncGreedy,
LazyGreedy, FMGreedy, every TOPS variant driver, ``ShardedCoverage`` parts
and ``CoverageCache`` materialisation all run on this engine unchanged
with byte-identical selections.

The kernels are ``@kernel``-marked (rule RA010: no per-call ``np.zeros`` /
``np.empty`` / ``.astype`` temporaries) and draw their scratch from the
same per-thread :class:`~repro.core.coverage._ScratchPool` the float
engines use.

The packed layout assumes a little-endian platform (``np.packbits`` /
``np.unpackbits`` with ``bitorder="little"`` against ``uint64`` byte
views), which covers every platform the test matrix runs on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.coverage import (
    _ScratchPool,
    _top_capacity_sum,
    build_label_map,
    labels_to_columns,
    replay_selection,
    serve_top_capacity,
)
from repro.core.preference import PreferenceFunction
from repro.utils.concurrency import kernel
from repro.utils.timer import KernelTimer
from repro.utils.validation import require

__all__ = ["BitsetCoverageIndex"]

#: trajectories covered by one block word
WORD_BITS = 64


def _pack_bool_into(mask: np.ndarray, words: np.ndarray) -> np.ndarray:
    """Pack a boolean row vector into *words* (little-endian uint64)."""
    packed = np.packbits(mask, bitorder="little")
    byte_view = words.view(np.uint8)
    byte_view[: packed.size] = packed
    byte_view[packed.size :] = 0
    return words


def _unpack_rows(words: np.ndarray, num_rows: int) -> np.ndarray:
    """Ascending row indices of the set bits in a packed column."""
    bits = np.unpackbits(words.view(np.uint8), bitorder="little", count=num_rows)
    return np.flatnonzero(bits)


class BitsetCoverageIndex:
    """Bit-packed coverage and popcount kernels for one (τ, binary ψ).

    Parameters mirror :class:`~repro.core.coverage.CoverageIndex`; the
    constructor consumes a dense detour matrix, while
    :meth:`from_coverage_lists` builds the index straight from
    (trajectory, site, detour) triples — the canonical ≤τ entry stream of
    the coverage cache fully determines a binary coverage, so both paths
    produce the same blocks.

    Requires ``preference.is_binary`` and unit trajectory weights: those
    are the preconditions that make popcounts equal to float sums exactly.
    """

    def __init__(
        self,
        detours: np.ndarray,
        tau_km: float,
        preference: PreferenceFunction,
        site_labels: Sequence[int] | None = None,
        trajectory_ids: Sequence[int] | None = None,
        trajectory_weights: np.ndarray | None = None,
    ) -> None:
        detours = np.asarray(detours, dtype=np.float64)
        require(detours.ndim == 2, "detours must be a 2-D matrix")
        num_trajectories, num_sites = detours.shape
        self._init_common(
            num_trajectories,
            num_sites,
            tau_km,
            preference,
            site_labels,
            trajectory_ids,
            trajectory_weights,
        )
        with np.errstate(invalid="ignore"):
            covered = np.isfinite(detours) & (detours <= self.tau_km)
        blocks = np.zeros((self.num_sites, self._num_words), dtype=np.uint64)
        if num_trajectories:
            packed = np.packbits(covered.T, axis=1, bitorder="little")
            blocks.view(np.uint8)[:, : packed.shape[1]] = packed
        self._blocks = blocks
        self._finish_init()

    # ------------------------------------------------------------------ #
    @classmethod
    def from_coverage_lists(
        cls,
        rows: Sequence[int] | np.ndarray,
        cols: Sequence[int] | np.ndarray,
        detours: Sequence[float] | np.ndarray,
        num_trajectories: int,
        num_sites: int,
        tau_km: float,
        preference: PreferenceFunction,
        site_labels: Sequence[int] | None = None,
        trajectory_ids: Sequence[int] | None = None,
        trajectory_weights: np.ndarray | None = None,
    ) -> "BitsetCoverageIndex":
        """Build the index from (trajectory, site, detour) coverage triples.

        Entries beyond τ or non-finite are dropped, exactly like the
        sparse builder; duplicate (trajectory, site) pairs are idempotent
        under the bitwise OR, so no min-reduction is needed — a binary
        coverage is fully determined by *which* pairs are within τ.
        """
        index = cls.__new__(cls)
        row_index = np.asarray(rows, dtype=np.int64)
        col_index = np.asarray(cols, dtype=np.int64)
        detour_values = np.asarray(detours, dtype=np.float64)
        require(
            row_index.shape == col_index.shape == detour_values.shape,
            "rows, cols and detours must have equal lengths",
        )
        keep = np.isfinite(detour_values) & (detour_values <= float(tau_km))
        row_index, col_index = row_index[keep], col_index[keep]
        if len(row_index):
            require(
                int(row_index.min()) >= 0 and int(row_index.max()) < num_trajectories,
                "trajectory row out of range",
            )
            require(
                int(col_index.min()) >= 0 and int(col_index.max()) < num_sites,
                "site column out of range",
            )
        index._init_common(
            num_trajectories,
            num_sites,
            tau_km,
            preference,
            site_labels,
            trajectory_ids,
            trajectory_weights,
        )
        num_words = index._num_words
        blocks = np.zeros((index.num_sites, num_words), dtype=np.uint64)
        if len(row_index):
            # scatter-OR: group entries by flat (col, word) cell, then OR
            # each group's bits together with one reduceat pass
            bits = np.left_shift(
                np.uint64(1), (row_index & (WORD_BITS - 1)).astype(np.uint64)
            )
            keys = col_index * num_words + (row_index >> 6)
            order = np.argsort(keys, kind="stable")
            keys, bits = keys[order], bits[order]
            boundary = np.empty(len(keys), dtype=bool)
            boundary[0] = True
            boundary[1:] = keys[1:] != keys[:-1]
            starts = np.flatnonzero(boundary)
            blocks.reshape(-1)[keys[starts]] = np.bitwise_or.reduceat(bits, starts)
        index._blocks = blocks
        index._finish_init()
        return index

    # ------------------------------------------------------------------ #
    def _init_common(
        self,
        num_trajectories: int,
        num_sites: int,
        tau_km: float,
        preference: PreferenceFunction,
        site_labels: Sequence[int] | None,
        trajectory_ids: Sequence[int] | None,
        trajectory_weights: np.ndarray | None,
    ) -> None:
        require(
            preference.is_binary,
            "BitsetCoverageIndex requires a binary preference (ψ scores in "
            "{0, 1}); use the dense or sparse engine for graded preferences",
        )
        self.num_trajectories = int(num_trajectories)
        self.num_sites = int(num_sites)
        self.tau_km = float(tau_km)
        self.preference = preference
        if site_labels is None:
            site_labels = list(range(self.num_sites))
        if trajectory_ids is None:
            trajectory_ids = list(range(self.num_trajectories))
        require(len(site_labels) == self.num_sites, "site_labels length mismatch")
        require(
            len(trajectory_ids) == self.num_trajectories, "trajectory_ids length mismatch"
        )
        self.site_labels = np.asarray(site_labels, dtype=np.int64)
        self.trajectory_ids = np.asarray(trajectory_ids, dtype=np.int64)
        if trajectory_weights is not None:
            require(
                len(trajectory_weights) == self.num_trajectories,
                "trajectory_weights length mismatch",
            )
            require(
                bool(np.all(np.asarray(trajectory_weights, dtype=np.float64) == 1.0)),
                "BitsetCoverageIndex requires unit trajectory weights (popcount "
                "== float sum only holds for {0, 1} utilities)",
            )
        self.trajectory_weights = np.ones(self.num_trajectories, dtype=np.float64)
        self._num_words = (self.num_trajectories + WORD_BITS - 1) // WORD_BITS

    def _finish_init(self) -> None:
        self._site_weights = np.bitwise_count(self._blocks).sum(
            axis=1, dtype=np.float64
        )
        self._scratch = _ScratchPool()
        self._label_to_col: dict[int, int] | None = None
        self.kernel_timer: KernelTimer | None = None

    def attach_kernel_timer(self, timer: KernelTimer | None) -> None:
        """Record per-kernel call counts/seconds into *timer* (None detaches)."""
        self.kernel_timer = timer

    # ------------------------------------------------------------------ #
    @property
    def is_sparse(self) -> bool:
        """Bitset blocks are a packed dense layout (IncGreedy-compatible)."""
        return False

    @property
    def nnz(self) -> int:
        """Number of stored (trajectory, site) covered pairs."""
        return int(self._site_weights.sum())

    @property
    def density(self) -> float:
        """Fraction of the (m, n) matrix that is covered."""
        cells = self.num_trajectories * self.num_sites
        return self.nnz / cells if cells else 0.0

    @property
    def site_weights(self) -> np.ndarray:
        """``w_i = Σ_j ψ(T_j, s_i)`` — per-site popcounts as float64."""
        return self._site_weights

    def site_column(self, col: int) -> tuple[np.ndarray, np.ndarray]:
        """The covered rows of one site column and their ψ-scores (all 1.0)."""
        rows = _unpack_rows(self._blocks[int(col)], self.num_trajectories)
        return rows, np.ones(len(rows), dtype=np.float64)

    def trajectories_covered(self, site_column: int) -> np.ndarray:
        """Row indices of trajectories covered by the site in *site_column* (TC)."""
        return _unpack_rows(self._blocks[int(site_column)], self.num_trajectories)

    def sites_covering(self, trajectory_row: int) -> np.ndarray:
        """Column indices of sites covering the trajectory in *trajectory_row* (SC)."""
        word = int(trajectory_row) // WORD_BITS
        bit = np.uint64(int(trajectory_row) % WORD_BITS)
        return np.flatnonzero((self._blocks[:, word] >> bit) & np.uint64(1))

    def covered_pairs(self) -> int:
        """Total number of (trajectory, site) covered pairs — the |TC| mass."""
        return self.nnz

    def coverage_mask(self) -> np.ndarray:
        """Boolean ``(m, n)`` coverage mask (densified copy; debugging aid)."""
        if self.num_trajectories == 0:
            return np.zeros((0, self.num_sites), dtype=bool)
        bits = np.unpackbits(
            self._blocks.view(np.uint8),
            axis=1,
            bitorder="little",
            count=self.num_trajectories,
        )
        return bits.T.astype(bool)

    # ------------------------------------------------------------------ #
    def _pack_uncovered(self, utilities: np.ndarray) -> np.ndarray:
        """Packed mask of rows whose current utility is 0 (scratch-backed)."""
        mask = self._scratch.get("uncovered_mask", (self.num_trajectories,), np.bool_)
        np.less_equal(utilities, 0.0, out=mask)
        words = self._scratch.get("uncovered_words", (self._num_words,), np.uint64)
        return _pack_bool_into(mask, words)

    @kernel
    def marginal_gains(self, utilities: np.ndarray) -> np.ndarray:
        """Marginal utility of every site: popcount of ``col & ~covered``.

        Exact for the engine's own utility vectors, which are always
        {0.0, 1.0}-valued (binary ψ, unit weights).
        """
        words = self._pack_uncovered(utilities)
        shape = (self.num_sites, self._num_words)
        masked = self._scratch.get("masked_blocks", shape, np.uint64)
        np.bitwise_and(self._blocks, words[np.newaxis, :], out=masked)
        counts = self._scratch.get("popcounts", shape, np.uint8)
        np.bitwise_count(masked, out=counts)
        return counts.sum(axis=1, dtype=np.float64)

    @kernel
    def marginal_gain(
        self, col: int, utilities: np.ndarray, capacity: int | None = None
    ) -> float:
        """Marginal utility of one site, optionally capacity-limited."""
        if capacity is None:
            words = self._pack_uncovered(utilities)
            masked = self._scratch.get("masked_column", (self._num_words,), np.uint64)
            np.bitwise_and(self._blocks[int(col)], words, out=masked)
            return float(np.bitwise_count(masked).sum(dtype=np.float64))
        # the capacitated path serves the unpacked column through the same
        # top-capacity code as the sparse engine (byte-identical serving)
        rows, values = self.site_column(col)
        residual = self._scratch.get("mg_column", (len(rows),))
        np.take(utilities, rows, out=residual)
        np.subtract(values, residual, out=residual)
        np.maximum(residual, 0.0, out=residual)
        return _top_capacity_sum(residual, capacity)

    @kernel
    def absorb(
        self, utilities: np.ndarray, col: int, capacity: int | None = None
    ) -> np.ndarray:
        """Per-trajectory utilities after adding the site in *col* (copy)."""
        rows, values = self.site_column(col)
        updated = utilities.copy()
        if capacity is None or capacity >= len(rows):
            updated[rows] = np.maximum(updated[rows], values)
            return updated
        return serve_top_capacity(utilities, rows, values, capacity)

    @kernel
    def gain_updates(
        self, rows: np.ndarray, old_values: np.ndarray, new_values: np.ndarray
    ) -> np.ndarray:
        """Per-site marginal-gain decrease when *rows* improve old → new.

        Under a binary ψ an improved trajectory always goes from utility 0
        to 1, so each covered improved row decreases a site's gain by
        exactly 1 — the vector is a popcount of ``blocks & delta`` where
        ``delta`` packs the improved rows.
        """
        row_index = np.asarray(rows, dtype=np.int64)
        mask = self._scratch.get("delta_mask", (self.num_trajectories,), np.bool_)
        mask[:] = False
        mask[row_index] = True
        words = self._scratch.get("delta_words", (self._num_words,), np.uint64)
        _pack_bool_into(mask, words)
        shape = (self.num_sites, self._num_words)
        masked = self._scratch.get("masked_blocks", shape, np.uint64)
        np.bitwise_and(self._blocks, words[np.newaxis, :], out=masked)
        counts = self._scratch.get("popcounts", shape, np.uint8)
        np.bitwise_count(masked, out=counts)
        return counts.sum(axis=1, dtype=np.float64)

    def utilities_for_selection(
        self,
        columns: Sequence[int],
        capacity: int | None = None,
        seed_columns: Sequence[int] = (),
    ) -> np.ndarray:
        """Per-trajectory utilities after absorbing *columns* in order."""
        return replay_selection(self, columns, capacity, seed_columns)

    # ------------------------------------------------------------------ #
    def utility_of(self, site_columns: Sequence[int]) -> float:
        """Utility ``U(Q)`` of the sites given by their column indices."""
        return float(self.per_trajectory_utility(site_columns).sum())

    def per_trajectory_utility(self, site_columns: Sequence[int]) -> np.ndarray:
        """Per-trajectory utility under the given site columns."""
        utilities = np.zeros(self.num_trajectories, dtype=np.float64)
        for col in site_columns:
            rows, values = self.site_column(int(col))
            utilities[rows] = np.maximum(utilities[rows], values)
        return utilities

    def columns_for_labels(self, labels: Sequence[int]) -> list[int]:
        """Map site labels (node ids) back to column indices."""
        if self._label_to_col is None:
            self._label_to_col = build_label_map(self.site_labels)
        return labels_to_columns(self.site_labels, labels, self._label_to_col)

    def storage_bytes(self) -> int:
        """Bytes held by the packed coverage structures."""
        return int(self._blocks.nbytes + self._site_weights.nbytes)
