"""Coverage structures: TC, SC, site weights and preference-score matrices.

At query time (when τ and ψ become known) Inc-Greedy needs, per Section 3.2:

* ``TC(s_i)`` — the trajectories covered by site ``s_i`` (detour ≤ τ);
* ``SC(T_j)`` — the sites covering trajectory ``T_j``;
* the site weights ``w_i = Σ_j ψ(T_j, s_i)``.

:class:`CoverageIndex` materialises these from a detour matrix.  The same
class is reused by NetClus for the *clustered* space, where the "sites" are
cluster representatives and the detours are the estimates ``d̂r``; this keeps
one greedy implementation for both the flat and the clustered problem.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.preference import PreferenceFunction
from repro.utils.validation import require

__all__ = ["CoverageIndex"]


class CoverageIndex:
    """Preference scores, covering sets and site weights for one (τ, ψ).

    Parameters
    ----------
    detours:
        ``(m, n)`` matrix of (possibly estimated) round-trip detours from each
        trajectory (row) to each site (column); ``inf`` for unreachable.
    tau_km:
        Coverage threshold.
    preference:
        Preference function ψ.
    site_labels:
        Length-``n`` site identifiers (node ids of candidate sites or cluster
        representatives).  Defaults to ``0..n-1``.
    trajectory_ids:
        Length-``m`` trajectory identifiers.  Defaults to ``0..m-1``.
    trajectory_weights:
        Optional per-trajectory multiplicities (all 1 by default); NetClus
        does not need them but they allow weighted workloads.
    """

    def __init__(
        self,
        detours: np.ndarray,
        tau_km: float,
        preference: PreferenceFunction,
        site_labels: Sequence[int] | None = None,
        trajectory_ids: Sequence[int] | None = None,
        trajectory_weights: np.ndarray | None = None,
    ) -> None:
        detours = np.asarray(detours, dtype=np.float64)
        require(detours.ndim == 2, "detours must be a 2-D matrix")
        self.num_trajectories, self.num_sites = detours.shape
        self.tau_km = float(tau_km)
        self.preference = preference
        self.detours = detours
        if site_labels is None:
            site_labels = list(range(self.num_sites))
        if trajectory_ids is None:
            trajectory_ids = list(range(self.num_trajectories))
        require(len(site_labels) == self.num_sites, "site_labels length mismatch")
        require(
            len(trajectory_ids) == self.num_trajectories, "trajectory_ids length mismatch"
        )
        self.site_labels = np.asarray(site_labels, dtype=np.int64)
        self.trajectory_ids = np.asarray(trajectory_ids, dtype=np.int64)
        if trajectory_weights is None:
            self.trajectory_weights = np.ones(self.num_trajectories, dtype=np.float64)
        else:
            require(
                len(trajectory_weights) == self.num_trajectories,
                "trajectory_weights length mismatch",
            )
            self.trajectory_weights = np.asarray(trajectory_weights, dtype=np.float64)

        # ψ scores: 0 beyond τ by construction of PreferenceFunction.__call__
        with np.errstate(invalid="ignore"):
            finite = np.where(np.isfinite(detours), detours, np.inf)
        self.scores = np.asarray(preference(finite, self.tau_km), dtype=np.float64)
        self.scores = self.scores * self.trajectory_weights[:, np.newaxis]
        self._covered_mask = (finite <= self.tau_km) & (self.scores != 0.0)
        # the binary preference gives score 1 everywhere within τ, including
        # exactly-zero detours; keep those in the mask
        self._covered_mask |= finite <= self.tau_km

    # ------------------------------------------------------------------ #
    @property
    def site_weights(self) -> np.ndarray:
        """``w_i = Σ_j ψ(T_j, s_i)`` for every site column."""
        return self.scores.sum(axis=0)

    def trajectories_covered(self, site_column: int) -> np.ndarray:
        """Row indices of trajectories covered by the site in *site_column* (TC)."""
        return np.flatnonzero(self._covered_mask[:, site_column])

    def sites_covering(self, trajectory_row: int) -> np.ndarray:
        """Column indices of sites covering the trajectory in *trajectory_row* (SC)."""
        return np.flatnonzero(self._covered_mask[trajectory_row, :])

    def covered_pairs(self) -> int:
        """Total number of (trajectory, site) covered pairs — the |TC| mass."""
        return int(self._covered_mask.sum())

    def coverage_mask(self) -> np.ndarray:
        """Boolean ``(m, n)`` coverage mask (copy)."""
        return self._covered_mask.copy()

    # ------------------------------------------------------------------ #
    def utility_of(self, site_columns: Sequence[int]) -> float:
        """Utility ``U(Q)`` of the sites given by their column indices."""
        if len(site_columns) == 0:
            return 0.0
        return float(np.sum(np.max(self.scores[:, list(site_columns)], axis=1)))

    def per_trajectory_utility(self, site_columns: Sequence[int]) -> np.ndarray:
        """Per-trajectory utility under the given site columns."""
        if len(site_columns) == 0:
            return np.zeros(self.num_trajectories)
        return np.max(self.scores[:, list(site_columns)], axis=1)

    def columns_for_labels(self, labels: Sequence[int]) -> list[int]:
        """Map site labels (node ids) back to column indices."""
        label_to_col = {int(label): idx for idx, label in enumerate(self.site_labels)}
        return [label_to_col[int(label)] for label in labels]

    def storage_bytes(self) -> int:
        """Bytes held by the coverage structures (memory-footprint study)."""
        return int(
            self.detours.nbytes + self.scores.nbytes + self._covered_mask.nbytes
        )
