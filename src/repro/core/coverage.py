"""Coverage structures: TC, SC, site weights and preference-score matrices.

At query time (when τ and ψ become known) Inc-Greedy needs, per Section 3.2:

* ``TC(s_i)`` — the trajectories covered by site ``s_i`` (detour ≤ τ);
* ``SC(T_j)`` — the sites covering trajectory ``T_j``;
* the site weights ``w_i = Σ_j ψ(T_j, s_i)``.

:class:`CoverageIndex` materialises these from a detour matrix.  The same
class is reused by NetClus for the *clustered* space, where the "sites" are
cluster representatives and the detours are the estimates ``d̂r``; this keeps
one greedy implementation for both the flat and the clustered problem.

:class:`SparseCoverageIndex` stores the same structures in compressed
sparse row/column (CSR/CSC) form.  For realistic τ each trajectory is covered
by a small fraction of the candidate sites, so the ψ-score matrix is
overwhelmingly sparse; the sparse index holds only the covered (trajectory,
site) pairs and never materialises the dense score matrix.  It can be built
either from a dense detour matrix or directly from coverage lists
(:meth:`SparseCoverageIndex.from_coverage_lists`), which is how NetClus and
the FM-sketch path feed it without a dense detour matrix.

Both index classes implement the same *coverage protocol* consumed by the
greedy solvers and the TOPS variant drivers:

* ``site_weights``, ``trajectories_covered``, ``sites_covering``;
* ``site_column(col)`` — the (rows, scores) of one site's covered entries;
* ``marginal_gains(utilities)`` / ``marginal_gain(col, utilities, capacity)``;
* ``absorb(utilities, col, capacity)`` — per-trajectory utilities after
  adding a site;
* ``gain_updates(rows, old_values, new_values)`` — the incremental
  greedy's per-site gain-decrease kernel when the given trajectories
  improve from ``old`` to ``new`` utility;
* ``utility_of`` / ``per_trajectory_utility`` / ``columns_for_labels``;
* ``utilities_for_selection(columns, capacity, seed_columns)`` — replay a
  selection order (used by the placement service to answer every ``k' ≤ k``
  from a single greedy run at the largest ``k``).

:class:`~repro.core.bitcov.BitsetCoverageIndex` is the third engine: for a
binary ψ it packs the coverage into ``uint64`` bitset blocks so the same
protocol kernels become popcounts (see :mod:`repro.core.bitcov`).
:func:`resolve_engine` is the shared ``engine="auto"`` policy — bitset when
ψ is binary, sparse otherwise.

:class:`~repro.core.shards.ShardedCoverage` implements the same protocol
over disjoint trajectory shards (one dense/sparse/bitset part each), which
is how the distributed query path reuses the greedy solvers unchanged.

The hot-path kernels (``marginal_gains`` / ``marginal_gain`` /
``gain_updates`` / ``absorb``) are marked with the ``@kernel`` decorator:
their internal temporaries come from per-thread :class:`_ScratchPool`
buffers instead of fresh allocations (enforced statically by rule RA010),
and an attached :class:`~repro.utils.timer.KernelTimer` records per-kernel
call counts and seconds.
"""

from __future__ import annotations

import threading
from typing import Any, Sequence

import numpy as np

from repro.core.preference import PreferenceFunction
from repro.utils.concurrency import kernel
from repro.utils.timer import KernelTimer
from repro.utils.validation import require

__all__ = [
    "CoverageIndex",
    "SparseCoverageIndex",
    "ENGINES",
    "GAIN_RTOL",
    "build_label_map",
    "resolve_engine",
    "tie_break_candidates",
]

#: engine names accepted everywhere an ``engine=`` knob exists
ENGINES = ("dense", "sparse", "bitset", "auto")


def resolve_engine(engine: str, preference: PreferenceFunction) -> str:
    """Resolve an engine request to a concrete coverage engine.

    ``"auto"`` picks the packed bitset engine when ψ is binary (its
    popcount kernels are exact because binary scores are {0, 1}) and the
    sparse engine otherwise; concrete names pass through after validation.
    Callers resolve *before* touching the coverage cache so that cache
    views are always keyed by a concrete engine name.
    """
    require(
        engine in ENGINES,
        f"unknown engine {engine!r}; choose from {', '.join(ENGINES)}",
    )
    if engine == "auto":
        return "bitset" if preference.is_binary else "sparse"
    return engine


class _ScratchPool:
    """Per-thread, grow-only scratch arrays for the allocation-free kernels.

    Buffers are keyed by name and live in thread-local storage: warm
    coverage-cache views are shared across concurrent query threads, so a
    plain per-instance buffer would be corrupted by parallel greedy runs.
    A returned array is a view over a flat backing buffer and stays valid
    until the same (thread, name) pair is requested again — exactly the
    lifetime of a kernel-internal temporary.
    """

    def __init__(self) -> None:
        self._local = threading.local()

    def get(
        self, name: str, shape: tuple[int, ...], dtype: Any = np.float64
    ) -> np.ndarray:
        """A contiguous scratch array of *shape* (contents undefined)."""
        size = 1
        for dim in shape:
            size *= int(dim)
        buffers: dict[str, np.ndarray] | None = getattr(self._local, "buffers", None)
        if buffers is None:
            buffers = {}
            self._local.buffers = buffers
        backing = buffers.get(name)
        if backing is None or backing.size < size or backing.dtype != np.dtype(dtype):
            backing = np.empty(max(size, 1), dtype=dtype)
            buffers[name] = backing
        return backing[:size].reshape(shape)

    # thread-local storage cannot be pickled; a fresh pool is equivalent
    def __getstate__(self) -> dict[str, Any]:
        return {}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._local = threading.local()

#: relative tolerance under which two marginal gains (or site weights) are
#: treated as tied.  Float summation is not associative, so the same
#: mathematical gain computed by different engines — dense vs sparse, or a
#: sharded coordinator summing per-shard partials in shard order — can
#: differ in the last few ulps; without a tolerance those phantom
#: differences would decide selections instead of the paper's documented
#: (weight, then site) tie-break.  1e-9 is ~6 orders of magnitude above
#: accumulated summation noise and far below any genuine gain gap.
GAIN_RTOL = 1e-9


def tie_break_candidates(values: np.ndarray) -> np.ndarray:
    """Indices whose value ties the maximum within :data:`GAIN_RTOL`.

    The shared "who is really the argmax" rule of every greedy selection
    rule in the library: candidates within a relative tolerance of the
    best value are all considered tied, and the caller applies its
    deterministic tie-break (site weight / site index) to them.  Using one
    rule everywhere is what makes selections identical across the dense,
    sparse and sharded engines.
    """
    best = np.max(values)
    tolerance = GAIN_RTOL * max(1.0, abs(float(best)))
    return np.flatnonzero(values >= best - tolerance)


class CoverageIndex:
    """Preference scores, covering sets and site weights for one (τ, ψ).

    Parameters
    ----------
    detours:
        ``(m, n)`` matrix of (possibly estimated) round-trip detours from each
        trajectory (row) to each site (column); ``inf`` for unreachable.
    tau_km:
        Coverage threshold.
    preference:
        Preference function ψ.
    site_labels:
        Length-``n`` site identifiers (node ids of candidate sites or cluster
        representatives).  Defaults to ``0..n-1``.
    trajectory_ids:
        Length-``m`` trajectory identifiers.  Defaults to ``0..m-1``.
    trajectory_weights:
        Optional per-trajectory multiplicities (all 1 by default); NetClus
        does not need them but they allow weighted workloads.
    """

    def __init__(
        self,
        detours: np.ndarray,
        tau_km: float,
        preference: PreferenceFunction,
        site_labels: Sequence[int] | None = None,
        trajectory_ids: Sequence[int] | None = None,
        trajectory_weights: np.ndarray | None = None,
    ) -> None:
        detours = np.asarray(detours, dtype=np.float64)
        require(detours.ndim == 2, "detours must be a 2-D matrix")
        self.num_trajectories, self.num_sites = detours.shape
        self.tau_km = float(tau_km)
        self.preference = preference
        self.detours = detours
        if site_labels is None:
            site_labels = list(range(self.num_sites))
        if trajectory_ids is None:
            trajectory_ids = list(range(self.num_trajectories))
        require(len(site_labels) == self.num_sites, "site_labels length mismatch")
        require(
            len(trajectory_ids) == self.num_trajectories, "trajectory_ids length mismatch"
        )
        self.site_labels = np.asarray(site_labels, dtype=np.int64)
        self.trajectory_ids = np.asarray(trajectory_ids, dtype=np.int64)
        if trajectory_weights is None:
            self.trajectory_weights = np.ones(self.num_trajectories, dtype=np.float64)
        else:
            require(
                len(trajectory_weights) == self.num_trajectories,
                "trajectory_weights length mismatch",
            )
            self.trajectory_weights = np.asarray(trajectory_weights, dtype=np.float64)

        # ψ scores: 0 beyond τ by construction of PreferenceFunction.__call__
        with np.errstate(invalid="ignore"):
            finite = np.where(np.isfinite(detours), detours, np.inf)
        self.scores = np.asarray(preference(finite, self.tau_km), dtype=np.float64)
        self.scores = self.scores * self.trajectory_weights[:, np.newaxis]
        # coverage is purely geometric — a (trajectory, site) pair is covered
        # iff the detour is within τ, even when ψ scores it 0 (e.g. a linear
        # ψ at detour exactly τ); the sparse index keeps the same entries
        self._covered_mask = finite <= self.tau_km
        self._scratch = _ScratchPool()
        self._label_to_col: dict[int, int] | None = None
        self.kernel_timer: KernelTimer | None = None

    def attach_kernel_timer(self, timer: KernelTimer | None) -> None:
        """Record per-kernel call counts/seconds into *timer* (None detaches)."""
        self.kernel_timer = timer

    # ------------------------------------------------------------------ #
    @property
    def site_weights(self) -> np.ndarray:
        """``w_i = Σ_j ψ(T_j, s_i)`` for every site column."""
        return self.scores.sum(axis=0)

    def trajectories_covered(self, site_column: int) -> np.ndarray:
        """Row indices of trajectories covered by the site in *site_column* (TC)."""
        return np.flatnonzero(self._covered_mask[:, site_column])

    def sites_covering(self, trajectory_row: int) -> np.ndarray:
        """Column indices of sites covering the trajectory in *trajectory_row* (SC)."""
        return np.flatnonzero(self._covered_mask[trajectory_row, :])

    def covered_pairs(self) -> int:
        """Total number of (trajectory, site) covered pairs — the |TC| mass."""
        return int(self._covered_mask.sum())

    def coverage_mask(self) -> np.ndarray:
        """Boolean ``(m, n)`` coverage mask (copy)."""
        return self._covered_mask.copy()

    # ------------------------------------------------------------------ #
    def utility_of(self, site_columns: Sequence[int]) -> float:
        """Utility ``U(Q)`` of the sites given by their column indices."""
        if len(site_columns) == 0:
            return 0.0
        return float(np.sum(np.max(self.scores[:, list(site_columns)], axis=1)))

    def per_trajectory_utility(self, site_columns: Sequence[int]) -> np.ndarray:
        """Per-trajectory utility under the given site columns."""
        if len(site_columns) == 0:
            return np.zeros(self.num_trajectories)
        return np.max(self.scores[:, list(site_columns)], axis=1)

    def columns_for_labels(self, labels: Sequence[int]) -> list[int]:
        """Map site labels (node ids) back to column indices."""
        if self._label_to_col is None:
            self._label_to_col = build_label_map(self.site_labels)
        return labels_to_columns(self.site_labels, labels, self._label_to_col)

    def storage_bytes(self) -> int:
        """Bytes held by the coverage structures (memory-footprint study)."""
        return int(
            self.detours.nbytes + self.scores.nbytes + self._covered_mask.nbytes
        )

    # ------------------------------------------------------------------ #
    # coverage protocol shared with SparseCoverageIndex
    # ------------------------------------------------------------------ #
    @property
    def is_sparse(self) -> bool:
        """Whether the score matrix is held in sparse form."""
        return False

    def site_column(self, col: int) -> tuple[np.ndarray, np.ndarray]:
        """The covered rows of one site column and their ψ-scores."""
        rows = np.flatnonzero(self._covered_mask[:, col])
        return rows, self.scores[rows, col]

    @kernel
    def marginal_gains(self, utilities: np.ndarray) -> np.ndarray:
        """Marginal utility of every site given current per-trajectory utilities."""
        residual = self._scratch.get("mg_matrix", self.scores.shape)
        np.subtract(self.scores, utilities[:, np.newaxis], out=residual)
        np.maximum(residual, 0.0, out=residual)
        return residual.sum(axis=0)

    @kernel
    def marginal_gain(
        self, col: int, utilities: np.ndarray, capacity: int | None = None
    ) -> float:
        """Marginal utility of one site, optionally capacity-limited."""
        residual = self._scratch.get("mg_column", (self.num_trajectories,))
        np.subtract(self.scores[:, col], utilities, out=residual)
        np.maximum(residual, 0.0, out=residual)
        return _top_capacity_sum(residual, capacity)

    @kernel
    def absorb(
        self, utilities: np.ndarray, col: int, capacity: int | None = None
    ) -> np.ndarray:
        """Per-trajectory utilities after adding the site in *col* (copy)."""
        column = self.scores[:, col]
        if capacity is None or capacity >= len(column):
            return np.maximum(utilities, column)
        return serve_top_capacity(utilities, slice(None), column, capacity)

    @kernel
    def gain_updates(
        self, rows: np.ndarray, old_values: np.ndarray, new_values: np.ndarray
    ) -> np.ndarray:
        """Per-site marginal-gain decrease when *rows* improve old → new.

        For each site ``i`` the residual gain of trajectory ``j`` drops
        from ``max(0, ψ_ji − old_j)`` to ``max(0, ψ_ji − new_j)``; the
        returned vector is that drop summed over the given rows — the
        update kernel of Algorithm 1's incremental strategy.
        """
        row_index = np.asarray(rows, dtype=np.int64)
        old = np.asarray(old_values, dtype=np.float64)
        new = np.asarray(new_values, dtype=np.float64)
        shape = (len(row_index), self.num_sites)
        affected = self._scratch.get("gu_affected", shape)
        np.take(self.scores, row_index, axis=0, out=affected)
        old_alpha = self._scratch.get("gu_alpha", shape)
        np.subtract(affected, old[:, np.newaxis], out=old_alpha)
        np.maximum(old_alpha, 0.0, out=old_alpha)
        # reuse `affected` for the new-residual matrix
        np.subtract(affected, new[:, np.newaxis], out=affected)
        np.maximum(affected, 0.0, out=affected)
        np.subtract(old_alpha, affected, out=old_alpha)
        return old_alpha.sum(axis=0)

    def utilities_for_selection(
        self,
        columns: Sequence[int],
        capacity: int | None = None,
        seed_columns: Sequence[int] = (),
    ) -> np.ndarray:
        """Per-trajectory utilities after absorbing *columns* in order."""
        return replay_selection(self, columns, capacity, seed_columns)


# ---------------------------------------------------------------------- #
def build_label_map(site_labels: np.ndarray) -> dict[int, int]:
    """The label → column mapping for a coverage's site labels.

    Built once per coverage instance and cached on it — every
    ``columns_for_labels`` implementation reuses the cached mapping
    instead of rebuilding this dict on each call.
    """
    return {int(label): idx for idx, label in enumerate(site_labels)}


def labels_to_columns(
    site_labels: np.ndarray,
    labels: Sequence[int],
    mapping: dict[int, int] | None = None,
) -> list[int]:
    """Map site labels (node ids) back to column indices.

    The shared implementation behind every coverage class's
    ``columns_for_labels``; raises ``KeyError`` for a label the coverage
    does not know.  Pass the coverage's cached *mapping* to avoid
    rebuilding the dict per call.
    """
    if mapping is None:
        mapping = build_label_map(site_labels)
    return [mapping[int(label)] for label in labels]


# ---------------------------------------------------------------------- #
def replay_selection(
    coverage: Any,
    columns: Sequence[int],
    capacity: int | None = None,
    seed_columns: Sequence[int] = (),
) -> np.ndarray:
    """Per-trajectory utilities after absorbing *columns* in selection order.

    ``seed_columns`` (existing services) are absorbed first without any
    capacity limit, matching how the greedy solvers seed their utilities.
    With a capacity, the absorption order matters — the columns must be given
    in the order the greedy selected them, which is exactly what makes a
    prefix of a k-selection the answer for a smaller k.
    """
    utilities = np.zeros(coverage.num_trajectories, dtype=np.float64)
    for col in seed_columns:
        utilities = coverage.absorb(utilities, int(col))
    for col in columns:
        utilities = coverage.absorb(utilities, int(col), capacity)
    return utilities


# ---------------------------------------------------------------------- #
def serve_top_capacity(
    utilities: np.ndarray, rows: np.ndarray | slice, values: np.ndarray, capacity: int
) -> np.ndarray:
    """Utilities after serving the ``capacity`` largest gains of one site.

    ``rows``/``values`` are the site's covered trajectories and scores (use
    ``slice(None)`` with a full dense column).  Equal gains are served
    lowest-trajectory first (stable sort), so the dense and sparse engines
    pick the same trajectories.
    """
    gains = np.maximum(values - utilities[rows], 0.0)
    served = np.argsort(-gains, kind="stable")[: max(int(capacity), 0)]
    updated = utilities.copy()
    if isinstance(rows, slice):
        served_rows = served
    else:
        served_rows = rows[served]
    updated[served_rows] = np.maximum(updated[served_rows], values[served])
    return updated


def _top_capacity_sum(residual: np.ndarray, capacity: int | None) -> float:
    """Sum of the largest ``capacity`` residual gains (all of them if None)."""
    if capacity is None or capacity >= len(residual):
        return float(residual.sum())
    capacity = int(capacity)
    if capacity <= 0:
        return 0.0
    top = np.partition(residual, len(residual) - capacity)[len(residual) - capacity :]
    return float(top.sum())


class SparseCoverageIndex:
    """CSR/CSC preference scores, covering sets and site weights for one (τ, ψ).

    Only the covered (trajectory, site) pairs — detour ≤ τ — are stored, in
    both row-major (``SC(T_j)`` per trajectory) and column-major (``TC(s_i)``
    per site) compressed form.  The dense ψ matrix is never materialised: the
    preference function is evaluated on the 1-D array of covered detours.

    Parameters mirror :class:`CoverageIndex`; the constructor consumes a dense
    detour matrix, while :meth:`from_coverage_lists` builds the index straight
    from (trajectory, site, detour) triples, which is how NetClus's clustered
    space and incremental pipelines feed it without an ``(m, n)`` matrix.
    """

    def __init__(
        self,
        detours: np.ndarray,
        tau_km: float,
        preference: PreferenceFunction,
        site_labels: Sequence[int] | None = None,
        trajectory_ids: Sequence[int] | None = None,
        trajectory_weights: np.ndarray | None = None,
    ) -> None:
        detours = np.asarray(detours, dtype=np.float64)
        require(detours.ndim == 2, "detours must be a 2-D matrix")
        num_trajectories, num_sites = detours.shape
        with np.errstate(invalid="ignore"):
            covered = np.isfinite(detours) & (detours <= float(tau_km))
        rows, cols = np.nonzero(covered)
        self._init_from_entries(
            rows,
            cols,
            detours[rows, cols],
            num_trajectories,
            num_sites,
            tau_km,
            preference,
            site_labels,
            trajectory_ids,
            trajectory_weights,
            entry_order="row",
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_coverage_lists(
        cls,
        rows: Sequence[int] | np.ndarray,
        cols: Sequence[int] | np.ndarray,
        detours: Sequence[float] | np.ndarray,
        num_trajectories: int,
        num_sites: int,
        tau_km: float,
        preference: PreferenceFunction,
        site_labels: Sequence[int] | None = None,
        trajectory_ids: Sequence[int] | None = None,
        trajectory_weights: np.ndarray | None = None,
        canonical: bool = False,
    ) -> "SparseCoverageIndex":
        """Build the index from (trajectory, site, detour) coverage triples.

        Entries beyond τ or non-finite are dropped; duplicate (trajectory,
        site) pairs keep the *smallest* detour, matching how NetClus takes the
        minimum estimate over a representative's neighbouring clusters.

        ``canonical=True`` promises the triples are already in this form —
        finite, ≤ τ, unique pairs, column-major order (the invariant
        :func:`repro.core.covcache.canonical_entries` maintains for stored
        coverage parts) — and skips the filter + sort + min-reduce pass,
        which is a pure identity on such input.  Range checks still run.
        """
        index = cls.__new__(cls)
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        detour_values = np.asarray(detours, dtype=np.float64)
        require(
            rows.shape == cols.shape == detour_values.shape,
            "rows, cols and detours must have equal lengths",
        )
        if not canonical:
            keep = np.isfinite(detour_values) & (detour_values <= float(tau_km))
            rows, cols, detour_values = rows[keep], cols[keep], detour_values[keep]
        if len(rows):
            require(
                int(rows.min()) >= 0 and int(rows.max()) < num_trajectories,
                "trajectory row out of range",
            )
            require(
                int(cols.min()) >= 0 and int(cols.max()) < num_sites,
                "site column out of range",
            )
        if not canonical and len(rows):
            # min-reduce duplicate (row, col) pairs
            order = np.lexsort((rows, cols))
            rows, cols, detour_values = rows[order], cols[order], detour_values[order]
            boundary = np.empty(len(rows), dtype=bool)
            boundary[0] = True
            boundary[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            starts = np.flatnonzero(boundary)
            rows, cols = rows[starts], cols[starts]
            detour_values = np.minimum.reduceat(detour_values, starts)
        index._init_from_entries(
            rows,
            cols,
            detour_values,
            num_trajectories,
            num_sites,
            tau_km,
            preference,
            site_labels,
            trajectory_ids,
            trajectory_weights,
            entry_order="col",
        )
        return index

    # ------------------------------------------------------------------ #
    def _init_from_entries(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        detour_values: np.ndarray,
        num_trajectories: int,
        num_sites: int,
        tau_km: float,
        preference: PreferenceFunction,
        site_labels: Sequence[int] | None,
        trajectory_ids: Sequence[int] | None,
        trajectory_weights: np.ndarray | None,
        entry_order: str | None = None,
    ) -> None:
        self.num_trajectories = int(num_trajectories)
        self.num_sites = int(num_sites)
        self.tau_km = float(tau_km)
        self.preference = preference
        if site_labels is None:
            site_labels = list(range(self.num_sites))
        if trajectory_ids is None:
            trajectory_ids = list(range(self.num_trajectories))
        require(len(site_labels) == self.num_sites, "site_labels length mismatch")
        require(
            len(trajectory_ids) == self.num_trajectories, "trajectory_ids length mismatch"
        )
        self.site_labels = np.asarray(site_labels, dtype=np.int64)
        self.trajectory_ids = np.asarray(trajectory_ids, dtype=np.int64)
        if trajectory_weights is None:
            self.trajectory_weights = np.ones(self.num_trajectories, dtype=np.float64)
        else:
            require(
                len(trajectory_weights) == self.num_trajectories,
                "trajectory_weights length mismatch",
            )
            self.trajectory_weights = np.asarray(trajectory_weights, dtype=np.float64)

        scores = np.asarray(preference(detour_values, self.tau_km), dtype=np.float64)
        scores = np.atleast_1d(scores) * self.trajectory_weights[rows]

        # one sort suffices: the callers tell us which order the entries
        # already have ("row" from np.nonzero, "col" after the duplicate
        # reduction in from_coverage_lists)
        if entry_order == "col":
            csc_rows, csc_cols = rows, cols
            csc_data = scores
        else:
            if entry_order != "row":
                rorder = np.lexsort((cols, rows))
                rows, cols = rows[rorder], cols[rorder]
                scores = scores[rorder]
            corder = np.lexsort((rows, cols))
            csc_rows, csc_cols = rows[corder], cols[corder]
            csc_data = scores[corder]

        # CSC (column-major) — the greedy hot path iterates site columns
        self._csc_rows = csc_rows
        self._csc_data = csc_data
        counts = np.bincount(csc_cols, minlength=self.num_sites)
        self._csc_indptr = np.zeros(self.num_sites + 1, dtype=np.int64)
        np.cumsum(counts, out=self._csc_indptr[1:])
        self._entry_cols = np.repeat(np.arange(self.num_sites, dtype=np.int64), counts)

        # CSR (row-major) — SC(T_j) lookups and per-trajectory scans
        if entry_order == "col":
            rorder = np.lexsort((cols, rows))
            csr_rows, csr_cols, csr_data = rows[rorder], cols[rorder], scores[rorder]
        else:
            csr_rows, csr_cols, csr_data = rows, cols, scores
        self._csr_cols = csr_cols
        self._csr_data = csr_data
        row_counts = np.bincount(csr_rows, minlength=self.num_trajectories)
        self._csr_indptr = np.zeros(self.num_trajectories + 1, dtype=np.int64)
        np.cumsum(row_counts, out=self._csr_indptr[1:])

        # np.bincount with float weights already returns float64
        self._site_weights = np.bincount(
            csc_cols, weights=csc_data, minlength=self.num_sites
        )
        self._scratch = _ScratchPool()
        self._label_to_col: dict[int, int] | None = None
        self.kernel_timer: KernelTimer | None = None

    def attach_kernel_timer(self, timer: KernelTimer | None) -> None:
        """Record per-kernel call counts/seconds into *timer* (None detaches)."""
        self.kernel_timer = timer

    # ------------------------------------------------------------------ #
    @property
    def is_sparse(self) -> bool:
        """Whether the score matrix is held in sparse form."""
        return True

    @property
    def nnz(self) -> int:
        """Number of stored (trajectory, site) covered pairs."""
        return int(len(self._csc_rows))

    @property
    def density(self) -> float:
        """Fraction of the (m, n) matrix that is covered."""
        cells = self.num_trajectories * self.num_sites
        return self.nnz / cells if cells else 0.0

    @property
    def site_weights(self) -> np.ndarray:
        """``w_i = Σ_j ψ(T_j, s_i)`` for every site column."""
        return self._site_weights

    def site_column(self, col: int) -> tuple[np.ndarray, np.ndarray]:
        """The covered rows of one site column and their ψ-scores."""
        start, stop = self._csc_indptr[col], self._csc_indptr[col + 1]
        return self._csc_rows[start:stop], self._csc_data[start:stop]

    def trajectories_covered(self, site_column: int) -> np.ndarray:
        """Row indices of trajectories covered by the site in *site_column* (TC)."""
        start, stop = self._csc_indptr[site_column], self._csc_indptr[site_column + 1]
        return self._csc_rows[start:stop]

    def sites_covering(self, trajectory_row: int) -> np.ndarray:
        """Column indices of sites covering the trajectory in *trajectory_row* (SC)."""
        start, stop = self._csr_indptr[trajectory_row], self._csr_indptr[trajectory_row + 1]
        return self._csr_cols[start:stop]

    def covered_pairs(self) -> int:
        """Total number of (trajectory, site) covered pairs — the |TC| mass."""
        return self.nnz

    def coverage_mask(self) -> np.ndarray:
        """Boolean ``(m, n)`` coverage mask (densified copy; debugging aid)."""
        mask = np.zeros((self.num_trajectories, self.num_sites), dtype=bool)
        mask[self._csc_rows, self._entry_cols] = True
        return mask

    # ------------------------------------------------------------------ #
    @kernel
    def marginal_gains(self, utilities: np.ndarray) -> np.ndarray:
        """Marginal utility of every site in one pass over the stored entries."""
        residual = self._scratch.get("mg_entries", (self.nnz,))
        np.take(utilities, self._csc_rows, out=residual)
        np.subtract(self._csc_data, residual, out=residual)
        np.maximum(residual, 0.0, out=residual)
        # np.bincount with float weights already returns float64
        return np.bincount(self._entry_cols, weights=residual, minlength=self.num_sites)

    @kernel
    def marginal_gain(
        self, col: int, utilities: np.ndarray, capacity: int | None = None
    ) -> float:
        """Marginal utility of one site, optionally capacity-limited."""
        rows, values = self.site_column(col)
        residual = self._scratch.get("mg_column", (len(rows),))
        np.take(utilities, rows, out=residual)
        np.subtract(values, residual, out=residual)
        np.maximum(residual, 0.0, out=residual)
        return _top_capacity_sum(residual, capacity)

    @kernel
    def absorb(
        self, utilities: np.ndarray, col: int, capacity: int | None = None
    ) -> np.ndarray:
        """Per-trajectory utilities after adding the site in *col* (copy)."""
        rows, values = self.site_column(col)
        updated = utilities.copy()
        if capacity is None or capacity >= len(rows):
            # rows are unique within a column, so plain fancy indexing beats
            # the much slower np.maximum.at
            updated[rows] = np.maximum(updated[rows], values)
            return updated
        return serve_top_capacity(utilities, rows, values, capacity)

    @kernel
    def gain_updates(
        self, rows: np.ndarray, old_values: np.ndarray, new_values: np.ndarray
    ) -> np.ndarray:
        """Per-site marginal-gain decrease when *rows* improve old → new.

        Sparse counterpart of :meth:`CoverageIndex.gain_updates`: only the
        stored (row, site) entries of the affected rows are touched, via
        their CSR slices.
        """
        row_index = np.asarray(rows, dtype=np.int64)
        old = np.asarray(old_values, dtype=np.float64)
        new = np.asarray(new_values, dtype=np.float64)
        starts = self._csr_indptr[row_index]
        stops = self._csr_indptr[row_index + 1]
        counts = stops - starts
        total = int(counts.sum())
        if total == 0:
            # the zero vector escapes as the result, not a per-call temporary
            return np.zeros(self.num_sites, dtype=np.float64)  # noqa: RA010
        # flatten the per-row CSR slices into one entry list
        offsets = np.repeat(starts - np.r_[0, np.cumsum(counts)[:-1]], counts)
        entry_indices = self._scratch.get("gu_indices", (total,), np.int64)
        np.add(np.arange(total, dtype=np.int64), offsets, out=entry_indices)
        entry_cols = self._scratch.get("gu_cols", (total,), np.int64)
        np.take(self._csr_cols, entry_indices, out=entry_cols)
        entry_scores = self._scratch.get("gu_scores", (total,))
        np.take(self._csr_data, entry_indices, out=entry_scores)
        drop = self._scratch.get("gu_drop", (total,))
        np.subtract(entry_scores, np.repeat(old, counts), out=drop)
        np.maximum(drop, 0.0, out=drop)
        # reuse `entry_scores` for the new-residual entries
        np.subtract(entry_scores, np.repeat(new, counts), out=entry_scores)
        np.maximum(entry_scores, 0.0, out=entry_scores)
        np.subtract(drop, entry_scores, out=drop)
        # np.bincount with float weights already returns float64
        return np.bincount(entry_cols, weights=drop, minlength=self.num_sites)

    def utilities_for_selection(
        self,
        columns: Sequence[int],
        capacity: int | None = None,
        seed_columns: Sequence[int] = (),
    ) -> np.ndarray:
        """Per-trajectory utilities after absorbing *columns* in order."""
        return replay_selection(self, columns, capacity, seed_columns)

    # ------------------------------------------------------------------ #
    def utility_of(self, site_columns: Sequence[int]) -> float:
        """Utility ``U(Q)`` of the sites given by their column indices."""
        return float(self.per_trajectory_utility(site_columns).sum())

    def per_trajectory_utility(self, site_columns: Sequence[int]) -> np.ndarray:
        """Per-trajectory utility under the given site columns."""
        utilities = np.zeros(self.num_trajectories, dtype=np.float64)
        for col in site_columns:
            rows, values = self.site_column(int(col))
            utilities[rows] = np.maximum(utilities[rows], values)
        return utilities

    def columns_for_labels(self, labels: Sequence[int]) -> list[int]:
        """Map site labels (node ids) back to column indices."""
        if self._label_to_col is None:
            self._label_to_col = build_label_map(self.site_labels)
        return labels_to_columns(self.site_labels, labels, self._label_to_col)

    def storage_bytes(self) -> int:
        """Bytes held by the sparse coverage structures."""
        arrays = (
            self._csc_rows,
            self._csc_data,
            self._csc_indptr,
            self._entry_cols,
            self._csr_cols,
            self._csr_data,
            self._csr_indptr,
            self._site_weights,
        )
        return int(sum(array.nbytes for array in arrays))
