"""Query and result types for TOPS."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.preference import BinaryPreference, PreferenceFunction
from repro.utils.validation import require, require_non_negative, require_positive

__all__ = ["TOPSQuery", "TOPSResult"]


@dataclass(frozen=True)
class TOPSQuery:
    """A TOPS query ``(k, τ, ψ)`` (Problem 1 of the paper).

    Attributes
    ----------
    k:
        Number of sites to select.
    tau_km:
        Coverage threshold τ in kilometres.
    preference:
        The preference function ψ; defaults to the binary instance (TOPS1).
    """

    k: int
    tau_km: float
    preference: PreferenceFunction = field(default_factory=BinaryPreference)

    def __post_init__(self) -> None:
        require_positive(self.k, "k")
        require_non_negative(self.tau_km, "tau_km")


@dataclass(frozen=True)
class TOPSResult:
    """The outcome of a TOPS solver run.

    Attributes
    ----------
    sites:
        Selected candidate sites (node ids), in selection order where the
        algorithm is iterative.
    utility:
        Total utility ``U(Q) = Σ_j max_{s in Q} ψ(T_j, s)``.
    per_trajectory_utility:
        Utility of each trajectory under the selected set, aligned with the
        trajectory order of the dataset the solver was given.
    elapsed_seconds:
        Wall-clock time of the online phase (selection), excluding any
        offline index construction.
    algorithm:
        Short algorithm label (``"inc-greedy"``, ``"netclus"``, ...).
    metadata:
        Free-form extra information (index instance used, marginal gains,
        FM parameters, ...).
    """

    sites: tuple[int, ...]
    utility: float
    per_trajectory_utility: tuple[float, ...] = ()
    elapsed_seconds: float = 0.0
    algorithm: str = ""
    metadata: dict = field(default_factory=dict)

    @property
    def num_sites(self) -> int:
        """Number of selected sites."""
        return len(self.sites)

    def utility_percent(self, num_trajectories: int) -> float:
        """Utility as a percentage of the trajectory count (the paper's metric)."""
        require(num_trajectories > 0, "num_trajectories must be positive")
        return 100.0 * self.utility / num_trajectories

    def covered_count(self, threshold: float = 0.0) -> int:
        """Number of trajectories with utility strictly above *threshold*."""
        return int(np.sum(np.asarray(self.per_trajectory_utility) > threshold))

    def stage_seconds(self) -> dict[str, float]:
        """Per-stage timing breakdown carried in the metadata.

        Collects every ``*_seconds`` metadata entry (e.g. the placement
        service's ``coverage_build_seconds`` / ``greedy_run_seconds``,
        :meth:`~repro.core.problem.TOPSProblem.solve`'s
        ``preprocess_seconds``); empty when the producing solver recorded
        no stage timings.
        """
        return {
            key: float(value)
            for key, value in self.metadata.items()
            if key.endswith("_seconds") and isinstance(value, (int, float))
        }
