"""Persistent, incrementally maintained coverage parts (the format-v3 cache).

``BENCH_sharded_query.json`` shows coverage *construction* — not greedy —
dominating steady-state query latency, so this module makes the per-(τ, ψ)
coverage a first-class artifact instead of a per-query throwaway:

* :class:`CoverageCache` — attached to a
  :class:`~repro.core.netclus.NetClusIndex` via
  :meth:`~repro.core.netclus.NetClusIndex.enable_coverage_cache` — holds one
  :class:`CoveragePart` per ``(τ, ψ-spec)`` key;
* each part stores the *canonical coverage entries* of the clustered space
  (the min-reduced, column-major sorted ``(row, column, d̂r ≤ τ)`` triples)
  plus the representative layout and the
  :attr:`~repro.core.netclus.NetClusIndex.version` it is valid at;
* dense, sparse and sharded structures are *materialised views* over the
  canonical entries, built on demand and kept per ``(engine, shards)``;
* :meth:`CoverageCache.begin_delta` / :meth:`CoverageCache.finish_delta`
  bracket :meth:`~repro.core.netclus.NetClusIndex.apply_updates`: instead of
  invalidating, the parts are *patched* — only the trajectory rows and
  representative columns the :class:`~repro.core.netclus.UpdateBatch`
  touched are recomputed, and every previously materialised view is rebuilt
  from the patched entries so the very next query runs greedy with zero
  coverage-build work.

Parity is the repo's standard bar — byte-identical selections and
per-trajectory utilities against a cold build — and rests on three facts:

1. every registered ψ is exactly 0 beyond τ and the covered mask is
   geometric (``d̂r ≤ τ``), so the ≤ τ entry set determines scores, mask,
   selections and utilities for *both* engines (a dense matrix rebuilt
   from the entries carries ``inf`` where a cold build kept an unusable
   estimate > τ — invisible to every score-level consumer);
2. entry values are recomputed with the *same float expression* as the
   cold path (``leg + center_distance + rep_leg``, evaluated left to
   right over the same per-cluster arrays), so patched entries are
   bit-equal to freshly computed ones;
3. ``min``-reduction over duplicate ``(row, column)`` pairs is associative,
   so reducing carried + recomputed groups equals reducing the cold
   emission stream.

Parts are persisted as optional payloads of index format v3 (see
``docs/index-format.md``); a part whose recorded ``index_version`` no
longer matches the index is *refused* — dropped with a clean fallback to a
cold rebuild — never served stale.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Executor
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.preference import PreferenceFunction, is_registered, make_preference
from repro.utils.concurrency import guarded_by, holds_lock
from repro.utils.timer import Timer
from repro.utils.validation import require

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (netclus imports us)
    from repro.core.netclus import (
        ClusteredCoverage,
        NetClusIndex,
        NetClusInstance,
        UpdateBatch,
    )

__all__ = [
    "CoverageCache",
    "CoveragePart",
    "coverage_cache_key",
    "canonical_entries",
]

#: default maximum number of (τ, ψ) parts kept (least recently used wins)
DEFAULT_PART_LIMIT = 8


def coverage_cache_key(
    tau_km: float, preference: PreferenceFunction
) -> tuple[float, str, tuple[tuple[str, float], ...]] | None:
    """The cache key of one ``(τ, ψ)`` pair, or ``None`` if not cacheable.

    Only registered preferences can be keyed (and persisted): an
    unregistered ψ subclass cannot be named in a manifest, so it bypasses
    the cache entirely rather than aliasing a registered one.
    """
    if not is_registered(preference):
        return None
    name, params = preference.spec()
    return (
        float(tau_km),
        str(name),
        tuple(sorted((str(k), float(v)) for k, v in params.items())),
    )


def canonical_entries(
    rows: np.ndarray,
    cols: np.ndarray,
    estimates: np.ndarray,
    tau_km: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Canonicalise coverage triples: ≤ τ, finite, min-reduced, column-major.

    The exact filtering + ``np.lexsort((rows, cols))`` + ``minimum.reduceat``
    pipeline of :meth:`SparseCoverageIndex.from_coverage_lists`, so feeding
    the canonical form back through that constructor reproduces the cold
    structures byte for byte (the lexsort is stable and the input already
    sorted, making it the identity).
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    estimates = np.asarray(estimates, dtype=np.float64)
    keep = np.isfinite(estimates) & (estimates <= float(tau_km))
    rows, cols, estimates = rows[keep], cols[keep], estimates[keep]
    if len(rows):
        order = np.lexsort((rows, cols))
        rows, cols, estimates = rows[order], cols[order], estimates[order]
        boundary = np.empty(len(rows), dtype=bool)
        boundary[0] = True
        boundary[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        starts = np.flatnonzero(boundary)
        rows, cols = rows[starts], cols[starts]
        estimates = np.minimum.reduceat(estimates, starts)
    return rows, cols, estimates


@dataclass
class CoveragePart:
    """Canonical coverage entries of one ``(τ, ψ)`` pair + materialised views.

    The triple arrays are always in canonical form (see
    :func:`canonical_entries`); ``materialised`` maps ``(engine, shards)``
    to a ready-to-query :class:`~repro.core.netclus.ClusteredCoverage`
    built over them.  ``index_version`` is the
    :attr:`~repro.core.netclus.NetClusIndex.version` the entries are valid
    at — a mismatch means the part must be refused, never served.
    """

    tau_km: float
    preference_name: str
    preference_params: tuple[tuple[str, float], ...]
    instance_id: int
    index_version: int
    num_trajectories: int
    rows: np.ndarray
    cols: np.ndarray
    estimates: np.ndarray
    rep_sites: list[int]
    rep_clusters: list[int]
    materialised: dict[tuple[str, int], "ClusteredCoverage"] = field(
        default_factory=dict, repr=False
    )

    @property
    def num_entries(self) -> int:
        """Number of canonical ``(row, column)`` coverage entries."""
        return int(len(self.rows))

    @property
    def num_representatives(self) -> int:
        """Number of representative columns."""
        return len(self.rep_sites)

    def preference_fn(self) -> PreferenceFunction:
        """Instantiate the part's ψ from its registered spec."""
        return make_preference(self.preference_name, **dict(self.preference_params))

    def describe(self) -> dict[str, Any]:
        """JSON-able summary (manifest ``coverage_parts`` entries, inspect)."""
        return {
            "tau_km": self.tau_km,
            "preference": self.preference_name,
            "preference_params": dict(self.preference_params),
            "instance_id": self.instance_id,
            "index_version": self.index_version,
            "num_trajectories": self.num_trajectories,
            "num_representatives": self.num_representatives,
            "num_entries": self.num_entries,
        }


@dataclass
class _DeltaProbe:
    """Pre-mutation snapshot :meth:`CoverageCache.begin_delta` captures."""

    version_before: int
    #: sorted registry rows of the trajectories about to be removed
    removed_rows: np.ndarray
    #: per instance (only those backing live parts): cluster_id →
    #: (representative, representative_round_trip_km) for every cluster
    #: that currently has a representative
    rep_state: dict[int, dict[int, tuple[int, float]]]


@guarded_by(
    "_lock",
    "parts",
    "hits",
    "misses",
    "stores",
    "patches",
    "invalidations",
    "materialisations",
    "patch_seconds",
    "materialise_seconds",
    "limit",
)
class CoverageCache:
    """LRU cache of :class:`CoveragePart` objects, keyed by ``(τ, ψ-spec)``.

    Thread-safe: lookups, stores and delta patches serialise on an internal
    lock (the placement service's read/write lock already orders updates
    against queries; the internal lock additionally protects concurrent
    ``batch_query`` threads warming different keys).  Deep copies carry the
    canonical entries but drop materialised views and any executor — a
    copied index re-materialises lazily, with fresh locks.
    """

    def __init__(self, limit: int = DEFAULT_PART_LIMIT) -> None:
        require(int(limit) >= 1, "coverage cache limit must be >= 1")
        self.limit = int(limit)
        self.parts: OrderedDict[tuple, CoveragePart] = OrderedDict()
        #: optional executor for sharded materialisation (the placement
        #: service injects its persistent pool); never copied or persisted
        self.executor = None
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.patches = 0
        self.invalidations = 0
        self.materialisations = 0
        self.patch_seconds = 0.0
        self.materialise_seconds = 0.0

    def resize(self, limit: int) -> None:
        """Change the LRU part budget, evicting oldest parts if shrinking."""
        require(int(limit) >= 1, "coverage cache limit must be >= 1")
        with self._lock:
            self.limit = int(limit)
            while len(self.parts) > self.limit:
                self.parts.popitem(last=False)

    # ------------------------------------------------------------------ #
    # lookup / store
    # ------------------------------------------------------------------ #
    def peek(
        self,
        index: "NetClusIndex",
        tau_km: float,
        preference: PreferenceFunction,
    ) -> bool:
        """Whether a current-version part exists for ``(τ, ψ)`` (no counters)."""
        key = coverage_cache_key(tau_km, preference)
        if key is None:
            return False
        with self._lock:
            part = self.parts.get(key)
            return part is not None and part.index_version == index.version

    def lookup(
        self,
        index: "NetClusIndex",
        tau_km: float,
        preference: PreferenceFunction,
        engine: str = "sparse",
        shards: int = 1,
        executor: Executor | None = None,
    ) -> "ClusteredCoverage | None":
        """Return a warm :class:`ClusteredCoverage` for ``(τ, ψ)``, or ``None``.

        A part bound to a stale ``index_version`` is *refused*: dropped
        (counted as an invalidation) and reported as a miss, so the caller
        falls back to a cold build — which re-stores fresh entries.
        Materialises the requested ``(engine, shards)`` view on demand from
        the canonical entries; a materialisation is still a *hit* (no
        cluster-space recomputation happens), its cost is tracked
        separately in :attr:`materialise_seconds`.
        """
        key = coverage_cache_key(tau_km, preference)
        if key is None:
            return None
        with self._lock:
            part = self.parts.get(key)
            if part is None:
                self.misses += 1
                return None
            if part.index_version != index.version:
                del self.parts[key]
                self.invalidations += 1
                self.misses += 1
                return None
            self.parts.move_to_end(key)
            view = part.materialised.get((engine, int(shards)))
            if view is None:
                view = self._materialise(
                    index, part, engine, int(shards), executor or self.executor
                )
                part.materialised[(engine, int(shards))] = view
            self.hits += 1
            return view

    def store_entries(
        self,
        index: "NetClusIndex",
        tau_km: float,
        preference: PreferenceFunction,
        rows: np.ndarray,
        cols: np.ndarray,
        estimates: np.ndarray,
        rep_sites: list[int],
        rep_clusters: list[int],
        instance_id: int,
        prepared: "ClusteredCoverage | None" = None,
        already_canonical: bool = False,
    ) -> CoveragePart | None:
        """Store freshly computed coverage entries for ``(τ, ψ)``.

        Called from the cold path of
        :meth:`~repro.core.netclus.NetClusIndex.prepare_coverage` with the
        raw entry stream (sparse engine) or the entries extracted from the
        dense matrix; *prepared* optionally seeds the materialised-view map
        so the structure just built is served back warm.
        """
        key = coverage_cache_key(tau_km, preference)
        if key is None:
            return None
        if not already_canonical:
            rows, cols, estimates = canonical_entries(rows, cols, estimates, tau_km)
        part = CoveragePart(
            tau_km=float(tau_km),
            preference_name=key[1],
            preference_params=key[2],
            instance_id=int(instance_id),
            index_version=index.version,
            num_trajectories=len(index.trajectory_ids),
            rows=rows,
            cols=cols,
            estimates=estimates,
            rep_sites=[int(s) for s in rep_sites],
            rep_clusters=[int(c) for c in rep_clusters],
        )
        if prepared is not None:
            part.materialised[(prepared.engine, prepared.num_shards)] = prepared
        with self._lock:
            self.parts[key] = part
            self.parts.move_to_end(key)
            self.stores += 1
            while len(self.parts) > self.limit:
                self.parts.popitem(last=False)
        return part

    def attach_part(self, key: tuple, part: CoveragePart) -> None:
        """Attach a part loaded from disk (format v3) without counting a store."""
        with self._lock:
            self.parts[key] = part
            self.parts.move_to_end(key)
            while len(self.parts) > self.limit:
                self.parts.popitem(last=False)

    def drop(self, key: tuple) -> None:
        """Remove one part (refusal path)."""
        with self._lock:
            if self.parts.pop(key, None) is not None:
                self.invalidations += 1

    def clear(self) -> None:
        """Drop every part."""
        with self._lock:
            self.parts.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self.parts)

    # ------------------------------------------------------------------ #
    # incremental maintenance
    # ------------------------------------------------------------------ #
    def begin_delta(
        self, index: "NetClusIndex", batch: "UpdateBatch"
    ) -> _DeltaProbe | None:
        """Snapshot the pre-mutation state :meth:`finish_delta` diffs against.

        Called by :meth:`NetClusIndex.apply_updates` after batch validation
        and before any sub-batch mutates.  Returns ``None`` when there is
        nothing to maintain.
        """
        with self._lock:
            if not self.parts:
                return None
            instance_ids = {part.instance_id for part in self.parts.values()}
        removed_rows = np.sort(
            np.asarray(
                [index._trajectory_rows[t] for t in batch.remove_trajectories],
                dtype=np.int64,
            )
        )
        rep_state: dict[int, dict[int, tuple[int, float]]] = {}
        for instance in index.instances:
            if instance.instance_id not in instance_ids:
                continue
            rep_state[instance.instance_id] = {
                cluster.cluster_id: (
                    int(cluster.representative),
                    float(cluster.representative_round_trip_km),
                )
                for cluster in instance.clusters
                if cluster.has_representative
            }
        return _DeltaProbe(
            version_before=index.version,
            removed_rows=removed_rows,
            rep_state=rep_state,
        )

    def finish_delta(
        self, index: "NetClusIndex", batch: "UpdateBatch", probe: _DeltaProbe | None
    ) -> int:
        """Patch every current part after the batch mutated the index.

        Parts that were already stale when the batch started are refused
        (dropped); a part whose patch fails for any reason is likewise
        dropped — the fallback is always a clean cold rebuild, never a
        possibly-wrong warm answer.  Previously materialised views are
        rebuilt immediately from the patched entries ("query-ready
        maintenance": the cost lands on the update, and the next query at
        the key does zero coverage work).  Returns the number of parts
        patched.
        """
        if probe is None:
            return 0
        with self._lock:
            items = list(self.parts.items())
            patched = 0
            for key, part in items:
                if part.index_version != probe.version_before:
                    del self.parts[key]
                    self.invalidations += 1
                    continue
                try:
                    with Timer() as patch_timer:
                        self._patch_part(index, part, batch, probe)
                        part.index_version = index.version
                        views = list(part.materialised)
                        part.materialised = {
                            (engine, shards): self._materialise(
                                index, part, engine, shards, self.executor
                            )
                            for engine, shards in views
                        }
                except Exception:
                    self.parts.pop(key, None)
                    self.invalidations += 1
                    continue
                self.patches += 1
                self.patch_seconds += patch_timer.elapsed
                patched += 1
            return patched

    @holds_lock("_lock")
    def _patch_part(
        self,
        index: "NetClusIndex",
        part: CoveragePart,
        batch: "UpdateBatch",
        probe: _DeltaProbe,
    ) -> None:
        """Patch one part in place to the post-batch index state.

        Four steps, each touching only what the batch touched:

        1. delete the removed trajectories' rows and remap survivors to the
           compacted registry (``new_row = row − #removed_before(row)``);
        2. diff the instance's representative state — carried columns keep
           their entries (column positions remapped), columns whose
           ``(representative, round_trip)`` changed (or appeared) are
           recomputed over the full post-batch registry;
        3. compute entries of the *added* trajectories against the carried
           columns (the recomputed ones already include them);
        4. merge and re-canonicalise.
        """
        instance = _instance_of(index, part.instance_id)
        tau_km = part.tau_km
        rows, cols, estimates = part.rows, part.cols, part.estimates

        # 1. removed trajectory rows: drop + compact
        removed = probe.removed_rows
        if removed.size:
            insert_at = np.searchsorted(removed, rows, side="left")
            hit = np.zeros(len(rows), dtype=bool)
            in_range = insert_at < removed.size
            hit[in_range] = removed[insert_at[in_range]] == rows[in_range]
            keep = ~hit
            rows = rows[keep] - insert_at[keep]
            cols, estimates = cols[keep], estimates[keep]

        # 2. representative diff → carried vs recomputed columns
        old_state = probe.rep_state.get(part.instance_id, {})
        new_reps = instance.representatives()
        new_rep_sites = [cluster.representative for cluster in new_reps]
        new_rep_clusters = [cluster.cluster_id for cluster in new_reps]
        new_state = {
            cluster.cluster_id: (
                int(cluster.representative),
                float(cluster.representative_round_trip_km),
            )
            for cluster in new_reps
        }
        changed = {
            cid
            for cid in set(old_state) | set(new_state)
            if old_state.get(cid) != new_state.get(cid)
        }
        new_position = {cid: col for col, cid in enumerate(new_rep_clusters)}
        old_to_new = np.full(len(part.rep_clusters), -1, dtype=np.int64)
        for old_col, cid in enumerate(part.rep_clusters):
            if cid not in changed and cid in new_position:
                old_to_new[old_col] = new_position[cid]
        if len(cols):
            mapped = old_to_new[cols]
            keep = mapped >= 0
            rows, cols, estimates = rows[keep], mapped[keep], estimates[keep]

        merged_rows = [rows]
        merged_cols = [cols]
        merged_estimates = [estimates]

        registry = index._trajectory_rows
        recompute = sorted(cid for cid in changed if cid in new_position)
        if recompute:
            r_rows, r_cols, r_estimates = instance.estimated_column_entries(
                registry, tau_km, recompute
            )
            merged_rows.append(r_rows)
            merged_cols.append(r_cols)
            merged_estimates.append(r_estimates)

        # 3. added trajectories × carried columns
        if batch.add_trajectories:
            subset = {
                trajectory.traj_id: registry[trajectory.traj_id]
                for trajectory in batch.add_trajectories
            }
            a_rows, a_cols, a_estimates, _, _ = instance.estimated_coverage_entries(
                subset, tau_km
            )
            if recompute:
                recomputed_cols = np.asarray(
                    [new_position[cid] for cid in recompute], dtype=np.int64
                )
                fresh = ~np.isin(a_cols, recomputed_cols)
                a_rows, a_cols, a_estimates = (
                    a_rows[fresh],
                    a_cols[fresh],
                    a_estimates[fresh],
                )
            merged_rows.append(a_rows)
            merged_cols.append(a_cols)
            merged_estimates.append(a_estimates)

        # 4. merge + re-canonicalise
        part.rows, part.cols, part.estimates = canonical_entries(
            np.concatenate(merged_rows),
            np.concatenate(merged_cols),
            np.concatenate(merged_estimates),
            tau_km,
        )
        part.rep_sites = [int(s) for s in new_rep_sites]
        part.rep_clusters = [int(c) for c in new_rep_clusters]
        expected = (
            part.num_trajectories - int(removed.size) + len(batch.add_trajectories)
        )
        require(
            expected == len(registry),
            "coverage patch lost track of the registry size "
            f"({expected} != {len(registry)})",
        )
        part.num_trajectories = len(registry)

    # ------------------------------------------------------------------ #
    # materialisation
    # ------------------------------------------------------------------ #
    @holds_lock("_lock")
    def _materialise(
        self,
        index: "NetClusIndex",
        part: CoveragePart,
        engine: str,
        shards: int,
        executor: Executor | None = None,
    ) -> "ClusteredCoverage":
        """Build one ``(engine, shards)`` view over the canonical entries."""
        from repro.core.bitcov import BitsetCoverageIndex
        from repro.core.coverage import CoverageIndex, SparseCoverageIndex
        from repro.core.netclus import ClusteredCoverage
        from repro.core.shards import ShardedCoverage

        require(
            part.num_trajectories == len(index.trajectory_ids),
            "coverage part registry size does not match the index",
        )
        # On a lazily-rebuilt ladder (v4 mmap loads) defer the instance:
        # the hit path only reads its summary scalars, so the rung's
        # cluster dictionaries are never rebuilt unless something
        # downstream (existing-site mapping, patching) asks for them.
        instance = None
        instance_factory = None
        instance_summary = _instance_summary_of(index, part.instance_id)
        if instance_summary is not None:
            instance_factory = partial(_instance_of, index, part.instance_id)
        else:
            instance = _instance_of(index, part.instance_id)
        preference = part.preference_fn()
        num_sites = part.num_representatives
        trajectory_ids = index.trajectory_ids
        with Timer() as timer:
            if engine in ("sparse", "bitset"):
                # the canonical ≤τ entry stream fully determines both the
                # sparse scores and (for binary ψ) the packed bit matrix
                if shards > 1:
                    coverage = ShardedCoverage.from_coverage_lists(
                        part.rows,
                        part.cols,
                        part.estimates,
                        num_trajectories=part.num_trajectories,
                        num_sites=num_sites,
                        tau_km=part.tau_km,
                        preference=preference,
                        num_shards=shards,
                        site_labels=part.rep_sites,
                        trajectory_ids=trajectory_ids,
                        executor=executor,
                        engine=engine,
                    )
                elif engine == "bitset":
                    coverage = BitsetCoverageIndex.from_coverage_lists(
                        part.rows,
                        part.cols,
                        part.estimates,
                        num_trajectories=part.num_trajectories,
                        num_sites=num_sites,
                        tau_km=part.tau_km,
                        preference=preference,
                        site_labels=part.rep_sites,
                        trajectory_ids=trajectory_ids,
                    )
                else:
                    # stored parts hold exactly the canonical entry form,
                    # so the sparse builder can skip its identity
                    # filter + lexsort + min-reduce pass on every hit
                    coverage = SparseCoverageIndex.from_coverage_lists(
                        part.rows,
                        part.cols,
                        part.estimates,
                        num_trajectories=part.num_trajectories,
                        num_sites=num_sites,
                        tau_km=part.tau_km,
                        preference=preference,
                        site_labels=part.rep_sites,
                        trajectory_ids=trajectory_ids,
                        canonical=True,
                    )
            else:
                detours = np.full((part.num_trajectories, num_sites), np.inf)
                detours[part.rows, part.cols] = part.estimates
                if shards > 1:
                    coverage = ShardedCoverage.from_detours(
                        detours,
                        part.tau_km,
                        preference,
                        num_shards=shards,
                        engine="dense",
                        site_labels=part.rep_sites,
                        trajectory_ids=trajectory_ids,
                        executor=executor,
                    )
                else:
                    coverage = CoverageIndex(
                        detours,
                        part.tau_km,
                        preference,
                        site_labels=part.rep_sites,
                        trajectory_ids=trajectory_ids,
                    )
        self.materialisations += 1
        self.materialise_seconds += timer.elapsed
        return ClusteredCoverage(
            instance=instance,
            coverage=coverage,
            representative_sites=list(part.rep_sites),
            representative_clusters=list(part.rep_clusters),
            engine=engine,
            index_version=part.index_version,
            instance_factory=instance_factory,
            instance_summary=instance_summary,
        )

    # ------------------------------------------------------------------ #
    # reporting / copying
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, int | float]:
        """Counter snapshot (metrics endpoint, CLI ``inspect``)."""
        with self._lock:
            return {
                "parts": len(self.parts),
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "patches": self.patches,
                "invalidations": self.invalidations,
                "materialisations": self.materialisations,
                "patch_seconds": self.patch_seconds,
                "materialise_seconds": self.materialise_seconds,
            }

    def describe_parts(self) -> list[dict[str, Any]]:
        """JSON-able part summaries, in LRU order (oldest first)."""
        with self._lock:
            return [part.describe() for part in self.parts.values()]

    def __deepcopy__(self, memo: dict) -> "CoverageCache":
        with self._lock:
            clone = CoverageCache(limit=self.limit)
            for key, part in self.parts.items():
                clone.parts[key] = CoveragePart(
                    tau_km=part.tau_km,
                    preference_name=part.preference_name,
                    preference_params=part.preference_params,
                    instance_id=part.instance_id,
                    index_version=part.index_version,
                    num_trajectories=part.num_trajectories,
                    rows=part.rows.copy(),
                    cols=part.cols.copy(),
                    estimates=part.estimates.copy(),
                    rep_sites=list(part.rep_sites),
                    rep_clusters=list(part.rep_clusters),
                )
        return clone

    def __getstate__(self) -> dict:
        # snapshot under the lock: a concurrent store_entries/finish_delta
        # must not mutate `parts` while pickling walks it
        with self._lock:
            state = self.__dict__.copy()
            state["_lock"] = None
            state["executor"] = None
            state["parts"] = OrderedDict(
                (
                    key,
                    CoveragePart(
                        tau_km=part.tau_km,
                        preference_name=part.preference_name,
                        preference_params=part.preference_params,
                        instance_id=part.instance_id,
                        index_version=part.index_version,
                        num_trajectories=part.num_trajectories,
                        rows=part.rows,
                        cols=part.cols,
                        estimates=part.estimates,
                        rep_sites=part.rep_sites,
                        rep_clusters=part.rep_clusters,
                    ),
                )
                for key, part in self.parts.items()
            )
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()


def _instance_of(index: "NetClusIndex", instance_id: int) -> "NetClusInstance":
    """The live index instance with the given id (refuse if gone).

    A lazily-rebuilt ladder (v4 mmap loads) answers id → position without
    materialising, so only the matching rung is ever rebuilt; a plain list
    is scanned.
    """
    instances = index.instances
    position_of = getattr(instances, "position_of", None)
    if position_of is not None:
        position = position_of(instance_id)
        if position is None:
            raise KeyError(f"index has no instance {instance_id}")
        return instances[position]
    for instance in instances:
        if instance.instance_id == instance_id:
            return instance
    raise KeyError(f"index has no instance {instance_id}")


def _instance_summary_of(
    index: "NetClusIndex", instance_id: int
) -> tuple[int, float, int] | None:
    """``(id, radius_km, num_clusters)`` without materialising, or ``None``.

    ``None`` means the instance ladder cannot answer cheaply (a plain
    eager list) — the caller should materialise via :func:`_instance_of`
    instead (refusing there if the id is gone).
    """
    instances = index.instances
    position_of = getattr(instances, "position_of", None)
    summary_of = getattr(instances, "summary_of", None)
    if position_of is None or summary_of is None:
        return None
    position = position_of(instance_id)
    if position is None:
        raise KeyError(f"index has no instance {instance_id}")
    summary: tuple[int, float, int] = summary_of(position)
    return summary
