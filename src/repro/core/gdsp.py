"""Greedy-GDSP: distance-based clustering via generalized dominating sets.

Section 4.1 of the paper partitions the road-network nodes into clusters of
round-trip radius at most ``2R`` by greedily solving the Generalized
Dominating Set Problem (GDSP): node ``u`` dominates ``v`` when
``d(u, v) + d(v, u) <= 2R``; the algorithm repeatedly picks the node with the
largest number of not-yet-clustered dominated nodes and forms a cluster from
them.

Two selection backends are provided:

* **exact / lazy** — marginal coverage counts are maintained exactly with a
  lazy (CELF-style) priority queue, giving the classic ``1 + ln n`` greedy
  guarantee;
* **FM sketches** — as in the paper, each node's dominating set is summarised
  by an FM sketch family and marginal counts are estimated via bitwise ORs.

The resulting :class:`Cluster` records (center, member nodes with round-trip
distance to the center) are consumed by the NetClus index builder.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.network.graph import RoadNetwork
from repro.network.shortest_path import ShortestPathEngine
from repro.sketch.fm import FMSketchFamily
from repro.utils.timer import Timer
from repro.utils.validation import require, require_positive

__all__ = ["Cluster", "GreedyGDSP", "GDSPResult"]


@dataclass
class Cluster:
    """A GDSP cluster: a center node and its member nodes.

    ``node_round_trip_km[i]`` is the round-trip distance from ``nodes[i]`` to
    the cluster center (at most ``2R`` by construction).
    """

    cluster_id: int
    center: int
    nodes: list[int]
    node_round_trip_km: list[float]

    @property
    def size(self) -> int:
        """Number of member nodes."""
        return len(self.nodes)

    def round_trip_to_center(self, node: int) -> float:
        """Round-trip distance from *node* (a member) to the cluster center."""
        return self.node_round_trip_km[self.nodes.index(node)]


@dataclass
class GDSPResult:
    """Outcome of a Greedy-GDSP run."""

    radius_km: float
    clusters: list[Cluster]
    node_to_cluster: dict[int, int]
    build_seconds: float
    mean_dominating_set_size: float = 0.0

    @property
    def num_clusters(self) -> int:
        """Number of clusters produced (η in the paper)."""
        return len(self.clusters)


class GreedyGDSP:
    """Greedy solver for the Generalized Dominating Set Problem.

    Parameters
    ----------
    network:
        The road network to cluster.  May be ``None`` when *engine* is
        given — the solver only ever computes through the engine, which is
        how build workers run it from a pickled CSR payload alone.
    engine:
        Optional pre-built shortest-path engine (reused across radii when
        building the multi-resolution NetClus index).  Constructing a fresh
        engine per solver costs two CSR conversions, so callers that
        already hold one should always pass it.
    use_fm_sketches:
        Estimate marginal coverage with FM sketches (the paper's approach)
        instead of exact lazy counting.
    num_sketches:
        Number of FM copies when ``use_fm_sketches`` is true.
    chunk_size:
        Source-chunk size for the bounded round-trip neighbourhood sweep.
    """

    def __init__(
        self,
        network: RoadNetwork | None,
        engine: ShortestPathEngine | None = None,
        use_fm_sketches: bool = False,
        num_sketches: int = 30,
        chunk_size: int = 512,
    ) -> None:
        require(
            network is not None or engine is not None,
            "GreedyGDSP needs a road network or a pre-built engine",
        )
        self.network = network
        self.engine = engine if engine is not None else ShortestPathEngine(network)
        self.use_fm_sketches = use_fm_sketches
        self.num_sketches = num_sketches
        self.chunk_size = chunk_size

    # ------------------------------------------------------------------ #
    def cluster(self, radius_km: float) -> GDSPResult:
        """Partition all nodes into clusters of round-trip radius ``2R``."""
        require_positive(radius_km, "radius_km")
        self._current_radius_km = radius_km
        with Timer() as timer:
            dominating = self.engine.bounded_round_trip_neighbors(
                radius_km, chunk_size=self.chunk_size
            )
            if self.use_fm_sketches:
                order = self._greedy_order_fm(dominating)
            else:
                order = self._greedy_order_lazy(dominating)
            clusters, node_to_cluster = self._form_clusters(order, dominating)
        mean_lambda = float(np.mean([len(v) for v in dominating.values()])) if dominating else 0.0
        return GDSPResult(
            radius_km=radius_km,
            clusters=clusters,
            node_to_cluster=node_to_cluster,
            build_seconds=timer.elapsed,
            mean_dominating_set_size=mean_lambda,
        )

    # ------------------------------------------------------------------ #
    def _greedy_order_lazy(self, dominating: dict[int, np.ndarray]) -> list[int]:
        """Exact greedy order using lazy marginal-coverage evaluation."""
        uncovered: set[int] = set(dominating.keys())
        covered: set[int] = set()
        # (negated upper bound, node); lazily refreshed
        heap: list[tuple[float, int]] = [
            (-float(len(members)), node) for node, members in dominating.items()
        ]
        heapq.heapify(heap)
        stale_gain: dict[int, float] = {node: float(len(m)) for node, m in dominating.items()}
        order: list[int] = []
        clustered: set[int] = set()
        while uncovered and heap:
            neg_gain, node = heapq.heappop(heap)
            # following the paper, a vertex that is already part of a cluster
            # (i.e. dominated by a previously selected center) is not
            # considered as a further center
            if node in clustered or node in covered:
                continue
            current_gain = float(len(set(map(int, dominating[node])) - covered))
            if current_gain < -neg_gain - 1e-12:
                heapq.heappush(heap, (-current_gain, node))
                continue
            order.append(node)
            clustered.add(node)
            newly = set(map(int, dominating[node])) - covered
            covered |= newly
            uncovered -= newly
            uncovered.discard(node)
            covered.add(node)
        # any still-uncovered nodes become their own cluster centers
        for node in sorted(uncovered):
            order.append(node)
        return order

    def _greedy_order_fm(self, dominating: dict[int, np.ndarray]) -> list[int]:
        """Greedy order with FM-sketch estimated marginal coverage."""
        sketches = {
            node: FMSketchFamily.from_items(members, self.num_sketches)
            for node, members in dominating.items()
        }
        standalone = {node: sketches[node].estimate() for node in sketches}
        nodes_sorted = sorted(standalone, key=standalone.get, reverse=True)
        covered_sketch = FMSketchFamily(self.num_sketches)
        covered_estimate = 0.0
        covered_exact: set[int] = set()
        uncovered: set[int] = set(dominating.keys())
        order: list[int] = []
        clustered: set[int] = set()
        while uncovered:
            best_node = -1
            best_gain = -np.inf
            for node in nodes_sorted:
                # as in the exact variant, already-clustered nodes cannot
                # become centers
                if node in clustered or node in covered_exact:
                    continue
                if standalone[node] <= best_gain:
                    break
                union = covered_sketch.union(sketches[node])
                gain = union.estimate() - covered_estimate
                # deterministic despite the raw comparison: FM-sketch
                # estimates are pure functions of the input, and the
                # strict `>` over the sorted candidate order always keeps
                # the lowest-node winner on exact ties
                if gain > best_gain:  # noqa: RA002
                    best_gain = gain
                    best_node = node
            if best_node < 0:
                best_node = min(uncovered)
            order.append(best_node)
            clustered.add(best_node)
            covered_sketch.union_in_place(sketches[best_node])
            covered_estimate = covered_sketch.estimate()
            newly = set(map(int, dominating[best_node])) - covered_exact
            covered_exact |= newly
            uncovered -= newly
            uncovered.discard(best_node)
            covered_exact.add(best_node)
        return order

    # ------------------------------------------------------------------ #
    def _form_clusters(
        self,
        order: list[int],
        dominating: dict[int, np.ndarray],
    ) -> tuple[list[Cluster], dict[int, int]]:
        clusters: list[Cluster] = []
        node_to_cluster: dict[int, int] = {}
        assigned: set[int] = set()
        for center in order:
            if center in assigned:
                continue
            members = [int(n) for n in dominating.get(center, np.asarray([center]))]
            new_members = [n for n in members if n not in assigned]
            if center not in new_members:
                new_members.append(center)
            # exact round-trip distances center -> member (bounded sweep)
            center_rt = self._center_round_trips_for(center, new_members)
            cluster = Cluster(
                cluster_id=len(clusters),
                center=center,
                nodes=new_members,
                node_round_trip_km=[center_rt[n] for n in new_members],
            )
            clusters.append(cluster)
            for node in new_members:
                node_to_cluster[node] = cluster.cluster_id
                assigned.add(node)
        return clusters, node_to_cluster

    def _center_round_trips_for(
        self, center: int, members: Sequence[int]
    ) -> dict[int, float]:
        # members are within round-trip 2R of the center by construction, so a
        # bounded sweep (limit 2R) suffices and keeps per-cluster cost low
        limit = 2.0 * getattr(self, "_current_radius_km", np.inf)
        forward = self.engine.distances_from([center], limit=limit)[0]
        backward = self.engine.distances_to([center], limit=limit)[0]
        return {int(n): float(forward[n] + backward[n]) for n in members}
