"""High-level facade tying network, trajectories and candidate sites together.

:class:`TOPSProblem` is the entry point a downstream user works with: it owns
the distance oracle, builds coverage structures per query, runs any of the
solvers (Inc-Greedy, FM-Greedy, the exact solver, NetClus) and scores
arbitrary site sets.  The examples and the experiment harness are built on
top of it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.bitcov import BitsetCoverageIndex
from repro.core.coverage import CoverageIndex, SparseCoverageIndex, resolve_engine
from repro.core.distances import DistanceOracle
from repro.core.fm_greedy import FMGreedy
from repro.core.greedy import IncGreedy, LazyGreedy
from repro.core.netclus import NetClusIndex
from repro.core.optimal import OptimalSolver
from repro.core.query import TOPSQuery, TOPSResult
from repro.core.shards import ShardedCoverage
from repro.network.graph import RoadNetwork
from repro.trajectory.model import TrajectoryDataset
from repro.utils.timer import Timer
from repro.utils.validation import require

__all__ = ["TOPSProblem"]


class TOPSProblem:
    """A TOPS problem instance: one road network, one trajectory dataset, one
    set of candidate sites.

    Parameters
    ----------
    network:
        The road network.
    trajectories:
        Map-matched trajectories over the network.
    sites:
        Candidate site node ids.  Defaults to *all* network nodes (the
        paper's default assumption in Section 8.1).

    Examples
    --------
    >>> from repro.network import grid_network
    >>> from repro.trajectory import random_route_trajectories
    >>> net = grid_network(6, 6, spacing_km=0.5)
    >>> trajs = random_route_trajectories(net, 40, seed=1)
    >>> problem = TOPSProblem(net, trajs)
    >>> result = problem.solve(TOPSQuery(k=3, tau_km=0.8))
    >>> len(result.sites)
    3
    """

    def __init__(
        self,
        network: RoadNetwork,
        trajectories: TrajectoryDataset,
        sites: Sequence[int] | None = None,
    ) -> None:
        require(len(trajectories) > 0, "the trajectory dataset is empty")
        self.network = network
        self.trajectories = trajectories
        if sites is None:
            sites = network.node_ids()
        self.sites = [int(s) for s in sites]
        self._oracle: DistanceOracle | None = None
        self._detour_matrix: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    @property
    def oracle(self) -> DistanceOracle:
        """The (lazily built) distance oracle for the candidate sites."""
        if self._oracle is None:
            self._oracle = DistanceOracle(self.network, self.sites)
        return self._oracle

    @property
    def num_trajectories(self) -> int:
        """Number of trajectories m."""
        return len(self.trajectories)

    @property
    def num_sites(self) -> int:
        """Number of candidate sites n."""
        return len(self.sites)

    def detour_matrix(self) -> np.ndarray:
        """The full ``(m, n)`` detour matrix (cached)."""
        if self._detour_matrix is None:
            self._detour_matrix = self.oracle.detour_matrix(self.trajectories)
        return self._detour_matrix

    def coverage(
        self, query: TOPSQuery, engine: str = "dense", shards: int = 1
    ) -> CoverageIndex | SparseCoverageIndex | BitsetCoverageIndex | ShardedCoverage:
        """Coverage structures (TC, SC, weights) for the query's (τ, ψ).

        ``engine="sparse"`` stores only the covered (trajectory, site) pairs
        in CSR/CSC form — the fast representation for realistic τ, consumed
        by the CELF lazy greedy.  ``engine="bitset"`` packs the binary
        coverage into uint64 word blocks (binary ψ only) so gains become
        popcounts; ``engine="auto"`` picks bitset for binary ψ and sparse
        otherwise.  ``shards > 1`` partitions the trajectories into
        disjoint shards (one part each) behind a
        :class:`~repro.core.shards.ShardedCoverage` gain coordinator —
        selections are identical for any engine and shard count.
        """
        engine = resolve_engine(engine, query.preference)
        require(int(shards) >= 1, "shards must be >= 1")
        if int(shards) > 1:
            return ShardedCoverage.from_detours(
                self.detour_matrix(),
                query.tau_km,
                query.preference,
                num_shards=int(shards),
                engine=engine,
                site_labels=self.sites,
                trajectory_ids=self.trajectories.ids(),
            )
        index_cls: type[CoverageIndex] | type[SparseCoverageIndex] | type[BitsetCoverageIndex]
        if engine == "sparse":
            index_cls = SparseCoverageIndex
        elif engine == "bitset":
            index_cls = BitsetCoverageIndex
        else:
            index_cls = CoverageIndex
        return index_cls(
            self.detour_matrix(),
            query.tau_km,
            query.preference,
            site_labels=self.sites,
            trajectory_ids=self.trajectories.ids(),
        )

    # ------------------------------------------------------------------ #
    def solve(
        self,
        query: TOPSQuery,
        method: str = "inc-greedy",
        existing_sites: Sequence[int] = (),
        num_sketches: int = 30,
        engine: str = "dense",
    ) -> TOPSResult:
        """Solve the query on the flat site space with the requested method.

        Parameters
        ----------
        query:
            The ``(k, τ, ψ)`` query; ``query.tau_km`` is in kilometres.
        method:
            ``"inc-greedy"`` (the paper's ``(1 − 1/e)`` heuristic),
            ``"fm-greedy"`` (FM-sketch estimated gains, binary ψ), or
            ``"optimal"`` (exact solver; exponential, small instances only).
            NetClus has its own offline phase; see
            :meth:`build_netclus_index` / :meth:`placement_service`.
        existing_sites:
            Node ids of already-operating services (seed the greedy,
            Section 7.3).
        num_sketches:
            Number of FM sketches f for ``method="fm-greedy"``.
        engine:
            Coverage representation: with ``"sparse"`` the greedy runs as
            CELF lazy greedy over CSR/CSC structures; ``"bitset"`` runs
            Inc-Greedy over popcount gains (binary ψ only); ``"auto"``
            picks bitset for binary ψ and sparse otherwise.  All engines
            return the same selections as the dense Inc-Greedy.  The
            optimal solver requires the dense engine.

        Returns
        -------
        TOPSResult
            ``sites`` are node ids in selection order; ``elapsed_seconds``
            includes the coverage build, broken out in
            ``metadata["preprocess_seconds"]``.
        """
        require(
            engine == "dense" or method != "optimal",
            "the optimal solver requires the dense engine",
        )
        with Timer() as timer:
            coverage = self.coverage(query, engine=engine)
        preprocess_seconds = timer.elapsed
        if method == "inc-greedy":
            solver = (
                LazyGreedy(coverage)
                if getattr(coverage, "is_sparse", False)
                else IncGreedy(coverage)
            )
            result = solver.solve(query, existing_sites=existing_sites)
        elif method == "fm-greedy":
            result = FMGreedy(coverage, num_sketches=num_sketches).solve(query)
        elif method == "optimal":
            result = OptimalSolver(coverage).solve(query)
        else:
            raise ValueError(f"unknown method {method!r}")
        metadata = dict(result.metadata)
        metadata["preprocess_seconds"] = preprocess_seconds
        return TOPSResult(
            sites=result.sites,
            utility=result.utility,
            per_trajectory_utility=result.per_trajectory_utility,
            elapsed_seconds=result.elapsed_seconds + preprocess_seconds,
            algorithm=result.algorithm,
            metadata=metadata,
        )

    # ------------------------------------------------------------------ #
    def build_netclus_index(
        self,
        gamma: float = 0.75,
        tau_min_km: float = 0.4,
        tau_max_km: float = 8.0,
        use_fm_sketches: bool = False,
        num_sketches: int = 30,
        max_instances: int | None = None,
        representative_strategy: str = "closest",
        workers: int | str = 1,
    ) -> NetClusIndex:
        """Build a NetClus index over this problem's data (offline phase).

        Parameters are forwarded to :meth:`NetClusIndex.build`; distances
        (``tau_min_km``, ``tau_max_km``) are in kilometres.  ``workers``
        fans the independent per-instance clusterings out over a process
        pool (the resulting index is identical to a ``workers=1`` build;
        ``"auto"`` resolves to the usable-CPU count).
        The returned index answers any ``(k, τ, ψ)`` with τ in the
        supported range without touching this problem's detour matrix
        again; persist it with :func:`repro.service.save_index`.
        """
        return NetClusIndex.build(
            self.network,
            self.trajectories,
            self.sites,
            gamma=gamma,
            tau_min_km=tau_min_km,
            tau_max_km=tau_max_km,
            use_fm_sketches=use_fm_sketches,
            num_sketches=num_sketches,
            max_instances=max_instances,
            representative_strategy=representative_strategy,
            workers=workers,
        )

    def placement_service(
        self,
        engine: str = "sparse",
        cache_size: int = 128,
        shards: int | None = None,
        query_workers: int | str = 1,
        **build_kwargs,
    ):
        """A lazily-built :class:`~repro.service.PlacementService` over this problem.

        *build_kwargs* are forwarded to :meth:`build_netclus_index`.  The
        offline phase runs on the first query (or ``service.save``), so
        constructing the service is free; ``shards``/``query_workers``
        configure the trajectory-sharded query path (results are identical
        for any setting); see :mod:`repro.service` for the batch-query and
        persistence surface.
        """
        from repro.service.placement import PlacementService

        return PlacementService.from_problem(
            self,
            engine=engine,
            cache_size=cache_size,
            shards=shards,
            query_workers=query_workers,
            **build_kwargs,
        )

    # ------------------------------------------------------------------ #
    def evaluate(self, sites: Sequence[int], query: TOPSQuery) -> tuple[float, np.ndarray]:
        """Exact utility of an arbitrary site selection under *query*."""
        return self.oracle.evaluate_utility(
            self.trajectories, list(sites), query.tau_km, query.preference
        )

    def utility_percent(self, sites: Sequence[int], query: TOPSQuery) -> float:
        """Exact utility as a percentage of the trajectory count."""
        utility, _ = self.evaluate(sites, query)
        return 100.0 * utility / self.num_trajectories
