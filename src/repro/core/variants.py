"""TOPS extensions and variants (Section 7).

* :func:`solve_tops_cost` — TOPS-COST (Problem 4): budgeted selection with
  per-site costs, using the budgeted-maximum-coverage greedy of Khuller et
  al. (select by gain/cost ratio, compare against the best single affordable
  site) with its ``(1 − 1/e)/2`` guarantee.
* :func:`solve_tops_capacity` — TOPS-CAPACITY (Problem 5): each site serves at
  most ``cap`` trajectories; greedy marginal gains are capacity-limited.
* :func:`solve_tops_with_existing` — TOPS with existing services
  (Section 7.3): greedy seeded with the operating sites.
* :func:`solve_tops_market_share` — TOPS4: smallest site set covering a β
  fraction of trajectories (greedy set-cover style).
* :func:`solve_tops_min_inconvenience` — TOPS3: minimise total user deviation
  (greedy on the negated-detour preference with τ = ∞).

All drivers operate through the coverage protocol shared by
:class:`~repro.core.coverage.CoverageIndex`,
:class:`~repro.core.coverage.SparseCoverageIndex`, the binary-ψ
:class:`~repro.core.bitcov.BitsetCoverageIndex` and the
trajectory-sharded :class:`~repro.core.shards.ShardedCoverage`, so they
work unchanged on the flat site space (Inc-Greedy), on NetClus's clustered
space (pass the coverage index built from estimated detours), on the
dense, sparse or bitset engine, and on any shard count — sharded
selections are identical to unsharded ones.  With a sparse index the
greedy-based drivers automatically use the CELF lazy greedy
(:class:`~repro.core.greedy.LazyGreedy`), which returns the same
selections.  The one exception is :func:`solve_tops_min_inconvenience`,
whose τ = ∞ objective needs the full detour matrix and therefore requires
the plain (unsharded) dense index.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.bitcov import BitsetCoverageIndex
from repro.core.coverage import (
    GAIN_RTOL,
    CoverageIndex,
    SparseCoverageIndex,
    tie_break_candidates,
)
from repro.core.greedy import IncGreedy, LazyGreedy
from repro.core.query import TOPSQuery, TOPSResult
from repro.core.shards import ShardedCoverage
from repro.utils.timer import Timer
from repro.utils.validation import require, require_positive, require_probability

__all__ = [
    "solve_tops_cost",
    "solve_tops_capacity",
    "solve_tops_with_existing",
    "solve_tops_market_share",
    "solve_tops_min_inconvenience",
]


AnyCoverage = CoverageIndex | SparseCoverageIndex | BitsetCoverageIndex | ShardedCoverage


def _greedy_solver(coverage: AnyCoverage) -> IncGreedy | LazyGreedy:
    """The greedy solver matching the coverage representation."""
    if getattr(coverage, "is_sparse", False):
        return LazyGreedy(coverage)
    return IncGreedy(coverage)


def solve_tops_cost(
    coverage: AnyCoverage,
    budget: float,
    site_costs: np.ndarray | Sequence[float],
) -> TOPSResult:
    """TOPS-COST: maximise utility subject to a total site-cost budget.

    Parameters
    ----------
    coverage:
        Coverage index for the query's (τ, ψ).
    budget:
        Total budget B.
    site_costs:
        Per-site costs aligned with the coverage index's site columns.
    """
    require_positive(budget, "budget")
    costs = np.asarray(site_costs, dtype=float)
    require(len(costs) == coverage.num_sites, "site_costs length mismatch")
    require(bool(np.all(costs > 0)), "site costs must be positive")
    with Timer() as timer:
        utilities = np.zeros(coverage.num_trajectories)
        selected: list[int] = []
        spent = 0.0
        available = set(range(coverage.num_sites))
        while available:
            residual = coverage.marginal_gains(utilities)
            ratio = residual / costs
            ratio[list(set(range(coverage.num_sites)) - available)] = -np.inf
            # lowest site index among ratio ties (within the shared gain
            # tolerance, so every engine resolves ties identically)
            best = int(tie_break_candidates(ratio)[0])
            if ratio[best] <= 0.0:
                break
            if spent + costs[best] <= budget:
                selected.append(best)
                spent += float(costs[best])
                utilities = coverage.absorb(utilities, best)
            available.discard(best)
        # Khuller et al. safeguard: compare with the best single affordable
        # site; the single site must beat the greedy total by more than the
        # gain tolerance so near-ulp weight noise never flips the outcome
        affordable = np.flatnonzero(costs <= budget)
        if len(affordable):
            single_utilities = coverage.site_weights[affordable]
            best_single = int(affordable[tie_break_candidates(single_utilities)[0]])
            single_total = float(single_utilities.max())
            greedy_total = float(utilities.sum())
            if single_total > greedy_total + GAIN_RTOL * max(1.0, abs(single_total)):
                selected = [best_single]
                utilities = coverage.per_trajectory_utility([best_single])
                spent = float(costs[best_single])
    return TOPSResult(
        sites=tuple(int(coverage.site_labels[c]) for c in selected),
        utility=float(np.sum(utilities)),
        per_trajectory_utility=tuple(float(u) for u in utilities),
        elapsed_seconds=timer.elapsed,
        algorithm="tops-cost",
        metadata={"budget": budget, "spent": spent, "num_sites": len(selected)},
    )


def solve_tops_capacity(
    coverage: AnyCoverage,
    query: TOPSQuery,
    capacities: np.ndarray | Sequence[float],
) -> TOPSResult:
    """TOPS-CAPACITY: each selected site serves at most its capacity."""
    caps = np.asarray(capacities, dtype=float)
    require(len(caps) == coverage.num_sites, "capacities length mismatch")
    require(bool(np.all(caps >= 0)), "capacities must be non-negative")
    if getattr(coverage, "is_sparse", False):
        greedy: IncGreedy | LazyGreedy = LazyGreedy(coverage)
    else:
        greedy = IncGreedy(coverage, update_strategy="recompute")
    with Timer() as timer:
        columns, utilities, gains = greedy.select(query.k, capacities=caps)
    return TOPSResult(
        sites=tuple(int(coverage.site_labels[c]) for c in columns),
        utility=float(np.sum(utilities)),
        per_trajectory_utility=tuple(float(u) for u in utilities),
        elapsed_seconds=timer.elapsed,
        algorithm="tops-capacity",
        metadata={"marginal_gains": gains},
    )


def solve_tops_with_existing(
    coverage: AnyCoverage,
    query: TOPSQuery,
    existing_sites: Sequence[int],
) -> TOPSResult:
    """TOPS with existing services: greedy seeded with the operating sites.

    The reported per-trajectory utilities include the utility already provided
    by the existing services; the returned ``sites`` are only the *new* k
    sites, matching Section 7.3.
    """
    greedy = _greedy_solver(coverage)
    result = greedy.solve(query, existing_sites=existing_sites)
    metadata = dict(result.metadata)
    metadata["existing_sites"] = tuple(int(s) for s in existing_sites)
    return TOPSResult(
        sites=result.sites,
        utility=result.utility,
        per_trajectory_utility=result.per_trajectory_utility,
        elapsed_seconds=result.elapsed_seconds,
        algorithm="tops-existing",
        metadata=metadata,
    )


def solve_tops_market_share(
    coverage: AnyCoverage,
    beta: float,
    max_sites: int | None = None,
) -> TOPSResult:
    """TOPS4: the smallest site set covering at least a β fraction of trajectories.

    Only meaningful for the binary preference (a trajectory is covered or
    not); the greedy adds maximal-marginal-gain sites until the coverage
    target is met, giving the classic ``1 + ln n`` set-cover bound.
    """
    require_probability(beta, "beta")
    require(
        getattr(coverage.preference, "is_binary", False),
        "TOPS4 (market share) requires the binary preference",
    )
    target = beta * coverage.num_trajectories
    limit = max_sites if max_sites is not None else coverage.num_sites
    with Timer() as timer:
        utilities = np.zeros(coverage.num_trajectories)
        selected: list[int] = []
        while float(utilities.sum()) < target and len(selected) < limit:
            residual = coverage.marginal_gains(utilities)
            if selected:
                residual[selected] = -np.inf
            best = int(tie_break_candidates(residual)[0])
            if residual[best] <= 0.0:
                break
            selected.append(best)
            utilities = coverage.absorb(utilities, best)
    return TOPSResult(
        sites=tuple(int(coverage.site_labels[c]) for c in selected),
        utility=float(np.sum(utilities)),
        per_trajectory_utility=tuple(float(u) for u in utilities),
        elapsed_seconds=timer.elapsed,
        algorithm="tops-market-share",
        metadata={
            "beta": beta,
            "target_coverage": target,
            "achieved_fraction": float(utilities.sum()) / max(coverage.num_trajectories, 1),
        },
    )


def solve_tops_min_inconvenience(
    coverage: CoverageIndex,
    query: TOPSQuery,
) -> TOPSResult:
    """TOPS3: choose k sites minimising the total user deviation.

    The coverage index must be built with
    :class:`~repro.core.preference.InconveniencePreference` and an effectively
    infinite τ; utilities are then negative detours.  Because greedy marginal
    gains assume a zero-utility empty set, the scores are shifted by the
    largest finite detour so that they become non-negative; the shift does not
    change which sites are selected.  The result's metadata reports the total
    deviation in kilometres for readability.
    """
    from repro.core.greedy import greedy_max_coverage_columns

    require(
        not getattr(coverage, "is_sparse", False)
        and not isinstance(coverage, (ShardedCoverage, BitsetCoverageIndex)),
        "TOPS3 (min inconvenience) needs the full dense detour matrix; "
        "build the coverage with the dense engine and shards=1",
    )
    with Timer() as timer:
        detours = np.where(np.isfinite(coverage.detours), coverage.detours, np.nan)
        max_detour = float(np.nanmax(detours)) if np.isfinite(detours).any() else 0.0
        shifted = np.where(
            np.isfinite(coverage.detours), max_detour - coverage.detours, 0.0
        )
        columns, _ = greedy_max_coverage_columns(shifted, query.k)
        # per-trajectory deviation under the selected set (true objective)
        deviations = np.min(coverage.detours[:, columns], axis=1)
        deviations = np.where(np.isfinite(deviations), deviations, max_detour)
        utilities = -deviations
    total_deviation = float(np.sum(deviations))
    return TOPSResult(
        sites=tuple(int(coverage.site_labels[c]) for c in columns),
        utility=float(np.sum(utilities)),
        per_trajectory_utility=tuple(float(u) for u in utilities),
        elapsed_seconds=timer.elapsed,
        algorithm="tops-min-inconvenience",
        metadata={"total_deviation_km": total_deviation},
    )
