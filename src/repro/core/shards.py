"""Trajectory-sharded coverage: the distributed greedy query path.

The TOPS utility is additive over disjoint trajectory sets::

    U(Q) = Σ_j max_{s in Q} ψ(T_j, s) = Σ_shards Σ_{j in shard} max_s ψ(T_j, s)

so a coverage over ``m`` trajectories can be partitioned by *rows* into S
disjoint shards — one :class:`~repro.core.coverage.CoverageIndex` or
:class:`~repro.core.coverage.SparseCoverageIndex` per shard, all sharing
the same site columns — and every greedy quantity recovered exactly by a
*gain coordinator* that combines per-shard results:

* marginal-gain vectors are the shard-order sum of per-shard vectors;
* per-trajectory utilities scatter each shard's utilities into the global
  vector (``max`` operations — bit-exact regardless of sharding);
* a site's covered rows are the merge of the shards' covered rows in
  global row order, so capacity tie-breaks (served lowest-row first) are
  unchanged.

:class:`ShardedCoverage` implements the full coverage protocol consumed by
:class:`~repro.core.greedy.IncGreedy`/:class:`~repro.core.greedy.LazyGreedy`,
:class:`~repro.core.fm_greedy.FMGreedy` and the TOPS variant drivers, so
sharded selections are identical to the unsharded path — only the work is
split into S independent pieces that an optional executor (the placement
service's persistent query pool) can evaluate concurrently.

Shard layout
------------
A trajectory's shard is a pure function of its id
(:func:`shard_of` — a splitmix64 mix of the id modulo S), never of its
row position.  The layout is therefore deterministic across processes and
sessions, balanced even for sequential id ranges, and *stable under
dynamic updates*: a trajectory added through
:meth:`~repro.core.netclus.NetClusIndex.apply_updates` hashes to the same
shard any fresh layout would assign it.
"""

from __future__ import annotations

from concurrent.futures import Executor
from typing import Callable, Sequence

import numpy as np

from repro.core.bitcov import BitsetCoverageIndex
from repro.core.coverage import (
    CoverageIndex,
    SparseCoverageIndex,
    _top_capacity_sum,
    build_label_map,
    labels_to_columns,
    replay_selection,
    serve_top_capacity,
)
from repro.core.preference import PreferenceFunction
from repro.utils.timer import KernelTimer
from repro.utils.validation import require

__all__ = ["shard_of", "shard_assignments", "shard_layout", "ShardedCoverage"]

#: any single-shard coverage index usable as a ShardedCoverage part
ShardPart = CoverageIndex | SparseCoverageIndex | BitsetCoverageIndex

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_SEED = np.uint64(0x9E3779B97F4A7C15)


def shard_assignments(traj_ids: Sequence[int] | np.ndarray, num_shards: int) -> np.ndarray:
    """Shard id of every trajectory id (vectorised :func:`shard_of`).

    The assignment is the splitmix64 finaliser of the id, modulo
    ``num_shards`` — a fixed, seedless mixing so that the layout is a pure
    function of (id, S): deterministic across sessions and balanced even
    when ids are a dense ``0..m-1`` range.
    """
    require(int(num_shards) >= 1, "num_shards must be >= 1")
    ids = np.asarray(traj_ids, dtype=np.int64).view(np.uint64)
    z = (ids + _SEED) & _MASK64
    z = ((z ^ (z >> np.uint64(30))) * _MIX1) & _MASK64
    z = ((z ^ (z >> np.uint64(27))) * _MIX2) & _MASK64
    z = z ^ (z >> np.uint64(31))
    return (z % np.uint64(num_shards)).astype(np.int64)


def shard_of(traj_id: int, num_shards: int) -> int:
    """The shard a single trajectory id belongs to (see :func:`shard_assignments`)."""
    return int(shard_assignments(np.asarray([traj_id]), num_shards)[0])


def shard_layout(
    trajectory_ids: Sequence[int] | np.ndarray, num_shards: int
) -> list[np.ndarray]:
    """Global row indices of each shard, ascending, for a registry of ids.

    ``trajectory_ids`` fixes the global row order (registry order);
    ``shard_layout(ids, S)[s]`` are the rows whose trajectory hashes to
    shard ``s``.  Every row lands in exactly one shard; with ``S == 1``
    the single shard is the identity layout.
    """
    assignments = shard_assignments(trajectory_ids, num_shards)
    return [
        np.flatnonzero(assignments == shard) for shard in range(int(num_shards))
    ]


def _build_parts(
    build_part: Callable, tasks: Sequence, executor: Executor | None
) -> list:
    """Construct the per-shard parts, on *executor* when one is given.

    Part construction is independent per shard (each sees only its own
    rows), so the builds fan out like gain evaluations do; results come
    back in shard order regardless of completion order.
    """
    if executor is not None and len(tasks) > 1:
        return list(executor.map(build_part, tasks))
    return [build_part(task) for task in tasks]


class ShardedCoverage:
    """A coverage index partitioned into per-shard parts, one per trajectory shard.

    Implements the same coverage protocol as
    :class:`~repro.core.coverage.CoverageIndex` /
    :class:`~repro.core.coverage.SparseCoverageIndex` —
    ``site_column`` / ``marginal_gains`` / ``marginal_gain`` / ``absorb`` /
    ``gain_updates`` / ``utilities_for_selection`` and the lookup helpers —
    over S disjoint row partitions.  All per-trajectory state (the
    utilities vector the greedy threads through every call) stays *global*;
    only the gain evaluation fans out per shard and is recombined by the
    coordinator in fixed shard order, so results do not depend on how many
    workers evaluate the shards.

    Parameters
    ----------
    parts:
        One coverage index per shard, each over its shard's rows only and
        all sharing identical site columns/labels.
    shard_rows:
        Per shard, the ascending global row indices its part covers; the
        shards must partition ``0..m-1``.
    tau_km, preference, site_labels, trajectory_ids:
        The global query parameters / registries (``trajectory_ids`` in
        global row order).
    executor:
        Optional ``concurrent.futures``-style executor with a ``map``
        method; when set (the placement service's persistent query pool),
        per-shard gain evaluations run on it.  ``None`` evaluates shards
        in-line.  The executor only changes *where* shard work runs, never
        the combined result.
    """

    def __init__(
        self,
        parts: Sequence[ShardPart],
        shard_rows: Sequence[np.ndarray],
        tau_km: float,
        preference: PreferenceFunction,
        site_labels: Sequence[int] | None = None,
        trajectory_ids: Sequence[int] | None = None,
        executor: Executor | None = None,
    ) -> None:
        require(len(parts) >= 1, "ShardedCoverage needs at least one shard part")
        require(len(parts) == len(shard_rows), "parts / shard_rows length mismatch")
        self.parts = list(parts)
        self.shard_rows = [np.asarray(rows, dtype=np.int64) for rows in shard_rows]
        self.tau_km = float(tau_km)
        self.preference = preference
        self.num_sites = int(self.parts[0].num_sites)
        for part, rows in zip(self.parts, self.shard_rows):
            require(part.num_sites == self.num_sites, "shard site-column mismatch")
            require(
                part.num_trajectories == len(rows),
                "shard part row-count mismatch",
            )
        self.num_trajectories = int(sum(len(rows) for rows in self.shard_rows))
        if site_labels is None:
            site_labels = self.parts[0].site_labels
        self.site_labels = np.asarray(site_labels, dtype=np.int64)
        if trajectory_ids is None:
            trajectory_ids = np.empty(self.num_trajectories, dtype=np.int64)
            for part, rows in zip(self.parts, self.shard_rows):
                trajectory_ids[rows] = part.trajectory_ids
        self.trajectory_ids = np.asarray(trajectory_ids, dtype=np.int64)
        self.executor = executor

        # global row -> (owning shard, local row) for delegation
        self._shard_of_row = np.full(self.num_trajectories, -1, dtype=np.int64)
        self._local_of_row = np.full(self.num_trajectories, -1, dtype=np.int64)
        for shard, rows in enumerate(self.shard_rows):
            self._shard_of_row[rows] = shard
            self._local_of_row[rows] = np.arange(len(rows), dtype=np.int64)
        require(
            bool(np.all(self._shard_of_row >= 0)),
            "shard_rows must partition every trajectory row",
        )
        self._site_weights: np.ndarray | None = None
        self._label_to_col: dict[int, int] | None = None
        self.kernel_timer: KernelTimer | None = None

    def attach_kernel_timer(self, timer: KernelTimer | None) -> None:
        """Attach *timer* to every shard part (the parts run the kernels)."""
        self.kernel_timer = timer
        for part in self.parts:
            part.attach_kernel_timer(timer)

    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        """Number of trajectory shards S."""
        return len(self.parts)

    @property
    def is_sparse(self) -> bool:
        """Whether the per-shard parts hold their scores in sparse form."""
        return bool(getattr(self.parts[0], "is_sparse", False))

    @property
    def engine(self) -> str:
        """``"dense"``, ``"sparse"`` or ``"bitset"`` — the parts' representation."""
        if isinstance(self.parts[0], BitsetCoverageIndex):
            return "bitset"
        return "sparse" if self.is_sparse else "dense"

    def shard_sizes(self) -> list[int]:
        """Trajectories per shard, in shard order."""
        return [int(len(rows)) for rows in self.shard_rows]

    # ------------------------------------------------------------------ #
    def _map_shards(self, task: Callable[[int], np.ndarray | float]) -> list:
        """Evaluate *task* for every shard, on the executor when present.

        Results come back indexed by shard regardless of completion order,
        so the coordinator's shard-order combination is deterministic for
        any worker count.
        """
        if self.executor is not None and self.num_shards > 1:
            return list(self.executor.map(task, range(self.num_shards)))
        return [task(shard) for shard in range(self.num_shards)]

    # ------------------------------------------------------------------ #
    # coverage protocol — gain evaluation (the distributed hot path)
    # ------------------------------------------------------------------ #
    @property
    def site_weights(self) -> np.ndarray:
        """``w_i = Σ_j ψ(T_j, s_i)`` — shard-order sum of the parts' weights."""
        if self._site_weights is None:
            total = np.zeros(self.num_sites, dtype=np.float64)
            for part in self.parts:
                total += part.site_weights
            self._site_weights = total
        return self._site_weights

    def marginal_gains(self, utilities: np.ndarray) -> np.ndarray:
        """Marginal utility of every site: per-shard vectors summed in shard order."""
        partials = self._map_shards(
            lambda shard: self.parts[shard].marginal_gains(
                utilities[self.shard_rows[shard]]
            )
        )
        total = np.zeros(self.num_sites, dtype=np.float64)
        for partial in partials:
            total += partial
        return total

    def marginal_gain(
        self, col: int, utilities: np.ndarray, capacity: int | None = None
    ) -> float:
        """Marginal utility of one site, optionally capacity-limited.

        Uncapacitated gains are additive over shards; a capacity limit is
        global (a site serves its largest ``cap`` gains across *all*
        trajectories), so the capacitated path gathers the site's covered
        rows from every shard before taking the top-``cap`` sum.
        """
        if capacity is None:
            # single-column work is tiny (O(nnz(col)/S) per shard), so the
            # executor's dispatch overhead would dominate — evaluate inline
            return float(
                sum(
                    part.marginal_gain(col, utilities[rows])
                    for part, rows in zip(self.parts, self.shard_rows)
                )
            )
        rows, values = self.site_column(col)
        residual = np.maximum(values - utilities[rows], 0.0)
        return _top_capacity_sum(residual, capacity)

    def gain_updates(
        self, rows: np.ndarray, old_values: np.ndarray, new_values: np.ndarray
    ) -> np.ndarray:
        """Per-site marginal-gain decrease when *rows* improve old → new.

        The incremental greedy's update kernel
        (:meth:`~repro.core.coverage.CoverageIndex.gain_updates`), fanned
        out per shard and summed in shard order.
        """
        rows = np.asarray(rows, dtype=np.int64)
        owners = self._shard_of_row[rows]
        locals_ = self._local_of_row[rows]

        def shard_task(shard: int) -> np.ndarray | None:
            mask = owners == shard
            if not np.any(mask):
                return None
            return self.parts[shard].gain_updates(
                locals_[mask], old_values[mask], new_values[mask]
            )

        total = np.zeros(self.num_sites, dtype=np.float64)
        for partial in self._map_shards(shard_task):
            if partial is not None:
                total += partial
        return total

    # ------------------------------------------------------------------ #
    # coverage protocol — per-trajectory state (exact, order-independent)
    # ------------------------------------------------------------------ #
    def site_column(self, col: int) -> tuple[np.ndarray, np.ndarray]:
        """The covered rows of one site column (global row order) and their ψ-scores."""
        row_chunks: list[np.ndarray] = []
        value_chunks: list[np.ndarray] = []
        for part, shard_rows in zip(self.parts, self.shard_rows):
            local_rows, values = part.site_column(col)
            row_chunks.append(shard_rows[local_rows])
            value_chunks.append(values)
        rows = np.concatenate(row_chunks)
        values = np.concatenate(value_chunks)
        order = np.argsort(rows, kind="stable")
        return rows[order], values[order]

    def absorb(
        self, utilities: np.ndarray, col: int, capacity: int | None = None
    ) -> np.ndarray:
        """Per-trajectory utilities after adding the site in *col* (copy).

        Uncapacitated absorption is a per-row ``max`` — each shard updates
        its own rows.  With a capacity the served set is global (the
        ``cap`` largest gains across every shard, ties to the lowest
        global row), so the column is gathered in global row order first —
        the same tie-break the unsharded engines apply.
        """
        if capacity is None:
            updated = utilities.copy()
            for part, shard_rows in zip(self.parts, self.shard_rows):
                local_rows, values = part.site_column(col)
                target = shard_rows[local_rows]
                updated[target] = np.maximum(updated[target], values)
            return updated
        rows, values = self.site_column(col)
        if capacity >= len(rows):
            updated = utilities.copy()
            updated[rows] = np.maximum(updated[rows], values)
            return updated
        return serve_top_capacity(utilities, rows, values, capacity)

    def utilities_for_selection(
        self,
        columns: Sequence[int],
        capacity: int | None = None,
        seed_columns: Sequence[int] = (),
    ) -> np.ndarray:
        """Per-trajectory utilities after absorbing *columns* in order."""
        return replay_selection(self, columns, capacity, seed_columns)

    def per_trajectory_utility(self, site_columns: Sequence[int]) -> np.ndarray:
        """Per-trajectory utility under the given site columns (global order)."""
        utilities = np.zeros(self.num_trajectories, dtype=np.float64)
        partials = self._map_shards(
            lambda shard: self.parts[shard].per_trajectory_utility(site_columns)
        )
        for shard_rows, partial in zip(self.shard_rows, partials):
            utilities[shard_rows] = partial
        return utilities

    def utility_of(self, site_columns: Sequence[int]) -> float:
        """Utility ``U(Q)`` of the sites given by their column indices."""
        return float(np.sum(self.per_trajectory_utility(site_columns)))

    # ------------------------------------------------------------------ #
    # coverage protocol — lookups / bookkeeping
    # ------------------------------------------------------------------ #
    def trajectories_covered(self, site_column: int) -> np.ndarray:
        """Row indices (global) of trajectories covered by the site (TC)."""
        rows, _ = self.site_column(site_column)
        return rows

    def sites_covering(self, trajectory_row: int) -> np.ndarray:
        """Column indices of sites covering the trajectory (SC) — delegated."""
        shard = int(self._shard_of_row[trajectory_row])
        return self.parts[shard].sites_covering(int(self._local_of_row[trajectory_row]))

    def covered_pairs(self) -> int:
        """Total number of (trajectory, site) covered pairs across shards."""
        return int(sum(part.covered_pairs() for part in self.parts))

    def coverage_mask(self) -> np.ndarray:
        """Boolean ``(m, n)`` coverage mask (densified; debugging aid)."""
        mask = np.zeros((self.num_trajectories, self.num_sites), dtype=bool)
        for part, shard_rows in zip(self.parts, self.shard_rows):
            mask[shard_rows, :] = part.coverage_mask()
        return mask

    def columns_for_labels(self, labels: Sequence[int]) -> list[int]:
        """Map site labels (node ids) back to column indices."""
        if self._label_to_col is None:
            self._label_to_col = build_label_map(self.site_labels)
        return labels_to_columns(self.site_labels, labels, self._label_to_col)

    def storage_bytes(self) -> int:
        """Bytes held by the shard parts plus the row-mapping arrays."""
        total = sum(part.storage_bytes() for part in self.parts)
        total += sum(rows.nbytes for rows in self.shard_rows)
        total += self._shard_of_row.nbytes + self._local_of_row.nbytes
        return int(total)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_detours(
        cls,
        detours: np.ndarray,
        tau_km: float,
        preference: PreferenceFunction,
        num_shards: int,
        engine: str = "dense",
        site_labels: Sequence[int] | None = None,
        trajectory_ids: Sequence[int] | None = None,
        executor: Executor | None = None,
    ) -> "ShardedCoverage":
        """Shard a dense ``(m, n)`` detour matrix by trajectory id.

        Each shard's part is built from its rows of the matrix — a
        :class:`CoverageIndex` (``engine="dense"``),
        :class:`SparseCoverageIndex` (``engine="sparse"``) or
        :class:`~repro.core.bitcov.BitsetCoverageIndex`
        (``engine="bitset"``, binary ψ only) per shard.
        """
        require(
            engine in ("dense", "sparse", "bitset"),
            "engine must be 'dense', 'sparse' or 'bitset'",
        )
        detours = np.asarray(detours, dtype=np.float64)
        num_trajectories = detours.shape[0]
        if trajectory_ids is None:
            trajectory_ids = np.arange(num_trajectories, dtype=np.int64)
        trajectory_ids = np.asarray(trajectory_ids, dtype=np.int64)
        layout = shard_layout(trajectory_ids, num_shards)
        part_classes: dict[str, type[ShardPart]] = {
            "dense": CoverageIndex,
            "sparse": SparseCoverageIndex,
            "bitset": BitsetCoverageIndex,
        }
        part_cls = part_classes[engine]

        def build_part(rows: np.ndarray) -> ShardPart:
            return part_cls(
                detours[rows, :],
                tau_km,
                preference,
                site_labels=site_labels,
                trajectory_ids=trajectory_ids[rows],
            )

        parts = _build_parts(build_part, layout, executor)
        return cls(
            parts,
            layout,
            tau_km,
            preference,
            site_labels=site_labels,
            trajectory_ids=trajectory_ids,
            executor=executor,
        )

    @classmethod
    def from_coverage_lists(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        detours: np.ndarray,
        num_trajectories: int,
        num_sites: int,
        tau_km: float,
        preference: PreferenceFunction,
        num_shards: int,
        site_labels: Sequence[int] | None = None,
        trajectory_ids: Sequence[int] | None = None,
        executor: Executor | None = None,
        engine: str = "sparse",
    ) -> "ShardedCoverage":
        """Shard (trajectory, site, detour) coverage triples by trajectory id.

        The entry-stream counterpart of :meth:`from_detours`: each shard
        keeps only its rows' triples (remapped to shard-local rows) and
        builds a :class:`SparseCoverageIndex` (``engine="sparse"``) or
        :class:`~repro.core.bitcov.BitsetCoverageIndex`
        (``engine="bitset"``, binary ψ only) via ``from_coverage_lists`` —
        the duplicate-min reduction is per (row, site) pair, so
        partitioning rows never changes any stored estimate.
        """
        require(
            engine in ("sparse", "bitset"),
            "from_coverage_lists builds 'sparse' or 'bitset' parts",
        )
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        detours = np.asarray(detours, dtype=np.float64)
        if trajectory_ids is None:
            trajectory_ids = np.arange(num_trajectories, dtype=np.int64)
        trajectory_ids = np.asarray(trajectory_ids, dtype=np.int64)
        layout = shard_layout(trajectory_ids, num_shards)
        local_of_row = np.empty(num_trajectories, dtype=np.int64)
        shard_of_row = np.empty(num_trajectories, dtype=np.int64)
        for shard, shard_rows in enumerate(layout):
            local_of_row[shard_rows] = np.arange(len(shard_rows), dtype=np.int64)
            shard_of_row[shard_rows] = shard
        entry_shards = shard_of_row[rows] if len(rows) else np.empty(0, dtype=np.int64)

        part_cls = BitsetCoverageIndex if engine == "bitset" else SparseCoverageIndex

        def build_part(
            shard_and_rows: tuple[int, np.ndarray],
        ) -> SparseCoverageIndex | BitsetCoverageIndex:
            shard, shard_rows = shard_and_rows
            keep = entry_shards == shard
            return part_cls.from_coverage_lists(
                local_of_row[rows[keep]],
                cols[keep],
                detours[keep],
                num_trajectories=len(shard_rows),
                num_sites=num_sites,
                tau_km=tau_km,
                preference=preference,
                site_labels=site_labels,
                trajectory_ids=trajectory_ids[shard_rows],
            )

        parts = _build_parts(build_part, list(enumerate(layout)), executor)
        return cls(
            parts,
            layout,
            tau_km,
            preference,
            site_labels=site_labels,
            trajectory_ids=trajectory_ids,
            executor=executor,
        )
