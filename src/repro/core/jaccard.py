"""Jaccard-similarity clustering baseline (Appendix B.1, Table 12).

The paper considers (and rejects) clustering candidate sites by the Jaccard
similarity of their trajectory covers: the heaviest unclustered site becomes
a cluster center and absorbs every site within Jaccard *distance* α of it.
The approach needs the covering sets — hence a full O(mn) pass — before any
clustering can happen, which is exactly why the paper prefers distance-based
clustering.  We implement it to reproduce Table 12's cost comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coverage import CoverageIndex
from repro.utils.timer import Timer
from repro.utils.validation import require_probability

__all__ = ["JaccardCluster", "JaccardClusteringResult", "jaccard_clustering"]


@dataclass
class JaccardCluster:
    """A cluster of candidate-site columns sharing similar trajectory covers."""

    center_column: int
    member_columns: list[int]


@dataclass
class JaccardClusteringResult:
    """Outcome of Jaccard-similarity clustering."""

    clusters: list[JaccardCluster]
    build_seconds: float
    storage_bytes: int

    @property
    def num_clusters(self) -> int:
        """Number of clusters produced."""
        return len(self.clusters)


def jaccard_similarity(cover_a: np.ndarray, cover_b: np.ndarray) -> float:
    """Jaccard similarity of two boolean cover vectors."""
    union = np.logical_or(cover_a, cover_b).sum()
    if union == 0:
        return 1.0
    return float(np.logical_and(cover_a, cover_b).sum() / union)


def jaccard_clustering(
    coverage: CoverageIndex, alpha: float = 0.8
) -> JaccardClusteringResult:
    """Cluster site columns by Jaccard distance of their trajectory covers.

    Parameters
    ----------
    coverage:
        Coverage index for the (τ, ψ) at which the clustering is performed.
    alpha:
        Jaccard *distance* threshold: a site joins the current center's
        cluster when ``1 − J_s <= alpha``.
    """
    require_probability(alpha, "alpha")
    with Timer() as timer:
        mask = coverage.coverage_mask()
        weights = coverage.site_weights
        unclustered = set(range(coverage.num_sites))
        clusters: list[JaccardCluster] = []
        while unclustered:
            center = max(unclustered, key=lambda col: (weights[col], col))
            unclustered.discard(center)
            members = [center]
            center_cover = mask[:, center]
            for col in sorted(unclustered):
                distance = 1.0 - jaccard_similarity(center_cover, mask[:, col])
                if distance <= alpha:
                    members.append(col)
            for col in members:
                unclustered.discard(col)
            clusters.append(JaccardCluster(center_column=center, member_columns=members))
    storage = int(mask.nbytes + weights.nbytes)
    return JaccardClusteringResult(
        clusters=clusters, build_seconds=timer.elapsed, storage_bytes=storage
    )
