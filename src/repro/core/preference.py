"""Preference functions ψ (Definition 2 and Section 7.4 of the paper).

A preference function maps the round-trip detour ``dr(T_j, s_i)`` to a score
in ``[0, 1]`` (0 beyond the coverage threshold τ); it must be non-increasing
in the detour.  The library ships the family used across the paper's
experiments:

* :class:`BinaryPreference` — TOPS1, Definition 3 (score 1 within τ);
* :class:`LinearPreference` — linearly decaying score ``1 − d/τ``;
* :class:`ExponentialPreference` — ``exp(−λ·d/τ)``;
* :class:`ConvexProbabilityPreference` — TOPS2's convex capture probability
  ``(1 − d/τ)²``;
* :class:`InconveniencePreference` — TOPS3's negated detour (see Section 7.4;
  not bounded to [0, 1], used only by the TOPS3 variant driver).

All implementations are vectorised: they accept NumPy arrays of detours.

Every preference is registered under a short name (``"binary"``,
``"linear"``, ...) so that serialised query specs — the placement service's
batch files, result caches — can name a ψ without pickling objects:
:func:`make_preference` builds an instance from ``(name, params)`` and
:meth:`PreferenceFunction.spec` is its inverse.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.validation import require, require_positive

__all__ = [
    "PreferenceFunction",
    "BinaryPreference",
    "LinearPreference",
    "ExponentialPreference",
    "ConvexProbabilityPreference",
    "InconveniencePreference",
    "PREFERENCE_REGISTRY",
    "make_preference",
    "is_registered",
]


class PreferenceFunction(ABC):
    """Base class for preference functions ψ(d, τ).

    Subclasses implement :meth:`raw_score`, the non-increasing function ``f``
    of Definition 2 evaluated on detours already known to be within τ.
    :meth:`__call__` applies the τ cut-off and handles infinities.
    """

    #: whether scores are {0,1} — enables the FM-sketch fast paths
    is_binary: bool = False

    @abstractmethod
    def raw_score(self, detour_km: np.ndarray, tau_km: float) -> np.ndarray:
        """Score for detours assumed to satisfy ``detour <= tau``."""

    def __call__(
        self, detour_km: np.ndarray | float, tau_km: float
    ) -> np.ndarray | float:
        """Apply ψ with the coverage-threshold cut-off.

        Scalars in, scalar out; arrays in, array out.
        """
        scalar = np.isscalar(detour_km)
        detours = np.atleast_1d(np.asarray(detour_km, dtype=float))
        scores = np.zeros_like(detours)
        within = detours <= tau_km
        if np.any(within):
            scores[within] = self.raw_score(detours[within], tau_km)
        if scalar:
            return float(scores[0])
        return scores

    @property
    def name(self) -> str:
        """Human-readable name used in experiment reports."""
        return type(self).__name__

    def spec(self) -> tuple[str, dict[str, float]]:
        """The ``(registry_name, params)`` pair describing this preference.

        The inverse of :func:`make_preference`; used by the placement
        service to serialise query specs and to key result caches.
        Parameterised subclasses override :meth:`params`.  Raises for
        instances :func:`is_registered` rejects — an unregistered subclass
        (even of a registered class) cannot be represented faithfully.
        """
        require(
            is_registered(self),
            f"{type(self).__name__} is not a registered preference; it "
            "cannot be serialised into a query spec",
        )
        return self.registry_name, self.params()

    def params(self) -> dict[str, float]:
        """Constructor parameters of this preference (empty by default)."""
        return {}

    #: short name under which the class is registered (set by subclasses)
    registry_name: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"{type(self).__name__}()"


class BinaryPreference(PreferenceFunction):
    """TOPS1 / Definition 3: ψ = 1 iff the detour is within τ."""

    is_binary = True
    registry_name = "binary"

    def raw_score(self, detour_km: np.ndarray, tau_km: float) -> np.ndarray:
        return np.ones_like(detour_km)


class LinearPreference(PreferenceFunction):
    """Linearly decaying preference ``1 − d/τ`` (1 on the trajectory, 0 at τ)."""

    registry_name = "linear"

    def raw_score(self, detour_km: np.ndarray, tau_km: float) -> np.ndarray:
        if tau_km <= 0:
            return np.where(detour_km <= 0, 1.0, 0.0)
        return np.clip(1.0 - detour_km / tau_km, 0.0, 1.0)


class ExponentialPreference(PreferenceFunction):
    """Exponentially decaying preference ``exp(−λ · d/τ)``."""

    registry_name = "exponential"

    def __init__(self, decay: float = 2.0) -> None:
        require_positive(decay, "decay")
        self.decay = decay

    def params(self) -> dict[str, float]:
        return {"decay": self.decay}

    def raw_score(self, detour_km: np.ndarray, tau_km: float) -> np.ndarray:
        if tau_km <= 0:
            return np.where(detour_km <= 0, 1.0, 0.0)
        return np.exp(-self.decay * detour_km / tau_km)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ExponentialPreference(decay={self.decay})"


class ConvexProbabilityPreference(PreferenceFunction):
    """TOPS2: convex capture probability ``(1 − d/τ)^p`` with ``p >= 1``.

    Berman et al. model the probability that a user deviates to a facility as
    a convex decreasing function of the deviation; the paper's TOPS2
    experiments use such a function.  ``power=2`` by default.
    """

    registry_name = "convex"

    def __init__(self, power: float = 2.0) -> None:
        require_positive(power, "power")
        self.power = power

    def params(self) -> dict[str, float]:
        return {"power": self.power}

    def raw_score(self, detour_km: np.ndarray, tau_km: float) -> np.ndarray:
        if tau_km <= 0:
            return np.where(detour_km <= 0, 1.0, 0.0)
        return np.clip(1.0 - detour_km / tau_km, 0.0, 1.0) ** self.power

    def __repr__(self) -> str:  # pragma: no cover
        return f"ConvexProbabilityPreference(power={self.power})"


class InconveniencePreference(PreferenceFunction):
    """TOPS3: ψ = −dr, with τ effectively infinite.

    Maximising the sum of utilities under this preference minimises the total
    deviation of users, assuming every user avails the service.  Scores are
    negative and unbounded, so this preference is only meaningful with the
    dedicated TOPS3 driver (``repro.core.variants``); the generic coverage
    machinery still works because the function remains non-increasing.
    """

    registry_name = "inconvenience"

    def raw_score(self, detour_km: np.ndarray, tau_km: float) -> np.ndarray:
        return -detour_km


# ---------------------------------------------------------------------- #
#: short name -> preference class, the vocabulary of serialised query specs
PREFERENCE_REGISTRY: dict[str, type[PreferenceFunction]] = {
    cls.registry_name: cls
    for cls in (
        BinaryPreference,
        LinearPreference,
        ExponentialPreference,
        ConvexProbabilityPreference,
        InconveniencePreference,
    )
}


def is_registered(preference: PreferenceFunction) -> bool:
    """Whether *preference* is an exact instance of a registered class.

    A subclass of a registered preference inherits its ``registry_name``
    but would be silently replaced by the base class on a
    serialise/deserialise round trip, so it does not count as registered.
    """
    return PREFERENCE_REGISTRY.get(preference.registry_name) is type(preference)


def make_preference(name: str, **params: float) -> PreferenceFunction:
    """Build a preference function from its registry name and parameters.

    The inverse of :meth:`PreferenceFunction.spec`:
    ``make_preference(*pref.spec()[0:1], **pref.spec()[1])`` reproduces
    *pref*.  Raises ``ValueError`` for unknown names.
    """
    require(
        name in PREFERENCE_REGISTRY,
        f"unknown preference {name!r}; available: {sorted(PREFERENCE_REGISTRY)}",
    )
    return PREFERENCE_REGISTRY[name](**params)
