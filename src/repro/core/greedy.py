"""Inc-Greedy: the (1 − 1/e) greedy heuristic for TOPS (Section 3.3).

Inc-Greedy maximises the monotone submodular utility by repeatedly adding the
site with the largest marginal gain.  Three equivalent evaluation strategies
are provided:

* ``update_strategy="incremental"`` — the paper's Algorithm 1: per-site
  marginal utilities ``U_θ(s_i)`` and per-pair residual gains ``α_ji`` are
  maintained and updated only for the trajectories covered by the newly
  selected site (and the sites covering those trajectories);
* ``update_strategy="recompute"`` — each iteration recomputes all marginal
  gains as ``Σ_j max(0, ψ(T_j, s_i) − U_j)`` with one vectorised NumPy pass;
* ``update_strategy="lazy"`` — CELF-style lazy greedy (:class:`LazyGreedy`):
  cached marginal gains are valid upper bounds by submodularity, so each
  iteration only re-evaluates sites popped from a max-heap until the top
  entry is fresh.  On sparse instances this evaluates a small fraction of
  the ``k·n`` gains the other strategies touch.

All strategies return identical selections (ties broken by site weight, then
by the larger site label, per the paper).  Every strategy runs purely
through the *coverage protocol* (``marginal_gains`` / ``site_column`` /
``absorb`` / ``gain_updates``), so the same solvers drive a dense
:class:`~repro.core.coverage.CoverageIndex`, a
:class:`~repro.core.coverage.SparseCoverageIndex` (``"lazy"`` only — the
fast path for realistic coverage), and a trajectory-sharded
:class:`~repro.core.shards.ShardedCoverage`, whose gain coordinator sums
per-shard marginal-gain vectors with identical selections.  The class also
supports an initial seed of *existing services* (Section 7.3) and per-site
capacities (used by the TOPS-CAPACITY driver in ``repro.core.variants``).
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.core.coverage import (
    GAIN_RTOL,
    CoverageIndex,
    SparseCoverageIndex,
    tie_break_candidates,
)
from repro.core.query import TOPSQuery, TOPSResult
from repro.utils.timer import Timer
from repro.utils.validation import require

__all__ = ["IncGreedy", "LazyGreedy", "greedy_max_coverage_columns"]


class IncGreedy:
    """Greedy TOPS solver operating on a :class:`CoverageIndex`.

    Parameters
    ----------
    coverage:
        The coverage structures built for the query's (τ, ψ).
    update_strategy:
        ``"incremental"`` (Algorithm 1 of the paper) or ``"recompute"``.
    """

    algorithm_name = "inc-greedy"

    def __init__(
        self,
        coverage: CoverageIndex | SparseCoverageIndex,
        update_strategy: str = "incremental",
    ) -> None:
        require(
            update_strategy in ("incremental", "recompute", "lazy"),
            "update_strategy must be 'incremental', 'recompute' or 'lazy'",
        )
        require(
            update_strategy == "lazy" or not getattr(coverage, "is_sparse", False),
            "a SparseCoverageIndex requires update_strategy='lazy'",
        )
        self.coverage = coverage
        self.update_strategy = update_strategy

    # ------------------------------------------------------------------ #
    def select(
        self,
        k: int,
        existing_columns: Sequence[int] = (),
        capacities: np.ndarray | None = None,
    ) -> tuple[list[int], np.ndarray, list[float]]:
        """Select *k* site columns greedily.

        Parameters
        ----------
        k:
            Number of sites to add (on top of any existing services).
        existing_columns:
            Columns of already-operating services (Section 7.3); they seed the
            per-trajectory utilities but are not re-selected nor counted in k.
        capacities:
            Optional per-site capacities (max number of trajectories a site
            may serve).  When provided, a site's marginal utility is the sum
            of its largest ``cap`` per-trajectory gains (Section 7.2).

        Returns
        -------
        (selected_columns, per_trajectory_utility, marginal_gains)
            ``selected_columns`` — site *column indices* (not node ids) in
            selection order; map to node ids via ``coverage.site_labels``.
            ``per_trajectory_utility`` — final ψ-utility per trajectory
            (length m), including any existing-service seed utility.
            ``marginal_gains`` — the gain each selection contributed, in
            the same order.  The selection may be shorter than k when no
            site has positive marginal gain left.  A greedy selection for
            k is always a prefix of the selection for any larger k.
        """
        require(k >= 1, "k must be >= 1")
        if self.update_strategy == "lazy":
            return LazyGreedy(self.coverage).select(
                k, existing_columns=existing_columns, capacities=capacities
            )
        utilities = np.zeros(self.coverage.num_trajectories, dtype=np.float64)
        if existing_columns:
            utilities = self.coverage.per_trajectory_utility(list(existing_columns))
        forbidden = set(int(c) for c in existing_columns)

        if self.update_strategy == "recompute" or capacities is not None:
            return self._select_recompute(k, utilities, forbidden, capacities)
        return self._select_incremental(k, utilities, forbidden)

    # ------------------------------------------------------------------ #
    def _select_recompute(
        self,
        k: int,
        utilities: np.ndarray,
        forbidden: set[int],
        capacities: np.ndarray | None,
    ) -> tuple[list[int], np.ndarray, list[float]]:
        coverage = self.coverage
        weights = coverage.site_weights
        num_sites = coverage.num_sites
        selected: list[int] = []
        gains: list[float] = []
        for _ in range(min(k, num_sites - len(forbidden))):
            if capacities is None:
                marginal = coverage.marginal_gains(utilities)
            else:
                marginal = np.asarray(
                    [
                        coverage.marginal_gain(col, utilities, int(capacities[col]))
                        for col in range(num_sites)
                    ]
                )
            if forbidden:
                marginal[list(forbidden)] = -np.inf
            best = _argmax_with_tie_break(marginal, weights)
            if marginal[best] <= 0.0 and selected:
                break
            selected.append(int(best))
            forbidden.add(int(best))
            gains.append(float(marginal[best]))
            capacity = None if capacities is None else int(capacities[best])
            utilities = coverage.absorb(utilities, int(best), capacity)
        return selected, utilities, gains

    # ------------------------------------------------------------------ #
    def _select_incremental(
        self, k: int, utilities: np.ndarray, forbidden: set[int]
    ) -> tuple[list[int], np.ndarray, list[float]]:
        """Algorithm 1 of the paper with α_ji maintained implicitly.

        ``alpha[j, i] = max(0, ψ(T_j, s_i) − U_j)`` is represented by the
        current ``utilities`` vector; per-site marginal utilities are kept in
        ``marginal`` and decremented when a covered trajectory's utility
        improves.  Runs entirely through the coverage protocol
        (``marginal_gains`` / ``site_column`` / ``gain_updates``), so the
        same loop drives a plain dense index and a trajectory-sharded one
        (:class:`~repro.core.shards.ShardedCoverage` coordinates the
        per-shard evaluation).
        """
        coverage = self.coverage
        weights = coverage.site_weights
        num_sites = coverage.num_sites
        # U_1(s_i) = w_i adjusted for any existing-service seed utilities
        marginal = coverage.marginal_gains(utilities)
        selected: list[int] = []
        gains: list[float] = []
        for _ in range(min(k, num_sites - len(forbidden))):
            masked = marginal.copy()
            if forbidden:
                masked[list(forbidden)] = -np.inf
            best = _argmax_with_tie_break(masked, weights)
            best_gain = float(masked[best])
            if best_gain <= 0.0 and selected:
                break
            selected.append(int(best))
            forbidden.add(int(best))
            gains.append(best_gain)
            covered, new_util = coverage.site_column(best)
            if len(covered) == 0:
                continue
            improved_mask = new_util > utilities[covered]
            improved = covered[improved_mask]
            if len(improved) == 0:
                continue
            old_values = utilities[improved]
            new_values = new_util[improved_mask]
            # update marginal utility of every site covering an improved
            # trajectory: its residual gain for T_j drops from
            # max(0, ψ_ji − old) to max(0, ψ_ji − new)
            marginal -= coverage.gain_updates(improved, old_values, new_values)
            utilities[improved] = new_values
        return selected, utilities, gains

    # ------------------------------------------------------------------ #
    def solve(self, query: TOPSQuery, existing_sites: Sequence[int] = ()) -> TOPSResult:
        """Run the greedy selection and wrap it in a :class:`TOPSResult`.

        Parameters
        ----------
        query:
            The ``(k, τ, ψ)`` query; τ (kilometres) and ψ must match what
            the coverage index was built with — only ``k`` is read here.
        existing_sites:
            Site labels (node ids) of already-operating services; they must
            be present among the coverage index's sites and seed the
            utilities without counting towards k.

        Returns
        -------
        TOPSResult
            ``sites`` are node ids in selection order; ``utility`` is the
            total ψ-utility (for the binary ψ, the number of covered
            trajectories); ``metadata`` carries the per-step marginal gains
            and the update strategy used.
        """
        with Timer() as timer:
            existing_columns = (
                self.coverage.columns_for_labels(existing_sites) if existing_sites else []
            )
            columns, utilities, gains = self.select(
                query.k, existing_columns=existing_columns
            )
        sites = tuple(int(self.coverage.site_labels[c]) for c in columns)
        return TOPSResult(
            sites=sites,
            utility=float(np.sum(utilities)),
            per_trajectory_utility=tuple(float(u) for u in utilities),
            elapsed_seconds=timer.elapsed,
            algorithm=self.algorithm_name,
            metadata={"marginal_gains": gains, "update_strategy": self.update_strategy},
        )


class LazyGreedy:
    """CELF lazy greedy: Inc-Greedy's selections at a fraction of the work.

    By submodularity a site's marginal gain only shrinks as the selection
    grows, so gains computed in earlier iterations are valid upper bounds.
    The solver keeps every site in a max-heap keyed by its (possibly stale)
    cached gain with the paper's tie-break (gain, then site weight, then the
    larger site column); each iteration pops entries, re-evaluating stale
    ones, until the top of the heap is fresh — that site is the exact argmax,
    so the selection is identical to :class:`IncGreedy`'s.

    Works on both a dense :class:`~repro.core.coverage.CoverageIndex` and a
    :class:`~repro.core.coverage.SparseCoverageIndex`; with the sparse index a
    gain re-evaluation touches only the site's covered trajectories, which is
    what makes this the fast engine for realistic (sparse) instances.

    ``last_num_evaluations`` records how many marginal gains the previous
    :meth:`select` call actually computed (the eager strategies always
    compute ``k·n``).
    """

    algorithm_name = "lazy-greedy"

    def __init__(self, coverage: CoverageIndex | SparseCoverageIndex) -> None:
        self.coverage = coverage
        self.update_strategy = "lazy"
        self.last_num_evaluations = 0

    # ------------------------------------------------------------------ #
    def select(
        self,
        k: int,
        existing_columns: Sequence[int] = (),
        capacities: np.ndarray | None = None,
    ) -> tuple[list[int], np.ndarray, list[float]]:
        """Select *k* site columns lazily; same contract as :meth:`IncGreedy.select`."""
        require(k >= 1, "k must be >= 1")
        coverage = self.coverage
        num_sites = coverage.num_sites
        utilities = np.zeros(coverage.num_trajectories, dtype=np.float64)
        forbidden = set(int(c) for c in existing_columns)
        for col in sorted(forbidden):
            utilities = coverage.absorb(utilities, col)
        weights = coverage.site_weights
        caps = None if capacities is None else np.asarray(capacities)

        def capacity_of(col: int) -> int | None:
            return None if caps is None else int(caps[col])

        # exact initial gains for every candidate site (one vectorised pass
        # in the uncapacitated case)
        if caps is None:
            initial = coverage.marginal_gains(utilities)
        else:
            initial = np.asarray(
                [
                    coverage.marginal_gain(col, utilities, capacity_of(col))
                    for col in range(num_sites)
                ]
            )
        evaluations = num_sites

        heap = [
            (-initial[col], -weights[col], -col)
            for col in range(num_sites)
            if col not in forbidden
        ]
        heapq.heapify(heap)
        stamp = np.zeros(num_sites, dtype=np.int64)  # iteration of last evaluation
        iteration = 0
        selected: list[int] = []
        gains: list[float] = []
        limit = min(k, num_sites - len(forbidden))
        while heap and len(selected) < limit:
            neg_gain, neg_weight, neg_col = heapq.heappop(heap)
            col = int(-neg_col)
            if stamp[col] != iteration:
                gain = coverage.marginal_gain(col, utilities, capacity_of(col))
                evaluations += 1
                stamp[col] = iteration
                heapq.heappush(heap, (-gain, neg_weight, neg_col))
                continue
            gain = float(-neg_gain)
            if gain <= 0.0 and selected:
                break
            # the fresh top is the exact argmax up to float noise; collect
            # every entry whose cached upper bound ties it within GAIN_RTOL
            # (a true tie always has cached >= true >= top - tol) so the
            # winner comes from the same (gain, weight, site) rule the
            # eager strategies apply — never from last-ulp summation noise
            tolerance = GAIN_RTOL * max(1.0, abs(gain))
            ties = [(gain, float(-neg_weight), col)]
            outbid = []
            while heap and float(-heap[0][0]) >= gain - tolerance:
                other_neg_gain, other_neg_weight, other_neg_col = heapq.heappop(heap)
                other = int(-other_neg_col)
                if stamp[other] != iteration:
                    fresh = coverage.marginal_gain(other, utilities, capacity_of(other))
                    evaluations += 1
                    stamp[other] = iteration
                    if fresh >= gain - tolerance:
                        ties.append((fresh, float(-other_neg_weight), other))
                    else:
                        outbid.append((-fresh, other_neg_weight, other_neg_col))
                else:
                    ties.append(
                        (float(-other_neg_gain), float(-other_neg_weight), other)
                    )
            winner_gain, winner = _lazy_tie_winner(ties)
            for tied_gain, tied_weight, tied_col in ties:
                if tied_col != winner:
                    heapq.heappush(heap, (-tied_gain, -tied_weight, -tied_col))
            for entry in outbid:
                heapq.heappush(heap, entry)
            selected.append(winner)
            gains.append(winner_gain)
            utilities = coverage.absorb(utilities, winner, capacity_of(winner))
            iteration += 1
        self.last_num_evaluations = evaluations
        return selected, utilities, gains

    # ------------------------------------------------------------------ #
    def solve(self, query: TOPSQuery, existing_sites: Sequence[int] = ()) -> TOPSResult:
        """Run the lazy selection and wrap it in a :class:`TOPSResult`."""
        with Timer() as timer:
            existing_columns = (
                self.coverage.columns_for_labels(existing_sites) if existing_sites else []
            )
            columns, utilities, gains = self.select(
                query.k, existing_columns=existing_columns
            )
        sites = tuple(int(self.coverage.site_labels[c]) for c in columns)
        return TOPSResult(
            sites=sites,
            utility=float(np.sum(utilities)),
            per_trajectory_utility=tuple(float(u) for u in utilities),
            elapsed_seconds=timer.elapsed,
            algorithm=self.algorithm_name,
            metadata={
                "marginal_gains": gains,
                "update_strategy": self.update_strategy,
                "num_gain_evaluations": self.last_num_evaluations,
            },
        )


# ---------------------------------------------------------------------- #
def greedy_max_coverage_columns(
    scores: np.ndarray, k: int
) -> tuple[list[int], np.ndarray]:
    """Standalone greedy max-coverage used by baselines and tests.

    Selects *k* columns of the ``(m, n)`` score matrix maximising
    ``Σ_j max_{i in Q} scores[j, i]`` greedily; returns the chosen columns and
    the final per-row utilities.
    """
    utilities = np.zeros(scores.shape[0])
    chosen: list[int] = []
    available = set(range(scores.shape[1]))
    for _ in range(min(k, scores.shape[1])):
        residual = np.maximum(scores - utilities[:, np.newaxis], 0.0)
        marginal = residual.sum(axis=0)
        marginal[[c for c in range(scores.shape[1]) if c not in available]] = -np.inf
        best = int(np.argmax(marginal))
        chosen.append(best)
        available.discard(best)
        utilities = np.maximum(utilities, scores[:, best])
    return chosen, utilities


def _lazy_tie_winner(ties: list[tuple[float, float, int]]) -> tuple[float, int]:
    """The canonical winner of a CELF tie set: gain, then weight, then site.

    Mirrors :func:`_argmax_with_tie_break` on the (gain, weight, column)
    triples the lazy loop collected, so the lazy strategy resolves ties
    exactly like the eager ones.
    """
    tie_gains = np.asarray([entry[0] for entry in ties])
    tie_weights = np.asarray([entry[1] for entry in ties])
    tie_cols = np.asarray([entry[2] for entry in ties])
    candidates = tie_break_candidates(tie_gains)
    heaviest = candidates[tie_break_candidates(tie_weights[candidates])]
    pick = heaviest[np.argmax(tie_cols[heaviest])]
    return float(tie_gains[pick]), int(tie_cols[pick])


def _argmax_with_tie_break(marginal: np.ndarray, weights: np.ndarray) -> int:
    """Paper's tie-break: largest marginal, then largest weight, then largest index.

    Gains (and weights) are compared through
    :func:`~repro.core.coverage.tie_break_candidates`, i.e. within a small
    relative tolerance: two sites whose gains agree mathematically but
    differ in the last ulps (different engines sum in different orders)
    are a *tie* and fall through to the deterministic weight/index rule,
    never to float noise.
    """
    candidates = tie_break_candidates(marginal)
    if len(candidates) == 1:
        return int(candidates[0])
    heaviest = candidates[tie_break_candidates(weights[candidates])]
    return int(heaviest.max())


