"""Inc-Greedy: the (1 − 1/e) greedy heuristic for TOPS (Section 3.3).

Inc-Greedy maximises the monotone submodular utility by repeatedly adding the
site with the largest marginal gain.  Two equivalent evaluation strategies are
provided:

* ``update_strategy="incremental"`` — the paper's Algorithm 1: per-site
  marginal utilities ``U_θ(s_i)`` and per-pair residual gains ``α_ji`` are
  maintained and updated only for the trajectories covered by the newly
  selected site (and the sites covering those trajectories);
* ``update_strategy="recompute"`` — each iteration recomputes all marginal
  gains as ``Σ_j max(0, ψ(T_j, s_i) − U_j)`` with one vectorised NumPy pass.

Both are ``O(k·m·n)`` in the worst case and return identical selections
(ties broken by site weight, then by the larger site label, per the paper).
The class also supports an initial seed of *existing services* (Section 7.3)
and per-site capacities (used by the TOPS-CAPACITY driver in
``repro.core.variants``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.coverage import CoverageIndex
from repro.core.query import TOPSQuery, TOPSResult
from repro.utils.timer import Timer
from repro.utils.validation import require

__all__ = ["IncGreedy", "greedy_max_coverage_columns"]


class IncGreedy:
    """Greedy TOPS solver operating on a :class:`CoverageIndex`.

    Parameters
    ----------
    coverage:
        The coverage structures built for the query's (τ, ψ).
    update_strategy:
        ``"incremental"`` (Algorithm 1 of the paper) or ``"recompute"``.
    """

    algorithm_name = "inc-greedy"

    def __init__(self, coverage: CoverageIndex, update_strategy: str = "incremental") -> None:
        require(
            update_strategy in ("incremental", "recompute"),
            "update_strategy must be 'incremental' or 'recompute'",
        )
        self.coverage = coverage
        self.update_strategy = update_strategy

    # ------------------------------------------------------------------ #
    def select(
        self,
        k: int,
        existing_columns: Sequence[int] = (),
        capacities: np.ndarray | None = None,
    ) -> tuple[list[int], np.ndarray, list[float]]:
        """Select *k* site columns greedily.

        Parameters
        ----------
        k:
            Number of sites to add (on top of any existing services).
        existing_columns:
            Columns of already-operating services (Section 7.3); they seed the
            per-trajectory utilities but are not re-selected nor counted in k.
        capacities:
            Optional per-site capacities (max number of trajectories a site
            may serve).  When provided, a site's marginal utility is the sum
            of its largest ``cap`` per-trajectory gains (Section 7.2).

        Returns
        -------
        (selected_columns, per_trajectory_utility, marginal_gains)
        """
        require(k >= 1, "k must be >= 1")
        scores = self.coverage.scores
        num_trajectories, num_sites = scores.shape
        utilities = np.zeros(num_trajectories, dtype=np.float64)
        if existing_columns:
            utilities = np.max(scores[:, list(existing_columns)], axis=1)
        forbidden = set(int(c) for c in existing_columns)

        if self.update_strategy == "recompute" or capacities is not None:
            return self._select_recompute(k, utilities, forbidden, capacities)
        return self._select_incremental(k, utilities, forbidden)

    # ------------------------------------------------------------------ #
    def _select_recompute(
        self,
        k: int,
        utilities: np.ndarray,
        forbidden: set[int],
        capacities: np.ndarray | None,
    ) -> tuple[list[int], np.ndarray, list[float]]:
        scores = self.coverage.scores
        weights = self.coverage.site_weights
        num_sites = scores.shape[1]
        selected: list[int] = []
        gains: list[float] = []
        for _ in range(min(k, num_sites - len(forbidden))):
            residual = np.maximum(scores - utilities[:, np.newaxis], 0.0)
            if capacities is None:
                marginal = residual.sum(axis=0)
            else:
                marginal = _capacity_limited_marginals(residual, capacities)
            if forbidden:
                marginal[list(forbidden)] = -np.inf
            best = _argmax_with_tie_break(marginal, weights)
            if marginal[best] <= 0.0 and selected:
                break
            selected.append(int(best))
            forbidden.add(int(best))
            gains.append(float(marginal[best]))
            if capacities is None:
                utilities = np.maximum(utilities, scores[:, best])
            else:
                utilities = _apply_capacity_assignment(
                    utilities, scores[:, best], int(capacities[best])
                )
        return selected, utilities, gains

    # ------------------------------------------------------------------ #
    def _select_incremental(
        self, k: int, utilities: np.ndarray, forbidden: set[int]
    ) -> tuple[list[int], np.ndarray, list[float]]:
        """Algorithm 1 of the paper with α_ji maintained implicitly.

        ``alpha[j, i] = max(0, ψ(T_j, s_i) − U_j)`` is represented by the
        current ``utilities`` vector; per-site marginal utilities are kept in
        ``marginal`` and decremented when a covered trajectory's utility
        improves.
        """
        scores = self.coverage.scores
        weights = self.coverage.site_weights
        num_trajectories, num_sites = scores.shape
        # U_1(s_i) = w_i adjusted for any existing-service seed utilities
        marginal = np.maximum(scores - utilities[:, np.newaxis], 0.0).sum(axis=0)
        selected: list[int] = []
        gains: list[float] = []
        for _ in range(min(k, num_sites - len(forbidden))):
            masked = marginal.copy()
            if forbidden:
                masked[list(forbidden)] = -np.inf
            best = _argmax_with_tie_break(masked, weights)
            best_gain = float(masked[best])
            if best_gain <= 0.0 and selected:
                break
            selected.append(int(best))
            forbidden.add(int(best))
            gains.append(best_gain)
            covered = self.coverage.trajectories_covered(best)
            if len(covered) == 0:
                continue
            new_util = scores[covered, best]
            improved_mask = new_util > utilities[covered]
            improved = covered[improved_mask]
            if len(improved) == 0:
                continue
            old_values = utilities[improved]
            new_values = scores[improved, best]
            # update marginal utility of every site covering an improved
            # trajectory: its residual gain for T_j drops from
            # max(0, ψ_ji − old) to max(0, ψ_ji − new)
            affected_scores = scores[improved, :]
            old_alpha = np.maximum(affected_scores - old_values[:, np.newaxis], 0.0)
            new_alpha = np.maximum(affected_scores - new_values[:, np.newaxis], 0.0)
            marginal -= (old_alpha - new_alpha).sum(axis=0)
            utilities[improved] = new_values
        return selected, utilities, gains

    # ------------------------------------------------------------------ #
    def solve(self, query: TOPSQuery, existing_sites: Sequence[int] = ()) -> TOPSResult:
        """Run the greedy selection and wrap it in a :class:`TOPSResult`.

        *existing_sites* are site labels (node ids) of already-operating
        services; they must be present among the coverage index's sites.
        """
        with Timer() as timer:
            existing_columns = (
                self.coverage.columns_for_labels(existing_sites) if existing_sites else []
            )
            columns, utilities, gains = self.select(
                query.k, existing_columns=existing_columns
            )
        sites = tuple(int(self.coverage.site_labels[c]) for c in columns)
        return TOPSResult(
            sites=sites,
            utility=float(np.sum(utilities)),
            per_trajectory_utility=tuple(float(u) for u in utilities),
            elapsed_seconds=timer.elapsed,
            algorithm=self.algorithm_name,
            metadata={"marginal_gains": gains, "update_strategy": self.update_strategy},
        )


# ---------------------------------------------------------------------- #
def greedy_max_coverage_columns(
    scores: np.ndarray, k: int
) -> tuple[list[int], np.ndarray]:
    """Standalone greedy max-coverage used by baselines and tests.

    Selects *k* columns of the ``(m, n)`` score matrix maximising
    ``Σ_j max_{i in Q} scores[j, i]`` greedily; returns the chosen columns and
    the final per-row utilities.
    """
    utilities = np.zeros(scores.shape[0])
    chosen: list[int] = []
    available = set(range(scores.shape[1]))
    for _ in range(min(k, scores.shape[1])):
        residual = np.maximum(scores - utilities[:, np.newaxis], 0.0)
        marginal = residual.sum(axis=0)
        marginal[[c for c in range(scores.shape[1]) if c not in available]] = -np.inf
        best = int(np.argmax(marginal))
        chosen.append(best)
        available.discard(best)
        utilities = np.maximum(utilities, scores[:, best])
    return chosen, utilities


def _argmax_with_tie_break(marginal: np.ndarray, weights: np.ndarray) -> int:
    """Paper's tie-break: largest marginal, then largest weight, then largest index."""
    best_gain = np.max(marginal)
    candidates = np.flatnonzero(marginal == best_gain)
    if len(candidates) == 1:
        return int(candidates[0])
    candidate_weights = weights[candidates]
    best_weight = np.max(candidate_weights)
    heaviest = candidates[candidate_weights == best_weight]
    return int(heaviest.max())


def _capacity_limited_marginals(residual: np.ndarray, capacities: np.ndarray) -> np.ndarray:
    """Marginal utility when each site can serve at most ``cap`` trajectories.

    For every site column, sum its largest ``cap`` residual gains
    (Section 7.2: α_i = min(|TC|, cap) largest marginal utilities).
    """
    num_trajectories, num_sites = residual.shape
    marginal = np.empty(num_sites)
    for col in range(num_sites):
        cap = int(capacities[col])
        if cap <= 0:
            marginal[col] = 0.0
            continue
        column = residual[:, col]
        if cap >= num_trajectories:
            marginal[col] = column.sum()
        else:
            top = np.partition(column, num_trajectories - cap)[num_trajectories - cap :]
            marginal[col] = top.sum()
    return marginal


def _apply_capacity_assignment(
    utilities: np.ndarray, site_scores: np.ndarray, capacity: int
) -> np.ndarray:
    """Serve the ``capacity`` trajectories with the largest gains from a new site."""
    gains = np.maximum(site_scores - utilities, 0.0)
    if capacity >= len(gains):
        return np.maximum(utilities, site_scores)
    served = np.argsort(gains)[::-1][:capacity]
    updated = utilities.copy()
    updated[served] = np.maximum(updated[served], site_scores[served])
    return updated
